"""Tests for the fleet serving subsystem (:mod:`repro.serve`)."""

import numpy as np
import pytest

from repro.core import ModelConfig, TwoBranchSoCNet, model_rollout
from repro.serve import (
    FleetEngine,
    MicroBatcher,
    ModelRegistry,
    generate_fleet,
)

FAST_FLEET = dict(
    ambient_temps_c=(25.0,),
    c_rates=(1.0, 2.0),
    protocols=("discharge",),
    max_time_s=1800.0,
)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def small_fleet():
    """12-cell fleet over a couple of light discharge conditions."""
    return generate_fleet(12, seed=7, **FAST_FLEET)


@pytest.fixture(scope="module")
def mixed_fleet():
    """Fleet spanning both protocols so cycle lengths differ per cell."""
    return generate_fleet(
        10, seed=3, ambient_temps_c=(10.0, 25.0), c_rates=(1.0,), max_time_s=1800.0
    )


# ----------------------------------------------------------------------
class TestFleetSim:
    def test_deterministic_by_seed(self):
        a = generate_fleet(6, seed=5, **FAST_FLEET)
        b = generate_fleet(6, seed=5, **FAST_FLEET)
        for ma, mb in zip(a.members, b.members):
            assert ma.cell_id == mb.cell_id
            assert ma.cycle.name == mb.cycle.name
            np.testing.assert_array_equal(ma.cycle.data.voltage, mb.cycle.data.voltage)

    def test_conditions_shared_across_members(self, small_fleet):
        assert small_fleet.n_conditions() < len(small_fleet)

    def test_mixed_chemistries(self):
        fleet = generate_fleet(40, seed=0, **FAST_FLEET)
        assert len(fleet.chemistries()) >= 2
        assert sum(fleet.chemistries().values()) == 40

    def test_cycles_carry_chemistry_tags(self, small_fleet):
        for m in small_fleet.members:
            assert m.cycle.tags["chemistry"] == m.chemistry
            assert len(m.cycle) > 10

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            generate_fleet(0)
        with pytest.raises(ValueError):
            generate_fleet(3, protocols=("udds",))


# ----------------------------------------------------------------------
class TestFleetEngine:
    def test_requires_model_or_registry(self):
        with pytest.raises(ValueError):
            FleetEngine()

    def test_estimate_matches_single_cell_calls(self, model):
        engine = FleetEngine(default_model=model)
        ids = [f"c{k}" for k in range(5)]
        for cid in ids:
            engine.register_cell(cid, chemistry="nmc")
        v = np.linspace(3.2, 4.0, 5)
        i = np.linspace(0.5, 3.0, 5)
        t = np.full(5, 25.0)
        batched = engine.estimate(ids, v, i, t)
        for k, cid in enumerate(ids):
            expected = float(model.estimate_soc(v[k], i[k], t[k])[0])
            assert batched[k] == pytest.approx(expected, abs=1e-12)
            assert engine.cell(cid).soc == pytest.approx(expected, abs=1e-12)

    def test_predict_uses_stored_soc_and_commit(self, model):
        engine = FleetEngine(default_model=model)
        engine.register_cell("a")
        with pytest.raises(ValueError, match="no stored SoC"):
            engine.predict(["a"], 2.0, 25.0, 120.0)
        engine.estimate(["a"], 3.7, 1.0, 25.0)
        stored = engine.cell("a").soc
        out = engine.predict(["a"], 2.0, 25.0, 120.0)
        assert engine.cell("a").soc == stored  # what-if leaves state alone
        engine.predict(["a"], 2.0, 25.0, 120.0, commit=True)
        assert engine.cell("a").soc == pytest.approx(float(out[0]))

    def test_unknown_cell_raises(self, model):
        engine = FleetEngine(default_model=model)
        with pytest.raises(KeyError):
            engine.estimate(["ghost"], 3.7, 1.0, 25.0)

    def test_scalar_inputs_broadcast_across_batch(self, model):
        engine = FleetEngine(default_model=model)
        for cid in ("a", "b"):
            engine.register_cell(cid)
        out = engine.estimate(["a", "b"], [3.7, 3.8], [1.0, 1.2], 25.0)
        assert len(out) == 2
        expected_b = float(model.estimate_soc(3.8, 1.2, 25.0)[0])
        assert out[1] == pytest.approx(expected_b, abs=1e-12)
        pred = engine.predict(["a", "b"], 2.0, 25.0, 120.0, soc_now=0.5)
        assert len(pred) == 2
        assert pred[0] == pred[1]  # identical query rows

    def test_republished_model_served_without_engine_rebuild(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish("m", TwoBranchSoCNet(rng=np.random.default_rng(0)))
        engine = FleetEngine(registry=registry)
        engine.register_cell("a")
        first = float(engine.estimate(["a"], 3.7, 1.0, 25.0)[0])
        registry.publish("m", TwoBranchSoCNet(rng=np.random.default_rng(9)))
        second = float(engine.estimate(["a"], 3.7, 1.0, 25.0)[0])
        assert first != second

    def test_rollout_fleet_matches_per_cell_loop(self, model, mixed_fleet):
        """The acceptance property: batched == loop to 1e-9, per cell,
        across heterogeneous cycle lengths (partial tails included)."""
        engine = FleetEngine(default_model=model)
        results = engine.rollout_fleet(mixed_fleet.assignments(), step_s=120.0)
        assert set(results) == {m.cell_id for m in mixed_fleet.members}
        for m in mixed_fleet.members:
            ref = model_rollout(model, m.cycle, 120.0)
            got = results[m.cell_id]
            assert len(got) == len(ref)
            np.testing.assert_allclose(got.soc_pred, ref.soc_pred, atol=1e-9, rtol=0)
            np.testing.assert_array_equal(got.time_s, ref.time_s)
            np.testing.assert_array_equal(got.soc_true, ref.soc_true)
            assert got.tail_s == ref.tail_s
            assert got.initial_soc == pytest.approx(ref.initial_soc, abs=1e-12)

    def test_rollout_updates_cell_state(self, model, small_fleet):
        engine = FleetEngine(default_model=model)
        results = engine.rollout_fleet(small_fleet.assignments(), step_s=120.0)
        for m in small_fleet.members:
            state = engine.cell(m.cell_id)
            assert state.soc == pytest.approx(float(results[m.cell_id].soc_pred[-1]))
            assert state.chemistry == m.chemistry

    def test_registry_routes_by_chemistry(self, model, tmp_path, small_fleet):
        registry = ModelRegistry(tmp_path)
        rng = np.random.default_rng(1)
        per_chem = {}
        for chem in ("nca", "nmc", "lfp"):
            m = TwoBranchSoCNet(rng=rng)
            registry.publish(chem, m, chemistry=chem)
            per_chem[chem] = m
        engine = FleetEngine(registry=registry)
        results = engine.rollout_fleet(small_fleet.assignments(), step_s=120.0)
        for m in small_fleet.members:
            assert engine.cell(m.cell_id).model_key == m.chemistry
            ref = model_rollout(per_chem[m.chemistry], m.cycle, 120.0)
            np.testing.assert_allclose(
                results[m.cell_id].soc_pred, ref.soc_pred, atol=1e-9, rtol=0
            )

    def test_registry_miss_falls_back_to_default(self, model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish("nca-only", TwoBranchSoCNet(rng=np.random.default_rng(2)), chemistry="nca")
        engine = FleetEngine(default_model=model, registry=registry)
        state = engine.register_cell("x", chemistry="lfp")
        assert state.model_key == "__default__"
        engine_no_default = FleetEngine(registry=registry)
        with pytest.raises(KeyError):
            engine_no_default.register_cell("y", chemistry="lfp")


# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_publish_load_roundtrip(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        model = TwoBranchSoCNet(
            ModelConfig(horizon_scale_s=70.0), rng=np.random.default_rng(4)
        )
        entry = registry.publish("lg-a", model, chemistry="NMC", dataset="lg",
                                 extra={"seed": 4})
        assert entry.chemistry == "nmc"  # normalized
        loaded = registry.load("lg-a")
        assert loaded.config.horizon_scale_s == 70.0
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(dict(loaded.named_parameters())[name].data, param.data)
        out = loaded.estimate_soc(3.7, 1.0, 25.0)
        np.testing.assert_allclose(out, model.estimate_soc(3.7, 1.0, 25.0))

    def test_reopen_reindexes_from_disk(self, tmp_path):
        first = ModelRegistry(tmp_path)
        first.publish("a", TwoBranchSoCNet(rng=np.random.default_rng(0)), chemistry="nca")
        second = ModelRegistry(tmp_path)
        assert second.names() == ["a"]
        assert second.describe("a").chemistry == "nca"

    def test_resolution_specificity(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        rng = np.random.default_rng(0)
        registry.publish("generalist", TwoBranchSoCNet(rng=rng))
        registry.publish("lfp-any", TwoBranchSoCNet(rng=rng), chemistry="lfp")
        registry.publish("lfp-sandia", TwoBranchSoCNet(rng=rng), chemistry="lfp", dataset="sandia")
        registry.publish("sandia-any", TwoBranchSoCNet(rng=rng), dataset="sandia")
        assert registry.resolve(chemistry="lfp", dataset="sandia") == "lfp-sandia"
        assert registry.resolve(chemistry="lfp") == "lfp-any"
        assert registry.resolve(chemistry="nmc", dataset="sandia") == "sandia-any"
        assert registry.resolve(chemistry="nmc") == "generalist"
        assert registry.resolve() == "generalist"

    def test_resolve_empty_registry_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no model"):
            ModelRegistry(tmp_path / "empty").resolve(chemistry="nmc")

    def test_invalid_names_and_reserved_extras(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            registry.publish("", model)
        with pytest.raises(ValueError):
            registry.publish("../escape", model)
        with pytest.raises(ValueError, match="reserved"):
            registry.publish("ok", model, extra={"hidden": [1]})

    def test_republish_replaces_cached_model(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        m1 = TwoBranchSoCNet(rng=np.random.default_rng(0))
        registry.publish("m", m1)
        first = registry.load("m").estimate_soc(3.7, 1.0, 25.0)
        m2 = TwoBranchSoCNet(rng=np.random.default_rng(9))
        registry.publish("m", m2)
        second = registry.load("m").estimate_soc(3.7, 1.0, 25.0)
        assert not np.allclose(first, second)

    def test_plain_checkpoints_ignored(self, tmp_path):
        from repro.nn.serialization import save_state

        save_state({"w": np.ones(3)}, tmp_path / "foreign.npz", meta={"note": "not registry"})
        registry = ModelRegistry(tmp_path)
        assert registry.names() == []


# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


class TestMicroBatcher:
    @pytest.fixture()
    def engine(self, model):
        engine = FleetEngine(default_model=model)
        for k in range(8):
            engine.register_cell(f"c{k}")
        return engine

    def test_size_trigger_coalesces(self, engine, model):
        clock = FakeClock()
        batcher = MicroBatcher(engine, max_batch=4, max_delay_s=10.0, clock=clock)
        for k in range(4):
            batcher.submit_estimate(f"c{k}", 3.5 + 0.1 * k, 1.0, 25.0)
        done = batcher.drain()
        assert len(done) == 4
        assert all(c.batch_size == 4 for c in done)
        assert batcher.stats.size_flushes == 1
        assert batcher.pending == 0
        for c in done:
            k = int(c.cell_id[1:])
            expected = float(model.estimate_soc(3.5 + 0.1 * k, 1.0, 25.0)[0])
            assert c.value == pytest.approx(expected, abs=1e-12)

    def test_deadline_trigger(self, engine):
        clock = FakeClock()
        batcher = MicroBatcher(engine, max_batch=100, max_delay_s=0.5, clock=clock)
        batcher.submit_estimate("c0", 3.7, 1.0, 25.0)
        assert batcher.poll() == []  # not due yet
        clock.advance(0.6)
        done = batcher.poll()
        assert len(done) == 1
        assert done[0].wait_s == pytest.approx(0.6)
        assert batcher.stats.deadline_flushes == 1

    def test_kinds_queue_independently(self, engine):
        clock = FakeClock()
        batcher = MicroBatcher(engine, max_batch=2, max_delay_s=10.0, clock=clock)
        batcher.submit_estimate("c0", 3.7, 1.0, 25.0)
        batcher.submit_predict("c0", 2.0, 25.0, 120.0)
        assert batcher.pending == 2  # neither kind full
        batcher.submit_estimate("c1", 3.6, 1.0, 25.0)  # fills estimate queue
        done = batcher.drain()
        assert {c.kind for c in done} == {"estimate"}
        done_rest = batcher.flush()
        assert [c.kind for c in done_rest] == ["predict"]
        assert batcher.stats.forced_flushes == 1

    def test_latency_accounting(self, engine):
        clock = FakeClock()
        batcher = MicroBatcher(engine, max_batch=100, max_delay_s=1.0, clock=clock)
        batcher.submit_estimate("c0", 3.7, 1.0, 25.0)
        clock.advance(0.25)
        batcher.submit_estimate("c1", 3.6, 1.0, 25.0)
        clock.advance(0.25)
        batcher.flush()
        assert batcher.stats.requests == 2
        assert batcher.stats.mean_batch_size() == 2.0
        assert batcher.stats.mean_wait_s() == pytest.approx((0.5 + 0.25) / 2)
        assert batcher.stats.max_wait_s == pytest.approx(0.5)

    def test_bad_request_does_not_sink_batch(self, engine):
        """A predict for a cell with no stored SoC errors alone; its
        batchmates still complete."""
        clock = FakeClock()
        engine.estimate(["c0"], 3.7, 1.0, 25.0)  # c0 ready, c1 not
        batcher = MicroBatcher(engine, max_batch=2, clock=clock)
        batcher.submit_predict("c1", 2.0, 25.0, 120.0)
        batcher.submit_predict("c0", 2.0, 25.0, 120.0)
        done = {c.cell_id: c for c in batcher.drain()}
        assert len(done) == 2
        assert done["c0"].ok and np.isfinite(done["c0"].value)
        assert not done["c1"].ok
        assert "no stored SoC" in done["c1"].error
        assert np.isnan(done["c1"].value)
        assert batcher.stats.errors == 1
        assert batcher.pending == 0

    def test_unregistered_cell_gets_error_completion(self, engine, model):
        """A request for a cell the engine does not know must surface as
        an ok=False completion — never be silently dropped — and must
        not poison its batchmates' single batched engine call."""
        clock = FakeClock()
        batcher = MicroBatcher(engine, max_batch=3, max_delay_s=10.0, clock=clock)
        batcher.submit_estimate("ghost", 3.7, 1.0, 25.0)
        batcher.submit_estimate("c0", 3.5, 1.0, 25.0)
        batcher.submit_estimate("c1", 3.6, 1.0, 25.0)
        done = {c.cell_id: c for c in batcher.drain()}
        assert set(done) == {"ghost", "c0", "c1"}  # nothing dropped
        assert not done["ghost"].ok
        assert "unknown cell 'ghost'" in done["ghost"].error
        assert np.isnan(done["ghost"].value)
        for cid, volts in (("c0", 3.5), ("c1", 3.6)):
            assert done[cid].ok
            expected = float(model.estimate_soc(volts, 1.0, 25.0)[0])
            assert done[cid].value == pytest.approx(expected, abs=1e-12)
            assert engine.cell(cid).n_requests == 1  # served once, not retried
        assert batcher.stats.errors == 1
        assert batcher.pending == 0

    def test_unregistered_cell_error_on_deadline_poll(self, engine):
        clock = FakeClock()
        batcher = MicroBatcher(engine, max_batch=100, max_delay_s=0.5, clock=clock)
        batcher.submit_predict("ghost", 2.0, 25.0, 120.0)
        clock.advance(1.0)
        done = batcher.poll()
        assert len(done) == 1
        assert not done[0].ok and "unknown cell" in done[0].error

    def test_rejects_bad_config(self, engine):
        with pytest.raises(ValueError):
            MicroBatcher(engine, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(engine, max_delay_s=-1.0)
