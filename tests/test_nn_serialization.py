"""Tests for ``.npz`` checkpointing (:mod:`repro.nn.serialization`)."""

import numpy as np
import pytest

from repro.core import ModelConfig, TwoBranchSoCNet
from repro.nn.serialization import (
    load_model_into,
    load_state,
    peek_meta,
    save_model,
    save_state,
)


class TestStateRoundTrip:
    def test_arrays_and_meta_survive(self, tmp_path):
        path = tmp_path / "state.npz"
        state = {"a": np.arange(6.0).reshape(2, 3), "b": np.float64(2.5) * np.ones(4)}
        meta = {"seed": 3, "dataset": "sandia", "nested": {"lr": 0.003}}
        save_state(state, path, meta=meta)
        loaded, loaded_meta = load_state(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], state["a"])
        np.testing.assert_array_equal(loaded["b"], state["b"])
        assert loaded_meta == meta

    def test_meta_optional(self, tmp_path):
        path = tmp_path / "bare.npz"
        save_state({"w": np.ones(2)}, path)
        _, meta = load_state(path)
        assert meta is None
        assert peek_meta(path) is None

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_state({"__meta_json__": np.ones(1)}, tmp_path / "x.npz")

    def test_peek_meta_skips_weights(self, tmp_path):
        path = tmp_path / "big.npz"
        save_state({"w": np.zeros((64, 64))}, path, meta={"tag": "fleet"})
        assert peek_meta(path) == {"tag": "fleet"}


class TestModelRoundTrip:
    def test_two_branch_weights_and_meta_survive(self, tmp_path):
        path = tmp_path / "model.npz"
        model = TwoBranchSoCNet(
            ModelConfig(horizon_scale_s=70.0), rng=np.random.default_rng(7)
        )
        meta = {"dataset": "lg", "horizon_scale": 70.0, "hidden": [16, 32, 16]}
        save_model(model, path, meta=meta)

        clone = TwoBranchSoCNet(
            ModelConfig(horizon_scale_s=70.0), rng=np.random.default_rng(99)
        )
        returned_meta = load_model_into(clone, path)
        assert returned_meta == meta
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(dict(clone.named_parameters())[name].data, param.data)
        # behaviourally identical, not just parameter-identical
        np.testing.assert_array_equal(
            clone.predict_soc(0.8, 2.0, 25.0, 30.0), model.predict_soc(0.8, 2.0, 25.0, 30.0)
        )

    def test_mismatched_architecture_rejected(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(TwoBranchSoCNet(rng=np.random.default_rng(0)), path)
        small = TwoBranchSoCNet(ModelConfig(hidden=(8,)), rng=np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_model_into(small, path)
