"""Closed-loop end-to-end test: drift → retrain → canary → promote.

The acceptance property of the offline-learner subsystem: inject a
degraded stable checkpoint into a journaled, monitored fleet and show
the control plane — with **no human in the loop** — detects the drift,
harvests the drifted cells' windows, fine-tunes a candidate from the
stable checkpoint, publishes it as ``serve@v2`` on the canary channel,
qualifies it on live traffic, and promotes it to stable.  The latency
gate gets the complementary test: an accurate-but-slow candidate is
rolled back, never shipped.
"""

import time

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.learn import (
    FineTuneConfig,
    RetrainConfig,
    RetrainLoop,
    harvest_training_set,
    relabel_with_physics,
)
from repro.monitor.autopilot import (
    AutoCanaryPolicy,
    AutopilotConfig,
    ControlLoop,
    DivergenceProbe,
)
from repro.monitor.drift import DriftMonitor
from repro.serve import (
    CanaryController,
    FleetEngine,
    ModelRegistry,
    StateJournal,
    generate_fleet,
)

FAST_TUNE = FineTuneConfig(epochs=25, lr=3e-3)


def degraded_checkpoint(base: TwoBranchSoCNet) -> TwoBranchSoCNet:
    """The injected fault: Branch 2's output head drifts far off-physics,
    so served predictions blow through the SoC bounds and rate limits."""
    degraded = TwoBranchSoCNet(base.config, rng=np.random.default_rng(1))
    state = {k: v.copy() for k, v in base.state_dict().items()}
    state["branch2.mlp.net.layers.6.bias"] = state["branch2.mlp.net.layers.6.bias"] + 2.0
    degraded.load_state_dict(state)
    return degraded


class SlowCanaryEngine:
    """Serving shim: delegates to the engine, stalling predicts that hit
    canary-pinned cells — an accurate candidate with a slow serving path."""

    def __init__(self, engine, controller, delay_s=0.05):
        self._engine = engine
        self._controller = controller
        self.delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def predict(self, cell_ids, *args, **kwargs):
        if set(cell_ids) & set(self._controller.canary_cells()):
            time.sleep(self.delay_s)
        return self._engine.predict(cell_ids, *args, **kwargs)


def build_plane(tmp_path, latency_budget=None, slow_canary=False):
    """A degraded serving plane with its full control loop attached."""
    base = TwoBranchSoCNet(rng=np.random.default_rng(0))
    degraded = degraded_checkpoint(base)
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("serve", degraded)

    journal_path = tmp_path / "fleet.journal"
    engine = FleetEngine(
        registry=registry, journal=StateJournal(journal_path), drift=DriftMonitor()
    )
    fleet = generate_fleet(
        12, seed=3, ambient_temps_c=(25.0,), c_rates=(1.0,), protocols=("discharge",),
        max_time_s=1800.0,
    )
    for member in fleet.members:
        engine.register_cell(member.cell_id, model_name="serve")
    # live traffic: the degraded checkpoint drifts off-physics, the
    # monitor alarms, and the journal records the windows to learn from
    engine.rollout_fleet(fleet.assignments(), 120.0)

    controller = CanaryController(engine, registry, "serve", fraction=0.5, max_divergence=10.0)
    probe_engine = SlowCanaryEngine(engine, controller) if slow_canary else engine
    probe = DivergenceProbe(probe_engine, controller, sample=2)
    # loose accuracy gates: the corrected candidate legitimately
    # diverges from the degraded stable it is replacing
    policy = AutoCanaryPolicy(
        controller,
        config=AutopilotConfig(
            min_observations=2,
            divergence_budget=5.0,
            hard_divergence=10.0,
            cooldown_ticks=2,
            latency_budget=latency_budget,
        ),
    )
    retrain = RetrainLoop(
        source=engine,
        journals=journal_path,
        registry=registry,
        target=controller,
        # a long cooldown: exactly one retrain inside the test window
        config=RetrainConfig(name="serve", cooldown_ticks=8, finetune=FAST_TUNE),
    )
    loop = ControlLoop(engine=engine, autopilot=policy, probe=probe, retrain=retrain, interval_s=0)
    return loop, registry, controller, policy, degraded, journal_path


def physics_rmse(model, samples):
    relabeled = relabel_with_physics(samples)
    pred = model.predict_samples(relabeled, use_ground_truth_soc=True)
    return float(np.sqrt(np.mean((pred - relabeled.soc_target) ** 2)))


# ----------------------------------------------------------------------
class TestClosedLoop:
    def test_degradation_is_detected_retrained_and_promoted(self, tmp_path):
        loop, registry, controller, policy, degraded, journal_path = build_plane(tmp_path)
        assert registry.channels("serve") == {"stable": 1}
        assert len(loop.engine.drift_events()) > 0  # the fault was noticed

        published = promoted = False
        for _ in range(10):
            report = loop.tick()
            retrain = report["retrain"]
            if retrain is not None and retrain["status"] == "published":
                published = True
                assert retrain["version"] == 2
                assert registry.channels("serve") == {"stable": 1, "canary": 2}
                assert controller.active and controller.canary_cells()
            if report["decision"] == "promote":
                promoted = True
                break
        assert published, "retrain loop never produced a candidate"
        assert promoted, "autopilot never promoted the candidate"

        # the loop closed: the retrained checkpoint IS the new stable,
        # the canary channel is free, and nobody touched the registry
        assert registry.channels("serve") == {"stable": 2}
        assert not controller.active
        assert policy.last_reason == "within-budget"
        entry = registry.describe("serve")
        assert entry.version == 2
        assert entry.extra["retrained_from"] == 1
        assert entry.extra["harvest_rows"] > 0

        # and it actually fixed the physics it drifted away from
        samples = harvest_training_set(journal_path).samples
        assert physics_rmse(registry.load("serve"), samples) < 0.8 * physics_rmse(
            degraded, samples
        )

    def test_latency_gate_vetoes_an_accurate_but_slow_candidate(self, tmp_path):
        loop, registry, controller, policy, _, _ = build_plane(
            tmp_path, latency_budget=3.0, slow_canary=True
        )
        rolled_back = False
        for _ in range(8):
            report = loop.tick()
            if report["decision"] == "rollback":
                rolled_back = True
                break
        assert rolled_back, "latency gate never fired"
        assert policy.last_reason == "latency"
        # the slow candidate never shipped: stable is still v1 and the
        # canary lane is clear for the next attempt
        assert registry.channels("serve") == {"stable": 1}
        assert not controller.active

    def test_promotion_requires_no_manual_registry_ops(self, tmp_path):
        """Belt-and-braces for 'no human in the loop': every channel
        move during the run went through the controller."""
        loop, registry, controller, _, _, _ = build_plane(tmp_path)
        moves = []
        for op in ("promote", "rollback"):
            original = getattr(registry, op)

            def spy(name, _op=op, _original=original):
                moves.append(_op)
                return _original(name)

            setattr(registry, op, spy)
        with pytest.raises(ValueError):
            controller.promote()  # nothing staged yet: only the loop may stage
        for _ in range(10):
            if loop.tick()["decision"] == "promote":
                break
        assert moves == ["promote"]  # exactly one move, made by the autopilot
