"""Tests for the metrics primitives (:mod:`repro.monitor.metrics`)."""

import json
import math

import numpy as np
import pytest

from repro.monitor.metrics import (
    Histogram,
    MetricsRegistry,
    P2Quantile,
    merge_snapshots,
    prometheus_text,
    series_key,
)


# ----------------------------------------------------------------------
class TestP2Quantile:
    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    @pytest.mark.parametrize(
        "sampler",
        [
            lambda rng, n: rng.normal(10.0, 2.0, n),
            lambda rng, n: rng.uniform(-1.0, 1.0, n),
            lambda rng, n: rng.exponential(0.004, n),  # latency-shaped
        ],
    )
    def test_tracks_numpy_percentiles(self, p, sampler):
        """The sketch must land within ~2% of the distribution scale of
        the exact percentile while storing only five markers."""
        rng = np.random.default_rng(42)
        data = sampler(rng, 20_000)
        sketch = P2Quantile(p)
        for x in data:
            sketch.add(x)
        exact = float(np.percentile(data, 100 * p))
        scale = float(np.std(data))
        assert abs(sketch.value() - exact) < 0.05 * scale
        assert len(sketch) == len(data)

    def test_small_sample_is_exact_interpolation(self):
        sketch = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            sketch.add(x)
        assert sketch.value() == pytest.approx(np.percentile([5.0, 1.0, 3.0], 50))

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.9).value())

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestHistogram:
    def test_counts_and_extremes_are_exact(self):
        hist = Histogram()
        rng = np.random.default_rng(0)
        data = rng.normal(0.0, 1.0, 5000)
        for x in data:
            hist.observe(x)
        assert hist.count == 5000
        assert hist.total == pytest.approx(float(data.sum()))
        assert hist.vmin == float(data.min())
        assert hist.vmax == float(data.max())
        assert abs(hist.quantile(0.5) - float(np.percentile(data, 50))) < 0.05

    def test_observe_batch_vectorizes_and_sketches_means(self):
        hist = Histogram()
        batches = [np.full(10, v) for v in (1.0, 2.0, 3.0)]
        for batch in batches:
            hist.observe_batch(batch)
        assert hist.count == 30
        assert hist.total == pytest.approx(60.0)
        assert hist.vmin == 1.0 and hist.vmax == 3.0
        # quantiles are quantiles of per-batch means
        assert 1.0 <= hist.quantile(0.5) <= 3.0
        hist.observe_batch(np.empty(0))  # no-op
        assert hist.count == 30

    def test_summary_round_trips_through_json(self):
        hist = Histogram()
        hist.observe(0.25)
        summary = json.loads(json.dumps(hist.summary()))
        assert summary["count"] == 1
        assert summary["min"] == 0.25 and summary["max"] == 0.25
        assert summary["quantiles"]["0.5"] == 0.25


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_series_identity_and_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("reqs_total", op="estimate")
        b = reg.counter("reqs_total", op="estimate")
        c = reg.counter("reqs_total", op="predict")
        assert a is b and a is not c
        a.inc()
        a.inc(2.0)
        assert reg.counter_value("reqs_total", op="estimate") == 3.0
        assert reg.counter_value("reqs_total", op="rollout") == 0.0

    def test_label_order_does_not_split_series(self):
        assert series_key("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'
        reg = MetricsRegistry()
        assert reg.gauge("g", x="1", y="2") is reg.gauge("g", y="2", x="1")

    def test_snapshot_is_json_safe_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(5)
        reg.gauge("cells").set(17)
        reg.histogram("lat_seconds", endpoint="est").observe(0.002)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"]["c_total"] == 5.0
        assert snap["gauges"]["cells"] == 17.0
        assert snap["histograms"]['lat_seconds{endpoint="est"}']["count"] == 1

    def test_prometheus_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", op="estimate").inc(3)
        reg.gauge("cells").set(4)
        reg.histogram("lat_seconds").observe(0.5)
        text = reg.to_prometheus()
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{op="estimate"} 3' in text
        assert "# TYPE cells gauge" in text
        assert "# TYPE lat_seconds summary" in text
        assert 'lat_seconds{quantile="0.5"} 0.5' in text
        assert "lat_seconds_count 1" in text
        assert "lat_seconds_sum 0.5" in text

    def test_prometheus_renders_merged_snapshots_too(self):
        reg = MetricsRegistry()
        reg.histogram("h", endpoint="e").observe(1.0)
        text = prometheus_text(merge_snapshots([reg.snapshot(), reg.snapshot()]))
        assert 'h_count{endpoint="e"} 2' in text
        assert 'h{quantile="0.5",endpoint="e"} 1' in text


class TestMergeSnapshots:
    def test_counters_and_gauges_sum(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("reqs_total", shard="0").inc(3)
        b.counter("reqs_total", shard="0").inc(4)
        b.counter("other_total").inc()
        a.gauge("cells").set(10)
        b.gauge("cells").set(20)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]['reqs_total{shard="0"}'] == 7.0
        assert merged["counters"]["other_total"] == 1.0
        assert merged["gauges"]["cells"] == 30.0

    def test_histograms_combine_exactly_except_quantiles(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for x in (1.0, 2.0):
            a.histogram("h").observe(x)
        for x in (10.0, 20.0, 30.0):
            b.histogram("h").observe(x)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])["histograms"]["h"]
        assert merged["count"] == 5
        assert merged["sum"] == pytest.approx(63.0)
        assert merged["min"] == 1.0 and merged["max"] == 30.0
        # count-weighted quantile approximation stays inside the hull
        assert 1.0 <= merged["quantiles"]["0.5"] <= 30.0

    def test_empty_and_none_snapshots_are_ignored(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        merged = merge_snapshots([None, {}, reg.snapshot()])
        assert merged["counters"]["c"] == 1.0
        assert merge_snapshots([]) == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_empty_registry_snapshot_contributes_nothing(self):
        # an empty registry (fresh worker, nothing observed) must not
        # perturb the merge — no phantom series, no zeroed histograms
        empty = MetricsRegistry()
        reg = MetricsRegistry()
        reg.histogram("h").observe(3.0)
        merged = merge_snapshots([empty.snapshot(), reg.snapshot()])
        assert set(merged["histograms"]) == {"h"}
        assert merged["histograms"]["h"]["count"] == 1
        assert merged["histograms"]["h"]["min"] == 3.0

    def test_zero_count_histogram_leaves_bounds_and_quantiles_alone(self):
        # a created-but-never-observed histogram has min/max None and
        # all-None quantiles; merging it with a populated series must
        # keep the populated series' values exactly
        a = MetricsRegistry()
        a.histogram("h")  # created, zero observations
        b = MetricsRegistry()
        for x in (2.0, 4.0):
            b.histogram("h").observe(x)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])["histograms"]["h"]
        assert merged["count"] == 2
        assert merged["min"] == 2.0 and merged["max"] == 4.0
        assert merged["quantiles"]["0.5"] == pytest.approx(3.0)

    def test_all_zero_count_series_merge_without_quantiles(self):
        a = MetricsRegistry()
        a.histogram("h")
        b = MetricsRegistry()
        b.histogram("h")
        merged = merge_snapshots([a.snapshot(), b.snapshot()])["histograms"]["h"]
        assert merged["count"] == 0
        assert merged["min"] is None and merged["max"] is None
        assert merged["quantiles"] == {}

    def test_disjoint_label_sets_stay_disjoint(self):
        # shard A and shard B observe different label values — the merge
        # must keep one series per label set, not collapse them
        a = MetricsRegistry()
        a.histogram("latency_seconds", endpoint="estimate").observe(0.001)
        a.counter("requests_total", shard="0").inc(2)
        b = MetricsRegistry()
        b.histogram("latency_seconds", endpoint="predict").observe(0.005)
        b.counter("requests_total", shard="1").inc(3)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert set(merged["histograms"]) == {
            'latency_seconds{endpoint="estimate"}',
            'latency_seconds{endpoint="predict"}',
        }
        assert merged["histograms"]['latency_seconds{endpoint="estimate"}']["count"] == 1
        assert merged["histograms"]['latency_seconds{endpoint="predict"}']["count"] == 1
        assert merged["counters"]['requests_total{shard="0"}'] == 2.0
        assert merged["counters"]['requests_total{shard="1"}'] == 3.0

    def test_merged_snapshot_is_remergeable(self):
        # the perf-lab runner merges a parent snapshot with an already
        # topology-merged one; the output format must round-trip
        a = MetricsRegistry()
        a.histogram("h").observe(1.0)
        b = MetricsRegistry()
        b.histogram("h").observe(3.0)
        once = merge_snapshots([a.snapshot(), b.snapshot()])
        twice = merge_snapshots([once, {}])
        assert twice["histograms"]["h"]["count"] == 2
        assert twice["histograms"]["h"]["sum"] == pytest.approx(4.0)
        assert twice["histograms"]["h"]["min"] == 1.0
