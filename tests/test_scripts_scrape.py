"""Tests for ``scripts/scrape_exposition.py`` (CI scrape helper).

The script was previously exercised only inside CI soak lanes; these
tests pin its two halves — exposition validation and the poll loop —
against an in-process :class:`~repro.monitor.exposition.ExpositionServer`.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.monitor.exposition import ExpositionServer
from repro.monitor.metrics import MetricsRegistry

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "scrape_exposition.py"


@pytest.fixture(scope="module")
def scrape():
    spec = importlib.util.spec_from_file_location("scrape_exposition", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestValidateExposition:
    def test_valid_body_with_required_families(self, scrape):
        body = (
            "# TYPE gateway_requests_total counter\n"
            'gateway_requests_total{endpoint="estimate"} 42\n'
            "cells_gauge 7\n"
        )
        assert scrape.validate_exposition(body, ["gateway_requests_total"]) == []

    def test_histogram_family_matches_by_prefix(self, scrape):
        body = 'trace_stage_seconds_count{stage="kernel"} 3\ntrace_stage_seconds_sum{stage="kernel"} 0.1\n'
        assert scrape.validate_exposition(body, ["trace_stage_seconds"]) == []

    def test_missing_family_reported(self, scrape):
        problems = scrape.validate_exposition("up 1\n", ["gateway_requests_total"])
        assert any("gateway_requests_total" in p for p in problems)

    def test_malformed_line_reported(self, scrape):
        problems = scrape.validate_exposition("this is not a metric\n", [])
        assert any("not a metric sample" in p for p in problems)

    def test_unparseable_value_reported(self, scrape):
        problems = scrape.validate_exposition("requests_total fast\n", [])
        assert any("unparseable value" in p for p in problems)

    def test_comments_and_blanks_ignored(self, scrape):
        assert scrape.validate_exposition("# HELP x\n\n# TYPE x counter\nx 1\n", ["x"]) == []

    def test_registry_output_validates(self, scrape):
        reg = MetricsRegistry()
        reg.counter("requests_total", endpoint="estimate").inc(3)
        reg.histogram("latency_seconds", endpoint="estimate").observe(0.004)
        assert scrape.validate_exposition(reg.to_prometheus(), ["requests_total", "latency_seconds"]) == []


class TestMainPollLoop:
    def test_scrapes_live_server(self, scrape, tmp_path, capsys):
        reg = MetricsRegistry()
        reg.counter("gateway_requests_total", endpoint="estimate").inc(5)
        out = tmp_path / "scrape.txt"
        with ExpositionServer(metrics=reg) as server:
            rc = scrape.main(
                [
                    "--url",
                    server.url,
                    "--require",
                    "gateway_requests_total",
                    "--timeout",
                    "10",
                    "--interval",
                    "0.05",
                    "--out",
                    str(out),
                ]
            )
        assert rc == 0
        assert "scrape ok" in capsys.readouterr().out
        assert "gateway_requests_total" in out.read_text()

    def test_missing_family_times_out(self, scrape, capsys):
        reg = MetricsRegistry()
        reg.counter("something_else").inc()
        with ExpositionServer(metrics=reg) as server:
            rc = scrape.main(
                ["--url", server.url, "--require", "never_emitted", "--timeout", "0.4", "--interval", "0.1"]
            )
        assert rc == 1
        assert "never_emitted" in capsys.readouterr().err

    def test_unreachable_server_times_out(self, scrape, capsys):
        rc = scrape.main(
            ["--url", "http://127.0.0.1:1", "--timeout", "0.3", "--interval", "0.1"]
        )
        assert rc == 1
        assert "unreachable" in capsys.readouterr().err

    def test_unhealthy_server_times_out(self, scrape, capsys):
        reg = MetricsRegistry()
        with ExpositionServer(metrics=reg, health=lambda: {"ok": False, "reason": "draining"}) as server:
            rc = scrape.main(["--url", server.url, "--timeout", "0.4", "--interval", "0.1"])
        assert rc == 1
        # unhealthy -> the server answers 503 and the script keeps polling
        assert "/healthz returned 503" in capsys.readouterr().err

    def test_process_metrics_visible_on_live_endpoint(self, scrape):
        # the satellite requirement: process_* gauges appear on /metrics
        from repro.monitor.resources import install_process_metrics

        reg = MetricsRegistry()
        install_process_metrics(reg)
        with ExpositionServer(metrics=reg) as server:
            rc = scrape.main(
                [
                    "--url",
                    server.url,
                    "--require",
                    "process_resident_bytes",
                    "--require",
                    "process_cpu_seconds_total",
                    "--timeout",
                    "10",
                    "--interval",
                    "0.05",
                ]
            )
        assert rc == 0
