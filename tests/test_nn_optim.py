"""Tests for optimizers, schedulers, and gradient clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.layers import Parameter
from repro.nn.tensor import Tensor


def _quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def _minimize(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        value = _minimize(nn.SGD([p], lr=0.1), p)
        assert abs(value) < 1e-6

    def test_momentum_converges(self):
        p = _quadratic_param()
        value = _minimize(nn.SGD([p], lr=0.05, momentum=0.9), p)
        assert abs(value) < 1e-4

    def test_nesterov_converges(self):
        p = _quadratic_param()
        value = _minimize(nn.SGD([p], lr=0.05, momentum=0.9, nesterov=True), p)
        assert abs(value) < 1e-4

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_nesterov_without_momentum_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([_quadratic_param()], lr=0.1, nesterov=True)

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([_quadratic_param()], lr=0.1, momentum=1.5)

    def test_skips_parameters_without_grad(self):
        p, q = _quadratic_param(), _quadratic_param()
        opt = nn.SGD([p, q], lr=0.1)
        (p * p).sum().backward()
        before = q.data.copy()
        opt.step()
        np.testing.assert_array_equal(q.data, before)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        value = _minimize(nn.Adam([p], lr=0.1), p, steps=500)
        assert abs(value) < 1e-4

    def test_bias_correction_first_step(self):
        # After one step with unit gradient, Adam moves by ~lr regardless of betas.
        p = Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.01)
        opt.zero_grad()
        p.sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.01, abs=1e-6)

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            nn.Adam([_quadratic_param()], lr=0.1, betas=(1.0, 0.999))

    def test_trains_mlp_below_initial_loss(self):
        rng = np.random.default_rng(0)
        model = nn.MLP(2, hidden=(8,), rng=rng, activation=nn.Tanh)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] + 2 * x[:, 1:]) * 0.5
        opt = nn.Adam(model.parameters(), lr=0.01)
        first = None
        for _ in range(150):
            opt.zero_grad()
            loss = nn.mse_loss(model(Tensor(x)), Tensor(y))
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        final = nn.mse_loss(model(Tensor(x)), Tensor(y)).item()
        assert final < first * 0.1


class TestAdamW:
    def test_decoupled_decay_applied(self):
        p = Parameter(np.array([1.0]))
        opt = nn.AdamW([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        # pure decay: 1 - lr*wd = 0.95 (Adam update is ~0 for zero gradient)
        assert p.data[0] == pytest.approx(0.95, abs=1e-6)

    def test_weight_decay_restored_after_step(self):
        p = _quadratic_param()
        opt = nn.AdamW([p], lr=0.1, weight_decay=0.3)
        (p * p).sum().backward()
        opt.step()
        assert opt.weight_decay == 0.3

    def test_converges(self):
        p = _quadratic_param()
        value = _minimize(nn.AdamW([p], lr=0.1, weight_decay=0.01), p, steps=500)
        assert abs(value) < 1e-3


class TestOptimizerValidation:
    def test_empty_parameters_raise(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        with pytest.raises(ValueError):
            nn.Adam([_quadratic_param()], lr=0.0)


class TestSchedulers:
    def test_step_lr(self):
        opt = nn.SGD([_quadratic_param()], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_reaches_eta_min(self):
        opt = nn.SGD([_quadratic_param()], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=10, eta_min=0.01)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.01)

    def test_cosine_monotone_decreasing(self):
        opt = nn.SGD([_quadratic_param()], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=8)
        lrs = []
        for _ in range(8):
            sched.step()
            lrs.append(opt.lr)
        assert all(a > b for a, b in zip(lrs[:-1], lrs[1:]))

    def test_plateau_reduces_after_patience(self):
        opt = nn.SGD([_quadratic_param()], lr=1.0)
        sched = nn.ReduceLROnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)  # best
        for _ in range(3):
            sched.step(1.0)  # no improvement x3 > patience
        assert opt.lr == pytest.approx(0.5)

    def test_plateau_respects_min_lr(self):
        opt = nn.SGD([_quadratic_param()], lr=1e-6)
        sched = nn.ReduceLROnPlateau(opt, factor=0.5, patience=0, min_lr=1e-6)
        sched.step(1.0)
        sched.step(1.0)
        assert opt.lr == pytest.approx(1e-6)

    def test_plateau_improvement_resets_counter(self):
        opt = nn.SGD([_quadratic_param()], lr=1.0)
        sched = nn.ReduceLROnPlateau(opt, factor=0.5, patience=1)
        sched.step(1.0)
        sched.step(1.0)
        sched.step(0.5)  # improvement
        sched.step(0.5)
        assert opt.lr == pytest.approx(1.0)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.01)
        nn.clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, 0.01)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            nn.clip_grad_norm([], max_norm=0.0)
