"""Tests for drive-cycle synthesis and the vehicle-to-current mapping."""

import numpy as np
import pytest

from repro.datasets import (
    DRIVE_CYCLES,
    VehicleModel,
    pattern_current,
    speed_to_cell_current,
    synthesize_speed,
)


class TestSynthesizeSpeed:
    @pytest.mark.parametrize("name", sorted(DRIVE_CYCLES))
    def test_length_and_bounds(self, name):
        spec = DRIVE_CYCLES[name]
        speed = synthesize_speed(spec, 600.0, rng=0)
        assert len(speed) == 600
        assert speed.min() >= 0.0
        assert speed.max() <= spec.max_speed_kmh / 3.6 + 1e-9

    def test_deterministic_per_seed(self):
        spec = DRIVE_CYCLES["udds"]
        a = synthesize_speed(spec, 300.0, rng=5)
        b = synthesize_speed(spec, 300.0, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        spec = DRIVE_CYCLES["udds"]
        a = synthesize_speed(spec, 300.0, rng=1)
        b = synthesize_speed(spec, 300.0, rng=2)
        assert not np.array_equal(a, b)

    def test_urban_cycle_has_stops(self):
        speed = synthesize_speed(DRIVE_CYCLES["udds"], 2000.0, rng=0)
        assert np.mean(speed < 0.1) > 0.05  # noticeable standstill time

    def test_highway_cycle_rarely_stops(self):
        speed = synthesize_speed(DRIVE_CYCLES["hwfet"], 2000.0, rng=0)
        assert np.mean(speed < 0.1) < 0.15

    def test_highway_faster_than_urban(self):
        udds = synthesize_speed(DRIVE_CYCLES["udds"], 3000.0, rng=0)
        hwfet = synthesize_speed(DRIVE_CYCLES["hwfet"], 3000.0, rng=0)
        assert hwfet.mean() > 1.5 * udds.mean()

    def test_custom_dt(self):
        speed = synthesize_speed(DRIVE_CYCLES["la92"], 100.0, rng=0, dt_s=0.5)
        assert len(speed) == 200

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            synthesize_speed(DRIVE_CYCLES["udds"], 0.0, rng=0)


class TestSpeedToCurrent:
    def test_mean_current_matches_target(self):
        speed = synthesize_speed(DRIVE_CYCLES["udds"], 3000.0, rng=0)
        current = speed_to_cell_current(speed, capacity_ah=3.0, target_c_rate=0.5)
        assert current.mean() == pytest.approx(0.5 * 3.0, rel=0.05)

    def test_regen_present_and_limited(self):
        speed = synthesize_speed(DRIVE_CYCLES["la92"], 3000.0, rng=0)
        veh = VehicleModel(max_regen_c=1.0)
        current = speed_to_cell_current(speed, 3.0, 0.5, vehicle=veh)
        assert current.min() < 0.0  # braking charges the cell
        assert current.min() >= -1.0 * 3.0 - 1e-9

    def test_discharge_cap_respected(self):
        speed = synthesize_speed(DRIVE_CYCLES["us06"], 1000.0, rng=0)
        current = speed_to_cell_current(speed, 3.0, 1.2, max_discharge_c=2.0)
        assert current.max() <= 2.0 * 3.0 + 1e-9

    def test_zero_speed_draws_nothing(self):
        current = speed_to_cell_current(np.zeros(100) + 1e-12, 3.0, 0.5)  # almost standstill
        # cannot rescale an all-idle profile: mean power ~ 0
        assert np.all(np.abs(current) < 1e3)

    def test_idle_profile_raises(self):
        with pytest.raises(ValueError, match="net power"):
            speed_to_cell_current(np.zeros(100), 3.0, 0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            speed_to_cell_current(np.ones(10), 0.0, 0.5)


class TestPatternCurrent:
    @pytest.mark.parametrize("name", sorted(DRIVE_CYCLES))
    def test_pattern_scaled_to_target(self, name):
        spec = DRIVE_CYCLES[name]
        current = pattern_current(name, 3.0, 2000.0, rng=0)
        assert current.mean() == pytest.approx(spec.target_c_rate * 3.0, rel=0.05)

    def test_us06_more_aggressive_than_udds(self):
        udds = pattern_current("udds", 3.0, 3000.0, rng=0)
        us06 = pattern_current("us06", 3.0, 3000.0, rng=0)
        assert us06.mean() > 3 * udds.mean()
        assert us06.max() > udds.max()

    def test_unknown_pattern_raises(self):
        with pytest.raises(KeyError, match="udds"):
            pattern_current("nedc", 3.0, 100.0, rng=0)

    def test_case_insensitive(self):
        current = pattern_current("UDDS", 3.0, 300.0, rng=0)
        assert len(current) == 300
