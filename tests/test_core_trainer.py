"""Tests for the split training scheme, including the paper's key
properties: gradient isolation between branches, ground-truth feeding,
and the regularizing effect of the physics loss."""

import numpy as np
import pytest

from repro.core import (
    PhysicsConfig,
    SplitTrainer,
    TrainConfig,
    TwoBranchSoCNet,
    train_two_branch,
)
from repro.datasets import make_estimation_samples, make_prediction_samples

FAST = TrainConfig(epochs_branch1=15, epochs_branch2=15, seed=0)


@pytest.fixture(scope="module")
def sandia_samples(request):
    small_sandia = request.getfixturevalue("small_sandia")
    est = make_estimation_samples(small_sandia.train())
    pred = make_prediction_samples(small_sandia.train(), horizon_s=120.0)
    return est, pred


class TestBranch1Training:
    def test_loss_decreases(self, sandia_samples):
        est, _ = sandia_samples
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        log = SplitTrainer(model, FAST).train_branch1(est)
        losses = log.series("loss")
        assert losses[-1] < losses[0] * 0.7

    def test_beats_constant_predictor(self, sandia_samples):
        est, _ = sandia_samples
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        cfg = TrainConfig(epochs_branch1=50, epochs_branch2=0, seed=0)
        SplitTrainer(model, cfg).train_branch1(est)
        pred = model.estimate_soc(est.features[:, 0], est.features[:, 1], est.features[:, 2])
        mae = np.mean(np.abs(pred - est.soc))
        baseline = np.mean(np.abs(est.soc - est.soc.mean()))
        assert mae < baseline * 0.5

    def test_does_not_touch_branch2(self, sandia_samples):
        est, _ = sandia_samples
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        before = {k: v.copy() for k, v in model.branch2.state_dict().items()}
        SplitTrainer(model, FAST).train_branch1(est)
        after = model.branch2.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestBranch2Training:
    def test_loss_decreases(self, sandia_samples):
        _, pred = sandia_samples
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        log = SplitTrainer(model, FAST).train_branch2(pred)
        losses = log.series("loss")
        assert losses[-1] < losses[0] * 0.7

    def test_split_training_isolates_branch1(self, sandia_samples):
        """The paper's split scheme: training Branch 2 must not update
        Branch 1 (back-propagation is stopped between branches)."""
        _, pred = sandia_samples
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        before = {k: v.copy() for k, v in model.branch1.state_dict().items()}
        SplitTrainer(model, FAST, PhysicsConfig(horizons_s=(120.0,))).train_branch2(pred)
        after = model.branch1.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_physics_loss_logged_when_enabled(self, sandia_samples):
        _, pred = sandia_samples
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        log = SplitTrainer(model, FAST, PhysicsConfig(horizons_s=(120.0,))).train_branch2(pred)
        assert all(row["physics_loss"] > 0 for row in log.rows)

    def test_physics_loss_zero_when_disabled(self, sandia_samples):
        _, pred = sandia_samples
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        log = SplitTrainer(model, FAST, physics=None).train_branch2(pred)
        assert all(row["physics_loss"] == 0.0 for row in log.rows)

    def test_zero_weight_physics_equals_disabled(self, sandia_samples):
        _, pred = sandia_samples
        a = TwoBranchSoCNet(rng=np.random.default_rng(1))
        b = TwoBranchSoCNet(rng=np.random.default_rng(1))
        SplitTrainer(a, FAST, physics=None).train_branch2(pred)
        SplitTrainer(b, FAST, physics=PhysicsConfig(weight=0.0)).train_branch2(pred)
        for (ka, va), (kb, vb) in zip(a.branch2.state_dict().items(), b.branch2.state_dict().items()):
            np.testing.assert_array_equal(va, vb)


class TestTrainTwoBranch:
    def test_returns_trained_model_and_logs(self, sandia_samples):
        est, pred = sandia_samples
        model, logs = train_two_branch(est, pred, train_config=FAST)
        assert model.num_parameters() == 2322
        assert set(logs) == {"branch1", "branch2"}

    def test_deterministic_per_seed(self, sandia_samples):
        est, pred = sandia_samples
        a, _ = train_two_branch(est, pred, train_config=FAST, seed=7)
        b, _ = train_two_branch(est, pred, train_config=FAST, seed=7)
        x = (3.7, 1.0, 25.0, 1.5, 25.0, 120.0)
        np.testing.assert_allclose(a.predict_from_sensors(*x), b.predict_from_sensors(*x))

    def test_seeds_differ(self, sandia_samples):
        est, pred = sandia_samples
        a, _ = train_two_branch(est, pred, train_config=FAST, seed=0)
        b, _ = train_two_branch(est, pred, train_config=FAST, seed=1)
        x = (3.7, 1.0, 25.0, 1.5, 25.0, 120.0)
        assert not np.allclose(a.predict_from_sensors(*x), b.predict_from_sensors(*x))

    def test_max_train_rows_cap(self, sandia_samples):
        est, pred = sandia_samples
        cfg = TrainConfig(epochs_branch1=2, epochs_branch2=2, max_train_rows=16, seed=0)
        model, logs = train_two_branch(est, pred, train_config=cfg)
        assert logs["branch1"].last()["loss"] > 0  # trained on the capped subset


class TestPhysicsRegularization:
    """Integration test of the paper's central claim (Fig. 3): with the
    physics loss, the model generalizes to horizons it never saw in the
    training data."""

    @pytest.fixture(scope="class")
    def trained_pair(self, request):
        small_sandia = request.getfixturevalue("small_sandia")
        est = make_estimation_samples(small_sandia.train())
        pred = make_prediction_samples(small_sandia.train(), horizon_s=120.0)
        cfg = TrainConfig(epochs_branch1=30, epochs_branch2=30, seed=0)
        no_pinn, _ = train_two_branch(est, pred, train_config=cfg)
        pinn, _ = train_two_branch(
            est, pred, train_config=cfg, physics=PhysicsConfig(horizons_s=(120.0, 240.0, 360.0))
        )
        return small_sandia, no_pinn, pinn

    def test_pinn_beats_no_pinn_off_horizon(self, trained_pair):
        small_sandia, no_pinn, pinn = trained_pair
        test = make_prediction_samples(small_sandia.test(), horizon_s=360.0)
        mae_no = np.mean(np.abs(no_pinn.predict_samples(test) - test.soc_target))
        mae_pinn = np.mean(np.abs(pinn.predict_samples(test) - test.soc_target))
        assert mae_pinn < mae_no

    def test_pinn_competitive_on_horizon(self, trained_pair):
        small_sandia, no_pinn, pinn = trained_pair
        test = make_prediction_samples(small_sandia.test(), horizon_s=120.0)
        mae_no = np.mean(np.abs(no_pinn.predict_samples(test) - test.soc_target))
        mae_pinn = np.mean(np.abs(pinn.predict_samples(test) - test.soc_target))
        assert mae_pinn < mae_no * 1.5  # physics must not wreck the native horizon
