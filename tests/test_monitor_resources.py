"""Tests for process resource telemetry (:mod:`repro.monitor.resources`)."""

import os
import time

from repro.monitor.metrics import MetricsRegistry, merge_snapshots
from repro.monitor.resources import ResourceSampler, install_process_metrics, read_process_stats


class TestReadProcessStats:
    def test_self_stats_are_plausible(self):
        stats = read_process_stats()
        # a running CPython interpreter has megabytes resident and has
        # burned at least a few ticks of CPU
        assert stats["rss_bytes"] > 1_000_000
        assert stats["cpu_seconds"] >= 0.0

    def test_explicit_pid_matches_self(self):
        assert read_process_stats(os.getpid())["rss_bytes"] == read_process_stats()["rss_bytes"]

    def test_missing_pid_falls_back_to_rusage(self):
        # no /proc entry -> getrusage fallback (self), still plausible
        stats = read_process_stats(2**22 + 12345)
        assert stats["rss_bytes"] > 1_000_000
        assert stats["cpu_seconds"] >= 0.0

    def test_cpu_seconds_advance_with_work(self):
        before = read_process_stats()["cpu_seconds"]
        deadline = time.monotonic() + 5.0
        while read_process_stats()["cpu_seconds"] <= before:
            sum(i * i for i in range(200_000))
            assert time.monotonic() < deadline, "cpu_seconds never advanced"


class TestResourceSampler:
    def test_sample_records_series(self):
        sampler = ResourceSampler()
        first = sampler.sample()
        second = sampler.sample()
        assert second["t"] >= first["t"]
        assert sampler.series() == [first, second]

    def test_metrics_instruments_update(self):
        reg = MetricsRegistry()
        sampler = ResourceSampler(metrics=reg)
        sampler.sample()
        pid = str(os.getpid())
        assert reg.gauge("process_resident_bytes", pid=pid).value > 1_000_000
        assert reg.counter_value("process_cpu_seconds_total", pid=pid) > 0.0

    def test_cpu_counter_is_monotone(self):
        reg = MetricsRegistry()
        sampler = ResourceSampler(metrics=reg)
        pid = str(os.getpid())
        readings = []
        for _ in range(3):
            sampler.sample()
            readings.append(reg.counter_value("process_cpu_seconds_total", pid=pid))
        assert readings == sorted(readings)

    def test_background_thread_collects(self):
        sampler = ResourceSampler()
        sampler.start(interval_s=0.01)
        try:
            deadline = time.monotonic() + 5.0
            while len(sampler.samples) < 3:
                time.sleep(0.01)
                assert time.monotonic() < deadline, "background sampler produced nothing"
        finally:
            sampler.stop()
        assert sampler._thread is None

    def test_context_manager_stops(self):
        with ResourceSampler() as sampler:
            sampler.start(interval_s=0.01)
        assert sampler._thread is None


class TestInstallProcessMetrics:
    def test_idempotent(self):
        reg = MetricsRegistry()
        assert install_process_metrics(reg) is install_process_metrics(reg)

    def test_snapshot_refreshes_gauges(self):
        reg = MetricsRegistry()
        install_process_metrics(reg)
        pid = str(os.getpid())
        snap = reg.snapshot()
        assert snap["gauges"][f'process_resident_bytes{{pid="{pid}"}}'] > 1_000_000
        assert snap["counters"][f'process_cpu_seconds_total{{pid="{pid}"}}'] >= 0.0

    def test_exposition_carries_process_metrics(self):
        reg = MetricsRegistry()
        install_process_metrics(reg)
        text = reg.to_prometheus()
        assert "process_resident_bytes{pid=" in text
        assert "process_cpu_seconds_total{pid=" in text

    def test_broken_collector_never_breaks_snapshot(self):
        reg = MetricsRegistry()

        def boom():
            raise RuntimeError("sampler died")

        reg.add_collector(boom)
        reg.counter("requests_total").inc()
        assert reg.snapshot()["counters"]["requests_total"] == 1.0

    def test_pid_labels_survive_merge(self):
        # distinct pids must stay distinct series after a topology merge
        reg = MetricsRegistry()
        reg.gauge("process_resident_bytes", pid="100").set(5.0)
        other = MetricsRegistry()
        other.gauge("process_resident_bytes", pid="200").set(7.0)
        merged = merge_snapshots([reg.snapshot(), other.snapshot()])
        assert merged["gauges"]['process_resident_bytes{pid="100"}'] == 5.0
        assert merged["gauges"]['process_resident_bytes{pid="200"}'] == 7.0


class TestServingIntegration:
    def test_engine_with_metrics_exports_process_series(self):
        from repro.core import TwoBranchSoCNet
        from repro.serve import FleetEngine

        import numpy as np

        reg = MetricsRegistry()
        engine = FleetEngine(default_model=TwoBranchSoCNet(rng=np.random.default_rng(0)), metrics=reg)
        engine.register_cell("cell-0")
        engine.estimate(["cell-0"], 3.7, 1.0, 25.0)
        snap = reg.snapshot()
        pid = str(os.getpid())
        assert f'process_resident_bytes{{pid="{pid}"}}' in snap["gauges"]

    def test_process_workers_export_per_worker_series(self):
        from repro.core import TwoBranchSoCNet
        from repro.serve import ShardedFleet, WorkerSpec

        import numpy as np

        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        fleet = ShardedFleet(2, spec=WorkerSpec(url="pipe://", model=model, monitor=True))
        try:
            for k in range(8):
                fleet.register_cell(f"cell-{k}")
            fleet.estimate([f"cell-{k}" for k in range(8)], 3.7, 1.0, 25.0)
            merged = fleet.metrics()
        finally:
            fleet.close()
        pids = {
            key[key.find('pid="') + 5 : key.rfind('"')]
            for key in merged["gauges"]
            if key.startswith("process_resident_bytes{")
        }
        assert len(pids) == 2  # one series per worker child
        assert str(os.getpid()) not in pids
