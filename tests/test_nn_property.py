"""Property-based tests (hypothesis) for the autograd tensor and its
algebraic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro import nn
from repro.nn.tensor import Tensor, unbroadcast

FLOATS = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=64)


def finite_arrays(max_dims=3, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=FLOATS,
    )


@given(finite_arrays())
def test_add_commutative(x):
    a, b = Tensor(x), Tensor(x * 0.5 + 1.0)
    np.testing.assert_allclose((a + b).data, (b + a).data)


@given(finite_arrays())
def test_mul_commutative(x):
    a, b = Tensor(x), Tensor(x * 0.3 - 2.0)
    np.testing.assert_allclose((a * b).data, (b * a).data)


@given(finite_arrays())
def test_double_negation(x):
    t = Tensor(x)
    np.testing.assert_allclose((-(-t)).data, x)


@given(finite_arrays())
def test_sub_self_is_zero(x):
    t = Tensor(x)
    np.testing.assert_allclose((t - t).data, 0.0, atol=1e-12)


@given(finite_arrays())
def test_relu_idempotent(x):
    t = Tensor(x)
    once = t.relu().data
    twice = Tensor(once).relu().data
    np.testing.assert_array_equal(once, twice)


@given(finite_arrays())
def test_relu_nonnegative(x):
    assert np.all(Tensor(x).relu().data >= 0.0)


@given(finite_arrays())
def test_sigmoid_bounded(x):
    out = Tensor(x).sigmoid().data
    assert np.all((out >= 0.0) & (out <= 1.0))


@given(finite_arrays())
def test_tanh_odd_function(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.tanh().data, -((-t).tanh().data), atol=1e-12)


@given(finite_arrays())
def test_abs_triangle_inequality(x):
    a, b = Tensor(x), Tensor(np.roll(x, 1))
    lhs = (a + b).abs().data
    rhs = a.abs().data + b.abs().data
    assert np.all(lhs <= rhs + 1e-9)


@given(finite_arrays())
def test_sum_matches_numpy(x):
    assert Tensor(x).sum().item() == float(np.sum(x)) or np.isclose(Tensor(x).sum().item(), np.sum(x))


@given(finite_arrays())
def test_mean_matches_numpy(x):
    np.testing.assert_allclose(Tensor(x).mean().item(), np.mean(x), rtol=1e-10, atol=1e-10)


@given(finite_arrays(max_dims=2))
def test_reshape_preserves_sum(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.reshape(-1).sum().item(), t.sum().item(), rtol=1e-10)


@given(finite_arrays())
def test_clip_respects_bounds(x):
    out = Tensor(x).clip(-1.0, 1.0).data
    assert np.all((out >= -1.0) & (out <= 1.0))


@given(finite_arrays(max_dims=2), st.integers(min_value=1, max_value=4))
def test_unbroadcast_inverts_broadcast(x, repeat):
    """Broadcasting then unbroadcasting a gradient of ones equals the
    number of broadcast copies, for every shape."""
    expanded = np.broadcast_to(x, (repeat, *x.shape))
    grad = np.ones_like(expanded)
    back = unbroadcast(grad, x.shape)
    np.testing.assert_allclose(back, np.full(x.shape, float(repeat)))


@given(finite_arrays(max_dims=2))
@settings(max_examples=25)
def test_gradient_of_sum_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(x))


@given(finite_arrays(max_dims=2))
@settings(max_examples=25)
def test_gradient_linearity(x):
    """d(a*f)/dx == a * df/dx for scalar a."""
    t1 = Tensor(x, requires_grad=True)
    (t1 * t1).sum().backward()
    g1 = t1.grad.copy()

    t2 = Tensor(x, requires_grad=True)
    (3.0 * (t2 * t2)).sum().backward()
    np.testing.assert_allclose(t2.grad, 3.0 * g1, rtol=1e-10, atol=1e-10)


@given(st.lists(FLOATS, min_size=1, max_size=20))
def test_cat_roundtrip(values):
    x = np.asarray(values)
    half = len(x) // 2
    joined = nn.cat([Tensor(x[:half]), Tensor(x[half:])])
    np.testing.assert_array_equal(joined.data, x)


@given(finite_arrays(max_dims=2))
def test_stack_unstack(x):
    s = nn.stack([Tensor(x), Tensor(x * 2.0)], axis=0)
    np.testing.assert_allclose(s.data[0], x)
    np.testing.assert_allclose(s.data[1], x * 2.0)


@given(finite_arrays(max_dims=2))
def test_where_partitions(x):
    cond = x > 0
    out = nn.where(cond, Tensor(np.ones_like(x)), Tensor(np.zeros_like(x))).data
    np.testing.assert_array_equal(out, cond.astype(float))


@given(finite_arrays(max_dims=2))
def test_maximum_ge_both(x):
    a, b = Tensor(x), Tensor(np.roll(x.ravel(), 1).reshape(x.shape))
    out = nn.maximum(a, b).data
    assert np.all(out >= a.data) and np.all(out >= b.data)
