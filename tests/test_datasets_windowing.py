"""Tests for preprocessing (moving average, scalers) and windowing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    FeatureScaler,
    branch1_scaler,
    branch2_scaler,
    make_estimation_samples,
    make_prediction_samples,
    moving_average,
    smooth_cycle,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        x = np.array([1.0, 5.0, -2.0])
        np.testing.assert_array_equal(moving_average(x, 1), x)

    def test_constant_signal_unchanged(self):
        x = np.full(50, 3.3)
        np.testing.assert_allclose(moving_average(x, 7), 3.3)

    def test_known_values(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        out = moving_average(x, 2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_causal_prefix_handling(self):
        # first outputs average only the available prefix (no zero bias)
        x = np.array([10.0, 10.0, 10.0, 10.0])
        out = moving_average(x, 3)
        np.testing.assert_allclose(out, 10.0)

    def test_reduces_noise_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.0, 1.0, size=10000)
        out = moving_average(x, 100)
        assert np.std(out[200:]) < 0.2

    def test_empty_input(self):
        assert len(moving_average(np.zeros(0), 5)) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            moving_average(np.ones((3, 3)), 2)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=60),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=50)
    def test_output_within_input_range(self, values, window):
        x = np.asarray(values)
        out = moving_average(x, window)
        assert out.min() >= x.min() - 1e-9
        assert out.max() <= x.max() + 1e-9

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=60))
    @settings(max_examples=50)
    def test_full_window_matches_numpy(self, values):
        x = np.asarray(values)
        w = len(x) // 2 + 1
        out = moving_average(x, w)
        expected = np.mean(x[len(x) - w : len(x)])
        assert out[-1] == pytest.approx(expected, abs=1e-9)


class TestSmoothCycle:
    def test_smooths_measured_channels_only(self, small_lg):
        cycle = small_lg[0]
        smoothed = smooth_cycle(cycle, 30.0)
        # measured channels are filtered...
        assert np.std(np.diff(smoothed.data.voltage)) < np.std(np.diff(cycle.data.voltage))
        # ...ground truth is untouched
        np.testing.assert_array_equal(smoothed.data.soc, cycle.data.soc)
        np.testing.assert_array_equal(smoothed.data.voltage_true, cycle.data.voltage_true)

    def test_metadata_preserved_and_tagged(self, small_lg):
        cycle = small_lg[0]
        smoothed = smooth_cycle(cycle, 30.0)
        assert smoothed.name == cycle.name
        assert smoothed.tags["smoothed_s"] == 30.0

    def test_invalid_window(self, small_lg):
        with pytest.raises(ValueError):
            smooth_cycle(small_lg[0], 0.0)


class TestFeatureScaler:
    def test_roundtrip(self):
        scaler = FeatureScaler(offsets=(1.0, -2.0), scales=(2.0, 0.5))
        x = np.array([[3.0, -1.0], [5.0, 0.0]])
        np.testing.assert_allclose(scaler.inverse(scaler.transform(x)), x)

    def test_transform_values(self):
        scaler = FeatureScaler(offsets=(1.0,), scales=(2.0,))
        np.testing.assert_allclose(scaler.transform(np.array([[3.0]])), [[1.0]])

    def test_wrong_width_raises(self):
        scaler = FeatureScaler(offsets=(0.0, 0.0), scales=(1.0, 1.0))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((4, 3)))

    def test_validation(self):
        with pytest.raises(ValueError):
            FeatureScaler(offsets=(0.0,), scales=(0.0,))
        with pytest.raises(ValueError):
            FeatureScaler(offsets=(0.0, 1.0), scales=(1.0,))

    def test_branch_scalers_shape(self):
        assert branch1_scaler().n_features == 3
        assert branch2_scaler().n_features == 4

    def test_branch1_scaler_reasonable_range(self):
        scaler = branch1_scaler()
        # typical operating point maps near the origin
        out = scaler.transform(np.array([[3.7, 1.5, 25.0]]))
        assert np.all(np.abs(out) < 1.5)

    def test_branch2_horizon_scale(self):
        scaler = branch2_scaler(horizon_scale_s=70.0)
        out = scaler.transform(np.array([[0.5, 1.0, 25.0, 70.0]]))
        assert out[0, 3] == pytest.approx(1.0)

    def test_invalid_horizon_scale(self):
        with pytest.raises(ValueError):
            branch2_scaler(horizon_scale_s=0.0)

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=3, max_size=3))
    @settings(max_examples=50)
    def test_roundtrip_property(self, row):
        scaler = branch1_scaler()
        x = np.asarray([row])
        np.testing.assert_allclose(scaler.inverse(scaler.transform(x)), x, atol=1e-9)


class TestEstimationSamples:
    def test_shapes(self, small_sandia):
        samples = make_estimation_samples(small_sandia.train())
        assert samples.features.shape == (len(samples), 3)
        assert len(samples.soc) == len(samples)

    def test_stride_thins(self, small_sandia):
        dense = make_estimation_samples(small_sandia.train(), stride=1)
        thin = make_estimation_samples(small_sandia.train(), stride=4)
        assert len(thin) <= len(dense) // 4 + len(small_sandia.train())

    def test_labels_in_unit_interval(self, small_sandia):
        samples = make_estimation_samples(small_sandia)
        assert np.all((samples.soc >= 0.0) & (samples.soc <= 1.0))

    def test_features_are_measured_channels(self, small_sandia):
        cycle = small_sandia[0]
        samples = make_estimation_samples([cycle])
        np.testing.assert_array_equal(samples.features[:, 0], cycle.data.voltage)
        np.testing.assert_array_equal(samples.features[:, 1], cycle.data.current)

    def test_invalid_stride(self, small_sandia):
        with pytest.raises(ValueError):
            make_estimation_samples(small_sandia, stride=0)

    def test_shape_validation(self):
        from repro.datasets import EstimationSamples

        with pytest.raises(ValueError):
            EstimationSamples(features=np.zeros((5, 2)), soc=np.zeros(5))
        with pytest.raises(ValueError):
            EstimationSamples(features=np.zeros((5, 3)), soc=np.zeros(4))


class TestPredictionSamples:
    def test_shapes_and_featurestack(self, small_sandia):
        samples = make_prediction_samples(small_sandia.train(), horizon_s=120.0)
        assert samples.branch2_features().shape == (len(samples), 4)
        assert samples.branch1_features().shape == (len(samples), 3)

    def test_horizon_stored(self, small_sandia):
        samples = make_prediction_samples(small_sandia.train(), horizon_s=240.0)
        np.testing.assert_allclose(samples.horizon_s, 240.0)

    def test_single_step_target_matches_next_sample(self, small_sandia):
        cycle = small_sandia[0]
        samples = make_prediction_samples([cycle], horizon_s=120.0)
        np.testing.assert_allclose(samples.soc_t, cycle.data.soc[:-1])
        np.testing.assert_allclose(samples.soc_target, cycle.data.soc[1:])

    def test_window_average_correct(self, small_sandia):
        cycle = small_sandia[0]
        samples = make_prediction_samples([cycle], horizon_s=360.0)  # 3 steps
        k = 5
        np.testing.assert_allclose(samples.i_avg[k], cycle.data.current[k + 1 : k + 4].mean())
        np.testing.assert_allclose(samples.temp_avg[k], cycle.data.temp_c[k + 1 : k + 4].mean())

    def test_longer_horizon_fewer_samples(self, small_sandia):
        short = make_prediction_samples(small_sandia.train(), horizon_s=120.0)
        long = make_prediction_samples(small_sandia.train(), horizon_s=360.0)
        assert len(long) < len(short)

    def test_stride(self, small_sandia):
        dense = make_prediction_samples(small_sandia.train(), horizon_s=120.0, stride=1)
        thin = make_prediction_samples(small_sandia.train(), horizon_s=120.0, stride=3)
        assert len(thin) == int(np.ceil(len(dense) / 3))

    def test_horizon_below_sampling_raises(self, small_sandia):
        with pytest.raises(ValueError, match="sampling period"):
            make_prediction_samples(small_sandia.train(), horizon_s=10.0)

    def test_capacity_column(self, small_sandia):
        samples = make_prediction_samples(small_sandia.train(), horizon_s=120.0)
        np.testing.assert_allclose(samples.capacity_ah, 3.0)

    def test_subsample(self, small_sandia):
        samples = make_prediction_samples(small_sandia.train(), horizon_s=120.0)
        sub = samples.subsample(5, np.random.default_rng(0))
        assert len(sub) == 5

    def test_subsample_noop_when_small(self, small_sandia):
        samples = make_prediction_samples(small_sandia.train(), horizon_s=120.0)
        assert samples.subsample(10**9, np.random.default_rng(0)) is samples

    def test_concatenate_empty_raises(self):
        from repro.datasets import PredictionSamples

        with pytest.raises(ValueError):
            PredictionSamples.concatenate([])

    def test_coulomb_consistency_of_targets(self, small_sandia):
        """On (noise-free) constant-current segments the windowed target
        must be close to Coulomb counting from soc_t with i_avg."""
        from repro.battery import coulomb

        cycle = small_sandia[0]
        samples = make_prediction_samples([cycle], horizon_s=120.0)
        predicted = coulomb.predict_soc(
            samples.soc_t, samples.i_avg, samples.horizon_s, cycle.capacity_ah
        )
        # sensor noise on current and clipping at soc bounds leave small gaps
        err = np.abs(np.asarray(predicted) - samples.soc_target)
        assert np.median(err) < 0.01
