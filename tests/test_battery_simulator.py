"""Tests for the cell simulator, protocols, and their invariants."""

import numpy as np
import pytest

from repro.battery import (
    CellSimulator,
    CycleSpec,
    SensorNoise,
    coulomb,
    get_cell_spec,
    run_cc_cycle,
    run_full_discharge,
)


def _sim(name="sandia-nmc", noise=None, seed=0):
    return CellSimulator(get_cell_spec(name), noise=noise, rng=seed)


class TestSimulatorBasics:
    def test_reset(self):
        sim = _sim()
        sim.reset(soc=0.42, temp_c=10.0)
        assert sim.soc == 0.42
        assert sim.temp_c == 10.0

    def test_result_arrays_aligned(self):
        sim = _sim()
        sim.reset(0.8, 25.0)
        res = sim.run_profile(np.ones(100), 1.0, 25.0)
        assert len(res.time_s) == len(res.voltage) == len(res.current) == len(res.soc)
        assert len(res.temp_c) == len(res.voltage_true) == len(res)

    def test_record_every_decimates(self):
        sim = _sim()
        sim.reset(0.8, 25.0)
        res = sim.run_profile(np.ones(100), 1.0, 25.0, record_every=10)
        assert len(res) == 10
        np.testing.assert_allclose(np.diff(res.time_s), 10.0)

    def test_discharge_soc_monotone(self):
        sim = _sim(noise=SensorNoise.none())
        sim.reset(0.9, 25.0)
        res = sim.run_profile(np.full(600, 3.0), 1.0, 25.0)
        assert np.all(np.diff(res.soc) <= 0)

    def test_ground_truth_soc_matches_coulomb_integration(self):
        # At reference temperature the simulator's SoC must equal exact
        # Coulomb counting on the applied current (charge conservation).
        sim = _sim(noise=SensorNoise.none())
        sim.reset(0.9, 25.0)
        rng = np.random.default_rng(0)
        profile = rng.uniform(-1.0, 2.0, size=500)
        res = sim.run_profile(profile, 1.0, 25.0, stop_at_cutoff=False)
        expected = coulomb.soc_trajectory(0.9, profile, 1.0, sim.spec.capacity_ah)
        np.testing.assert_allclose(res.soc, expected, atol=1e-12)

    def test_noise_free_channels_match_truth(self):
        sim = _sim(noise=SensorNoise.none())
        sim.reset(0.8, 25.0)
        res = sim.run_profile(np.ones(50), 1.0, 25.0)
        np.testing.assert_array_equal(res.voltage, res.voltage_true)
        np.testing.assert_array_equal(res.current, res.current_true)
        np.testing.assert_array_equal(res.temp_c, res.temp_true)

    def test_noise_statistics(self):
        noise = SensorNoise(sigma_v=0.01, sigma_i=0.05, sigma_t=0.3)
        sim = _sim(noise=noise, seed=1)
        sim.reset(0.8, 25.0)
        res = sim.run_profile(np.ones(5000), 1.0, 25.0, stop_at_cutoff=False)
        assert np.std(res.voltage - res.voltage_true) == pytest.approx(0.01, rel=0.1)
        assert np.std(res.current - res.current_true) == pytest.approx(0.05, rel=0.1)
        assert np.std(res.temp_c - res.temp_true) == pytest.approx(0.3, rel=0.1)

    def test_noise_deterministic_per_seed(self):
        a = _sim(seed=7)
        b = _sim(seed=7)
        a.reset(0.8, 25.0)
        b.reset(0.8, 25.0)
        ra = a.run_profile(np.ones(50), 1.0, 25.0)
        rb = b.run_profile(np.ones(50), 1.0, 25.0)
        np.testing.assert_array_equal(ra.voltage, rb.voltage)

    def test_cutoff_stops_run(self):
        sim = _sim(noise=SensorNoise.none())
        sim.reset(0.05, 25.0)
        res = sim.run_profile(np.full(36000, 6.0), 1.0, 25.0)
        assert res.stopped_early
        assert len(res) < 36000

    def test_stop_at_cutoff_disabled(self):
        sim = _sim(noise=SensorNoise.none())
        sim.reset(0.05, 25.0)
        res = sim.run_profile(np.full(2000, 6.0), 1.0, 25.0, stop_at_cutoff=False)
        assert not res.stopped_early
        assert len(res) == 2000

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            _sim().run_profile(np.ones(5), 0.0, 25.0)

    def test_invalid_record_every(self):
        with pytest.raises(ValueError):
            _sim().run_profile(np.ones(5), 1.0, 25.0, record_every=0)

    def test_self_heating_visible_in_temperature(self):
        sim = _sim(noise=SensorNoise.none())
        sim.reset(0.95, 25.0)
        res = sim.run_profile(np.full(1200, 9.0), 1.0, 25.0, stop_at_cutoff=False)
        assert res.temp_true[-1] > 26.0

    def test_cold_run_has_lower_voltage(self):
        cold, warm = _sim(noise=SensorNoise.none()), _sim(noise=SensorNoise.none())
        cold.reset(0.8, 0.0)
        warm.reset(0.8, 25.0)
        rc = cold.run_profile(np.full(60, 3.0), 1.0, 0.0)
        rw = warm.run_profile(np.full(60, 3.0), 1.0, 25.0)
        assert rc.voltage_true[-1] < rw.voltage_true[-1]


class TestSimulationResult:
    def test_duration(self):
        sim = _sim()
        sim.reset(0.8, 25.0)
        res = sim.run_profile(np.ones(100), 2.0, 25.0)
        assert res.duration_s() == pytest.approx(2.0 * 99)

    def test_concat_time_monotonic(self):
        sim = _sim(noise=SensorNoise.none())
        sim.reset(0.8, 25.0)
        a = sim.run_profile(np.ones(50), 1.0, 25.0)
        b = sim.run_profile(np.zeros(50), 1.0, 25.0)
        joined = a.concat(b)
        assert len(joined) == 100
        assert np.all(np.diff(joined.time_s) > 0)

    def test_concat_empty_left(self):
        sim = _sim()
        sim.reset(0.8, 25.0)
        empty = sim.run_profile(np.ones(0), 1.0, 25.0)
        full = sim.run_profile(np.ones(10), 1.0, 25.0)
        assert len(empty.concat(full)) == 10

    def test_empty_run(self):
        sim = _sim()
        res = sim.run_profile(np.ones(0), 1.0, 25.0)
        assert len(res) == 0
        assert res.duration_s() == 0.0


class TestProtocols:
    def test_cycle_spec_validation(self):
        with pytest.raises(ValueError):
            CycleSpec(charge_c_rate=-0.5)
        with pytest.raises(ValueError):
            CycleSpec(dt_s=0.0)

    def test_cc_cycle_covers_charge_and_discharge(self):
        sim = _sim(noise=SensorNoise.none())
        sim.reset(0.1, 25.0)
        res = run_cc_cycle(sim, CycleSpec(record_every=60))
        assert res.soc.max() > 0.9
        assert res.soc.min() < 0.15
        assert res.current_true.min() < 0  # charging happened
        assert res.current_true.max() > 0  # discharging happened

    def test_discharge_rate_limit_enforced(self):
        sim = _sim()
        sim.reset(0.9, 25.0)
        with pytest.raises(ValueError, match="exceeds"):
            run_cc_cycle(sim, CycleSpec(discharge_c_rate=50.0))

    def test_higher_rate_discharges_faster(self):
        durations = []
        for rate in (1.0, 3.0):
            sim = _sim(noise=SensorNoise.none())
            sim.reset(0.95, 25.0)
            res = run_full_discharge(sim, rate, 25.0, record_every=10)
            durations.append(res.duration_s())
        assert durations[1] < durations[0] / 2

    def test_full_discharge_ends_near_cutoff(self):
        sim = _sim(noise=SensorNoise.none())
        sim.reset(0.95, 25.0)
        res = run_full_discharge(sim, 1.0, 25.0)
        v_min = sim.spec.chemistry.v_min
        assert res.voltage_true[-1] <= v_min + 0.05
