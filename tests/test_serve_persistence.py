"""Tests for durable serving state (:mod:`repro.serve.persistence`)."""

import json

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.serve import FleetEngine, ShardedFleet, StateJournal, generate_fleet


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        10, seed=3, ambient_temps_c=(10.0, 25.0), c_rates=(1.0,), max_time_s=1800.0
    )


class Crash(RuntimeError):
    """Injected mid-rollout failure."""


# ----------------------------------------------------------------------
class TestStateJournal:
    def test_roundtrip_across_reopen(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        with StateJournal(path) as journal:
            engine = FleetEngine(default_model=model, journal=journal)
            engine.register_cell("a", chemistry="nmc")
            engine.register_cell("b")
            engine.estimate(["a", "b"], [3.7, 3.8], 1.0, 25.0, now_s=42.0)
        snap = StateJournal(path).snapshot()
        assert set(snap.cells) == {"a", "b"}
        assert snap.cells["a"].chemistry == "nmc"
        assert snap.cells["a"].n_requests == 1
        assert snap.cells["a"].last_seen_s == 42.0
        assert snap.cells["a"].soc is not None

    def test_restore_rebuilds_engine_state(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        engine = FleetEngine(default_model=model, journal=journal)
        engine.register_cell("a")
        engine.estimate(["a"], 3.7, 1.0, 25.0)
        want = engine.cell("a").soc
        journal.close()
        restored = FleetEngine.restore(StateJournal(path), default_model=model)
        assert len(restored) == 1
        assert restored.cell("a").soc == want  # exact: JSON floats round-trip
        assert restored.cell("a").n_requests == 1

    def test_drop_cell_survives_replay(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        engine = FleetEngine(default_model=model, journal=journal)
        engine.register_cell("a")
        engine.register_cell("b")
        engine.deregister_cell("a")
        journal.close()
        snap = StateJournal(path).snapshot()
        assert set(snap.cells) == {"b"}

    def test_torn_final_line_tolerated(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        engine = FleetEngine(default_model=model, journal=journal)
        engine.register_cell("a")
        engine.register_cell("b")
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "cell", "id": "c", "chem"')  # crash mid-write
        snap = StateJournal(path).snapshot()
        assert set(snap.cells) == {"a", "b"}

    def test_torn_tail_truncated_before_new_appends(self, model, tmp_path):
        """Reopening a torn journal must drop the fragment, not glue new
        records onto it (which would silently lose them on the next
        replay — or corrupt the whole file)."""
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        engine = FleetEngine(default_model=model, journal=journal)
        engine.register_cell("a")
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "cell", "id": "b", "chem"')  # crash mid-write
        reopened = StateJournal(path)
        restored = FleetEngine.restore(reopened, default_model=model)
        restored.register_cell("c")
        restored.register_cell("d")
        reopened.close()
        snap = StateJournal(path).snapshot()  # replays clean every time
        assert set(snap.cells) == {"a", "c", "d"}

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "fleet.journal"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"op": "cell", "id": "a", "chem": None, "key": "__default__",
                                 "soc": 0.5, "seen": None, "n": 1}) + "\n")
        with pytest.raises(ValueError, match="corrupt journal"):
            StateJournal(path)

    def test_unknown_op_raises(self, tmp_path):
        path = tmp_path / "fleet.journal"
        path.write_text(json.dumps({"op": "???"}) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="unknown op"):
            StateJournal(path)

    def test_compaction_shrinks_and_preserves_state(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        engine = FleetEngine(default_model=model, journal=journal)
        engine.register_cell("a")
        for _ in range(200):  # 200 appended cell records for one live cell
            engine.estimate(["a"], 3.7, 1.0, 25.0)
        want = engine.cell("a").soc
        before = journal.size_bytes()
        journal.compact()
        after = journal.size_bytes()
        assert after < before / 10
        journal.close()
        snap = StateJournal(path).snapshot()
        assert snap.cells["a"].soc == want
        assert snap.cells["a"].n_requests == 200

    def test_auto_compaction_bounds_file_size(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path, compact_every=50)
        engine = FleetEngine(default_model=model, journal=journal)
        engine.register_cell("a")
        for _ in range(500):
            engine.estimate(["a"], 3.7, 1.0, 25.0)
        # one live cell: the file can never grow past ~compact_every records
        assert journal.size_bytes() < 50 * 120
        assert len(journal) == 1
        journal.close()

    def test_batched_appends_write_once_per_batch(self, model, tmp_path, monkeypatch):
        """A fleet estimate journals every cell in one write syscall."""
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        engine = FleetEngine(default_model=model, journal=journal)
        ids = [f"c{k}" for k in range(16)]
        for cid in ids:
            engine.register_cell(cid)
        writes = []
        original = journal._fh.write
        monkeypatch.setattr(journal._fh, "write", lambda s: writes.append(s) or original(s))
        engine.estimate(ids, 3.7, 1.0, 25.0)
        assert len(writes) == 1  # one write for all 16 cell records
        journal.close()
        snap = StateJournal(path).snapshot()
        assert all(snap.cells[cid].n_requests == 1 for cid in ids)

    def test_append_cells_matches_per_cell_appends(self, model, tmp_path):
        a = StateJournal(tmp_path / "a.journal")
        b = StateJournal(tmp_path / "b.journal")
        engine = FleetEngine(default_model=model)
        states = [engine.register_cell(f"c{k}", chemistry="nmc") for k in range(5)]
        for state in states:
            a.append_cell(state)
        b.append_cells(states)
        a.close()
        b.close()
        assert (tmp_path / "a.journal").read_bytes() == (tmp_path / "b.journal").read_bytes()

    def test_fsync_flag_syncs_each_flush(self, model, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr("repro.serve.persistence.os.fsync", lambda fd: synced.append(fd))
        journal = StateJournal(tmp_path / "fleet.journal", fsync=True)
        engine = FleetEngine(default_model=model, journal=journal)
        ids = [f"c{k}" for k in range(8)]
        for cid in ids:
            engine.register_cell(cid)
        before = len(synced)
        assert before == len(ids) + 1  # one per registration + header
        engine.estimate(ids, 3.7, 1.0, 25.0)
        assert len(synced) == before + 1  # the whole batch: one sync
        journal.close()
        # default stays unsynced
        quiet = StateJournal(tmp_path / "other.journal")
        quiet.append_cell(engine.cell("c0"))
        quiet.close()
        assert len(synced) == before + 1

    def test_rejects_bad_config(self, tmp_path):
        with pytest.raises(ValueError):
            StateJournal(tmp_path / "j", compact_every=-1)
        with pytest.raises(ValueError):
            StateJournal(tmp_path / "j", max_segment_bytes=-1)


# ----------------------------------------------------------------------
class TestSegmentRotation:
    """Size-based rotation: sealed numbered segments, in-order replay,
    compaction collapsing them — the >1M-cell fleet prerequisite."""

    def test_appends_roll_into_numbered_segments(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path, max_segment_bytes=512, compact_every=0)
        engine = FleetEngine(default_model=model, journal=journal)
        for k in range(40):
            engine.register_cell(f"c{k:03d}")
        names = [segment.name for segment in journal.segments()]
        assert len(names) >= 3
        assert names[0] == "fleet.journal.00001.jsonl"
        assert names == sorted(names)
        # the active file stays bounded; total size covers all segments
        journal._fh.flush()
        assert path.stat().st_size <= 512 + 200
        assert journal.size_bytes() > path.stat().st_size
        journal.close()

    def test_restore_replays_segments_in_order(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        with StateJournal(path, max_segment_bytes=400, compact_every=0) as journal:
            engine = FleetEngine(default_model=model, journal=journal)
            ids = [f"c{k:03d}" for k in range(30)]
            for cid in ids:
                engine.register_cell(cid)
            # several passes: each cell's latest record lives in a later
            # segment than its first, so ordering mistakes would surface
            for _ in range(3):
                engine.estimate(ids, 3.7, 1.0, 25.0)
            want = {cid: engine.cell(cid).soc for cid in ids}
            n_requests = {cid: engine.cell(cid).n_requests for cid in ids}
        reopened = StateJournal(path, max_segment_bytes=400)
        snap = reopened.snapshot()
        assert {cid: snap.cells[cid].soc for cid in ids} == want
        assert {cid: snap.cells[cid].n_requests for cid in ids} == n_requests
        restored = FleetEngine.restore(reopened, default_model=model)
        assert {s.cell_id: s.soc for s in restored.cells()} == want
        reopened.close()

    def test_drop_in_a_later_segment_wins(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        with StateJournal(path, max_segment_bytes=300, compact_every=0) as journal:
            engine = FleetEngine(default_model=model, journal=journal)
            for k in range(20):
                engine.register_cell(f"c{k:03d}")
            engine.deregister_cell("c000")
        snap = StateJournal(path, max_segment_bytes=300).snapshot()
        assert "c000" not in snap.cells
        assert len(snap.cells) == 19

    def test_compaction_collapses_sealed_segments(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path, max_segment_bytes=400, compact_every=0)
        engine = FleetEngine(default_model=model, journal=journal)
        ids = [f"c{k:03d}" for k in range(25)]
        for cid in ids:
            engine.register_cell(cid)
        for _ in range(4):
            engine.estimate(ids, 3.7, 1.0, 25.0)
        assert journal.segments()
        before = journal.size_bytes()
        journal.compact()
        assert journal.segments() == []
        assert journal.size_bytes() < before
        journal.close()
        snap = StateJournal(path).snapshot()
        assert len(snap.cells) == 25
        assert all(snap.cells[cid].n_requests == 4 for cid in ids)

    def test_stale_segments_after_compaction_are_harmless(self, model, tmp_path):
        """A crash between the compaction's replace and its segment
        unlink leaves old segments behind; the compact marker makes the
        replay discard them."""
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path, max_segment_bytes=300, compact_every=0)
        engine = FleetEngine(default_model=model, journal=journal)
        for k in range(20):
            engine.register_cell(f"c{k:03d}")
        engine.deregister_cell("c001")
        stale = journal.segments()[0].read_bytes()  # holds c001's registration
        journal.compact()
        journal.close()
        # resurrect a pre-compaction segment, as a crash mid-compact would
        (tmp_path / "fleet.journal.00001.jsonl").write_bytes(stale)
        snap = StateJournal(path).snapshot()
        assert "c001" not in snap.cells
        assert len(snap.cells) == 19

    def test_rollout_windows_survive_rotation(self, model, fleet, tmp_path):
        path = tmp_path / "fleet.journal"
        with StateJournal(path, max_segment_bytes=1024, compact_every=0) as journal:
            engine = FleetEngine(default_model=model, journal=journal)
            want = engine.rollout_fleet(fleet.assignments(), step_s=300.0)
        reopened = StateJournal(path, max_segment_bytes=1024)
        assert reopened.segments()  # the rollout really rotated
        snap = reopened.snapshot()
        assert snap.step_s == 300.0
        for cell_id, _ in fleet.assignments():
            trajectory = want[cell_id].soc_pred
            journaled = snap.windows[cell_id]
            assert journaled[len(journaled) - 1] == trajectory[len(journaled) - 1]
        reopened.close()

    def test_torn_tail_only_tolerated_on_the_active_file(self, model, tmp_path):
        path = tmp_path / "fleet.journal"
        with StateJournal(path, max_segment_bytes=300, compact_every=0) as journal:
            engine = FleetEngine(default_model=model, journal=journal)
            for k in range(20):
                engine.register_cell(f"c{k:03d}")
        # torn tail on the active file: tolerated
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "cell", "id": "torn"')
        assert len(StateJournal(path).snapshot().cells) == 20
        # the same tear inside a sealed segment: corruption
        segment = StateJournal(path).segments()[0]
        with open(segment, "a", encoding="utf-8") as fh:
            fh.write('{"op": "cell", "id": "torn"')
        with pytest.raises(ValueError, match="corrupt journal"):
            StateJournal(path)


# ----------------------------------------------------------------------
class TestCrashRestore:
    """The acceptance property: kill an engine mid-rollout, restore from
    the journal, and the resumed trajectory equals an uninterrupted run."""

    def test_single_engine_resume_is_exact(self, model, fleet, tmp_path):
        reference = FleetEngine(default_model=model).rollout_fleet(
            fleet.assignments(), step_s=120.0
        )
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        engine = FleetEngine(default_model=model, journal=journal)

        def bomb(window):
            if window >= 4:
                raise Crash

        with pytest.raises(Crash):
            engine.rollout_fleet(fleet.assignments(), step_s=120.0, step_hook=bomb)
        journal.close()

        # "new process": reopen the journal, restore, resume
        reopened = StateJournal(path)
        restored = FleetEngine.restore(reopened, default_model=model)
        resumed = restored.resume_rollout_fleet(fleet.assignments(), step_s=120.0)
        assert set(resumed) == set(reference)
        for cid, _ in fleet.assignments():
            np.testing.assert_array_equal(resumed[cid].soc_pred, reference[cid].soc_pred)
            np.testing.assert_array_equal(resumed[cid].time_s, reference[cid].time_s)
            assert restored.cell(cid).soc == float(reference[cid].soc_pred[-1])
        reopened.close()

    def test_resume_skips_journaled_windows(self, model, fleet, tmp_path):
        """Resume replays the journaled prefix instead of recomputing it:
        windows before the crash point trigger no model forwards."""
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        engine = FleetEngine(default_model=model, journal=journal)

        def bomb(window):
            if window >= 4:
                raise Crash

        with pytest.raises(Crash):
            engine.rollout_fleet(fleet.assignments(), step_s=120.0, step_hook=bomb)
        journal.close()

        reopened = StateJournal(path)
        # the Tensor path, so the spy below sees every model forward
        # (the default compiled-kernel path never calls the model)
        restored = FleetEngine.restore(reopened, default_model=model, use_kernel=False)
        windows_run = []
        calls = {"n": 0}
        original = model.predict_soc

        def counting_predict(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        model.predict_soc = counting_predict
        try:
            restored.resume_rollout_fleet(
                fleet.assignments(), step_s=120.0, step_hook=windows_run.append
            )
        finally:
            model.predict_soc = original
        max_windows = max(windows_run)
        # forwards happen only for the windows past the crash point
        assert calls["n"] == max_windows - 4
        reopened.close()

    def test_sharded_resume_same_topology_is_exact(self, model, fleet, tmp_path):
        reference = ShardedFleet(4, default_model=model).rollout_fleet(
            fleet.assignments(), step_s=120.0
        )
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        sharded = ShardedFleet(4, default_model=model, journal=journal)
        calls = {"n": 0}

        def bomb(window):
            calls["n"] += 1
            if calls["n"] >= 5:  # partway through some shard's fan-out
                raise Crash

        with pytest.raises(Crash):
            sharded.rollout_fleet(fleet.assignments(), step_s=120.0, step_hook=bomb)
        journal.close()

        reopened = StateJournal(path)
        restored = ShardedFleet.restore(reopened, n_shards=4, default_model=model)
        resumed = restored.resume_rollout_fleet(fleet.assignments(), step_s=120.0)
        for cid, _ in fleet.assignments():
            np.testing.assert_array_equal(resumed[cid].soc_pred, reference[cid].soc_pred)
        reopened.close()

    def test_sharded_restore_at_different_shard_count(self, model, fleet, tmp_path):
        """Restoring at another shard count re-places cells by hash and
        still matches to the fleet's 1e-9 equivalence budget."""
        reference = FleetEngine(default_model=model).rollout_fleet(
            fleet.assignments(), step_s=120.0
        )
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        sharded = ShardedFleet(2, default_model=model, journal=journal)
        calls = {"n": 0}

        def bomb(window):
            calls["n"] += 1
            if calls["n"] >= 5:
                raise Crash

        with pytest.raises(Crash):
            sharded.rollout_fleet(fleet.assignments(), step_s=120.0, step_hook=bomb)
        journal.close()

        reopened = StateJournal(path)
        restored = ShardedFleet.restore(reopened, n_shards=5, default_model=model)
        resumed = restored.resume_rollout_fleet(fleet.assignments(), step_s=120.0)
        for cid, _ in fleet.assignments():
            np.testing.assert_allclose(
                resumed[cid].soc_pred, reference[cid].soc_pred, atol=1e-9, rtol=0
            )
        reopened.close()

    def test_resume_rejects_mismatched_step(self, model, fleet, tmp_path):
        path = tmp_path / "fleet.journal"
        journal = StateJournal(path)
        engine = FleetEngine(default_model=model, journal=journal)
        engine.rollout_fleet(fleet.assignments()[:2], step_s=120.0)
        with pytest.raises(ValueError, match="cannot resume"):
            engine.resume_rollout_fleet(fleet.assignments()[:2], step_s=60.0)
        journal.close()

    def test_resume_requires_journal(self, model, fleet):
        engine = FleetEngine(default_model=model)
        with pytest.raises(ValueError, match="journal"):
            engine.resume_rollout_fleet(fleet.assignments()[:1], step_s=120.0)
        sharded = ShardedFleet(2, default_model=model)
        with pytest.raises(ValueError, match="journal"):
            sharded.resume_rollout_fleet(fleet.assignments()[:1], step_s=120.0)
