"""End-to-end request tracing through the serving path.

The PR's acceptance scenario: one traced request through a real
2-process sharded fleet must yield a *single connected* span tree —
gateway root, batcher queue/serve, shard fan-out, wire hop, worker
stages, engine, kernel — whose stage durations nest within the root,
while a concurrent HTTP GET of ``/metrics`` returns parseable
Prometheus text containing the per-stage histograms.  Also covers the
CLI surface (``serve-sim --trace-json``, ``monitor serve``).
"""

import asyncio
import json
import urllib.request

import numpy as np
import pytest

from repro import cli
from repro.core import TwoBranchSoCNet
from repro.monitor import ExpositionServer, MetricsRegistry, SpanTracer
from repro.serve import FleetEngine, ShardedFleet, SocGateway, WorkerSpec


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


def _span_names(node, acc=None):
    acc = [] if acc is None else acc
    acc.append(node["name"])
    for child in node["children"]:
        _span_names(child, acc)
    return acc


def _assert_children_nest(node):
    for child in node["children"]:
        assert node["start_s"] <= child["start_s"] + 1e-6, (node["name"], child["name"])
        assert child["end_s"] <= node["end_s"] + 1e-6, (node["name"], child["name"])
        _assert_children_nest(child)


# ----------------------------------------------------------------------
class TestTracedShardedServing:
    def test_connected_tree_through_two_process_fleet_with_live_scrape(self, model):
        metrics = MetricsRegistry()
        tracer = SpanTracer(sample_rate=1.0, metrics=metrics, service="gateway")
        engine = ShardedFleet(
            2, spec=WorkerSpec(url="pipe://", model=model, name="shard{shard}", trace=True)
        )
        try:
            for k in range(8):
                engine.register_cell(f"c{k}")

            async def drive():
                async with SocGateway(engine, max_batch=8, tracer=tracer) as gateway:
                    with ExpositionServer(metrics=metrics, tracer=tracer) as server:
                        completions = await asyncio.gather(
                            *(gateway.estimate(f"c{k}", 3.7, 1.0, 25.0) for k in range(8))
                        )
                        # scrape WHILE the gateway is still serving
                        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as resp:
                            scraped = resp.read().decode("utf-8")
                    return completions, scraped

            completions, scraped = asyncio.run(drive())
        finally:
            engine.close()
        assert all(c.ok for c in completions)

        counts = tracer.counts()
        assert counts["committed"] == 8
        assert counts["live"] == 0 and counts["spans_dropped"] == 0
        trees = tracer.trace_trees()
        assert len(trees) == 8
        for tree in trees:
            assert tree["orphans"] == [], "every span must attach to the tree"
            assert tree["root"]["name"] == "gateway.estimate"

        # at least one tree carries the full path down to the kernel
        # (batchmates other than the representative get flat records)
        all_names = [set(_span_names(t["root"])) for t in trees]
        full = {
            "gateway.estimate", "batch.queue_wait", "batch.serve",
            "shard.estimate", "wire.request", "worker.deserialize",
            "worker.compute", "engine.estimate", "kernel.estimate",
            "worker.serialize",
        }
        assert any(full <= names for names in all_names), all_names
        for tree in trees:
            _assert_children_nest(tree["root"])

        # the mid-run scrape is parseable exposition with the per-stage
        # histograms and the gateway's own series
        for line in scraped.splitlines():
            if line and not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])
        assert 'trace_stage_seconds_count{stage="kernel.estimate"}' in scraped or (
            'stage="kernel.estimate"' in scraped
        )
        assert 'stage="gateway.estimate"' in scraped

    def test_worker_spans_share_the_parent_timeline(self, model):
        # time.monotonic is machine-wide on Linux: child-process span
        # timestamps must land inside the parent root span's window
        tracer = SpanTracer(sample_rate=1.0, service="gateway")
        engine = ShardedFleet(
            1, spec=WorkerSpec(url="pipe://", model=model, name="shard{shard}", trace=True)
        )
        try:
            engine.register_cell("c0")

            async def drive():
                async with SocGateway(engine, tracer=tracer) as gateway:
                    return await gateway.estimate("c0", 3.7, 1.0, 25.0)

            completion = asyncio.run(drive())
        finally:
            engine.close()
        assert completion.ok
        (tree,) = tracer.trace_trees()
        worker_spans = [
            s for s in _collect(tree["root"]) if s["name"].startswith("worker.")
        ]
        assert worker_spans, "worker stages must come back over the wire"
        root = tree["root"]
        for span in worker_spans:
            assert span["pid"] != root["pid"], "worker spans record the child pid"
            assert root["start_s"] - 1e-6 <= span["start_s"]
            assert span["end_s"] <= root["end_s"] + 1e-6


def _collect(node):
    out = [node]
    for child in node["children"]:
        out.extend(_collect(child))
    return out


class TestTracedInProcessServing:
    def test_untraced_serving_records_nothing(self, model):
        engine = FleetEngine(default_model=model)
        engine.register_cell("c0")

        async def drive():
            async with SocGateway(engine) as gateway:  # no tracer
                return await gateway.estimate("c0", 3.7, 1.0, 25.0)

        completion = asyncio.run(drive())
        assert completion.ok

    def test_gateway_attrs_record_outcome(self, model):
        tracer = SpanTracer(sample_rate=1.0)
        engine = FleetEngine(default_model=model)
        engine.register_cell("c0")

        async def drive():
            async with SocGateway(engine, tracer=tracer) as gateway:
                return await gateway.estimate("c0", 3.7, 1.0, 25.0)

        asyncio.run(drive())
        (tree,) = tracer.trace_trees()
        attrs = tree["root"]["attrs"]
        assert attrs["ok"] is True
        assert attrs["batch_size"] >= 1
        assert attrs["cell_id"] == "c0"

    def test_sampling_rate_applies_per_request(self, model):
        tracer = SpanTracer(sample_rate=0.5)
        engine = FleetEngine(default_model=model)
        for k in range(6):
            engine.register_cell(f"c{k}")

        async def drive():
            async with SocGateway(engine, tracer=tracer) as gateway:
                return await asyncio.gather(
                    *(gateway.estimate(f"c{k}", 3.7, 1.0, 25.0) for k in range(6))
                )

        completions = asyncio.run(drive())
        assert all(c.ok for c in completions)
        counts = tracer.counts()
        assert counts["started"] == 6
        assert counts["committed"] == 3  # deterministic 1-in-2


# ----------------------------------------------------------------------
class TestCliSurface:
    def test_serve_sim_trace_json(self, tmp_path, capsys):
        out = tmp_path / "traces.json"
        rc = cli.main([
            "serve-sim", "--untrained", "--fast", "--cells", "8",
            "--trace-json", str(out), "--trace-sample", "1.0",
        ])
        assert rc == 0
        record = json.loads(out.read_text(encoding="utf-8"))
        assert record["summary"]["committed"] >= 1
        roots = [t["root_name"] for t in record["traces"]]
        assert "serve.rollout" in roots
        assert record["traceEvents"], "chrome export rides along"
        names = {e["name"] for e in record["traceEvents"]}
        assert "engine.rollout" in names
        assert "serve-sim" not in capsys.readouterr().err  # no stray stderr noise

    def test_monitor_serve_exposes_snapshot_file(self, tmp_path):
        snapshot = {
            "metrics": {
                "counters": {'gateway_requests_total{endpoint="estimate"}': 4.0},
                "gauges": {},
                "histograms": {},
            }
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        rc = cli.main(["monitor", "serve", str(path), "--duration", "0.05"])
        assert rc == 0

    def test_parser_accepts_new_flags(self):
        parser = cli.build_parser()
        args = parser.parse_args([
            "serve-sim", "--untrained", "--metrics-port", "0",
            "--trace-json", "t.json", "--trace-sample", "0.25",
        ])
        assert args.metrics_port == 0
        assert args.trace_sample == 0.25
        args = parser.parse_args(["monitor", "serve", "m.json", "--port", "9923"])
        assert args.port == 9923 and args.duration is None
