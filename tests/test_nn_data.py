"""Tests for datasets, dataloaders, splits, and serialization."""

import numpy as np
import pytest

from repro import nn


class TestTensorDataset:
    def test_len_and_getitem(self):
        ds = nn.TensorDataset(np.arange(10), np.arange(10) * 2)
        assert len(ds) == 10
        x, y = ds[3]
        assert x == 3 and y == 6

    def test_fancy_index(self):
        ds = nn.TensorDataset(np.arange(10))
        (rows,) = ds[np.array([1, 3])]
        np.testing.assert_array_equal(rows, [1, 3])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            nn.TensorDataset(np.arange(3), np.arange(4))

    def test_empty_args_raise(self):
        with pytest.raises(ValueError):
            nn.TensorDataset()


class TestDataLoader:
    def test_batches_cover_dataset(self):
        ds = nn.TensorDataset(np.arange(10))
        loader = nn.DataLoader(ds, batch_size=3)
        seen = np.concatenate([batch[0] for batch in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_len(self):
        ds = nn.TensorDataset(np.arange(10))
        assert len(nn.DataLoader(ds, batch_size=3)) == 4
        assert len(nn.DataLoader(ds, batch_size=3, drop_last=True)) == 3

    def test_drop_last(self):
        ds = nn.TensorDataset(np.arange(10))
        loader = nn.DataLoader(ds, batch_size=3, drop_last=True)
        batches = [b[0] for b in loader]
        assert all(len(b) == 3 for b in batches)

    def test_shuffle_changes_order_but_not_content(self):
        ds = nn.TensorDataset(np.arange(100))
        loader = nn.DataLoader(ds, batch_size=100, shuffle=True, rng=np.random.default_rng(0))
        (batch,) = list(loader)
        assert not np.array_equal(batch[0], np.arange(100))
        np.testing.assert_array_equal(np.sort(batch[0]), np.arange(100))

    def test_shuffle_deterministic_given_rng(self):
        ds = nn.TensorDataset(np.arange(20))
        a = list(nn.DataLoader(ds, batch_size=20, shuffle=True, rng=np.random.default_rng(1)))
        b = list(nn.DataLoader(ds, batch_size=20, shuffle=True, rng=np.random.default_rng(1)))
        np.testing.assert_array_equal(a[0][0], b[0][0])

    def test_multiple_arrays_stay_aligned(self):
        x = np.arange(50)
        ds = nn.TensorDataset(x, x * 10)
        loader = nn.DataLoader(ds, batch_size=7, shuffle=True, rng=np.random.default_rng(0))
        for bx, by in loader:
            np.testing.assert_array_equal(by, bx * 10)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            nn.DataLoader(nn.TensorDataset(np.arange(3)), batch_size=0)


class TestTrainValSplit:
    def test_sizes(self):
        ds = nn.TensorDataset(np.arange(100))
        train, val = nn.train_val_split(ds, val_fraction=0.2, rng=np.random.default_rng(0))
        assert len(train) == 80 and len(val) == 20

    def test_disjoint_and_complete(self):
        ds = nn.TensorDataset(np.arange(50))
        train, val = nn.train_val_split(ds, val_fraction=0.3, rng=np.random.default_rng(0))
        combined = np.sort(np.concatenate([train.arrays[0], val.arrays[0]]))
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_invalid_fraction(self):
        ds = nn.TensorDataset(np.arange(10))
        with pytest.raises(ValueError):
            nn.train_val_split(ds, val_fraction=0.0)

    def test_tiny_dataset_raises(self):
        ds = nn.TensorDataset(np.arange(1))
        with pytest.raises(ValueError):
            nn.train_val_split(ds, val_fraction=0.5)


class TestSerialization:
    def test_state_roundtrip(self, tmp_path):
        state = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        path = tmp_path / "ckpt.npz"
        nn.save_state(state, path, meta={"epoch": 3})
        loaded, meta = nn.load_state(path)
        np.testing.assert_array_equal(loaded["w"], state["w"])
        np.testing.assert_array_equal(loaded["b"], state["b"])
        assert meta == {"epoch": 3}

    def test_no_meta(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        nn.save_state({"w": np.ones(2)}, path)
        _, meta = nn.load_state(path)
        assert meta is None

    def test_reserved_key_raises(self, tmp_path):
        with pytest.raises(ValueError):
            nn.save_state({"__meta_json__": np.ones(1)}, tmp_path / "x.npz")

    def test_model_roundtrip(self, tmp_path):
        a = nn.MLP(3, hidden=(4,), rng=np.random.default_rng(0))
        b = nn.MLP(3, hidden=(4,), rng=np.random.default_rng(1))
        path = tmp_path / "model.npz"
        nn.save_model(a, path, meta={"note": "test"})
        meta = nn.load_model_into(b, path)
        assert meta == {"note": "test"}
        x = nn.Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_unicode_meta(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        nn.save_state({"w": np.ones(1)}, path, meta={"label": "Pollo e più"})
        _, meta = nn.load_state(path)
        assert meta["label"] == "Pollo e più"
