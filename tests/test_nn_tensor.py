"""Unit tests for the autograd tensor: forward values, backward rules,
broadcasting, tape mechanics, and error handling."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, unbroadcast


class TestForwardValues:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0, 2.0]) + 1.5
        np.testing.assert_allclose(out.data, [2.5, 3.5])

    def test_radd(self):
        out = 1.5 + Tensor([1.0, 2.0])
        np.testing.assert_allclose(out.data, [2.5, 3.5])

    def test_sub(self):
        out = Tensor([3.0]) - Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_rsub(self):
        out = 5.0 - Tensor([1.0, 2.0])
        np.testing.assert_allclose(out.data, [4.0, 3.0])

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_allclose(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([8.0]) / Tensor([2.0])
        np.testing.assert_allclose(out.data, [4.0])

    def test_rdiv(self):
        out = 8.0 / Tensor([2.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 2.0])

    def test_neg(self):
        out = -Tensor([1.0, -2.0])
        np.testing.assert_allclose(out.data, [-1.0, 2.0])

    def test_pow(self):
        out = Tensor([2.0, 3.0]) ** 2
        np.testing.assert_allclose(out.data, [4.0, 9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_allclose((a @ b).data, [[19.0, 22.0], [43.0, 50.0]])

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.0, 2.0])
        np.testing.assert_allclose(x.exp().log().data, x.data, atol=1e-12)

    def test_relu(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_extremes_are_stable(self):
        out = Tensor([-1000.0, 0.0, 1000.0]).sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)
        assert np.all(np.isfinite(out.data))

    def test_tanh(self):
        out = Tensor([0.0]).tanh()
        np.testing.assert_allclose(out.data, [0.0])

    def test_abs(self):
        out = Tensor([-2.0, 3.0]).abs()
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_clip(self):
        out = Tensor([-2.0, 0.5, 2.0]).clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])

    def test_sum_axis(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(x.sum(axis=0).data, [4.0, 6.0])
        np.testing.assert_allclose(x.sum(axis=1).data, [3.0, 7.0])

    def test_mean(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert x.mean().item() == pytest.approx(2.5)
        np.testing.assert_allclose(x.mean(axis=0).data, [2.0, 3.0])

    def test_max_min(self):
        x = Tensor([[1.0, 5.0], [3.0, 2.0]])
        assert x.max().item() == 5.0
        assert x.min().item() == 1.0
        np.testing.assert_allclose(x.max(axis=0).data, [3.0, 5.0])
        np.testing.assert_allclose(x.min(axis=1).data, [1.0, 2.0])

    def test_reshape_flatten(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape((3, 2)).shape == (3, 2)
        assert x.reshape(2, 3).flatten().shape == (6,)

    def test_transpose(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)
        assert x.transpose(1, 0).shape == (3, 2)

    def test_getitem(self):
        x = Tensor(np.arange(10.0))
        np.testing.assert_allclose(x[2:5].data, [2.0, 3.0, 4.0])

    def test_cat(self):
        out = nn.cat([Tensor([1.0, 2.0]), Tensor([3.0])])
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])

    def test_stack(self):
        out = nn.stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])])
        assert out.shape == (2, 2)

    def test_where(self):
        out = nn.where([True, False], Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_maximum_minimum(self):
        a, b = Tensor([1.0, 4.0]), Tensor([3.0, 2.0])
        np.testing.assert_allclose(nn.maximum(a, b).data, [3.0, 4.0])
        np.testing.assert_allclose(nn.minimum(a, b).data, [1.0, 2.0])

    def test_comparisons_return_numpy(self):
        mask = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(mask, np.ndarray)
        np.testing.assert_array_equal(mask, [False, True])


class TestBackwardRules:
    def test_add_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = Tensor([3.0, 4.0], requires_grad=True)
        (x + y).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])
        np.testing.assert_allclose(y.grad, [1.0, 1.0])

    def test_mul_backward(self):
        x = Tensor([2.0], requires_grad=True)
        y = Tensor([5.0], requires_grad=True)
        (x * y).backward()
        np.testing.assert_allclose(x.grad, [5.0])
        np.testing.assert_allclose(y.grad, [2.0])

    def test_div_backward(self):
        x = Tensor([6.0], requires_grad=True)
        y = Tensor([3.0], requires_grad=True)
        (x / y).backward()
        np.testing.assert_allclose(x.grad, [1.0 / 3.0])
        np.testing.assert_allclose(y.grad, [-6.0 / 9.0])

    def test_reuse_accumulates(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a * b).backward()  # d(12 x^2)/dx = 24x = 48
        np.testing.assert_allclose(x.grad, [48.0])

    def test_broadcast_add_backward(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.zeros(2), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [3.0, 3.0])
        np.testing.assert_allclose(x.grad, np.ones((3, 2)))

    def test_broadcast_mul_backward(self):
        x = Tensor(np.full((4, 3), 2.0), requires_grad=True)
        s = Tensor([3.0], requires_grad=True)
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, [24.0])

    def test_scalar_broadcast_row_backward(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        row = Tensor(np.ones((1, 3)), requires_grad=True)
        (x * row).sum().backward()
        assert row.grad.shape == (1, 3)
        np.testing.assert_allclose(row.grad, [[2.0, 2.0, 2.0]])

    def test_getitem_backward(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_getitem_repeated_index_backward(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        x[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 1.0, 0.0])

    def test_max_tie_splits_gradient(self):
        x = Tensor([2.0, 2.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_backward_nonscalar_without_grad_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_detached_raises(self):
        x = Tensor([1.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            x.detach().backward()

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None


class TestTapeMechanics:
    def test_no_grad_blocks_tracking(self):
        x = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert nn.is_grad_enabled()
        with nn.no_grad():
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        with pytest.raises(ValueError):
            with nn.no_grad():
                raise ValueError("boom")
        assert nn.is_grad_enabled()

    def test_detach_cuts_tape(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3.0).detach()
        z = y * 4.0
        assert not z.requires_grad

    def test_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([1.0])
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_integer_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"

    def test_requires_grad_integer_raises(self):
        # integers are promoted, so this should actually work
        t = Tensor([1, 2], requires_grad=True)
        assert t.requires_grad


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sum_leading_axis(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_sum_size_one_axis(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (1, 3)), np.full((1, 3), 2.0))

    def test_scalar_target(self):
        g = np.ones((5,))
        np.testing.assert_allclose(unbroadcast(g, ()), 5.0)


class TestConstructors:
    def test_zeros_ones_full(self):
        assert nn.zeros(2, 3).shape == (2, 3)
        assert nn.ones(4).data.sum() == 4.0
        assert nn.full((2,), 7.0).data[0] == 7.0

    def test_arange(self):
        np.testing.assert_allclose(nn.arange(3).data, [0.0, 1.0, 2.0])

    def test_randn_deterministic_with_rng(self):
        a = nn.randn(5, rng=np.random.default_rng(0))
        b = nn.randn(5, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(a.data, b.data)

    def test_rand_range(self):
        x = nn.rand(100, rng=np.random.default_rng(0))
        assert np.all((x.data >= 0) & (x.data < 1))

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == 3.5
        assert len(Tensor([1.0, 2.0])) == 2
