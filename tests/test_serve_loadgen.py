"""Tests for open-loop load generation (:mod:`repro.serve.loadgen`).

The saturation test at the bottom is the reason this module exists:
past the capacity knee an open-loop generator's measured latency
diverges (the queue grows without bound) while a closed-loop client's
plateaus (it self-limits to capacity) — demonstrated here against a
stub engine with a known service rate.
"""

import asyncio

import numpy as np
import pytest

from repro.serve.gateway import GatewayOverloaded
from repro.serve.loadgen import LoadReport, arrival_times, run_closed_loop, run_open_loop


class TestArrivalTimes:
    @pytest.mark.parametrize("shape", ["steady", "poisson", "burst", "diurnal"])
    def test_sorted_within_horizon_and_deterministic(self, shape):
        a = arrival_times(shape, rate=300.0, duration_s=2.0, seed=7)
        b = arrival_times(shape, rate=300.0, duration_s=2.0, seed=7)
        assert a.size > 0
        assert np.all(np.diff(a) >= 0.0)
        assert a[-1] < 2.0
        assert np.array_equal(a, b)
        if shape != "steady":  # steady is deterministic in the seed too
            assert not np.array_equal(a, arrival_times(shape, rate=300.0, duration_s=2.0, seed=8))

    def test_steady_is_evenly_spaced(self):
        t = arrival_times("steady", rate=100.0, duration_s=1.0)
        assert t.size == 100
        assert np.allclose(np.diff(t), 0.01)

    def test_poisson_mean_rate(self):
        t = arrival_times("poisson", rate=500.0, duration_s=20.0, seed=1)
        assert t.size == pytest.approx(10_000, rel=0.05)

    def test_burst_concentrates_in_duty_window(self):
        t = arrival_times("burst", rate=200.0, duration_s=8.0, seed=2, burst_period_s=2.0, burst_duty=0.25)
        phase = (t % 2.0) / 2.0
        assert np.all(phase < 0.25)
        # mean rate over full periods stays near the configured rate
        assert t.size == pytest.approx(1600, rel=0.15)

    def test_diurnal_modulates_rate(self):
        t = arrival_times("diurnal", rate=400.0, duration_s=10.0, seed=3, diurnal_period_s=10.0)
        peak_half = np.sum(t < 5.0)  # sin > 0: above-mean rate
        trough_half = np.sum(t >= 5.0)
        assert peak_half > 1.4 * trough_half

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            arrival_times("sawtooth", 10.0, 1.0)
        with pytest.raises(ValueError):
            arrival_times("steady", 0.0, 1.0)
        with pytest.raises(ValueError):
            arrival_times("burst", 10.0, 1.0, burst_duty=0.0)
        with pytest.raises(ValueError):
            arrival_times("diurnal", 10.0, 1.0, diurnal_depth=1.5)


class _Completion:
    def __init__(self, error=None):
        self.error = error


class TestRunOpenLoop:
    def test_counts_and_report_shape(self):
        async def call(i):
            await asyncio.sleep(0.001)
            if i % 10 == 0:
                return _Completion("shed: at capacity")
            if i % 10 == 1:
                return _Completion("worker crashed")
            return _Completion()

        report = asyncio.run(run_open_loop(call, arrival_times("steady", 400.0, 0.25), shape="steady"))
        assert isinstance(report, LoadReport)
        assert report.requests == 100
        assert report.shed == 10 and report.errors == 10 and report.ok == 80
        d = report.to_dict()
        assert d["mode"] == "open" and d["shape"] == "steady"
        assert d["latency_ms"]["p99"] >= d["latency_ms"]["p50"] > 0.0
        assert d["send_lag_ms"]["p99"] >= 0.0

    def test_gateway_overloaded_counts_as_shed(self):
        async def call(i):
            raise GatewayOverloaded("shed: full")

        report = asyncio.run(run_open_loop(call, arrival_times("steady", 200.0, 0.1)))
        assert report.shed == report.requests

    def test_latency_measured_from_scheduled_arrival(self):
        # a single slow request delays nothing else, but every later
        # arrival is measured from its own schedule — a stalled *loop*
        # shows up as inflated latency even for fast responses
        async def call(i):
            if i == 0:
                await asyncio.sleep(0.2)
            return _Completion()

        arrivals = np.array([0.0, 0.01, 0.02])
        report = asyncio.run(run_open_loop(call, arrivals))
        # request 0 took ~200ms; 1 and 2 stayed fast (no back-off, they
        # were fired on schedule while 0 was still in flight)
        assert report.latencies_s[0] > 0.15
        assert report.latencies_s[1] < 0.1 and report.latencies_s[2] < 0.1


class TestRunClosedLoop:
    def test_counts(self):
        async def call(i):
            await asyncio.sleep(0.001)
            return _Completion()

        report = asyncio.run(run_closed_loop(call, 40, clients=4))
        assert report.mode == "closed"
        assert report.requests == 40 and report.ok == 40

    def test_self_limits_offered_load(self):
        # 2 clients x ~5ms service = ~400 req/s ceiling regardless of demand
        async def call(i):
            await asyncio.sleep(0.005)
            return _Completion()

        report = asyncio.run(run_closed_loop(call, 40, clients=2))
        assert report.achieved_rate < 500.0


class TestSaturationBehaviour:
    """Open-loop diverges past the knee; closed-loop plateaus (acceptance)."""

    SERVICE_S = 0.004  # one request at a time -> capacity = 250 req/s

    def _make_call(self):
        lock = asyncio.Lock()

        async def call(i):
            async with lock:  # serialized service: a known-capacity server
                await asyncio.sleep(self.SERVICE_S)
            return _Completion()

        return call

    def test_open_loop_diverges_where_closed_loop_plateaus(self):
        async def scenario():
            offered = 2.0 / self.SERVICE_S  # 2x capacity
            open_report = await run_open_loop(
                self._make_call(), arrival_times("steady", offered, 1.0), shape="steady"
            )
            closed_report = await run_closed_loop(self._make_call(), 100, clients=1)
            return open_report, closed_report

        open_report, closed_report = asyncio.run(scenario())

        # closed loop: one outstanding request, so latency stays ~service
        # time no matter how long it runs — the plateau that hides saturation
        assert closed_report.quantile_ms(0.99) < 4.0 * self.SERVICE_S * 1e3

        # open loop at 2x capacity: the backlog grows all run long, so
        # p99 dwarfs the closed-loop p99 ...
        assert open_report.quantile_ms(0.99) > 10.0 * closed_report.quantile_ms(0.99)
        # ... and latency *diverges over time*: the second half of the
        # run waits far longer than the first half (a plateau would stay flat)
        d = open_report.to_dict()["latency_ms"]
        assert d["second_half_mean"] > 2.0 * d["first_half_mean"]

    def test_open_loop_below_knee_stays_flat(self):
        async def scenario():
            offered = 0.5 / self.SERVICE_S  # half capacity
            return await run_open_loop(self._make_call(), arrival_times("steady", offered, 1.0))

        report = asyncio.run(scenario())
        d = report.to_dict()["latency_ms"]
        # under the knee there is no backlog growth
        assert d["second_half_mean"] < 2.0 * d["first_half_mean"]
        assert report.quantile_ms(0.99) < 15.0 * self.SERVICE_S * 1e3
