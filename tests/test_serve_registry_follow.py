"""Live-follow of ``channels.json`` across processes
(:mod:`repro.serve.registry`).

``_sync_channels`` detects out-of-process edits by ``(mtime_ns, size)``
signature.  These tests pin down the hard case: the file is rewritten
*within the same mtime tick* with the *same byte length*, so the
signature cannot change.  The stat-based fast path is then blind by
design — but a reference that misses must still recover through the
``_parse_ref`` miss -> ``refresh()`` retry, and ``refresh()`` must
record the signature of the file it just consumed so the follower does
not re-read (or worse, half-apply) a file it has already indexed.
"""

import json
import os

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.serve import ModelRegistry


@pytest.fixture()
def models():
    rng = np.random.default_rng(7)
    return TwoBranchSoCNet(rng=rng), TwoBranchSoCNet(rng=rng)


def _rewrite_same_signature(path, text: str) -> None:
    """Rewrite ``path`` with ``text`` keeping (mtime_ns, size) identical."""
    before = path.stat()
    path.write_text(text, encoding="utf-8")
    os.utime(path, ns=(before.st_atime_ns, before.st_mtime_ns))
    after = path.stat()
    assert (after.st_mtime_ns, after.st_size) == (before.st_mtime_ns, before.st_size)


class TestChannelsFileLiveFollow:
    def test_same_tick_rewrite_recovers_via_reference_miss(self, models, tmp_path):
        m1, m2 = models
        publisher = ModelRegistry(tmp_path)
        publisher.publish("m", m1)
        publisher.publish("m", m2)
        channels_path = tmp_path / "channels.json"
        # both payloads are exactly 33 bytes: "color1"/"canary" are the
        # same length, as are the version digits
        channels_path.write_text('{"m": {"color1": 1, "stable": 1}}', encoding="utf-8")

        follower = ModelRegistry(tmp_path)  # constructor refresh() caches the signature
        assert follower.channels("m") == {"color1": 1, "stable": 1}

        _rewrite_same_signature(channels_path, '{"m": {"canary": 2, "stable": 1}}')

        # the stat fast path cannot see this rewrite: same mtime tick,
        # same size.  channels() (signature-gated) still serves the old
        # pointers — the documented blind spot.
        assert follower.channels("m") == {"color1": 1, "stable": 1}

        # ...but a reference that misses falls through to a full
        # refresh() and retry, which re-reads the file regardless
        expected = follower.load("m@v2").estimate_soc(3.7, 1.0, 25.0)
        np.testing.assert_allclose(
            follower.load("m@canary").estimate_soc(3.7, 1.0, 25.0), expected
        )
        assert follower.channels("m") == {"canary": 2, "stable": 1}

    def test_refresh_counts_as_having_seen_the_file(self, models, tmp_path):
        m1, _ = models
        publisher = ModelRegistry(tmp_path)
        publisher.publish("m", m1)
        channels_path = tmp_path / "channels.json"

        follower = ModelRegistry(tmp_path)
        stat = channels_path.stat()
        assert follower._channels_sig == (stat.st_mtime_ns, stat.st_size)

        # an explicit re-index must refresh the signature too, so the
        # next _sync_channels doesn't pointlessly re-read the same file
        follower.refresh()
        assert follower._channels_sig == (stat.st_mtime_ns, stat.st_size)

    def test_normal_rewrite_is_followed_without_a_miss(self, models, tmp_path):
        m1, m2 = models
        publisher = ModelRegistry(tmp_path)
        publisher.publish("m", m1)
        follower = ModelRegistry(tmp_path)
        assert follower.channels("m") == {"stable": 1}

        publisher.publish("m", m2, channel="canary")  # changes size and/or mtime
        assert follower.channels("m") == {"stable": 1, "canary": 2}

    def test_deleted_channels_file_keeps_last_known_pointers(self, models, tmp_path):
        m1, m2 = models
        publisher = ModelRegistry(tmp_path)
        publisher.publish("m", m1)
        publisher.publish("m", m2, channel="canary")
        follower = ModelRegistry(tmp_path)
        assert follower.channels("m") == {"stable": 1, "canary": 2}

        (tmp_path / "channels.json").unlink()
        # stat() fails -> sync keeps the cached pointers rather than
        # forgetting the canary
        assert follower.channels("m") == {"stable": 1, "canary": 2}

    def test_pointer_to_unindexed_version_triggers_reindex(self, models, tmp_path):
        m1, m2 = models
        publisher = ModelRegistry(tmp_path)
        publisher.publish("m", m1)
        follower = ModelRegistry(tmp_path)
        assert follower.channels("m") == {"stable": 1}

        # another process publishes v2 AND points a channel at it: the
        # follower sees a pointer to a version it has not indexed and
        # must re-index from disk instead of dropping the pointer
        publisher.publish("m", m2, channel="canary")
        assert follower.channels("m") == {"stable": 1, "canary": 2}
        assert follower.describe("m@canary").version == 2

    def test_same_signature_rewrite_is_plausible(self, tmp_path):
        # guard the test premise itself: the helper really does produce
        # an identical (mtime_ns, size) signature
        path = tmp_path / "channels.json"
        path.write_text(json.dumps({"m": {"stable": 1}}), encoding="utf-8")
        before = path.stat()
        _rewrite_same_signature(path, json.dumps({"m": {"stable": 2}}))
        after = path.stat()
        assert (after.st_mtime_ns, after.st_size) == (before.st_mtime_ns, before.st_size)
