"""Tests for the drift detectors (:mod:`repro.monitor.drift`)."""

import numpy as np
import pytest

from repro.monitor.drift import (
    Cusum,
    CusumConfig,
    DriftMonitor,
    PageHinkley,
    PageHinkleyConfig,
    PhysicsBounds,
    iter_kinds,
    residual_stream,
)
from repro.monitor.metrics import MetricsRegistry


def step_stream(n_before: int, n_after: int, level: float, base: float = 0.0) -> np.ndarray:
    """A flat stream that steps from ``base`` to ``level``."""
    return np.concatenate([np.full(n_before, base), np.full(n_after, level)])


# ----------------------------------------------------------------------
class TestCusumDeterministic:
    def test_fixed_reference_trigger_point_is_exact(self):
        """With a fixed reference the alarm index is closed-form: each
        post-step sample adds (level - ref - slack) to the positive sum,
        so the alarm lands on the first index where the sum *exceeds*
        the threshold."""
        cfg = CusumConfig(slack=0.01, threshold=0.1, min_samples=1, reference=0.0)
        level = 0.06  # adds 0.05 per sample: sums 0.05, 0.10, 0.15 -> alarm on 3rd
        detector = Cusum(cfg)
        stream = step_stream(50, 10, level)
        fired = [k for k, x in enumerate(stream) if detector.update(x)]
        # first alarm exactly on the third post-step sample; the detector
        # then resets and re-alarms every 3 samples while the shift lasts
        assert fired == [52, 55, 58]

    def test_negative_shift_triggers_the_other_side(self):
        cfg = CusumConfig(slack=0.01, threshold=0.12, min_samples=1, reference=0.5)
        detector = Cusum(cfg)
        fired = [k for k, x in enumerate(step_stream(20, 10, 0.44, base=0.5)) if detector.update(x)]
        assert fired[0] == 22  # 0.05/sample on the negative sum; sum passes 0.12 on the 3rd

    def test_running_mean_reference_ignores_steady_offset(self):
        detector = Cusum(CusumConfig(slack=0.005, threshold=0.1, min_samples=10))
        assert not any(detector.update(0.73) for _ in range(500))

    def test_running_mean_reference_catches_a_shift(self):
        detector = Cusum(CusumConfig(slack=0.005, threshold=0.1, min_samples=10))
        fired = [k for k, x in enumerate(step_stream(100, 100, 0.30, base=0.02)) if detector.update(x)]
        assert fired and 100 <= fired[0] <= 110

    def test_resets_after_alarm_and_rearms(self):
        cfg = CusumConfig(slack=0.01, threshold=0.1, min_samples=1, reference=0.0)
        detector = Cusum(cfg)
        stream = np.tile(step_stream(10, 3, 0.06), 2)
        fired = [k for k, x in enumerate(stream) if detector.update(x)]
        assert fired == [12, 25]


class TestPageHinkleyDeterministic:
    def test_flat_stream_never_alarms(self):
        detector = PageHinkley(PageHinkleyConfig(delta=0.005, threshold=0.1, min_samples=10))
        assert not any(detector.update(0.03) for _ in range(1000))

    def test_ramp_alarms_and_trigger_index_matches_reference_recurrence(self):
        """The scalar detector is the reference; its alarm index on a
        residual ramp must match an independent evaluation of the
        Page–Hinkley recurrence."""
        cfg = PageHinkleyConfig(delta=0.005, threshold=0.1, min_samples=10)
        stream = np.concatenate([np.full(50, 0.01), 0.01 + 0.01 * np.arange(1, 101)])
        detector = PageHinkley(cfg)
        fired = [k for k, x in enumerate(stream) if detector.update(x)]

        n = 0
        mean = m = m_min = 0.0
        expected = None
        for k, x in enumerate(stream):
            n += 1
            mean += (x - mean) / n
            m += x - mean - cfg.delta
            m_min = min(m_min, m)
            if n >= cfg.min_samples and m - m_min > cfg.threshold:
                expected = k
                break
        assert expected is not None and fired[0] == expected

    def test_bank_matches_scalar_sample_for_sample(self):
        """The vectorized bank inside DriftMonitor must fire on exactly
        the same windows as the scalar detector."""
        cfg = PageHinkleyConfig(delta=0.002, threshold=0.05, min_samples=5)
        rng = np.random.default_rng(3)
        stream = np.concatenate([rng.normal(0.01, 0.001, 60), rng.normal(0.08, 0.001, 60)])
        scalar = PageHinkley(cfg)
        scalar_fired = {k for k, x in enumerate(stream) if scalar.update(x)}
        monitor = DriftMonitor(page_hinkley=cfg, cusum=None, bounds=None)
        idx = monitor.track(["cell-0"])
        bank_fired = set()
        for k, x in enumerate(stream):
            if monitor.observe_residuals(idx, np.array([x]), window=k):
                bank_fired.add(k)
        assert bank_fired == scalar_fired


# ----------------------------------------------------------------------
class TestPhysicsBounds:
    def test_chemistry_derived_rate_ceiling(self):
        bounds = PhysicsBounds.for_c_rate(6.7, margin=1.5)
        assert bounds.max_rate_per_s == pytest.approx(1.5 * 6.7 / 3600.0)

    def test_soc_bounds_and_rate_events(self):
        monitor = DriftMonitor(page_hinkley=None, cusum=None, bounds=PhysicsBounds(max_rate_per_s=0.001))
        soc = np.array([0.5, 1.2, -0.2, 0.4])
        emitted = monitor.observe_soc(["a", "b", "c", "d"], soc, window=3)
        assert emitted == 2
        kinds = iter_kinds(monitor.events())
        assert kinds == {"soc_bounds": 2}
        assert {e.cell_id for e in monitor.events()} == {"b", "c"}
        assert all(e.window == 3 for e in monitor.events())
        # rate check: 0.2 SoC over 60 s >> 0.001/s ceiling
        emitted = monitor.observe_soc(["a"], np.array([0.5]), delta=np.array([-0.2]), horizon_s=60.0)
        assert emitted == 1
        assert monitor.events()[-1].kind == "soc_rate"

    def test_positions_map_rows_back_to_cell_ids(self):
        monitor = DriftMonitor(page_hinkley=None, cusum=None, bounds=PhysicsBounds())
        ids = ["w", "x", "y", "z"]
        monitor.observe_soc(ids, np.array([2.0]), positions=np.array([2]))
        assert monitor.events()[0].cell_id == "y"

    def test_clean_batch_emits_nothing(self):
        monitor = DriftMonitor()
        idx = monitor.track([f"c{k}" for k in range(8)])
        for w in range(20):
            assert monitor.observe_residuals(idx, np.full(8, 0.002), window=w) == 0
            assert monitor.observe_soc([f"c{k}" for k in range(8)], np.full(8, 0.5)) == 0
        assert len(monitor) == 0 and monitor.events_total == 0


class TestDriftMonitor:
    def test_ring_buffer_is_bounded_but_totals_are_not(self):
        monitor = DriftMonitor(page_hinkley=None, cusum=None, bounds=PhysicsBounds(), max_events=4)
        for k in range(10):
            monitor.observe_soc([f"c{k}"], np.array([2.0]))
        assert len(monitor.events()) == 4
        assert monitor.events_total == 10
        assert monitor.event_counts() == {"soc_bounds": 10}
        monitor.clear()
        assert len(monitor) == 0 and monitor.events_total == 10

    def test_metrics_counters_follow_events(self):
        metrics = MetricsRegistry()
        monitor = DriftMonitor(page_hinkley=None, cusum=None, metrics=metrics)
        monitor.track(["a", "b"])
        monitor.observe_soc(["a"], np.array([-3.0]))
        assert metrics.counter_value("drift_events_total", kind="soc_bounds") == 1.0
        assert metrics.snapshot()["gauges"]["drift_tracked_cells"] == 2.0

    def test_track_is_stable_and_grows(self):
        monitor = DriftMonitor()
        first = monitor.track(["a", "b"])
        second = monitor.track(["b", "c", "a"])
        assert list(first) == [0, 1]
        assert list(second) == [1, 2, 0]
        assert monitor.n_tracked == 3

    def test_per_cell_isolation(self):
        """One drifting cell must alarm alone; its batchmates stay quiet."""
        cfg = CusumConfig(slack=0.005, threshold=0.05, min_samples=5)
        monitor = DriftMonitor(page_hinkley=None, cusum=cfg, bounds=None)
        idx = monitor.track(["quiet", "noisy"])
        for w in range(60):
            residuals = np.array([0.01, 0.01 if w < 30 else 0.3])
            monitor.observe_residuals(idx, residuals, window=w)
        cells = {e.cell_id for e in monitor.events()}
        assert cells == {"noisy"}


# ----------------------------------------------------------------------
class TestResidualStream:
    def test_matches_hand_computation(self):
        out = residual_stream(
            soc_before=np.array([0.8, 0.5]),
            soc_after=np.array([0.76, 0.49]),
            i_avg=np.array([3.0, 1.0]),
            horizon_s=np.array([120.0, 120.0]),
            capacity_ah=np.array([3.0, 3.0]),
        )
        coulomb = -np.array([3.0, 1.0]) * 120.0 / (3600.0 * 3.0)
        expected = np.abs(np.array([-0.04, -0.01]) - coulomb)
        np.testing.assert_allclose(out, expected, atol=1e-15)


# ----------------------------------------------------------------------
class TestEngineIntegration:
    """The engine-side wiring: counters, residual summaries, bounds."""

    @pytest.fixture()
    def model(self):
        from repro.core import TwoBranchSoCNet

        return TwoBranchSoCNet(rng=np.random.default_rng(0))

    def test_estimate_bounds_guard_emits_on_violation(self, model):
        from repro.serve import FleetEngine

        monitor = DriftMonitor(
            page_hinkley=None, cusum=None,
            bounds=PhysicsBounds(soc_min=0.49, soc_max=0.51),
        )
        engine = FleetEngine(default_model=model, drift=monitor)
        engine.register_cell("a")
        engine.estimate(["a"], 3.7, 1.0, 25.0)  # untrained output is far from 0.5
        assert monitor.event_counts() == {"soc_bounds": 1}
        assert monitor.events()[0].cell_id == "a"

    def test_rollout_residuals_feed_metrics_and_detectors(self, model):
        from repro.monitor.metrics import MetricsRegistry
        from repro.serve import FleetEngine, generate_fleet

        metrics = MetricsRegistry()
        monitor = DriftMonitor(metrics=metrics)
        engine = FleetEngine(default_model=model, metrics=metrics, drift=monitor)
        fleet = generate_fleet(
            6, seed=2, ambient_temps_c=(25.0,), c_rates=(1.0,),
            protocols=("discharge",), max_time_s=1800.0,
        )
        results = engine.rollout_fleet(fleet.assignments(), step_s=120.0)
        snap = metrics.snapshot()
        hist = snap["histograms"]['engine_physics_residual{model="__default__"}']
        windows_total = sum(len(r) - 1 for r in results.values())
        assert hist["count"] == windows_total
        assert snap["counters"]['engine_rollout_windows_total{model="__default__"}'] == windows_total
        assert monitor.n_tracked == 6
        # the in-place buffer math matches an offline recomputation of
        # |predicted ΔSoC − coulomb ΔSoC| over every cell's window plan
        from repro.core.rollout import cycle_windows

        total = 0.0
        for cell_id, cycle in fleet.assignments():
            plan = cycle_windows(cycle, 120.0)
            trajectory = results[cell_id].soc_pred
            total += float(
                residual_stream(
                    soc_before=trajectory[:-1],
                    soc_after=trajectory[1:],
                    i_avg=plan.i_avg,
                    horizon_s=plan.horizon_s,
                    capacity_ah=np.full(plan.n_windows, cycle.capacity_ah),
                ).sum()
            )
        assert hist["sum"] == pytest.approx(total, rel=1e-12)

    def test_monitored_rollout_is_numerically_identical(self, model):
        from repro.monitor.metrics import MetricsRegistry
        from repro.serve import FleetEngine, generate_fleet

        fleet = generate_fleet(
            5, seed=4, ambient_temps_c=(25.0,), c_rates=(1.0, 2.0),
            protocols=("discharge",), max_time_s=1800.0,
        )
        metrics = MetricsRegistry()
        monitored = FleetEngine(default_model=model, metrics=metrics, drift=DriftMonitor(metrics=metrics))
        plain = FleetEngine(default_model=model)
        got = monitored.rollout_fleet(fleet.assignments(), step_s=120.0)
        want = plain.rollout_fleet(fleet.assignments(), step_s=120.0)
        for cell_id, _ in fleet.assignments():
            np.testing.assert_array_equal(got[cell_id].soc_pred, want[cell_id].soc_pred)
