"""Tests for the drift detectors (:mod:`repro.monitor.drift`)."""

import numpy as np
import pytest

from repro.monitor.drift import (
    Cusum,
    CusumConfig,
    DriftMonitor,
    PageHinkley,
    PageHinkleyConfig,
    PhysicsBounds,
    iter_kinds,
    residual_stream,
)
from repro.monitor.metrics import MetricsRegistry


def step_stream(n_before: int, n_after: int, level: float, base: float = 0.0) -> np.ndarray:
    """A flat stream that steps from ``base`` to ``level``."""
    return np.concatenate([np.full(n_before, base), np.full(n_after, level)])


# ----------------------------------------------------------------------
class TestCusumDeterministic:
    def test_fixed_reference_trigger_point_is_exact(self):
        """With a fixed reference the alarm index is closed-form: each
        post-step sample adds (level - ref - slack) to the positive sum,
        so the alarm lands on the first index where the sum *exceeds*
        the threshold."""
        cfg = CusumConfig(slack=0.01, threshold=0.1, min_samples=1, reference=0.0)
        level = 0.06  # adds 0.05 per sample: sums 0.05, 0.10, 0.15 -> alarm on 3rd
        detector = Cusum(cfg)
        stream = step_stream(50, 10, level)
        fired = [k for k, x in enumerate(stream) if detector.update(x)]
        # first alarm exactly on the third post-step sample; the detector
        # then resets and re-alarms every 3 samples while the shift lasts
        assert fired == [52, 55, 58]

    def test_negative_shift_triggers_the_other_side(self):
        cfg = CusumConfig(slack=0.01, threshold=0.12, min_samples=1, reference=0.5)
        detector = Cusum(cfg)
        fired = [k for k, x in enumerate(step_stream(20, 10, 0.44, base=0.5)) if detector.update(x)]
        assert fired[0] == 22  # 0.05/sample on the negative sum; sum passes 0.12 on the 3rd

    def test_running_mean_reference_ignores_steady_offset(self):
        detector = Cusum(CusumConfig(slack=0.005, threshold=0.1, min_samples=10))
        assert not any(detector.update(0.73) for _ in range(500))

    def test_running_mean_reference_catches_a_shift(self):
        detector = Cusum(CusumConfig(slack=0.005, threshold=0.1, min_samples=10))
        fired = [k for k, x in enumerate(step_stream(100, 100, 0.30, base=0.02)) if detector.update(x)]
        assert fired and 100 <= fired[0] <= 110

    def test_resets_after_alarm_and_rearms(self):
        cfg = CusumConfig(slack=0.01, threshold=0.1, min_samples=1, reference=0.0)
        detector = Cusum(cfg)
        stream = np.tile(step_stream(10, 3, 0.06), 2)
        fired = [k for k, x in enumerate(stream) if detector.update(x)]
        assert fired == [12, 25]


class TestPageHinkleyDeterministic:
    def test_flat_stream_never_alarms(self):
        detector = PageHinkley(PageHinkleyConfig(delta=0.005, threshold=0.1, min_samples=10))
        assert not any(detector.update(0.03) for _ in range(1000))

    def test_ramp_alarms_and_trigger_index_matches_reference_recurrence(self):
        """The scalar detector is the reference; its alarm index on a
        residual ramp must match an independent evaluation of the
        Page–Hinkley recurrence."""
        cfg = PageHinkleyConfig(delta=0.005, threshold=0.1, min_samples=10)
        stream = np.concatenate([np.full(50, 0.01), 0.01 + 0.01 * np.arange(1, 101)])
        detector = PageHinkley(cfg)
        fired = [k for k, x in enumerate(stream) if detector.update(x)]

        n = 0
        mean = m = m_min = 0.0
        expected = None
        for k, x in enumerate(stream):
            n += 1
            mean += (x - mean) / n
            m += x - mean - cfg.delta
            m_min = min(m_min, m)
            if n >= cfg.min_samples and m - m_min > cfg.threshold:
                expected = k
                break
        assert expected is not None and fired[0] == expected

    def test_bank_matches_scalar_sample_for_sample(self):
        """The vectorized bank inside DriftMonitor must fire on exactly
        the same windows as the scalar detector."""
        cfg = PageHinkleyConfig(delta=0.002, threshold=0.05, min_samples=5)
        rng = np.random.default_rng(3)
        stream = np.concatenate([rng.normal(0.01, 0.001, 60), rng.normal(0.08, 0.001, 60)])
        scalar = PageHinkley(cfg)
        scalar_fired = {k for k, x in enumerate(stream) if scalar.update(x)}
        monitor = DriftMonitor(page_hinkley=cfg, cusum=None, bounds=None)
        idx = monitor.track(["cell-0"])
        bank_fired = set()
        for k, x in enumerate(stream):
            if monitor.observe_residuals(idx, np.array([x]), window=k):
                bank_fired.add(k)
        assert bank_fired == scalar_fired


# ----------------------------------------------------------------------
class TestPhysicsBounds:
    def test_chemistry_derived_rate_ceiling(self):
        bounds = PhysicsBounds.for_c_rate(6.7, margin=1.5)
        assert bounds.max_rate_per_s == pytest.approx(1.5 * 6.7 / 3600.0)

    def test_soc_bounds_and_rate_events(self):
        monitor = DriftMonitor(page_hinkley=None, cusum=None, bounds=PhysicsBounds(max_rate_per_s=0.001))
        soc = np.array([0.5, 1.2, -0.2, 0.4])
        emitted = monitor.observe_soc(["a", "b", "c", "d"], soc, window=3)
        assert emitted == 2
        kinds = iter_kinds(monitor.events())
        assert kinds == {"soc_bounds": 2}
        assert {e.cell_id for e in monitor.events()} == {"b", "c"}
        assert all(e.window == 3 for e in monitor.events())
        # rate check: 0.2 SoC over 60 s >> 0.001/s ceiling
        emitted = monitor.observe_soc(["a"], np.array([0.5]), delta=np.array([-0.2]), horizon_s=60.0)
        assert emitted == 1
        assert monitor.events()[-1].kind == "soc_rate"

    def test_positions_map_rows_back_to_cell_ids(self):
        monitor = DriftMonitor(page_hinkley=None, cusum=None, bounds=PhysicsBounds())
        ids = ["w", "x", "y", "z"]
        monitor.observe_soc(ids, np.array([2.0]), positions=np.array([2]))
        assert monitor.events()[0].cell_id == "y"

    def test_clean_batch_emits_nothing(self):
        monitor = DriftMonitor()
        idx = monitor.track([f"c{k}" for k in range(8)])
        for w in range(20):
            assert monitor.observe_residuals(idx, np.full(8, 0.002), window=w) == 0
            assert monitor.observe_soc([f"c{k}" for k in range(8)], np.full(8, 0.5)) == 0
        assert len(monitor) == 0 and monitor.events_total == 0


class TestDriftMonitor:
    def test_ring_buffer_is_bounded_but_totals_are_not(self):
        monitor = DriftMonitor(page_hinkley=None, cusum=None, bounds=PhysicsBounds(), max_events=4)
        for k in range(10):
            monitor.observe_soc([f"c{k}"], np.array([2.0]))
        assert len(monitor.events()) == 4
        assert monitor.events_total == 10
        assert monitor.event_counts() == {"soc_bounds": 10}
        monitor.clear()
        assert len(monitor) == 0 and monitor.events_total == 10

    def test_metrics_counters_follow_events(self):
        metrics = MetricsRegistry()
        monitor = DriftMonitor(page_hinkley=None, cusum=None, metrics=metrics)
        monitor.track(["a", "b"])
        monitor.observe_soc(["a"], np.array([-3.0]))
        assert metrics.counter_value("drift_events_total", kind="soc_bounds") == 1.0
        assert metrics.snapshot()["gauges"]["drift_tracked_cells"] == 2.0

    def test_track_is_stable_and_grows(self):
        monitor = DriftMonitor()
        first = monitor.track(["a", "b"])
        second = monitor.track(["b", "c", "a"])
        assert list(first) == [0, 1]
        assert list(second) == [1, 2, 0]
        assert monitor.n_tracked == 3

    def test_per_cell_isolation(self):
        """One drifting cell must alarm alone; its batchmates stay quiet."""
        cfg = CusumConfig(slack=0.005, threshold=0.05, min_samples=5)
        monitor = DriftMonitor(page_hinkley=None, cusum=cfg, bounds=None)
        idx = monitor.track(["quiet", "noisy"])
        for w in range(60):
            residuals = np.array([0.01, 0.01 if w < 30 else 0.3])
            monitor.observe_residuals(idx, residuals, window=w)
        cells = {e.cell_id for e in monitor.events()}
        assert cells == {"noisy"}


# ----------------------------------------------------------------------
class TestResidualStream:
    def test_matches_hand_computation(self):
        out = residual_stream(
            soc_before=np.array([0.8, 0.5]),
            soc_after=np.array([0.76, 0.49]),
            i_avg=np.array([3.0, 1.0]),
            horizon_s=np.array([120.0, 120.0]),
            capacity_ah=np.array([3.0, 3.0]),
        )
        coulomb = -np.array([3.0, 1.0]) * 120.0 / (3600.0 * 3.0)
        expected = np.abs(np.array([-0.04, -0.01]) - coulomb)
        np.testing.assert_allclose(out, expected, atol=1e-15)


# ----------------------------------------------------------------------
class TestEngineIntegration:
    """The engine-side wiring: counters, residual summaries, bounds."""

    @pytest.fixture()
    def model(self):
        from repro.core import TwoBranchSoCNet

        return TwoBranchSoCNet(rng=np.random.default_rng(0))

    def test_estimate_bounds_guard_emits_on_violation(self, model):
        from repro.serve import FleetEngine

        monitor = DriftMonitor(
            page_hinkley=None, cusum=None,
            bounds=PhysicsBounds(soc_min=0.49, soc_max=0.51),
        )
        engine = FleetEngine(default_model=model, drift=monitor)
        engine.register_cell("a")
        engine.estimate(["a"], 3.7, 1.0, 25.0)  # untrained output is far from 0.5
        assert monitor.event_counts() == {"soc_bounds": 1}
        assert monitor.events()[0].cell_id == "a"

    def test_rollout_residuals_feed_metrics_and_detectors(self, model):
        from repro.monitor.metrics import MetricsRegistry
        from repro.serve import FleetEngine, generate_fleet

        metrics = MetricsRegistry()
        monitor = DriftMonitor(metrics=metrics)
        engine = FleetEngine(default_model=model, metrics=metrics, drift=monitor)
        fleet = generate_fleet(
            6, seed=2, ambient_temps_c=(25.0,), c_rates=(1.0,),
            protocols=("discharge",), max_time_s=1800.0,
        )
        results = engine.rollout_fleet(fleet.assignments(), step_s=120.0)
        snap = metrics.snapshot()
        hist = snap["histograms"]['engine_physics_residual{model="__default__"}']
        windows_total = sum(len(r) - 1 for r in results.values())
        assert hist["count"] == windows_total
        assert snap["counters"]['engine_rollout_windows_total{model="__default__"}'] == windows_total
        assert monitor.n_tracked == 6
        # the in-place buffer math matches an offline recomputation of
        # |predicted ΔSoC − coulomb ΔSoC| over every cell's window plan
        from repro.core.rollout import cycle_windows

        total = 0.0
        for cell_id, cycle in fleet.assignments():
            plan = cycle_windows(cycle, 120.0)
            trajectory = results[cell_id].soc_pred
            total += float(
                residual_stream(
                    soc_before=trajectory[:-1],
                    soc_after=trajectory[1:],
                    i_avg=plan.i_avg,
                    horizon_s=plan.horizon_s,
                    capacity_ah=np.full(plan.n_windows, cycle.capacity_ah),
                ).sum()
            )
        assert hist["sum"] == pytest.approx(total, rel=1e-12)

    def test_monitored_rollout_is_numerically_identical(self, model):
        from repro.monitor.metrics import MetricsRegistry
        from repro.serve import FleetEngine, generate_fleet

        fleet = generate_fleet(
            5, seed=4, ambient_temps_c=(25.0,), c_rates=(1.0, 2.0),
            protocols=("discharge",), max_time_s=1800.0,
        )
        metrics = MetricsRegistry()
        monitored = FleetEngine(default_model=model, metrics=metrics, drift=DriftMonitor(metrics=metrics))
        plain = FleetEngine(default_model=model)
        got = monitored.rollout_fleet(fleet.assignments(), step_s=120.0)
        want = plain.rollout_fleet(fleet.assignments(), step_s=120.0)
        for cell_id, _ in fleet.assignments():
            np.testing.assert_array_equal(got[cell_id].soc_pred, want[cell_id].soc_pred)


# ----------------------------------------------------------------------
class TestDriftMonitorFromSpec:
    def test_empty_spec_takes_the_defaults(self):
        monitor = DriftMonitor.from_spec(None)
        assert monitor.bounds == PhysicsBounds()
        assert monitor._ph is not None and monitor._cusum is not None

    def test_explicit_null_disables_a_detector(self):
        monitor = DriftMonitor.from_spec({"page_hinkley": None, "cusum": None, "bounds": None})
        assert monitor.bounds is None
        assert monitor._ph is None and monitor._cusum is None
        assert monitor.observe_soc(["a"], np.array([5.0])) == 0

    def test_tuned_thresholds_apply(self):
        monitor = DriftMonitor.from_spec(
            {"cusum": {"slack": 0.01, "threshold": 0.2}, "max_events": 7}
        )
        assert monitor._cusum.config.threshold == 0.2
        assert monitor._events.maxlen == 7

    def test_max_discharge_c_routes_through_for_c_rate(self):
        monitor = DriftMonitor.from_spec({"bounds": {"max_discharge_c": 3.0, "margin": 2.0}})
        assert monitor.bounds == PhysicsBounds.for_c_rate(3.0, margin=2.0)

    def test_raw_bounds_fields_pass_through(self):
        monitor = DriftMonitor.from_spec({"bounds": {"soc_min": 0.0, "soc_max": 1.0}})
        assert monitor.bounds.soc_min == 0.0 and monitor.bounds.soc_max == 1.0


# ----------------------------------------------------------------------
class TestChemistryDriftRouter:
    """Per-chemistry detector banks behind the single-monitor surface."""

    @staticmethod
    def resolver(chemistry):
        from repro.monitor.drift import ChemistryDriftRouter  # noqa: F401 (import check)

        return {
            "strict": {"bounds": {"soc_min": 0.49, "soc_max": 0.51}},
            "loose": {"bounds": None},
        }.get(chemistry)

    def _router(self, metrics=None):
        from repro.monitor.drift import ChemistryDriftRouter

        return ChemistryDriftRouter(self.resolver, metrics=metrics)

    def test_cells_route_to_their_chemistry_monitor(self):
        router = self._router()
        router.resolve_cell("a", "strict")
        router.resolve_cell("b", "loose")
        soc = np.array([0.9, 0.9])  # violates strict's bounds only
        assert router.observe_soc(["a", "b"], soc) == 1
        events = router.events()
        assert [e.cell_id for e in events] == ["a"]
        assert events[0].kind == "soc_bounds"

    def test_unknown_chemistry_falls_back_to_defaults(self):
        router = self._router()
        router.resolve_cell("x", "na-ion")  # resolver returns None
        assert router.observe_soc(["x"], np.array([0.9])) == 0  # default bounds: fine
        assert router.observe_soc(["x"], np.array([2.0])) == 1  # default bounds: violated

    def test_unbound_cells_use_the_none_monitor(self):
        router = self._router()
        assert router.observe_soc(["ghost"], np.array([2.0])) == 1
        assert router.monitors().keys() == {None}

    def test_resolver_may_hand_over_a_ready_monitor(self):
        from repro.monitor.drift import ChemistryDriftRouter

        mine = DriftMonitor(page_hinkley=None, cusum=None, bounds=PhysicsBounds())
        router = ChemistryDriftRouter(lambda chem: mine)
        assert router.resolve_cell("a", "nmc") is mine
        router.observe_soc(["a"], np.array([2.0]))
        assert mine.event_counts() == {"soc_bounds": 1}

    def test_residual_batches_split_per_monitor(self):
        from repro.monitor.drift import ChemistryDriftRouter

        def resolver(chemistry):
            if chemistry == "twitchy":
                return {
                    "page_hinkley": None, "bounds": None,
                    "cusum": {"slack": 0.005, "threshold": 0.05, "min_samples": 5},
                }
            return {"page_hinkley": None, "cusum": None, "bounds": None}

        router = ChemistryDriftRouter(resolver)
        router.resolve_cell("t", "twitchy")
        router.resolve_cell("calm", "stone")
        idx = router.track(["t", "calm"])
        for w in range(60):  # a drift *step*, not a constant offset
            level = 0.01 if w < 30 else 0.3
            router.observe_residuals(idx, np.array([level, level]), window=w)
        assert {e.cell_id for e in router.events()} == {"t"}
        assert router.n_tracked == 2

    def test_readout_merges_across_monitors(self):
        metrics = MetricsRegistry()
        router = self._router(metrics=metrics)
        router.resolve_cell("a", "strict")
        router.resolve_cell("b", "na-ion")
        router.observe_soc(["a", "b"], np.array([0.9, 2.0]))  # one event each
        assert router.events_total == 2
        assert router.event_counts() == {"soc_bounds": 2}
        assert len(router) == 2
        assert metrics.counter_value("drift_events_total", kind="soc_bounds") == 2.0
        router.clear()
        assert len(router) == 0 and router.events_total == 2

    def test_bounds_envelope_is_the_tightest_over_built_monitors(self):
        """The engine skips the monitor for batches inside the envelope,
        so it must be at least as strict as every chemistry's bounds —
        a violation of any per-chemistry limit always escapes it."""
        router = self._router()
        router.resolve_cell("x", "na-ion")  # default bounds
        assert router.bounds == PhysicsBounds()
        router.resolve_cell("a", "strict")  # [0.49, 0.51] narrows it
        assert router.bounds == PhysicsBounds(
            soc_min=0.49, soc_max=0.51, max_rate_per_s=PhysicsBounds().max_rate_per_s
        )
        # a bounds-less monitor never loosens the envelope (its cells
        # are simply exempt from the per-monitor check)
        router.resolve_cell("b", "loose")
        assert router.bounds.soc_min == 0.49 and router.bounds.soc_max == 0.51
        # ... but a router whose every monitor disabled bounds has none
        only_loose = self._router()
        only_loose.resolve_cell("b", "loose")
        assert only_loose.bounds is None


# ----------------------------------------------------------------------
class TestEngineChemistryRouting:
    """FleetEngine(drift=<resolver>) wraps the callable in a router."""

    @pytest.fixture()
    def model(self):
        from repro.core import TwoBranchSoCNet

        return TwoBranchSoCNet(rng=np.random.default_rng(0))

    def test_engine_routes_detectors_per_chemistry(self, model):
        from repro.serve import FleetEngine

        def resolver(chemistry):
            if chemistry == "strict":
                return {"bounds": {"soc_min": 0.49, "soc_max": 0.51}}
            return {"page_hinkley": None, "cusum": None, "bounds": None}

        engine = FleetEngine(default_model=model, drift=resolver)
        engine.register_cell("a", chemistry="strict")
        engine.register_cell("b", chemistry="lfp")
        engine.estimate(["a", "b"], 3.7, 1.0, 25.0)
        events = engine.drift_events()
        assert [e.cell_id for e in events] == ["a"]
        assert events[0].kind == "soc_bounds"

    def test_uniform_monitor_path_is_unchanged(self, model):
        from repro.serve import FleetEngine

        monitor = DriftMonitor(
            page_hinkley=None, cusum=None, bounds=PhysicsBounds(soc_min=0.49, soc_max=0.51)
        )
        engine = FleetEngine(default_model=model, drift=monitor)
        assert engine.drift is monitor  # no router wrapping
        engine.register_cell("a")
        engine.estimate(["a"], 3.7, 1.0, 25.0)
        assert [e.cell_id for e in engine.drift_events()] == ["a"]

    def test_engine_without_monitor_reports_no_events(self, model):
        from repro.serve import FleetEngine

        assert FleetEngine(default_model=model).drift_events() == []
