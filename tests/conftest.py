"""Shared fixtures: scaled-down dataset campaigns.

The full campaigns (defaults of :mod:`repro.datasets`) take tens of
seconds to simulate; tests use miniature versions that exercise the
same code paths.  Session scope keeps the cost to one generation per
test run.
"""

import pytest

from repro.datasets import LGConfig, SandiaConfig, generate_lg, generate_sandia

SMALL_SANDIA = SandiaConfig(
    cells=("sandia-nmc",),
    ambient_temps_c=(25.0,),
    cycles_per_condition=1,
    sim_dt_s=2.0,
    seed=11,
)

SMALL_LG = LGConfig(
    sampling_period_s=0.5,
    n_train_mixed=2,
    train_temps_c=(10.0, 25.0),
    test_temps_c=(25.0,),
    mixed_segment_s=(120.0, 240.0),
    initial_soc=0.55,
    test_patterns=("us06", "mixed"),
    seed=11,
)


@pytest.fixture(scope="session")
def small_sandia():
    """One-chemistry, one-temperature Sandia campaign (3 cycles)."""
    return generate_sandia(SMALL_SANDIA)


@pytest.fixture(scope="session")
def small_lg():
    """Two train + two test cycle LG campaign at 0.5 s sampling."""
    return generate_lg(SMALL_LG)
