"""Tests for the autoregressive rollout machinery (Fig. 2 / Fig. 5)."""

import numpy as np
import pytest

from repro.battery import coulomb
from repro.core import RolloutResult, TwoBranchSoCNet, model_rollout, rollout_cycle


class TestRolloutCycle:
    def test_coulomb_predictor_tracks_truth(self):
        """Rolling Coulomb counting with the cell's *actual* capacity
        must track the simulator's bookkeeping closely, while a wrong
        (datasheet) capacity drifts — the designed Eq. 1 approximation
        gap the PINN exploits."""
        from repro.battery import CellSimulator, SensorNoise, get_cell_spec
        from repro.datasets import CycleRecord

        spec = get_cell_spec("sandia-nmc")
        sim = CellSimulator(spec, noise=SensorNoise.none(), capacity_factor=0.9)
        sim.reset(soc=0.95, temp_c=spec.ref_temp_c)
        trace = sim.run_profile(np.full(5000, 1.5), 1.0, spec.ref_temp_c, stop_at_cutoff=False)
        cycle = CycleRecord("cc", "test", 25.0, 1.0, spec.capacity_ah, trace)

        def step_with(capacity):
            def step(soc, i_avg, temp_avg, horizon_s):
                return coulomb.predict_soc(soc, i_avg, horizon_s, capacity)

            return step

        actual = spec.capacity_ah * 0.9
        tight = rollout_cycle(step_with(actual), cycle, 100.0, float(trace.soc[0]))
        rated = rollout_cycle(step_with(spec.capacity_ah), cycle, 100.0, float(trace.soc[0]))
        assert tight.mae() < 0.005
        assert rated.mae() > 5 * tight.mae()

    def test_result_lengths(self, small_sandia):
        cycle = small_sandia.test()[0]
        result = rollout_cycle(lambda s, i, t, h: s, cycle, step_s=240.0, initial_soc=0.5)
        expected_windows = (len(cycle) - 1) // 2  # 240 s = 2 samples
        assert len(result) == expected_windows + 1
        assert result.time_s[0] == cycle.data.time_s[0]

    def test_identity_predictor_stays_constant(self, small_sandia):
        cycle = small_sandia.test()[0]
        result = rollout_cycle(lambda s, i, t, h: s, cycle, step_s=120.0, initial_soc=0.7)
        np.testing.assert_allclose(result.soc_pred, 0.7)

    def test_truth_sampled_at_step_boundaries(self, small_sandia):
        cycle = small_sandia.test()[0]
        result = rollout_cycle(lambda s, i, t, h: s, cycle, step_s=120.0, initial_soc=0.7)
        np.testing.assert_allclose(result.soc_true, cycle.data.soc[: len(result)])

    def test_step_below_sampling_raises(self, small_sandia):
        cycle = small_sandia.test()[0]
        with pytest.raises(ValueError):
            rollout_cycle(lambda s, i, t, h: s, cycle, step_s=1.0, initial_soc=0.5)

    def test_cycle_too_short_raises(self, small_sandia):
        cycle = small_sandia.test()[0]
        with pytest.raises(ValueError):
            rollout_cycle(lambda s, i, t, h: s, cycle, step_s=1e9, initial_soc=0.5)

    def test_metrics(self):
        result = RolloutResult(
            time_s=np.array([0.0, 1.0]),
            soc_pred=np.array([1.0, 0.4]),
            soc_true=np.array([1.0, 0.5]),
            initial_soc=1.0,
            step_s=1.0,
        )
        assert result.final_error() == pytest.approx(0.1)
        assert result.mae() == pytest.approx(0.05)


class TestModelRollout:
    def test_untrained_model_runs(self, small_sandia):
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        cycle = small_sandia.test()[0]
        result = model_rollout(model, cycle, step_s=120.0)
        assert len(result) > 1
        assert np.all(np.isfinite(result.soc_pred))

    def test_initial_soc_comes_from_branch1(self, small_sandia):
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        cycle = small_sandia.test()[0]
        result = model_rollout(model, cycle, step_s=120.0)
        d = cycle.data
        expected = model.estimate_soc(d.voltage[0], d.current[0], d.temp_c[0])[0]
        assert result.initial_soc == pytest.approx(float(expected))
        assert result.soc_pred[0] == pytest.approx(float(expected))

    def test_empty_cycle_raises(self, small_sandia):
        import dataclasses

        from repro.battery import CellSimulator, get_cell_spec

        sim = CellSimulator(get_cell_spec("sandia-nmc"))
        empty_trace = sim.run_profile(np.zeros(0), 1.0, 25.0)
        cycle = dataclasses.replace(small_sandia.test()[0], data=empty_trace)
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            model_rollout(model, cycle, step_s=120.0)
