"""Tests for the autoregressive rollout machinery (Fig. 2 / Fig. 5)."""

import numpy as np
import pytest

from repro.battery import coulomb
from repro.core import (
    RolloutResult,
    TwoBranchSoCNet,
    cycle_windows,
    model_rollout,
    rollout_cycle,
)


class TestRolloutCycle:
    def test_coulomb_predictor_tracks_truth(self):
        """Rolling Coulomb counting with the cell's *actual* capacity
        must track the simulator's bookkeeping closely, while a wrong
        (datasheet) capacity drifts — the designed Eq. 1 approximation
        gap the PINN exploits."""
        from repro.battery import CellSimulator, SensorNoise, get_cell_spec
        from repro.datasets import CycleRecord

        spec = get_cell_spec("sandia-nmc")
        sim = CellSimulator(spec, noise=SensorNoise.none(), capacity_factor=0.9)
        sim.reset(soc=0.95, temp_c=spec.ref_temp_c)
        trace = sim.run_profile(np.full(5000, 1.5), 1.0, spec.ref_temp_c, stop_at_cutoff=False)
        cycle = CycleRecord("cc", "test", 25.0, 1.0, spec.capacity_ah, trace)

        def step_with(capacity):
            def step(soc, i_avg, temp_avg, horizon_s):
                return coulomb.predict_soc(soc, i_avg, horizon_s, capacity)

            return step

        actual = spec.capacity_ah * 0.9
        tight = rollout_cycle(step_with(actual), cycle, 100.0, float(trace.soc[0]))
        rated = rollout_cycle(step_with(spec.capacity_ah), cycle, 100.0, float(trace.soc[0]))
        assert tight.mae() < 0.005
        assert rated.mae() > 5 * tight.mae()

    def test_result_lengths(self, small_sandia):
        cycle = small_sandia.test()[0]
        result = rollout_cycle(lambda s, i, t, h: s, cycle, step_s=240.0, initial_soc=0.5)
        full_windows = (len(cycle) - 1) // 2  # 240 s = 2 samples
        tail_windows = 1 if (len(cycle) - 1) % 2 else 0
        assert len(result) == full_windows + tail_windows + 1
        assert result.time_s[0] == cycle.data.time_s[0]
        # the trajectory now reaches the cycle's last recorded sample
        assert result.time_s[-1] == cycle.data.time_s[-1]

    def test_identity_predictor_stays_constant(self, small_sandia):
        cycle = small_sandia.test()[0]
        result = rollout_cycle(lambda s, i, t, h: s, cycle, step_s=120.0, initial_soc=0.7)
        np.testing.assert_allclose(result.soc_pred, 0.7)

    def test_truth_sampled_at_step_boundaries(self, small_sandia):
        cycle = small_sandia.test()[0]
        result = rollout_cycle(lambda s, i, t, h: s, cycle, step_s=120.0, initial_soc=0.7)
        np.testing.assert_allclose(result.soc_true, cycle.data.soc[: len(result)])

    def test_step_hook_streams_every_window(self, small_sandia):
        cycle = small_sandia.test()[0]
        seen = []
        result = rollout_cycle(
            lambda s, i, t, h: s - 0.01,
            cycle,
            step_s=120.0,
            initial_soc=0.7,
            step_hook=lambda w, soc: seen.append((w, soc)),
        )
        assert [w for w, _ in seen] == list(range(len(result)))
        np.testing.assert_allclose([soc for _, soc in seen], result.soc_pred)

    def test_step_hook_abort_leaves_partial_state_streamed(self, small_sandia):
        cycle = small_sandia.test()[0]
        seen = []

        def hook(w, soc):
            seen.append(w)
            if w >= 2:
                raise RuntimeError("crash")

        with pytest.raises(RuntimeError, match="crash"):
            rollout_cycle(lambda s, i, t, h: s, cycle, step_s=120.0, initial_soc=0.5, step_hook=hook)
        assert seen == [0, 1, 2]

    def test_step_below_sampling_raises(self, small_sandia):
        cycle = small_sandia.test()[0]
        with pytest.raises(ValueError):
            rollout_cycle(lambda s, i, t, h: s, cycle, step_s=1.0, initial_soc=0.5)

    def test_cycle_too_short_raises(self, small_sandia):
        cycle = small_sandia.test()[0]
        with pytest.raises(ValueError):
            rollout_cycle(lambda s, i, t, h: s, cycle, step_s=1e9, initial_soc=0.5)

    def test_metrics(self):
        result = RolloutResult(
            time_s=np.array([0.0, 1.0]),
            soc_pred=np.array([1.0, 0.4]),
            soc_true=np.array([1.0, 0.5]),
            initial_soc=1.0,
            step_s=1.0,
        )
        assert result.final_error() == pytest.approx(0.1)
        assert result.mae() == pytest.approx(0.05)
        assert result.rmse() == pytest.approx(np.sqrt(0.01 / 2))
        assert result.max_error() == pytest.approx(0.1)
        assert result.rmse() >= result.mae()
        assert result.tail_s == 0.0


class TestPartialTail:
    """The trailing remainder of a cycle is scored with a shorter step."""

    def _tail_cycle(self):
        """A 10-sample (9-interval) constant-current trace: step 4
        leaves a 1-sample tail."""
        from repro.battery import CellSimulator, SensorNoise, get_cell_spec
        from repro.datasets import CycleRecord

        spec = get_cell_spec("sandia-nmc")
        sim = CellSimulator(spec, noise=SensorNoise.none())
        sim.reset(soc=0.9, temp_c=25.0)
        trace = sim.run_profile(np.full(10, 3.0), 60.0, 25.0, stop_at_cutoff=False)
        return CycleRecord("tail", "test", 25.0, 60.0, spec.capacity_ah, trace)

    def test_cycle_windows_exposes_tail(self):
        cycle = self._tail_cycle()
        plan = cycle_windows(cycle, step_s=240.0)  # 4 samples/window, 9 = 2*4 + 1
        assert plan.n_windows == 3
        np.testing.assert_allclose(plan.horizon_s, [240.0, 240.0, 60.0])
        assert plan.tail_s == 60.0
        no_tail = cycle_windows(cycle, step_s=240.0, include_tail=False)
        assert no_tail.n_windows == 2
        assert no_tail.tail_s == 0.0

    def test_tail_window_averages_remaining_samples(self):
        cycle = self._tail_cycle()
        plan = cycle_windows(cycle, step_s=240.0)
        d = cycle.data
        assert plan.i_avg[-1] == pytest.approx(float(np.mean(d.current[9:10])))
        assert plan.soc_true[-1] == d.soc[9]
        assert plan.time_s[-1] == d.time_s[9]

    def test_rollout_scores_tail_with_short_horizon(self):
        cycle = self._tail_cycle()
        horizons = []

        def spy(soc, i_avg, t_avg, horizon_s):
            horizons.append(horizon_s)
            return soc

        result = rollout_cycle(spy, cycle, step_s=240.0, initial_soc=0.9)
        assert horizons == [240.0, 240.0, 60.0]
        assert result.tail_s == 60.0
        assert len(result) == 4
        assert result.step_s == 240.0  # full-window step is unchanged

    def test_even_division_has_no_tail(self):
        cycle = self._tail_cycle()
        result = rollout_cycle(lambda s, i, t, h: s, cycle, step_s=180.0, initial_soc=0.9)
        assert result.tail_s == 0.0  # 9 intervals = 3 windows of 3
        assert len(result) == 4


class TestModelRollout:
    def test_untrained_model_runs(self, small_sandia):
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        cycle = small_sandia.test()[0]
        result = model_rollout(model, cycle, step_s=120.0)
        assert len(result) > 1
        assert np.all(np.isfinite(result.soc_pred))

    def test_initial_soc_comes_from_branch1(self, small_sandia):
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        cycle = small_sandia.test()[0]
        result = model_rollout(model, cycle, step_s=120.0)
        d = cycle.data
        expected = model.estimate_soc(d.voltage[0], d.current[0], d.temp_c[0])[0]
        assert result.initial_soc == pytest.approx(float(expected))
        assert result.soc_pred[0] == pytest.approx(float(expected))

    def test_empty_cycle_raises(self, small_sandia):
        import dataclasses

        from repro.battery import CellSimulator, get_cell_spec

        sim = CellSimulator(get_cell_spec("sandia-nmc"))
        empty_trace = sim.run_profile(np.zeros(0), 1.0, 25.0)
        cycle = dataclasses.replace(small_sandia.test()[0], data=empty_trace)
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            model_rollout(model, cycle, step_s=120.0)
