"""Tests for the Sandia and LG campaign generators and containers."""

import numpy as np
import pytest

from repro.datasets import CycleRecord, LGConfig, SandiaConfig
from tests.conftest import SMALL_LG, SMALL_SANDIA


class TestCycleContainers:
    def test_record_validation(self, small_sandia):
        record = small_sandia[0]
        assert record.split in ("train", "test")
        with pytest.raises(ValueError):
            CycleRecord("x", "validation", 25.0, 1.0, 3.0, record.data)

    def test_record_len_and_duration(self, small_sandia):
        record = small_sandia[0]
        assert len(record) == len(record.data)
        assert record.duration_s() > 0

    def test_split_filters_partition(self, small_sandia):
        n = len(small_sandia)
        assert len(small_sandia.train()) + len(small_sandia.test()) == n
        assert all(c.split == "train" for c in small_sandia.train())
        assert all(c.split == "test" for c in small_sandia.test())

    def test_by_name(self, small_sandia):
        name = small_sandia[0].name
        assert small_sandia.by_name(name).name == name
        with pytest.raises(KeyError):
            small_sandia.by_name("nonexistent")

    def test_by_tag(self, small_sandia):
        subset = small_sandia.by_tag("chemistry", "nmc")
        assert len(subset) == len(small_sandia)  # single-chemistry config

    def test_summary_mentions_every_cycle(self, small_sandia):
        text = small_sandia.summary()
        for cycle in small_sandia:
            assert cycle.name in text

    def test_total_samples(self, small_sandia):
        assert small_sandia.total_samples() == sum(len(c) for c in small_sandia)


class TestSandiaCampaign:
    def test_split_follows_discharge_rate(self, small_sandia):
        for cycle in small_sandia:
            rate = cycle.tags["discharge_c_rate"]
            expected = "train" if rate in SMALL_SANDIA.train_discharge_c_rates else "test"
            assert cycle.split == expected

    def test_counts(self, small_sandia):
        # 1 cell x (1 train + 2 test rates) x 1 temp x 1 cycle
        assert len(small_sandia) == 3
        assert len(small_sandia.train()) == 1
        assert len(small_sandia.test()) == 2

    def test_sampling_period(self, small_sandia):
        for cycle in small_sandia:
            assert cycle.sampling_period_s == 120.0
            deltas = np.diff(cycle.data.time_s)
            np.testing.assert_allclose(deltas, 120.0)

    def test_cycles_cover_soc_range(self, small_sandia):
        for cycle in small_sandia:
            assert cycle.data.soc.max() > 0.85
            assert cycle.data.soc.min() < 0.15

    def test_charge_and_discharge_phases_present(self, small_sandia):
        for cycle in small_sandia:
            assert cycle.data.current_true.min() < 0
            assert cycle.data.current_true.max() > 0

    def test_higher_rate_shorter_cycle(self, small_sandia):
        by_rate = {c.tags["discharge_c_rate"]: c for c in small_sandia}
        assert by_rate[3.0].duration_s() < by_rate[1.0].duration_s()

    def test_deterministic(self):
        from repro.datasets import generate_sandia

        a = generate_sandia(SMALL_SANDIA)
        b = generate_sandia(SMALL_SANDIA)
        np.testing.assert_array_equal(a[0].data.voltage, b[0].data.voltage)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SandiaConfig(sampling_period_s=100.0, sim_dt_s=3.0)  # not a multiple
        with pytest.raises(ValueError):
            SandiaConfig(cycles_per_condition=0)

    def test_capacity_matches_cell(self, small_sandia):
        for cycle in small_sandia:
            assert cycle.capacity_ah == 3.0  # sandia-nmc


class TestLGCampaign:
    def test_counts(self, small_lg):
        assert len(small_lg.train()) == SMALL_LG.n_train_mixed
        assert len(small_lg.test()) == len(SMALL_LG.test_patterns) * len(SMALL_LG.test_temps_c)

    def test_train_cycles_are_mixed(self, small_lg):
        for cycle in small_lg.train():
            assert cycle.tags["pattern"] == "mixed"

    def test_test_cycles_cover_requested_patterns(self, small_lg):
        patterns = {c.tags["pattern"] for c in small_lg.test()}
        assert patterns == set(SMALL_LG.test_patterns)

    def test_currents_vary_within_cycle(self, small_lg):
        # Unlike Sandia, LG cycles have non-constant currents.
        for cycle in small_lg:
            assert np.std(cycle.data.current_true) > 0.1

    def test_discharge_reaches_low_soc(self, small_lg):
        for cycle in small_lg:
            assert cycle.data.soc[-1] < 0.25

    def test_no_charge_cutoff_stops(self, small_lg):
        # Drive cycles stop on the low-voltage side only.
        for cycle in small_lg:
            if cycle.data.stopped_early:
                assert cycle.data.soc[-1] < 0.5

    def test_sampling_period(self, small_lg):
        for cycle in small_lg:
            np.testing.assert_allclose(np.diff(cycle.data.time_s), SMALL_LG.sampling_period_s)

    def test_temperatures_assigned(self, small_lg):
        train_temps = {c.ambient_c for c in small_lg.train()}
        assert train_temps == set(SMALL_LG.train_temps_c[: SMALL_LG.n_train_mixed])

    def test_regen_present(self, small_lg):
        assert any(cycle.data.current_true.min() < 0 for cycle in small_lg)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LGConfig(n_train_mixed=0)
        with pytest.raises(ValueError):
            LGConfig(n_train_mixed=3, train_temps_c=(25.0,))
        with pytest.raises(ValueError):
            LGConfig(test_patterns=("nedc",))
