"""Tests for registry versioning/channels and canary rollout
(:mod:`repro.serve.registry`, :mod:`repro.serve.canary`)."""

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.nn.serialization import save_state
from repro.serve import (
    CanaryController,
    FleetEngine,
    ModelRegistry,
    ShardedFleet,
    generate_fleet,
    in_canary_slice,
)


@pytest.fixture()
def models():
    rng = np.random.default_rng(7)
    return TwoBranchSoCNet(rng=rng), TwoBranchSoCNet(rng=rng)


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        30, seed=5, ambient_temps_c=(25.0,), c_rates=(1.0, 2.0),
        protocols=("discharge",), max_time_s=1800.0,
    )


# ----------------------------------------------------------------------
class TestRegistryVersioning:
    def test_publish_increments_versions(self, models, tmp_path):
        m1, m2 = models
        registry = ModelRegistry(tmp_path)
        e1 = registry.publish("m", m1)
        e2 = registry.publish("m", m2)
        assert (e1.version, e2.version) == (1, 2)
        assert e1.ref == "m@v1" and e2.ref == "m@v2"
        assert registry.versions("m") == [1, 2]
        assert registry.names() == ["m"]
        assert registry.channels("m") == {"stable": 2}
        assert (tmp_path / "m@v1.npz").exists() and (tmp_path / "m@v2.npz").exists()

    def test_old_versions_stay_loadable(self, models, tmp_path):
        m1, m2 = models
        registry = ModelRegistry(tmp_path)
        registry.publish("m", m1)
        registry.publish("m", m2)
        v1 = registry.load("m@v1").estimate_soc(3.7, 1.0, 25.0)
        np.testing.assert_allclose(v1, m1.estimate_soc(3.7, 1.0, 25.0))
        stable = registry.load("m").estimate_soc(3.7, 1.0, 25.0)
        np.testing.assert_allclose(stable, m2.estimate_soc(3.7, 1.0, 25.0))

    def test_canary_channel_does_not_touch_stable(self, models, tmp_path):
        m1, m2 = models
        registry = ModelRegistry(tmp_path)
        registry.publish("m", m1)
        registry.publish("m", m2, channel="canary")
        assert registry.channels("m") == {"stable": 1, "canary": 2}
        np.testing.assert_allclose(
            registry.load("m").estimate_soc(3.7, 1.0, 25.0),
            m1.estimate_soc(3.7, 1.0, 25.0),
        )
        np.testing.assert_allclose(
            registry.load("m@canary").estimate_soc(3.7, 1.0, 25.0),
            m2.estimate_soc(3.7, 1.0, 25.0),
        )

    def test_promote_and_rollback(self, models, tmp_path):
        m1, m2 = models
        registry = ModelRegistry(tmp_path)
        registry.publish("m", m1)
        registry.publish("m", m2, channel="canary")
        assert registry.promote("m") == 2
        assert registry.channels("m") == {"stable": 2}
        with pytest.raises(KeyError, match="no canary"):
            registry.promote("m")
        registry.set_channel("m", "canary", 1)
        assert registry.rollback("m") == 2
        assert registry.channels("m") == {"stable": 2}
        with pytest.raises(KeyError, match="no canary"):
            registry.rollback("m")

    def test_rollback_of_canary_only_name_is_non_destructive(self, models, tmp_path):
        """A name staged straight to the canary channel has no stable to
        fall back to: rollback must refuse up front, keeping the canary
        pointer intact (promote is the way out)."""
        m1, _ = models
        registry = ModelRegistry(tmp_path)
        registry.publish("staged", m1, channel="canary")
        with pytest.raises(KeyError, match="promote instead"):
            registry.rollback("staged")
        assert registry.channels("staged") == {"canary": 1}  # nothing lost
        # a restart must not silently promote the canary-only name
        assert ModelRegistry(tmp_path).channels("staged") == {"canary": 1}
        assert registry.promote("staged") == 1
        assert registry.channels("staged") == {"stable": 1}

    def test_channels_survive_reopen(self, models, tmp_path):
        m1, m2 = models
        first = ModelRegistry(tmp_path)
        first.publish("m", m1)
        first.publish("m", m2, channel="canary")
        second = ModelRegistry(tmp_path)
        assert second.channels("m") == {"stable": 1, "canary": 2}
        assert second.versions("m") == [1, 2]

    def test_legacy_unversioned_checkpoint_indexed_as_v1(self, models, tmp_path):
        m1, _ = models
        # the v1 schema wrote "<name>.npz" with no version field
        meta = {
            "registry_version": 1,
            "name": "old",
            "chemistry": "nca",
            "dataset": None,
            "hidden": list(m1.config.hidden),
            "horizon_scale": m1.config.horizon_scale_s,
        }
        save_state(m1.state_dict(), tmp_path / "old.npz", meta=meta)
        registry = ModelRegistry(tmp_path)
        entry = registry.describe("old")
        assert entry.version == 1
        assert registry.channels("old") == {"stable": 1}
        registry.publish("old", m1, chemistry="nca")
        assert registry.versions("old") == [1, 2]
        assert registry.channels("old")["stable"] == 2

    def test_bad_refs_raise(self, models, tmp_path):
        m1, _ = models
        registry = ModelRegistry(tmp_path)
        registry.publish("m", m1)
        with pytest.raises(KeyError):
            registry.describe("m@v9")
        with pytest.raises(KeyError):
            registry.describe("m@canary")
        with pytest.raises(KeyError):
            registry.describe("ghost")
        assert "m" in registry and "m@v1" in registry
        assert "m@v9" not in registry and "ghost" not in registry

    def test_at_sign_rejected_in_names(self, models, tmp_path):
        m1, _ = models
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ValueError):
            registry.publish("bad@name", m1)
        with pytest.raises(ValueError):
            registry.publish("m", m1, channel="not a channel")

    def test_resolve_channel(self, models, tmp_path):
        m1, m2 = models
        registry = ModelRegistry(tmp_path)
        registry.publish("gen", m1)
        assert registry.resolve() == "gen"
        with pytest.raises(KeyError):
            registry.resolve(channel="canary")
        registry.publish("gen", m2, channel="canary")
        assert registry.resolve(channel="canary") == "gen@canary"


# ----------------------------------------------------------------------
class TestCanarySlice:
    def test_deterministic_and_fractional(self):
        ids = [f"cell-{k:05d}" for k in range(4000)]
        hits = [cid for cid in ids if in_canary_slice(cid, 0.2)]
        assert hits == [cid for cid in ids if in_canary_slice(cid, 0.2)]
        assert 0.12 < len(hits) / len(ids) < 0.28
        assert not any(in_canary_slice(cid, 0.0) for cid in ids[:50])
        assert all(in_canary_slice(cid, 1.0) for cid in ids[:50])

    def test_salt_draws_independent_slices(self):
        ids = [f"cell-{k:05d}" for k in range(2000)]
        a = {cid for cid in ids if in_canary_slice(cid, 0.3, salt="a")}
        b = {cid for cid in ids if in_canary_slice(cid, 0.3, salt="b")}
        assert a != b

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            in_canary_slice("a", 1.5)


# ----------------------------------------------------------------------
class TestCanaryController:
    @pytest.fixture()
    def setup(self, models, fleet, tmp_path):
        m1, m2 = models
        registry = ModelRegistry(tmp_path)
        registry.publish("prod", m1)
        engine = FleetEngine(registry=registry)
        engine.rollout_fleet(fleet.assignments(), step_s=120.0)
        controller = CanaryController(engine, registry, "prod", fraction=0.4,
                                      max_divergence=1e9)
        return m1, m2, registry, engine, controller

    def test_start_pins_the_hash_slice(self, setup, fleet):
        _, m2, registry, engine, controller = setup
        version = controller.start(candidate=m2)
        assert version == 2
        assert registry.channels("prod") == {"stable": 1, "canary": 2}
        pinned = set(controller.canary_cells())
        assert pinned  # the 40% slice of a 30-cell fleet is non-empty
        for state in engine.cells():
            if state.cell_id in pinned:
                assert state.model_key == "prod@v2"
                assert in_canary_slice(state.cell_id, 0.4)
            else:
                assert state.model_key == "prod"
                assert not in_canary_slice(state.cell_id, 0.4)

    def test_canary_slice_serves_candidate_weights(self, setup, fleet):
        m1, m2, _, engine, controller = setup
        controller.start(candidate=m2)
        pinned = set(controller.canary_cells())
        cid_canary = next(iter(pinned))
        cid_stable = next(s.cell_id for s in engine.cells() if s.cell_id not in pinned)
        got_canary = engine.estimate([cid_canary], 3.7, 1.0, 25.0)
        got_stable = engine.estimate([cid_stable], 3.7, 1.0, 25.0)
        np.testing.assert_allclose(got_canary, m2.estimate_soc(3.7, 1.0, 25.0), atol=1e-9)
        np.testing.assert_allclose(got_stable, m1.estimate_soc(3.7, 1.0, 25.0), atol=1e-9)

    def test_evaluate_reports_divergence(self, setup, fleet):
        _, m2, _, _, controller = setup
        controller.start(candidate=m2)
        report = controller.evaluate(fleet.assignments(), step_s=120.0)
        assert report.n_cells == len(controller.canary_cells())
        assert report.n_points > report.n_cells
        assert 0.0 <= report.mean_abs_divergence <= report.max_abs_divergence
        assert report.passed  # budget was set huge
        assert "PASS" in report.summary()

    def test_promote_flips_stable_and_unpins(self, setup, fleet):
        _, m2, registry, engine, controller = setup
        controller.start(candidate=m2)
        assert controller.promote() == 2
        assert registry.channels("prod") == {"stable": 2}
        assert not controller.active
        assert all(s.model_key == "prod" for s in engine.cells())
        # the whole fleet now serves the promoted weights
        out = engine.estimate([next(engine.cells()).cell_id], 3.7, 1.0, 25.0)
        np.testing.assert_allclose(out, m2.estimate_soc(3.7, 1.0, 25.0), atol=1e-9)

    def test_rollback_keeps_stable_and_unpins(self, setup, fleet):
        m1, m2, registry, engine, controller = setup
        controller.start(candidate=m2)
        assert controller.rollback() == 1
        assert registry.channels("prod") == {"stable": 1}
        assert all(s.model_key == "prod" for s in engine.cells())
        out = engine.estimate([next(engine.cells()).cell_id], 3.7, 1.0, 25.0)
        np.testing.assert_allclose(out, m1.estimate_soc(3.7, 1.0, 25.0), atol=1e-9)

    def test_lifecycle_guards(self, setup, fleet):
        _, m2, _, _, controller = setup
        with pytest.raises(ValueError, match="no active canary"):
            controller.promote()
        with pytest.raises(ValueError, match="exactly one"):
            controller.start()
        controller.start(candidate=m2)
        with pytest.raises(ValueError, match="already active"):
            controller.start(candidate=m2)

    def test_works_through_sharded_fleet(self, models, fleet, tmp_path):
        m1, m2 = models
        registry = ModelRegistry(tmp_path)
        registry.publish("prod", m1)
        sharded = ShardedFleet(4, registry=registry)
        sharded.rollout_fleet(fleet.assignments(), step_s=120.0)
        controller = CanaryController(sharded, registry, "prod", fraction=0.4,
                                      max_divergence=1e9)
        controller.start(candidate=m2)
        pinned = set(controller.canary_cells())
        assert pinned
        report = controller.evaluate(fleet.assignments(), step_s=120.0)
        assert report.n_cells == len(pinned)
        controller.promote()
        assert all(s.model_key == "prod" for s in sharded.cells())


# ----------------------------------------------------------------------
class TestRegistryLiveFollow:
    """A registry instance follows publishes/promotes made by *another*
    instance on the same root (the shard-worker scenario: the parent's
    control plane mutates channels.json, children must see it live)."""

    def test_follower_resolves_a_foreign_publish_and_promote(self, models, tmp_path):
        m1, m2 = models
        publisher = ModelRegistry(tmp_path)
        publisher.publish("prod", m1)
        follower = ModelRegistry(tmp_path)  # a shard worker's instance
        assert follower.resolve() == "prod"

        # foreign canary publish: the follower resolves the pinned ref
        # and the canary channel without an explicit refresh
        publisher.publish("prod", m2, channel="canary")
        assert follower.describe("prod@v2").version == 2
        assert follower.resolve(channel="canary") == "prod@canary"
        assert follower.channels("prod") == {"stable": 1, "canary": 2}

        # foreign promote: bare-name resolution follows stable -> v2,
        # including for chemistry queries routed through resolve()
        publisher.promote("prod")
        assert follower.describe("prod").version == 2
        assert follower.resolve() == "prod"
        assert follower.channels("prod") == {"stable": 2}

    def test_follower_survives_pointer_to_brand_new_version(self, models, tmp_path):
        """channels.json can point at a version the follower has never
        indexed; the pointer must trigger a re-index, not be dropped
        (dropping it would make resolve() fail for every new cell)."""
        m1, m2 = models
        publisher = ModelRegistry(tmp_path)
        publisher.publish("prod", m1)
        follower = ModelRegistry(tmp_path)
        publisher.publish("prod", m2)  # stable jumps straight to v2
        assert follower.resolve() == "prod"
        assert follower.describe("prod").version == 2
        assert follower.load("prod").state_dict().keys() == m2.state_dict().keys()
