"""Tests for sharded fleet serving (:mod:`repro.serve.sharding`)."""

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.serve import FleetEngine, ModelRegistry, ShardedFleet, generate_fleet, shard_for

FAST_FLEET = dict(
    ambient_temps_c=(25.0,),
    c_rates=(1.0, 2.0),
    protocols=("discharge",),
    max_time_s=1800.0,
)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def fleet():
    """Fleet spanning both protocols so cycle lengths differ per cell."""
    return generate_fleet(
        24, seed=3, ambient_temps_c=(10.0, 25.0), c_rates=(1.0,), max_time_s=1800.0
    )


# ----------------------------------------------------------------------
class TestShardFor:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 5, 16):
            for k in range(50):
                s = shard_for(f"cell-{k:05d}", n)
                assert 0 <= s < n
                assert s == shard_for(f"cell-{k:05d}", n)

    def test_distribution_roughly_uniform(self):
        counts = [0] * 8
        for k in range(4000):
            counts[shard_for(f"cell-{k:05d}", 8)] += 1
        assert min(counts) > 4000 / 8 * 0.7  # no starving shard

    def test_stable_rebalancing_moves_about_one_over_n(self):
        """Growing 4 -> 5 shards should re-home ~1/5 of cells, never more
        than a full reshuffle's worth."""
        ids = [f"cell-{k:05d}" for k in range(4000)]
        moved = sum(shard_for(c, 4) != shard_for(c, 5) for c in ids)
        assert 0.12 < moved / len(ids) < 0.30

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_for("a", 0)


# ----------------------------------------------------------------------
class TestShardedFleet:
    def test_rejects_bad_config(self, model):
        with pytest.raises(ValueError):
            ShardedFleet(0, default_model=model)
        with pytest.raises(ValueError):
            ShardedFleet(2)  # no model, no registry

    def test_rollout_matches_single_engine(self, model, fleet):
        """The acceptance property: >=4 shards, 1e-9 agreement with the
        single-engine path across heterogeneous cycle lengths."""
        single = FleetEngine(default_model=model).rollout_fleet(fleet.assignments(), step_s=120.0)
        sharded = ShardedFleet(4, default_model=model)
        results = sharded.rollout_fleet(fleet.assignments(), step_s=120.0)
        assert set(results) == set(single)
        for cid, _ in fleet.assignments():
            np.testing.assert_allclose(
                results[cid].soc_pred, single[cid].soc_pred, atol=1e-9, rtol=0
            )
            np.testing.assert_array_equal(results[cid].time_s, single[cid].time_s)
        assert sum(sharded.shard_sizes()) == len(fleet)
        assert sorted(results) == sorted(cid for cid, _ in fleet.assignments())

    def test_cells_live_on_their_hash_shard(self, model, fleet):
        sharded = ShardedFleet(4, default_model=model)
        sharded.rollout_fleet(fleet.assignments(), step_s=120.0)
        for m in fleet.members:
            assert m.cell_id in sharded
            assert sharded.shard_of(m.cell_id) == shard_for(m.cell_id, 4)
            assert sharded.cell(m.cell_id).soc is not None
        assert len(sharded) == len(fleet)
        assert len(list(sharded.cells())) == len(fleet)

    def test_estimate_and_predict_match_single_engine(self, model):
        ids = [f"c{k}" for k in range(10)]
        single = FleetEngine(default_model=model)
        sharded = ShardedFleet(4, default_model=model)
        for cid in ids:
            single.register_cell(cid)
            sharded.register_cell(cid)
        v = np.linspace(3.2, 4.0, 10)
        i = np.linspace(0.5, 3.0, 10)
        a = single.estimate(ids, v, i, 25.0, now_s=1.0)
        b = sharded.estimate(ids, v, i, 25.0, now_s=1.0)
        np.testing.assert_allclose(b, a, atol=1e-9, rtol=0)
        ap = single.predict(ids, 2.0, 25.0, 120.0, commit=True, now_s=1.0)
        bp = sharded.predict(ids, 2.0, 25.0, 120.0, commit=True, now_s=1.0)
        np.testing.assert_allclose(bp, ap, atol=1e-9, rtol=0)
        for cid in ids:
            assert sharded.cell(cid).soc == pytest.approx(single.cell(cid).soc, abs=1e-9)
            assert sharded.cell(cid).n_requests == 2
            assert sharded.cell(cid).last_seen_s == 1.0

    def test_unknown_cell_raises(self, model):
        sharded = ShardedFleet(3, default_model=model)
        with pytest.raises(KeyError):
            sharded.cell("ghost")
        with pytest.raises(KeyError):
            sharded.estimate(["ghost"], 3.7, 1.0, 25.0)

    def test_deregister_cell(self, model):
        sharded = ShardedFleet(3, default_model=model)
        sharded.register_cell("a")
        state = sharded.deregister_cell("a")
        assert state.cell_id == "a"
        assert "a" not in sharded

    def test_rebalance_preserves_state_and_moves_minimum(self, model, fleet):
        sharded = ShardedFleet(4, default_model=model)
        sharded.rollout_fleet(fleet.assignments(), step_s=120.0)
        before = {s.cell_id: (s.soc, s.n_requests) for s in sharded.cells()}
        moved = sharded.rebalance(6)
        assert sharded.n_shards == 6
        assert len(sharded) == len(fleet)
        # only cells whose rendezvous winner changed may move
        expected_moves = sum(
            shard_for(m.cell_id, 4) != shard_for(m.cell_id, 6) for m in fleet.members
        )
        assert moved == expected_moves
        for m in fleet.members:
            assert sharded.shard_of(m.cell_id) == shard_for(m.cell_id, 6)
            state = sharded.cell(m.cell_id)
            assert (state.soc, state.n_requests) == before[m.cell_id]

    def test_registry_routing_through_shards(self, fleet, tmp_path):
        registry = ModelRegistry(tmp_path)
        rng = np.random.default_rng(1)
        for chem in ("nca", "nmc", "lfp"):
            registry.publish(chem, TwoBranchSoCNet(rng=rng), chemistry=chem)
        sharded = ShardedFleet(4, registry=registry)
        sharded.rollout_fleet(fleet.assignments(), step_s=120.0)
        for m in fleet.members:
            assert sharded.cell(m.cell_id).model_key == m.chemistry
