"""End-to-end tests for ``repro-soc serve`` (:mod:`repro.serve.daemon`).

The acceptance property lives here: a daemon with socket workers
survives a worker being killed — /metrics and /healthz keep answering,
estimates keep serving — and the worker heals by dialing back in
(reattach by name), not by operator surgery.
"""

import json
import os
import subprocess
import sys
import time
import types
import urllib.request

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.model import TwoBranchSoCNet
from repro.monitor.drift import DriftMonitor, PhysicsBounds
from repro.serve import (
    CanaryController,
    DaemonUnavailable,
    FleetEngine,
    ModelRegistry,
    ShardedFleet,
    SocClient,
    WorkerSpec,
)
from repro.serve.daemon import SocDaemon
from repro.serve.transport import connect

SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def wait_for(pred, timeout_s=30.0, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if pred():
            return
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting for {what}")


def _join_code(daemon_url: str, name: str) -> list[str]:
    """Command line for a standalone ``--connect`` worker process."""
    code = (
        "import sys\n"
        "from repro.serve.workers import run_worker_connect\n"
        f"sys.exit(run_worker_connect({daemon_url!r}, {name!r}, connect_timeout_s=10.0))\n"
    )
    return [sys.executable, "-c", code]


def _worker_env() -> dict:
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture(scope="module")
def model():
    # a tiny net: daemon tests exercise plumbing, not accuracy
    return TwoBranchSoCNet(ModelConfig(hidden=(8,)), rng=np.random.default_rng(0))


# ----------------------------------------------------------------------
class TestDaemonE2E:
    def test_worker_kill_and_restart_by_reconnect(self, model, tmp_path):
        spec = WorkerSpec(
            url="tcp://127.0.0.1:0",
            model=model,
            spawn=True,
            journal=str(tmp_path / "fleet.journal"),
        )
        fleet = ShardedFleet(2, spec=spec)
        daemon = SocDaemon(
            fleet,
            "tcp://127.0.0.1:0",
            worker_spec=spec,
            control_interval_s=0.2,
            exposition_port=0,
        )
        joiner = rejoiner = None
        with daemon, SocClient(daemon.url) as client:
            client.register_cell("cellA")
            client.register_cell("cellB")
            base = client.estimate("cellA", 3.7, 1.0, 25.0)

            # a standalone worker dials in and becomes shard 3
            joiner = subprocess.Popen(_join_code(daemon.url, "joiner"), env=_worker_env())
            wait_for(lambda: fleet.n_shards == 3, what="joiner attach")
            assert client.worker_health() == [True, True, True]
            assert client.estimate("cellA", 3.7, 1.0, 25.0) == base

            # kill it: the control loop's heartbeat flags the dead shard...
            joiner.kill()
            joiner.wait(timeout=10)
            wait_for(lambda: not all(client.worker_health()), what="death detection")

            # ...while the plane stays up: scrapes answer, traffic serves
            health = json.load(urllib.request.urlopen(daemon.exposition_url + "/healthz"))
            assert health["ok"] is True
            assert False in health["workers"]
            scrape = urllib.request.urlopen(daemon.exposition_url + "/metrics").read()
            assert b"gateway" in scrape
            assert client.estimate("cellA", 3.7, 1.0, 25.0) == base

            # restart-by-reconnect: same name, fresh process — the dead
            # shard heals in place instead of joining as new capacity
            rejoiner = subprocess.Popen(_join_code(daemon.url, "joiner"), env=_worker_env())
            wait_for(
                lambda: all(client.worker_health()) and fleet.n_shards == 3,
                what="reattach heal",
            )
            assert client.estimate("cellA", 3.7, 1.0, 25.0) == base

            client.shutdown_daemon()
            assert daemon.wait(timeout_s=10)
        for proc in (joiner, rejoiner):
            if proc is not None:
                proc.poll() is None and proc.kill()
                proc.wait(timeout=10)

    def test_add_worker_by_url_through_client(self, model):
        from repro.serve import RemoteShardWorker

        spec = WorkerSpec(url="tcp://127.0.0.1:0", model=model, spawn=True)
        fleet = ShardedFleet(2, spec=spec)
        spare = RemoteShardWorker("tcp://127.0.0.1:0", default_model=model, spawn=True, name="spare")
        spare._drop_link()  # free its listener for the daemon to dial
        daemon = SocDaemon(fleet, "tcp://127.0.0.1:0", worker_spec=spec, control_interval_s=0)
        with daemon, SocClient(daemon.url) as client:
            client.register_cell("a")
            index = client.add_worker(spare.url)
            assert index == 2
            assert client.worker_health() == [True, True, True]
        spare.close()


# ----------------------------------------------------------------------
class TestDaemonClients:
    @pytest.fixture()
    def daemon(self, model):
        daemon = SocDaemon(
            FleetEngine(default_model=model), "tcp://127.0.0.1:0", control_interval_s=0
        )
        with daemon:
            yield daemon

    def test_hello_and_engine_ops(self, daemon):
        with SocClient(daemon.url) as client:
            hello = client.hello()
            assert hello["service"] == "repro-soc"
            assert "estimate" in hello["ops"]
            assert client.ping()
            client.register_cell("a", chemistry="nmc")
            assert "a" in client and len(client) == 1
            soc = client.estimate("a", 3.7, 1.0, 25.0)
            assert 0.0 <= soc <= 1.0
            assert client.cell("a").chemistry == "nmc"
            assert [s.cell_id for s in client.cells()] == ["a"]
            stats = client.stats()
            assert stats["retries"] == 0 and stats["elapsed_s"] > 0

    def test_engine_errors_map_to_typed_exceptions(self, daemon):
        with SocClient(daemon.url) as client:
            with pytest.raises(KeyError):
                client.cell("ghost")
            with pytest.raises(ValueError, match="requires a registry"):
                client.register_cell("a", model_name="canary-v2")

    def test_idle_connection_survives_the_accept_poll(self, daemon):
        """The idle wait must not poison the stream: a client that goes
        quiet for several poll intervals still gets served."""
        with SocClient(daemon.url) as client:
            client.register_cell("a")
            first = client.estimate("a", 3.7, 1.0, 25.0)
            time.sleep(0.8)  # > 3 poll intervals of 0.25s
            assert client.estimate("a", 3.7, 1.0, 25.0) == first

    def test_client_reconnects_after_transport_loss(self, daemon):
        with SocClient(daemon.url) as client:
            client.register_cell("a")
            client._transport.close()  # simulate a dropped connection
            assert "a" in client  # the next call redials

    def test_stopped_daemon_raises_daemon_unavailable(self, model):
        daemon = SocDaemon(
            FleetEngine(default_model=model), "tcp://127.0.0.1:0", control_interval_s=0
        )
        daemon.start()
        client = SocClient(daemon.url)
        assert client.ping()
        daemon.stop()
        assert client.ping() is False  # ping degrades to False, never raises
        with pytest.raises(DaemonUnavailable):
            client.hello()
        client.close()

    def test_registry_ops_without_a_registry_are_runtime_errors(self, daemon, model):
        with SocClient(daemon.url) as client:
            with pytest.raises(RuntimeError, match="no model registry"):
                client.publish("serve", model)
            with pytest.raises(RuntimeError, match="no model registry"):
                client.promote("serve")
            with pytest.raises(RuntimeError, match="no model registry"):
                client.rollback("serve")

    def test_inbound_worker_rejected_without_worker_spec(self, daemon):
        """A worker_hello on a daemon that cannot provision workers is
        acked (protocol) and then dropped, never half-adopted."""
        transport = connect(daemon.url, timeout_s=5.0)
        try:
            transport.send_pickle(("worker_hello", ("stray",), {}))
            assert transport.recv_frame(timeout_s=5.0) == ("ok", "attach")
            # the attach fails daemon-side (no worker_spec): it hangs up
            assert transport.recv_frame(timeout_s=5.0) is None
        finally:
            transport.close()
        assert len(daemon.engine) == 0  # nothing was adopted


# ----------------------------------------------------------------------
class TestDaemonRegistryOps:
    """Model-lifecycle ops over the wire: publish / promote / rollback /
    drift_events — the surface a remote retrain pipeline drives."""

    @pytest.fixture()
    def candidate(self):
        return TwoBranchSoCNet(ModelConfig(hidden=(8,)), rng=np.random.default_rng(1))

    def _registry_daemon(self, model, tmp_path, drift=None, autopilot=None):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("serve", model)
        engine = FleetEngine(registry=registry, drift=drift)
        return (
            SocDaemon(engine, "tcp://127.0.0.1:0", control_interval_s=0, autopilot=autopilot),
            registry,
            engine,
        )

    def test_publish_promote_rollback_roundtrip(self, model, candidate, tmp_path):
        daemon, registry, _ = self._registry_daemon(model, tmp_path)
        with daemon, SocClient(daemon.url) as client:
            # the shipped weights land in the registry verbatim
            assert client.publish("serve", candidate, chemistry="nmc") == 2
            assert registry.channels("serve") == {"stable": 2}
            assert registry.describe("serve").chemistry == "nmc"
            restored = registry.load("serve")
            for key, value in candidate.state_dict().items():
                np.testing.assert_array_equal(restored.state_dict()[key], value)

            assert client.publish("serve", candidate, channel="canary") == 3
            assert registry.channels("serve") == {"stable": 2, "canary": 3}
            assert client.promote("serve") == 3
            assert registry.channels("serve") == {"stable": 3}

            assert client.publish("serve", candidate, channel="canary") == 4
            assert client.rollback("serve") == 3
            assert registry.channels("serve") == {"stable": 3}

    def test_canary_publish_routes_through_the_autopilot_controller(
        self, model, candidate, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("serve", model)
        engine = FleetEngine(registry=registry)
        controller = CanaryController(engine, registry, "serve", fraction=1.0)
        autopilot = types.SimpleNamespace(controller=controller)
        daemon = SocDaemon(engine, "tcp://127.0.0.1:0", control_interval_s=0, autopilot=autopilot)
        with daemon, SocClient(daemon.url) as client:
            client.register_cell("a", model_name="serve")
            version = client.publish("serve", candidate, channel="canary")
            assert version == 2
            # not just a channel flip: the controller staged a *steered*
            # canary with the traffic slice pinned
            assert controller.active and controller.candidate_version == 2
            assert controller.canary_cells() == ["a"]
            with pytest.raises(ValueError, match="already active"):
                client.publish("serve", candidate, channel="canary")
            # promote routes through the controller too: slice unpinned
            assert client.promote("serve") == 2
            assert not controller.active
            assert registry.channels("serve") == {"stable": 2}

            assert client.publish("serve", candidate, channel="canary") == 3
            assert client.rollback("serve") == 2
            assert not controller.active and registry.channels("serve") == {"stable": 2}

    def test_canary_publish_for_other_models_skips_the_controller(
        self, model, candidate, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("serve", model)
        registry.publish("aux", model)
        engine = FleetEngine(registry=registry)
        controller = CanaryController(engine, registry, "serve", fraction=1.0)
        autopilot = types.SimpleNamespace(controller=controller)
        daemon = SocDaemon(engine, "tcp://127.0.0.1:0", control_interval_s=0, autopilot=autopilot)
        with daemon, SocClient(daemon.url) as client:
            assert client.publish("aux", candidate, channel="canary") == 2
            assert not controller.active  # steers "serve", not "aux"
            assert registry.channels("aux") == {"stable": 1, "canary": 2}

    def test_drift_events_travel_the_wire(self, model, tmp_path):
        # impossible bounds: every estimate is a violation
        monitor = DriftMonitor(
            page_hinkley=None, cusum=None, bounds=PhysicsBounds(soc_min=1.5, soc_max=2.0)
        )
        daemon, _, _ = self._registry_daemon(model, tmp_path, drift=monitor)
        with daemon, SocClient(daemon.url) as client:
            client.register_cell("a", model_name="serve")
            assert client.drift_events() == []
            client.estimate("a", 3.7, 1.0, 25.0)
            events = client.drift_events()
            assert events and all(event.cell_id == "a" for event in events)
            assert {event.kind for event in events} == {"soc_bounds"}

    def test_drift_events_empty_without_a_monitor(self, model, tmp_path):
        daemon, _, _ = self._registry_daemon(model, tmp_path)
        with daemon, SocClient(daemon.url) as client:
            client.register_cell("a", model_name="serve")
            client.estimate("a", 3.7, 1.0, 25.0)
            assert client.drift_events() == []
