"""Tests for the physics collocation sampler (Eq. 1 collocation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery import coulomb
from repro.core import CollocationBatch, CollocationSampler, PhysicsConfig
from repro.datasets import PredictionSamples


def _pool(n=50, capacity=3.0, current_lo=-1.0, current_hi=5.0, seed=0):
    rng = np.random.default_rng(seed)
    return PredictionSamples(
        v_t=rng.uniform(3.0, 4.2, n),
        i_t=rng.uniform(current_lo, current_hi, n),
        temp_t=rng.uniform(0.0, 40.0, n),
        soc_t=rng.uniform(0, 1, n),
        i_avg=rng.uniform(current_lo, current_hi, n),
        temp_avg=rng.uniform(0.0, 40.0, n),
        horizon_s=np.full(n, 120.0),
        soc_target=rng.uniform(0, 1, n),
        capacity_ah=np.full(n, capacity),
    )


class TestCollocationBatch:
    def test_validation(self):
        with pytest.raises(ValueError):
            CollocationBatch(features=np.zeros((5, 3)), targets=np.zeros(5))
        with pytest.raises(ValueError):
            CollocationBatch(features=np.zeros((5, 4)), targets=np.zeros(4))

    def test_len(self):
        batch = CollocationBatch(features=np.zeros((7, 4)), targets=np.zeros(7))
        assert len(batch) == 7


class TestCollocationSampler:
    def test_default_size_from_config(self):
        sampler = CollocationSampler(_pool(), PhysicsConfig(n_collocation=33), np.random.default_rng(0))
        assert len(sampler.sample()) == 33

    def test_explicit_size(self):
        sampler = CollocationSampler(_pool(), PhysicsConfig(), np.random.default_rng(0))
        assert len(sampler.sample(5)) == 5

    def test_invalid_size(self):
        sampler = CollocationSampler(_pool(), PhysicsConfig(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            sampler.sample(0)

    def test_empty_pool_raises(self):
        pool = _pool(1)
        empty = PredictionSamples(**{
            f: getattr(pool, f)[:0] for f in (
                "v_t", "i_t", "temp_t", "soc_t", "i_avg", "temp_avg",
                "horizon_s", "soc_target", "capacity_ah",
            )
        })
        with pytest.raises(ValueError):
            CollocationSampler(empty, PhysicsConfig(), np.random.default_rng(0))

    def test_targets_satisfy_eq1(self):
        pool = _pool(capacity=3.0)
        sampler = CollocationSampler(pool, PhysicsConfig(horizons_s=(60.0, 120.0)), np.random.default_rng(0))
        batch = sampler.sample(500)
        soc0, current, _, horizon = batch.features.T
        expected = coulomb.predict_soc(soc0, current, horizon, 3.0)
        np.testing.assert_allclose(batch.targets, expected, atol=1e-12)

    def test_mixed_capacity_pool_uses_per_sample_capacity(self):
        a, b = _pool(30, capacity=1.1, seed=1), _pool(30, capacity=3.2, seed=2)
        pool = PredictionSamples.concatenate([a, b])
        sampler = CollocationSampler(pool, PhysicsConfig(horizons_s=(120.0,)), np.random.default_rng(0))
        batch = sampler.sample(1000)
        soc0, current, _, horizon = batch.features.T
        # each target must match Eq. 1 under one of the two capacities
        e1 = coulomb.predict_soc(soc0, current, horizon, 1.1)
        e2 = coulomb.predict_soc(soc0, current, horizon, 3.2)
        match = np.isclose(batch.targets, e1) | np.isclose(batch.targets, e2)
        assert np.all(match)

    def test_horizons_only_from_configured_set(self):
        sampler = CollocationSampler(
            _pool(), PhysicsConfig(horizons_s=(30.0, 50.0, 70.0)), np.random.default_rng(0)
        )
        batch = sampler.sample(300)
        assert set(np.unique(batch.features[:, 3])) <= {30.0, 50.0, 70.0}

    def test_all_horizons_sampled(self):
        sampler = CollocationSampler(
            _pool(), PhysicsConfig(horizons_s=(30.0, 50.0, 70.0)), np.random.default_rng(0)
        )
        batch = sampler.sample(300)
        assert set(np.unique(batch.features[:, 3])) == {30.0, 50.0, 70.0}

    def test_currents_from_pool(self):
        pool = _pool()
        sampler = CollocationSampler(pool, PhysicsConfig(), np.random.default_rng(0))
        batch = sampler.sample(200)
        assert np.all(np.isin(batch.features[:, 1], pool.i_avg))

    def test_initial_soc_in_unit_interval(self):
        sampler = CollocationSampler(_pool(), PhysicsConfig(), np.random.default_rng(0))
        batch = sampler.sample(500)
        soc0 = batch.features[:, 0]
        assert np.all((soc0 >= 0.0) & (soc0 <= 1.0))
        assert soc0.std() > 0.2  # actually spread out, not constant

    def test_deterministic_per_rng(self):
        a = CollocationSampler(_pool(), PhysicsConfig(), np.random.default_rng(5)).sample(50)
        b = CollocationSampler(_pool(), PhysicsConfig(), np.random.default_rng(5)).sample(50)
        np.testing.assert_array_equal(a.features, b.features)

    def test_labels_not_needed(self):
        """The physics batch never touches soc_target — its labels come
        from Eq. 1 (the paper stresses this label-free property)."""
        pool = _pool()
        pool.soc_target[:] = np.nan  # poison the labels
        sampler = CollocationSampler(pool, PhysicsConfig(), np.random.default_rng(0))
        batch = sampler.sample(100)
        assert np.all(np.isfinite(batch.targets))

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_targets_follow_sign_convention(self, seed):
        sampler = CollocationSampler(_pool(seed=seed), PhysicsConfig(), np.random.default_rng(seed))
        batch = sampler.sample(100)
        soc0, current, _, _ = batch.features.T
        discharging = current > 0
        assert np.all(batch.targets[discharging] <= soc0[discharging] + 1e-12)
        charging = current < 0
        assert np.all(batch.targets[charging] >= soc0[charging] - 1e-12)
