"""Tests for OCV curves, chemistry registry, and cell specs."""

import numpy as np
import pytest

from repro.battery import (
    CELL_SPECS,
    CHEMISTRIES,
    CellSpec,
    OCVCurve,
    OCVTerm,
    get_cell_spec,
    get_chemistry,
)


class TestOCVTerm:
    def test_const(self):
        t = OCVTerm("const", 3.0)
        np.testing.assert_allclose(t.value(np.array([0.0, 1.0])), 3.0)
        np.testing.assert_allclose(t.derivative(np.array([0.5])), 0.0)

    def test_linear(self):
        t = OCVTerm("linear", 2.0)
        assert t.value(np.array([0.5]))[0] == 1.0
        assert t.derivative(np.array([0.9]))[0] == 2.0

    def test_power(self):
        t = OCVTerm("power", 1.0, p=2.0)
        assert t.value(np.array([3.0]))[0] == 9.0
        assert t.derivative(np.array([3.0]))[0] == 6.0

    def test_exp(self):
        t = OCVTerm("exp", 1.0, k=-2.0)
        assert t.value(np.array([0.0]))[0] == 1.0
        assert t.derivative(np.array([0.0]))[0] == -2.0

    def test_tanh(self):
        t = OCVTerm("tanh", 1.0, k=1.0, x0=0.0)
        assert t.value(np.array([0.0]))[0] == 0.0
        assert t.derivative(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_unknown_kind_raises(self):
        t = OCVTerm("nope", 1.0)
        with pytest.raises(ValueError):
            t.value(np.array([0.5]))


class TestOCVCurve:
    def test_empty_terms_raise(self):
        with pytest.raises(ValueError):
            OCVCurve([])

    def test_scalar_in_scalar_out(self):
        curve = get_chemistry("nmc").ocv
        out = curve(0.5)
        assert isinstance(out, float)

    def test_clamps_out_of_range(self):
        curve = get_chemistry("nmc").ocv
        assert curve(-0.5) == curve(0.0)
        assert curve(1.5) == curve(1.0)

    def test_derivative_matches_finite_difference(self):
        curve = get_chemistry("nca").ocv
        s = np.linspace(0.05, 0.95, 50)
        eps = 1e-7
        numeric = (curve(s + eps) - curve(s - eps)) / (2 * eps)
        np.testing.assert_allclose(curve.derivative(s), numeric, rtol=1e-5, atol=1e-6)

    def test_derivative_zero_outside_range(self):
        curve = get_chemistry("lfp").ocv
        assert curve.derivative(-0.1) == 0.0
        assert curve.derivative(1.1) == 0.0

    @pytest.mark.parametrize("name", sorted(CHEMISTRIES))
    def test_monotonic_increasing(self, name):
        curve = get_chemistry(name).ocv
        s = np.linspace(0.0, 1.0, 1001)
        v = curve(s)
        assert np.all(np.diff(v) > 0), f"{name} OCV not strictly increasing"

    @pytest.mark.parametrize("name", sorted(CHEMISTRIES))
    def test_voltage_window_physical(self, name):
        chem = get_chemistry(name)
        # fully-charged OCV must be able to trigger the charge cutoff
        # (tolerance covers the residual exponential-knee term at s=1)
        assert chem.ocv(1.0) >= chem.v_max - 1e-6
        # fully-discharged OCV must sit below the discharge cutoff so
        # CC discharges terminate on voltage, as in the real campaigns
        assert chem.ocv(0.0) < chem.v_min

    def test_lfp_plateau_is_flat(self):
        curve = get_chemistry("lfp").ocv
        plateau = curve(np.linspace(0.25, 0.75, 100))
        assert plateau.max() - plateau.min() < 0.05

    def test_nmc_mid_slope_exceeds_lfp(self):
        nmc = get_chemistry("nmc").ocv
        lfp = get_chemistry("lfp").ocv
        s = np.linspace(0.3, 0.7, 50)
        assert nmc.derivative(s).mean() > 5 * lfp.derivative(s).mean()


class TestChemistryRegistry:
    def test_known_names(self):
        assert set(CHEMISTRIES) == {"nca", "nmc", "lfp"}

    def test_lookup_case_insensitive(self):
        assert get_chemistry("NMC").name == "nmc"

    def test_unknown_raises_keyerror_with_names(self):
        with pytest.raises(KeyError, match="lfp"):
            get_chemistry("unobtanium")


class TestCellSpec:
    def test_registry_contains_dataset_cells(self):
        assert {"sandia-nca", "sandia-nmc", "sandia-lfp", "lg-hg2"} <= set(CELL_SPECS)

    def test_lg_hg2_matches_paper(self):
        # The LG dataset cell is a 3 Ah LGHG2 (Sec. IV-B).
        cell = get_cell_spec("lg-hg2")
        assert cell.capacity_ah == 3.0
        assert cell.chemistry.name == "nmc"

    def test_capacity_coulombs(self):
        cell = get_cell_spec("lg-hg2")
        assert cell.capacity_coulombs == pytest.approx(10800.0)

    def test_current_from_c_rate(self):
        cell = get_cell_spec("lg-hg2")
        assert cell.current_from_c_rate(2.0) == pytest.approx(6.0)
        assert cell.current_from_c_rate(-0.5) == pytest.approx(-1.5)

    def test_time_constants(self):
        cell = get_cell_spec("lg-hg2")
        taus = cell.time_constants()
        assert len(taus) == 2
        assert all(t > 0 for t in taus)
        assert taus[0] < taus[1]  # fast + slow branch

    def test_invalid_capacity_raises(self):
        chem = get_chemistry("nmc")
        with pytest.raises(ValueError):
            CellSpec("bad", chem, capacity_ah=-1.0, r0_ohm=0.01, rc_pairs=())

    def test_invalid_rc_raises(self):
        chem = get_chemistry("nmc")
        with pytest.raises(ValueError):
            CellSpec("bad", chem, capacity_ah=1.0, r0_ohm=0.01, rc_pairs=((0.01, -5.0),))

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            get_cell_spec("aa-alkaline")

    def test_lookup_case_insensitive(self):
        assert get_cell_spec("LG-HG2").name == "lg-hg2"
