"""Tests for ``benchmarks/check_bench_regression.py`` (--all gating mode)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_bench_regression.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def fleet_record(speedup=60.0, shm_ratio=1.8):
    return {
        "cells": 128,
        "step_s": 0.5,
        "fast": True,
        "speedup": speedup,
        "max_traj_diff": 1e-12,
        "cell_steps_per_s_batched": 600_000.0,
        "shm_payload_ratio": shm_ratio,
        "shm_payload_mb": 2.0,
        "workers": 2,
        "shm_payload_p50_us": 700.0,
    }


def write(tmp_path, name, record):
    path = tmp_path / name
    path.write_text(json.dumps(record))
    return str(path)


class TestCheckAll:
    def test_all_shared_metrics_pass(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", fleet_record())
        current = write(tmp_path, "cur.json", fleet_record(speedup=58.0, shm_ratio=1.7))
        rc = gate.main(["--baseline", baseline, "--current", current, "--all"])
        out = capsys.readouterr().out
        assert rc == 0
        # both fleet-record metrics were gated, each with a verdict row
        assert "--- speedup ---" in out and "--- shm_payload_ratio ---" in out
        assert "benchmark gate passed (all shared metrics)" in out

    def test_one_regressed_metric_fails_the_gate(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", fleet_record())
        current = write(tmp_path, "cur.json", fleet_record(speedup=60.0, shm_ratio=1.0))
        rc = gate.main(["--baseline", baseline, "--current", current, "--all"])
        out = capsys.readouterr().out
        assert rc == 1
        # the passing metric still shows ok in the verdict table
        rows = dict(
            line.split()
            for line in out.splitlines()
            if len(line.split()) == 2 and line.split()[1] in ("ok", "FAIL")
        )
        assert rows == {"speedup": "ok", "shm_payload_ratio": "FAIL"}

    def test_verdict_table_lists_every_metric(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", fleet_record())
        current = write(tmp_path, "cur.json", fleet_record())
        gate.main(["--baseline", baseline, "--current", current, "--all"])
        out = capsys.readouterr().out
        table = out[out.index("metric") :]
        assert "speedup" in table and "shm_payload_ratio" in table

    def test_no_shared_metric_is_an_error(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", fleet_record())
        current = write(tmp_path, "cur.json", {"gateway_ratio": 2.0, "cells": 1})
        rc = gate.main(["--baseline", baseline, "--current", current, "--all"])
        assert rc == 1
        assert "share no gated metric" in capsys.readouterr().out

    def test_config_mismatch_fails(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", fleet_record())
        mismatched = fleet_record()
        mismatched["cells"] = 999
        current = write(tmp_path, "cur.json", mismatched)
        rc = gate.main(["--baseline", baseline, "--current", current, "--all"])
        assert rc == 1
        assert "config mismatch" in capsys.readouterr().out

    def test_all_and_metric_are_exclusive(self, gate, tmp_path):
        baseline = write(tmp_path, "base.json", fleet_record())
        with pytest.raises(SystemExit):
            gate.main(["--baseline", baseline, "--current", baseline, "--all", "--metric", "gateway_ratio"])


class TestSingleMetricStillWorks:
    def test_default_metric_passes(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", fleet_record())
        current = write(tmp_path, "cur.json", fleet_record(speedup=55.0))
        rc = gate.main(["--baseline", baseline, "--current", current])
        assert rc == 0
        assert "benchmark gate passed" in capsys.readouterr().out

    def test_regression_detected(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", fleet_record())
        current = write(tmp_path, "cur.json", fleet_record(speedup=10.0))
        rc = gate.main(["--baseline", baseline, "--current", current])
        assert rc == 1
        assert "regressed" in capsys.readouterr().out

    def test_aux_budget_enforced(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", fleet_record())
        bad = fleet_record()
        bad["max_traj_diff"] = 1e-6
        current = write(tmp_path, "cur.json", bad)
        rc = gate.main(["--baseline", baseline, "--current", current])
        assert rc == 1
        assert "divergence" in capsys.readouterr().out
