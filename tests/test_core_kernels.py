"""Golden-equivalence tests for compiled inference kernels.

The compiled path (:mod:`repro.core.kernels`) must match the autograd
Tensor path to 1e-9 across batch sizes, both branches and the cascade
— that is the contract that lets :class:`repro.serve.FleetEngine`
serve through kernels by default.
"""

import numpy as np
import pytest

from repro.core import (
    CompiledTwoBranchKernel,
    FusedTwoBranchKernel,
    ModelConfig,
    TwoBranchSoCNet,
    model_rollout,
)
from repro.nn import MLP, Linear, Sequential, Tanh, export_affine_chain
from repro.serve import FleetEngine, ModelRegistry, generate_fleet

BATCH_SIZES = (1, 7, 1024)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def kernel(model):
    return CompiledTwoBranchKernel(model)


def _inputs(n, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "voltage": rng.uniform(2.8, 4.2, n),
        "current": rng.uniform(-5.0, 5.0, n),
        "temp_c": rng.uniform(-5.0, 45.0, n),
        "soc": rng.uniform(0.0, 1.0, n),
        "horizon_s": rng.uniform(1.0, 400.0, n),
    }


# ----------------------------------------------------------------------
class TestGoldenEquivalence:
    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_branch1_matches_tensor_path(self, model, kernel, n):
        x = _inputs(n, seed=n)
        ref = model.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        got = kernel.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_branch2_matches_tensor_path(self, model, kernel, n):
        x = _inputs(n, seed=n + 1)
        ref = model.predict_soc(x["soc"], x["current"], x["temp_c"], x["horizon_s"])
        got = kernel.predict_soc(x["soc"], x["current"], x["temp_c"], x["horizon_s"])
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_cascade_matches_tensor_path(self, model, kernel, n):
        x = _inputs(n, seed=n + 2)
        args = (x["voltage"], x["current"], x["temp_c"], x["current"], x["temp_c"], x["horizon_s"])
        np.testing.assert_allclose(
            kernel.predict_from_sensors(*args), model.predict_from_sensors(*args), atol=1e-9, rtol=0
        )

    def test_scalar_inputs_match(self, model, kernel):
        ref = model.estimate_soc(3.7, 1.0, 25.0)
        got = kernel.estimate_soc(3.7, 1.0, 25.0)
        assert got.shape == (1,)
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    def test_holds_for_trained_like_weights(self):
        # a different seed and a non-default architecture
        model = TwoBranchSoCNet(ModelConfig(hidden=(8, 8)), rng=np.random.default_rng(99))
        kernel = CompiledTwoBranchKernel(model)
        x = _inputs(64, seed=5)
        np.testing.assert_allclose(
            kernel.estimate_soc(x["voltage"], x["current"], x["temp_c"]),
            model.estimate_soc(x["voltage"], x["current"], x["temp_c"]),
            atol=1e-9,
            rtol=0,
        )


class TestBuffers:
    def test_batch_size_churn_stays_correct(self, model, kernel):
        """Growing, shrinking and regrowing the batch reuses buffers safely."""
        x = _inputs(1024, seed=9)
        expected = {}
        for n in (3, 1024, 1, 7, 512, 1024):
            got = kernel.estimate_soc(x["voltage"][:n], x["current"][:n], x["temp_c"][:n])
            ref = expected.setdefault(
                n, model.estimate_soc(x["voltage"][:n], x["current"][:n], x["temp_c"][:n])
            )
            np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    def test_results_do_not_alias_buffers(self, kernel):
        x = _inputs(8, seed=10)
        first = kernel.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        snapshot = first.copy()
        kernel.estimate_soc(x["voltage"][::-1].copy(), x["current"], x["temp_c"])
        np.testing.assert_array_equal(first, snapshot)

    def test_length_mismatch_raises(self, kernel):
        with pytest.raises(ValueError, match="batch size"):
            kernel.estimate_soc(np.zeros(3), np.zeros(4), 25.0)


class TestDtypeAndExport:
    def test_float32_mode_is_single_precision_close(self, model):
        kernel = CompiledTwoBranchKernel(model, dtype=np.float32)
        x = _inputs(256, seed=3)
        ref = model.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        got = kernel.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        assert np.max(np.abs(got - ref)) < 1e-4
        assert kernel.num_bytes() < CompiledTwoBranchKernel(model).num_bytes()

    def test_refresh_picks_up_new_weights(self, model):
        kernel = CompiledTwoBranchKernel(model)
        before = kernel.estimate_soc(3.7, 1.0, 25.0)
        state = model.state_dict()
        try:
            model.load_state_dict({k: v * 1.5 for k, v in state.items()})
            stale = kernel.estimate_soc(3.7, 1.0, 25.0)
            np.testing.assert_array_equal(stale, before)  # snapshot semantics
            kernel.refresh()
            refreshed = kernel.estimate_soc(3.7, 1.0, 25.0)
            np.testing.assert_allclose(refreshed, model.estimate_soc(3.7, 1.0, 25.0), atol=1e-9, rtol=0)
            assert not np.array_equal(refreshed, before)
        finally:
            model.load_state_dict(state)

    def test_export_affine_chain_shapes(self, model):
        chain = export_affine_chain(model.branch1.mlp)
        widths = [(w.shape, tag) for w, _, tag in chain]
        assert widths == [((3, 16), "relu"), ((16, 32), "relu"), ((32, 16), "relu"), ((16, 1), "identity")]
        for _, bias, _ in chain:
            assert bias is not None

    def test_export_rejects_non_affine_stacks(self):
        from repro.nn import Dropout

        with pytest.raises(TypeError):
            export_affine_chain(Sequential(Linear(4, 4), Dropout(0.5)))

    def test_tanh_chain_compiles(self):
        """Activations that do not preserve the bias channel still work."""
        mlp = MLP(3, hidden=(8,), activation=Tanh, rng=np.random.default_rng(2))
        from repro.core.kernels import CompiledBranchKernel
        from repro.datasets.preprocessing import branch1_scaler

        kernel = CompiledBranchKernel(mlp, branch1_scaler())
        x = np.random.default_rng(4).uniform(2.8, 4.2, (32, 3))
        from repro import nn

        with nn.no_grad():
            ref = mlp(nn.Tensor(branch1_scaler().transform(x))).data[:, 0]
        got = kernel.forward_columns((x[:, 0], x[:, 1], x[:, 2]))
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)


class TestFloat32Golden:
    """The float32 tier's documented accuracy claim (~1e-6 vs float64)."""

    def test_estimate_within_documented_tolerance(self, model, kernel):
        k32 = CompiledTwoBranchKernel(model, dtype=np.float32)
        x = _inputs(2048, seed=11)
        ref = kernel.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        got = k32.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=0)

    def test_predict_within_documented_tolerance(self, model, kernel):
        k32 = CompiledTwoBranchKernel(model, dtype=np.float32)
        x = _inputs(2048, seed=12)
        ref = kernel.predict_soc(x["soc"], x["current"], x["temp_c"], x["horizon_s"])
        got = k32.predict_soc(x["soc"], x["current"], x["temp_c"], x["horizon_s"])
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=0)


class TestFusedKernels:
    """Block-diagonal cross-model stacking == per-model dispatch."""

    @pytest.fixture(scope="class")
    def members(self):
        return [TwoBranchSoCNet(rng=np.random.default_rng(100 + k)) for k in range(3)]

    @pytest.fixture(scope="class")
    def kernels(self, members):
        return [CompiledTwoBranchKernel(m) for m in members]

    @pytest.fixture(scope="class")
    def fused(self, kernels):
        return FusedTwoBranchKernel(kernels)

    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_estimate_matches_dispatch(self, kernels, fused, n):
        x = _inputs(n, seed=20 + n)
        member = np.random.default_rng(n).integers(0, len(kernels), n)
        ref = np.empty(n)
        for u, kernel in enumerate(kernels):
            idx = np.flatnonzero(member == u)
            if idx.size:
                ref[idx] = kernel.estimate_soc(x["voltage"][idx], x["current"][idx], x["temp_c"][idx])
        got = fused.estimate_soc(x["voltage"], x["current"], x["temp_c"], member)
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_predict_matches_dispatch(self, kernels, fused, n):
        x = _inputs(n, seed=30 + n)
        member = np.random.default_rng(n + 1).integers(0, len(kernels), n)
        ref = np.empty(n)
        for u, kernel in enumerate(kernels):
            idx = np.flatnonzero(member == u)
            if idx.size:
                ref[idx] = kernel.predict_soc(
                    x["soc"][idx], x["current"][idx], x["temp_c"][idx], x["horizon_s"][idx]
                )
        got = fused.predict_soc(x["soc"], x["current"], x["temp_c"], x["horizon_s"], member)
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    def test_uniform_batches_hit_every_member(self, kernels, fused):
        x = _inputs(16, seed=40)
        for u, kernel in enumerate(kernels):
            ref = kernel.estimate_soc(x["voltage"], x["current"], x["temp_c"])
            got = fused.estimate_soc(x["voltage"], x["current"], x["temp_c"], np.full(16, u))
            np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    def test_single_member_fusion(self, kernels):
        fused = FusedTwoBranchKernel(kernels[:1])
        x = _inputs(8, seed=41)
        ref = kernels[0].estimate_soc(x["voltage"], x["current"], x["temp_c"])
        got = fused.estimate_soc(x["voltage"], x["current"], x["temp_c"], np.zeros(8, dtype=int))
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    def test_float32_members_within_documented_tolerance(self, members, kernels):
        fused32 = FusedTwoBranchKernel([CompiledTwoBranchKernel(m, dtype=np.float32) for m in members])
        x = _inputs(512, seed=42)
        member = np.random.default_rng(42).integers(0, len(members), 512)
        ref = np.empty(512)
        for u, kernel in enumerate(kernels):
            idx = np.flatnonzero(member == u)
            ref[idx] = kernel.estimate_soc(x["voltage"][idx], x["current"][idx], x["temp_c"][idx])
        got = fused32.estimate_soc(x["voltage"], x["current"], x["temp_c"], member)
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=0)

    def test_mixed_dtypes_rejected(self, members):
        with pytest.raises(ValueError, match="share one dtype"):
            FusedTwoBranchKernel(
                [
                    CompiledTwoBranchKernel(members[0]),
                    CompiledTwoBranchKernel(members[1], dtype=np.float32),
                ]
            )

    def test_mixed_architectures_rejected(self, kernels):
        other = TwoBranchSoCNet(ModelConfig(hidden=(8, 8)), rng=np.random.default_rng(7))
        with pytest.raises(ValueError, match="chain architecture"):
            FusedTwoBranchKernel([kernels[0], CompiledTwoBranchKernel(other)])

    def test_empty_member_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FusedTwoBranchKernel([])


class TestEngineFusion:
    """FleetEngine's mixed-model fused path == the per-model loop."""

    # four models: fusion only engages on dispatch-bound batches
    # (>= 4 model groups, small per-group row counts)
    MODELS = ("nmc-model", "lfp-model", "lto-model", "nca-model")

    @pytest.fixture()
    def routed_engines(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        for seed, name in enumerate(self.MODELS, start=1):
            registry.publish(name, TwoBranchSoCNet(rng=np.random.default_rng(seed)))
        engines = [FleetEngine(registry=registry, fuse_models=fuse) for fuse in (True, False)]
        ids = [f"c{k}" for k in range(64)]
        for engine in engines:
            for k, cid in enumerate(ids):
                engine.register_cell(cid, model_name=self.MODELS[k % len(self.MODELS)])
        return engines, ids

    def test_estimate_and_predict_match_loop(self, routed_engines):
        (fused_engine, loop_engine), ids = routed_engines
        x = _inputs(len(ids), seed=50)
        est_fused = fused_engine.estimate(ids, x["voltage"], x["current"], x["temp_c"])
        est_loop = loop_engine.estimate(ids, x["voltage"], x["current"], x["temp_c"])
        np.testing.assert_allclose(est_fused, est_loop, atol=1e-9, rtol=0)
        pred_fused = fused_engine.predict(ids, x["current"], x["temp_c"], x["horizon_s"])
        pred_loop = loop_engine.predict(ids, x["current"], x["temp_c"], x["horizon_s"])
        np.testing.assert_allclose(pred_fused, pred_loop, atol=1e-9, rtol=0)

    def test_fused_kernel_is_cached_and_reused(self, routed_engines):
        (fused_engine, _), ids = routed_engines
        x = _inputs(len(ids), seed=51)
        fused_engine.estimate(ids, x["voltage"], x["current"], x["temp_c"])
        (_, fused_a) = next(iter(fused_engine._fused.values()))
        fused_engine.estimate(ids, x["voltage"], x["current"], x["temp_c"])
        (_, fused_b) = next(iter(fused_engine._fused.values()))
        assert fused_a is fused_b and fused_a is not None

    def test_gemm_bound_batches_keep_the_per_model_loop(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        for seed, name in enumerate(("a-model", "b-model"), start=1):
            registry.publish(name, TwoBranchSoCNet(rng=np.random.default_rng(seed)))
        engine = FleetEngine(registry=registry, fuse_models=True)
        ids = [f"c{k}" for k in range(32)]
        for k, cid in enumerate(ids):
            engine.register_cell(cid, model_name="a-model" if k % 2 else "b-model")
        x = _inputs(len(ids), seed=52)
        # two model groups is below the fusion crossover: dispatch wins
        engine.estimate(ids, x["voltage"], x["current"], x["temp_c"])
        assert not engine._fused

    def test_float32_engine_requires_kernels(self, model):
        with pytest.raises(ValueError, match="use_kernel"):
            FleetEngine(default_model=model, dtype=np.float32, use_kernel=False)

    def test_float32_engine_serves_float32(self, model):
        engine = FleetEngine(default_model=model, dtype=np.float32)
        ids = ["a", "b"]
        for cid in ids:
            engine.register_cell(cid)
        out = engine.estimate(ids, [3.7, 3.6], [1.0, 2.0], 25.0)
        assert out.dtype == np.float32


class TestEngineIntegration:
    def test_engine_rollout_matches_tensor_escape_hatch(self):
        """FleetEngine on kernels == FleetEngine on Tensors == scalar loop."""
        model = TwoBranchSoCNet(rng=np.random.default_rng(1))
        fleet = generate_fleet(
            12,
            seed=3,
            ambient_temps_c=(25.0,),
            c_rates=(1.0, 2.0),
            protocols=("discharge",),
            max_time_s=1800.0,
        )
        assignments = fleet.assignments()
        kernel_engine = FleetEngine(default_model=model)
        tensor_engine = FleetEngine(default_model=model, use_kernel=False)
        with_kernel = kernel_engine.rollout_fleet(assignments, step_s=120.0)
        without = tensor_engine.rollout_fleet(assignments, step_s=120.0)
        for cell_id, cycle in assignments:
            ref = model_rollout(model, cycle, 120.0)
            np.testing.assert_allclose(with_kernel[cell_id].soc_pred, ref.soc_pred, atol=1e-9, rtol=0)
            np.testing.assert_allclose(
                with_kernel[cell_id].soc_pred, without[cell_id].soc_pred, atol=1e-9, rtol=0
            )
            np.testing.assert_array_equal(with_kernel[cell_id].time_s, ref.time_s)

    def test_engine_estimate_predict_match_escape_hatch(self):
        model = TwoBranchSoCNet(rng=np.random.default_rng(2))
        x = _inputs(32, seed=6)
        outs = {}
        for use_kernel in (True, False):
            engine = FleetEngine(default_model=model, use_kernel=use_kernel)
            ids = [f"c{k}" for k in range(32)]
            for cid in ids:
                engine.register_cell(cid)
            est = engine.estimate(ids, x["voltage"], x["current"], x["temp_c"])
            pred = engine.predict(ids, x["current"], x["temp_c"], 60.0)
            outs[use_kernel] = (est, pred)
        np.testing.assert_allclose(outs[True][0], outs[False][0], atol=1e-9, rtol=0)
        np.testing.assert_allclose(outs[True][1], outs[False][1], atol=1e-9, rtol=0)
