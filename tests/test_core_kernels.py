"""Golden-equivalence tests for compiled inference kernels.

The compiled path (:mod:`repro.core.kernels`) must match the autograd
Tensor path to 1e-9 across batch sizes, both branches and the cascade
— that is the contract that lets :class:`repro.serve.FleetEngine`
serve through kernels by default.
"""

import numpy as np
import pytest

from repro.core import (
    CompiledTwoBranchKernel,
    ModelConfig,
    TwoBranchSoCNet,
    model_rollout,
)
from repro.nn import MLP, Linear, Sequential, Tanh, export_affine_chain
from repro.serve import FleetEngine, generate_fleet

BATCH_SIZES = (1, 7, 1024)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def kernel(model):
    return CompiledTwoBranchKernel(model)


def _inputs(n, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "voltage": rng.uniform(2.8, 4.2, n),
        "current": rng.uniform(-5.0, 5.0, n),
        "temp_c": rng.uniform(-5.0, 45.0, n),
        "soc": rng.uniform(0.0, 1.0, n),
        "horizon_s": rng.uniform(1.0, 400.0, n),
    }


# ----------------------------------------------------------------------
class TestGoldenEquivalence:
    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_branch1_matches_tensor_path(self, model, kernel, n):
        x = _inputs(n, seed=n)
        ref = model.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        got = kernel.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_branch2_matches_tensor_path(self, model, kernel, n):
        x = _inputs(n, seed=n + 1)
        ref = model.predict_soc(x["soc"], x["current"], x["temp_c"], x["horizon_s"])
        got = kernel.predict_soc(x["soc"], x["current"], x["temp_c"], x["horizon_s"])
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_cascade_matches_tensor_path(self, model, kernel, n):
        x = _inputs(n, seed=n + 2)
        args = (x["voltage"], x["current"], x["temp_c"], x["current"], x["temp_c"], x["horizon_s"])
        np.testing.assert_allclose(
            kernel.predict_from_sensors(*args), model.predict_from_sensors(*args), atol=1e-9, rtol=0
        )

    def test_scalar_inputs_match(self, model, kernel):
        ref = model.estimate_soc(3.7, 1.0, 25.0)
        got = kernel.estimate_soc(3.7, 1.0, 25.0)
        assert got.shape == (1,)
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    def test_holds_for_trained_like_weights(self):
        # a different seed and a non-default architecture
        model = TwoBranchSoCNet(ModelConfig(hidden=(8, 8)), rng=np.random.default_rng(99))
        kernel = CompiledTwoBranchKernel(model)
        x = _inputs(64, seed=5)
        np.testing.assert_allclose(
            kernel.estimate_soc(x["voltage"], x["current"], x["temp_c"]),
            model.estimate_soc(x["voltage"], x["current"], x["temp_c"]),
            atol=1e-9,
            rtol=0,
        )


class TestBuffers:
    def test_batch_size_churn_stays_correct(self, model, kernel):
        """Growing, shrinking and regrowing the batch reuses buffers safely."""
        x = _inputs(1024, seed=9)
        expected = {}
        for n in (3, 1024, 1, 7, 512, 1024):
            got = kernel.estimate_soc(x["voltage"][:n], x["current"][:n], x["temp_c"][:n])
            ref = expected.setdefault(
                n, model.estimate_soc(x["voltage"][:n], x["current"][:n], x["temp_c"][:n])
            )
            np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    def test_results_do_not_alias_buffers(self, kernel):
        x = _inputs(8, seed=10)
        first = kernel.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        snapshot = first.copy()
        kernel.estimate_soc(x["voltage"][::-1].copy(), x["current"], x["temp_c"])
        np.testing.assert_array_equal(first, snapshot)

    def test_length_mismatch_raises(self, kernel):
        with pytest.raises(ValueError, match="batch size"):
            kernel.estimate_soc(np.zeros(3), np.zeros(4), 25.0)


class TestDtypeAndExport:
    def test_float32_mode_is_single_precision_close(self, model):
        kernel = CompiledTwoBranchKernel(model, dtype=np.float32)
        x = _inputs(256, seed=3)
        ref = model.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        got = kernel.estimate_soc(x["voltage"], x["current"], x["temp_c"])
        assert np.max(np.abs(got - ref)) < 1e-4
        assert kernel.num_bytes() < CompiledTwoBranchKernel(model).num_bytes()

    def test_refresh_picks_up_new_weights(self, model):
        kernel = CompiledTwoBranchKernel(model)
        before = kernel.estimate_soc(3.7, 1.0, 25.0)
        state = model.state_dict()
        try:
            model.load_state_dict({k: v * 1.5 for k, v in state.items()})
            stale = kernel.estimate_soc(3.7, 1.0, 25.0)
            np.testing.assert_array_equal(stale, before)  # snapshot semantics
            kernel.refresh()
            refreshed = kernel.estimate_soc(3.7, 1.0, 25.0)
            np.testing.assert_allclose(refreshed, model.estimate_soc(3.7, 1.0, 25.0), atol=1e-9, rtol=0)
            assert not np.array_equal(refreshed, before)
        finally:
            model.load_state_dict(state)

    def test_export_affine_chain_shapes(self, model):
        chain = export_affine_chain(model.branch1.mlp)
        widths = [(w.shape, tag) for w, _, tag in chain]
        assert widths == [((3, 16), "relu"), ((16, 32), "relu"), ((32, 16), "relu"), ((16, 1), "identity")]
        for _, bias, _ in chain:
            assert bias is not None

    def test_export_rejects_non_affine_stacks(self):
        from repro.nn import Dropout

        with pytest.raises(TypeError):
            export_affine_chain(Sequential(Linear(4, 4), Dropout(0.5)))

    def test_tanh_chain_compiles(self):
        """Activations that do not preserve the bias channel still work."""
        mlp = MLP(3, hidden=(8,), activation=Tanh, rng=np.random.default_rng(2))
        from repro.core.kernels import CompiledBranchKernel
        from repro.datasets.preprocessing import branch1_scaler

        kernel = CompiledBranchKernel(mlp, branch1_scaler())
        x = np.random.default_rng(4).uniform(2.8, 4.2, (32, 3))
        from repro import nn

        with nn.no_grad():
            ref = mlp(nn.Tensor(branch1_scaler().transform(x))).data[:, 0]
        got = kernel.forward_columns((x[:, 0], x[:, 1], x[:, 2]))
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)


class TestEngineIntegration:
    def test_engine_rollout_matches_tensor_escape_hatch(self):
        """FleetEngine on kernels == FleetEngine on Tensors == scalar loop."""
        model = TwoBranchSoCNet(rng=np.random.default_rng(1))
        fleet = generate_fleet(
            12,
            seed=3,
            ambient_temps_c=(25.0,),
            c_rates=(1.0, 2.0),
            protocols=("discharge",),
            max_time_s=1800.0,
        )
        assignments = fleet.assignments()
        kernel_engine = FleetEngine(default_model=model)
        tensor_engine = FleetEngine(default_model=model, use_kernel=False)
        with_kernel = kernel_engine.rollout_fleet(assignments, step_s=120.0)
        without = tensor_engine.rollout_fleet(assignments, step_s=120.0)
        for cell_id, cycle in assignments:
            ref = model_rollout(model, cycle, 120.0)
            np.testing.assert_allclose(with_kernel[cell_id].soc_pred, ref.soc_pred, atol=1e-9, rtol=0)
            np.testing.assert_allclose(
                with_kernel[cell_id].soc_pred, without[cell_id].soc_pred, atol=1e-9, rtol=0
            )
            np.testing.assert_array_equal(with_kernel[cell_id].time_s, ref.time_s)

    def test_engine_estimate_predict_match_escape_hatch(self):
        model = TwoBranchSoCNet(rng=np.random.default_rng(2))
        x = _inputs(32, seed=6)
        outs = {}
        for use_kernel in (True, False):
            engine = FleetEngine(default_model=model, use_kernel=use_kernel)
            ids = [f"c{k}" for k in range(32)]
            for cid in ids:
                engine.register_cell(cid)
            est = engine.estimate(ids, x["voltage"], x["current"], x["temp_c"])
            pred = engine.predict(ids, x["current"], x["temp_c"], 60.0)
            outs[use_kernel] = (est, pred)
        np.testing.assert_allclose(outs[True][0], outs[False][0], atol=1e-9, rtol=0)
        np.testing.assert_allclose(outs[True][1], outs[False][1], atol=1e-9, rtol=0)
