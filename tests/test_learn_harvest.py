"""Tests for the journal harvester (:mod:`repro.learn.harvest`).

Covers the serving-stack edge cases the harvester exists to absorb:
compacted journals (workload history gone, pairing re-anchored),
archived-segment gaps (budgeted severing vs. hard failure), cells
rebalanced to another shard's journal, torn active-file tails, and
exact-duplicate dedup — plus the happy path straight off a real
:class:`FleetEngine` rollout journal.
"""

import json

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.learn import harvest_training_set
from repro.monitor.drift import DriftEvent
from repro.serve import (
    DirectoryArchiveStore,
    FleetEngine,
    MissingSegmentError,
    StateJournal,
    generate_fleet,
)
from repro.serve.engine import CellState


def _cell(journal, cell_id, chemistry=None):
    journal.append_cell(CellState(cell_id=cell_id, chemistry=chemistry, model_key="m"))


def _windows(journal, cell_id, socs, i_avg=1.0, temp_avg=25.0, horizon_s=120.0, capacity_ah=2.0):
    """Window 0 as a bare seed, then extended records — the engine's idiom."""
    journal.append_windows([(cell_id, 0, socs[0])])
    journal.append_windows(
        [
            (cell_id, w, soc, i_avg, temp_avg, horizon_s, capacity_ah)
            for w, soc in enumerate(socs[1:], start=1)
        ]
    )


def _event(cell_id):
    return DriftEvent(kind="cusum", cell_id=cell_id, value=1.0, threshold=0.1)


# ----------------------------------------------------------------------
class TestHappyPath:
    def test_consecutive_windows_become_branch2_rows(self, tmp_path):
        path = tmp_path / "w.journal"
        with StateJournal(path) as journal:
            _cell(journal, "a", chemistry="nmc")
            journal.begin_rollout(120.0)
            _windows(journal, "a", [0.9, 0.8, 0.7])
        report = harvest_training_set(path)
        assert report.rows == 2
        assert report.cells == ("a",)
        samples = report.samples
        np.testing.assert_allclose(samples.soc_t, [0.9, 0.8])
        np.testing.assert_allclose(samples.soc_target, [0.8, 0.7])
        np.testing.assert_allclose(samples.horizon_s, 120.0)
        np.testing.assert_allclose(samples.capacity_ah, 2.0)

    def test_partitioned_per_chemistry(self, tmp_path):
        path = tmp_path / "w.journal"
        with StateJournal(path) as journal:
            _cell(journal, "a", chemistry="nmc")
            _cell(journal, "b", chemistry="lfp")
            _cell(journal, "c")  # no chemistry
            journal.begin_rollout(120.0)
            for cid in ("a", "b", "c"):
                _windows(journal, cid, [0.9, 0.8])
        report = harvest_training_set(path)
        assert set(report.by_chemistry) == {"nmc", "lfp", None}
        assert len(report.partition("nmc")) == 1
        assert report.partition("na-ion") is None
        assert len(report.samples) == 3

    def test_drift_events_restrict_the_harvest_to_alarmed_cells(self, tmp_path):
        path = tmp_path / "w.journal"
        with StateJournal(path) as journal:
            for cid in ("a", "b", "c"):
                _cell(journal, cid)
            journal.begin_rollout(120.0)
            for cid in ("a", "b", "c"):
                _windows(journal, cid, [0.9, 0.8])
        report = harvest_training_set(path, events=[_event("b")])
        assert report.cells == ("b",)
        # explicit cell_ids union with the events' cells
        report = harvest_training_set(path, events=[_event("b")], cell_ids=["c"])
        assert report.cells == ("b", "c")

    def test_harvests_a_real_engine_rollout_journal(self, tmp_path):
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        path = tmp_path / "engine.journal"
        fleet = generate_fleet(
            6, seed=3, ambient_temps_c=(25.0,), c_rates=(1.0,), protocols=("discharge",),
            max_time_s=1800.0,
        )
        with StateJournal(path) as journal:
            engine = FleetEngine(default_model=model, journal=journal)
            engine.rollout_fleet(fleet.assignments(), 120.0)
        report = harvest_training_set(path)
        assert report.rows > 0
        samples = report.samples
        # the engine journaled real workload: per-member capacities and
        # the rollout's horizon, so the Eq. 1 relabel has what it needs
        assert np.all(samples.capacity_ah > 0)
        # full windows are step_s wide, the cycle's tail window shorter
        assert np.all((samples.horizon_s > 0) & (samples.horizon_s <= 120.0))
        assert np.all(np.isfinite(samples.i_avg)) and np.all(samples.i_avg != 0)


# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_compaction_drops_workload_history_but_reanchors_pairing(self, tmp_path):
        path = tmp_path / "w.journal"
        with StateJournal(path) as journal:
            _cell(journal, "a")
            journal.begin_rollout(120.0)
            _windows(journal, "a", [0.9, 0.8, 0.7])
            journal.compact()  # workload keys are compacted away
            assert harvest_training_set(path).rows == 0
            # resumed windows after the compaction pair with the
            # re-emitted soc-only anchor records
            journal.append_windows([("a", 3, 0.6, 1.0, 25.0, 120.0, 2.0)])
        report = harvest_training_set(path)
        assert report.rows == 1
        assert report.samples.soc_t[0] == pytest.approx(0.7)
        assert report.samples.soc_target[0] == pytest.approx(0.6)

    def test_rebalanced_cell_history_merges_across_journals(self, tmp_path):
        old, new = tmp_path / "shard0.journal", tmp_path / "shard1.journal"
        with StateJournal(old) as journal:
            _cell(journal, "a")
            journal.begin_rollout(120.0)
            _windows(journal, "a", [0.9, 0.8])
            journal.drop_cell("a")  # rebalanced away
        with StateJournal(new) as journal:
            _cell(journal, "a")
            journal.begin_rollout(120.0)
            _windows(journal, "a", [0.7, 0.6])
        report = harvest_training_set([old, new], events=[_event("a")])
        assert report.rows == 2
        np.testing.assert_allclose(sorted(report.samples.soc_t), [0.7, 0.9])

    def test_exact_duplicates_are_dropped_and_counted(self, tmp_path):
        path = tmp_path / "w.journal"
        with StateJournal(path) as journal:
            _cell(journal, "a")
            journal.begin_rollout(120.0)
            _windows(journal, "a", [0.9, 0.8])
        # the same file seen twice (e.g. a segment both archived and
        # local after a crashed ship-then-unlink)
        report = harvest_training_set([path, path])
        assert report.rows == 1
        assert report.duplicates == 1
        assert len(harvest_training_set([path, path], dedup=False).samples) == 2

    def test_pairing_never_crosses_a_rollout_restart(self, tmp_path):
        path = tmp_path / "w.journal"
        with StateJournal(path) as journal:
            _cell(journal, "a")
            journal.begin_rollout(120.0)
            _windows(journal, "a", [0.9, 0.8])
            journal.begin_rollout(120.0)  # numbering restarts
            _windows(journal, "a", [0.5, 0.4])
        report = harvest_training_set(path)
        assert report.rows == 2
        assert 0.9 in report.samples.soc_t and 0.5 in report.samples.soc_t
        # no phantom row pairing the old rollout's last window with the
        # new rollout's first
        assert not np.any(report.samples.soc_t == 0.8)

    def test_torn_active_tail_is_skipped_but_sealed_corruption_raises(self, tmp_path):
        path = tmp_path / "w.journal"
        with StateJournal(path) as journal:
            _cell(journal, "a")
            journal.begin_rollout(120.0)
            _windows(journal, "a", [0.9, 0.8])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "w", "id": "a", "w"')  # crash mid-write
        assert harvest_training_set(path).rows == 1
        sealed = path.with_name(f"{path.name}.00001.jsonl")
        sealed.write_text('{"op": "garbage"\n', encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt journal"):
            harvest_training_set(path)


# ----------------------------------------------------------------------
class TestArchivedSegments:
    def _archived_journal(self, tmp_path):
        """A journal whose sealed segments shipped to a cold store."""
        store = DirectoryArchiveStore(tmp_path / "cold")
        path = tmp_path / "w.journal"
        with StateJournal(path, max_segment_bytes=1, archive=store) as journal:
            _cell(journal, "a")
            journal.begin_rollout(120.0)
            for w, soc in enumerate([0.9, 0.8, 0.7, 0.6]):
                if w == 0:
                    journal.append_windows([("a", 0, soc)])
                else:
                    journal.append_windows([("a", w, soc, 1.0, 25.0, 120.0, 2.0)])
        names = store.list(prefix=f"{path.name}.")
        assert len(names) >= 3  # every record sealed its own segment
        return store, path, sorted(names)

    def test_archived_segments_are_fetched_and_replayed(self, tmp_path):
        store, path, _ = self._archived_journal(tmp_path)
        report = harvest_training_set(path, store=store)
        assert report.rows == 3
        assert report.missing_segments == 0

    def test_gap_beyond_budget_raises_missing_segment(self, tmp_path):
        store, path, names = self._archived_journal(tmp_path)
        store.delete(names[1])
        with pytest.raises(MissingSegmentError, match="max_gaps=0"):
            harvest_training_set(path, store=store)

    def test_budgeted_gap_severs_pairing_and_is_reported(self, tmp_path):
        store, path, names = self._archived_journal(tmp_path)
        before = harvest_training_set(path, store=store).samples
        assert len(before) == 3
        store.delete(names[4])  # the segment holding window 1
        report = harvest_training_set(path, store=store, max_gaps=1)
        assert report.missing_segments == 1
        # windows pair only across contiguous history: (0,1) and (1,2)
        # are gone with window 1, (2,3) survives past the hole
        assert report.rows == 1
        assert report.samples.soc_t[0] == pytest.approx(0.7)
