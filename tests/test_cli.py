"""End-to-end tests for the command-line interface.

These exercise the full user journey: train -> checkpoint -> inspect ->
evaluate -> predict -> rollout, on a tiny synthetic campaign.
"""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.nn.serialization import load_state, save_state


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    """A model trained via the CLI itself (few epochs, fast campaign)."""
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    code = main([
        "train", "--dataset", "sandia", "--pinn", "--epochs", "15",
        "--fast", "--out", str(path),
    ])
    assert code == 0
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "nasa", "--out", "x.npz"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--out", "m.npz"])
        assert args.dataset == "sandia"
        assert not args.pinn


class TestTrain:
    def test_checkpoint_written_with_meta(self, checkpoint):
        state, meta = load_state(checkpoint)
        assert meta["dataset"] == "sandia"
        assert meta["pinn"] is True
        assert meta["hidden"] == [16, 32, 16]
        # both branches' weights are present
        assert any(k.startswith("branch1") for k in state)
        assert any(k.startswith("branch2") for k in state)


class TestInspect:
    def test_reports_cost(self, checkpoint, capsys):
        assert main(["inspect", checkpoint]) == 0
        out = capsys.readouterr().out
        assert "2322" in out
        assert "KiB" in out


class TestEvaluate:
    def test_scores_printed(self, checkpoint, capsys):
        assert main(["evaluate", checkpoint, "--fast", "--horizons", "120"]) == 0
        out = capsys.readouterr().out
        assert "SoC(t+120s) MAE" in out
        assert "SoC(t)" in out


class TestPredict:
    def test_one_shot(self, checkpoint, capsys):
        code = main([
            "predict", checkpoint, "--voltage", "3.7", "--current", "3.0",
            "--temp", "25", "--workload-current", "6.0", "--horizon", "120",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SoC(t)" in out and "SoC(t+120s)" in out


class TestRollout:
    def test_unknown_cycle_lists_names(self, checkpoint):
        with pytest.raises(SystemExit, match="test cycles"):
            main(["rollout", checkpoint, "--fast", "--cycle", "nope", "--step", "120"])

    def test_rollout_with_csv(self, checkpoint, capsys, tmp_path):
        csv = tmp_path / "traj.csv"
        code = main([
            "rollout", checkpoint, "--fast", "--cycle", "nmc-2C-25C-cycle0",
            "--step", "240", "--csv", str(csv),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mae" in out and "rmse" in out and "max|err|" in out
        assert csv.exists()
        header = csv.read_text().splitlines()[0]
        assert header == "time_s,soc_pred,soc_true"


class TestServeSim:
    def test_fleet_simulation_reports_throughput(self, checkpoint, capsys):
        code = main([
            "serve-sim", checkpoint, "--cells", "6", "--fast", "--step", "120",
            "--show", "2", "--compare-loop",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cells/s" in out
        assert "trajectory RMSE" in out
        assert "speedup" in out
        assert "cell-00000" in out

    def test_served_through_registry(self, checkpoint, capsys, tmp_path):
        code = main([
            "serve-sim", checkpoint, "--cells", "4", "--fast", "--step", "120",
            "--registry", str(tmp_path / "reg"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving via registry" in out
        assert (tmp_path / "reg" / "sandia-serve@v1.npz").exists()

    def test_metrics_json_snapshot_and_drift_gate(self, checkpoint, capsys, tmp_path):
        """serve-sim --metrics-json writes a merged snapshot and a
        trained checkpoint keeps the drift gate green on clean traffic."""
        import json

        metrics_path = tmp_path / "metrics.json"
        code = main([
            "serve-sim", checkpoint, "--cells", "6", "--fast", "--step", "120",
            "--metrics-json", str(metrics_path), "--fail-on-drift",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "monitoring: 0 drift/physics events" in out
        record = json.loads(metrics_path.read_text())
        counters = record["metrics"]["counters"]
        rollout = next(v for k, v in counters.items() if 'op="rollout"' in k)
        assert rollout == 6.0
        assert record["drift_event_total"] == 0
        assert record["drift_events"] == []
        assert any(k.startswith("engine_physics_residual") for k in record["metrics"]["histograms"])

    def test_monitor_snapshot_watch_and_export(self, checkpoint, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "serve-sim", checkpoint, "--cells", "4", "--fast", "--step", "120",
            "--metrics-json", str(metrics_path),
        ]) == 0
        capsys.readouterr()
        assert main(["monitor", "snapshot", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "engine_requests_total" in out
        assert "drift events: 0" in out
        assert main(["monitor", "snapshot", str(metrics_path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE engine_requests_total counter" in out
        prom_path = tmp_path / "metrics.prom"
        assert main(["monitor", "export", str(metrics_path), "--out", str(prom_path)]) == 0
        assert "# TYPE" in prom_path.read_text()
        capsys.readouterr()
        assert main([
            "monitor", "watch", str(metrics_path), "--interval", "0.01", "--count", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("[watch") == 2

    def test_sharded_and_journaled(self, checkpoint, capsys, tmp_path):
        journal = tmp_path / "fleet.journal"
        code = main([
            "serve-sim", checkpoint, "--cells", "8", "--fast", "--step", "120",
            "--shards", "4", "--journal", str(journal),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shards: 4" in out
        assert "journal:" in out
        assert journal.exists()
        from repro.serve import StateJournal

        assert len(StateJournal(journal).snapshot().cells) == 8


class TestRegistryCommand:
    @pytest.fixture()
    def registry_dir(self, checkpoint, tmp_path):
        from repro.core import ModelConfig, TwoBranchSoCNet
        from repro.serve import ModelRegistry

        registry = ModelRegistry(tmp_path / "reg")
        model = TwoBranchSoCNet(ModelConfig(), rng=np.random.default_rng(0))
        registry.publish("prod", model, chemistry="nmc")
        registry.publish("prod", model, channel="canary")
        return str(tmp_path / "reg")

    def test_list_shows_versions_and_channels(self, registry_dir, capsys):
        assert main(["registry", "list", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "prod@v1" in out and "prod@v2" in out
        assert "stable" in out and "canary" in out

    def test_promote_then_rollback_errors(self, registry_dir, capsys):
        assert main(["registry", "promote", registry_dir, "prod"]) == 0
        assert "promoted prod@v2" in capsys.readouterr().out
        with pytest.raises(SystemExit, match="no canary"):
            main(["registry", "rollback", registry_dir, "prod"])

    def test_empty_registry_listing(self, tmp_path, capsys):
        assert main(["registry", "list", str(tmp_path / "empty")]) == 0
        assert "empty" in capsys.readouterr().out


class TestRetrainCommand:
    """``repro-soc retrain``: the one-shot offline arm of the retrain loop."""

    @pytest.fixture()
    def plant(self, tmp_path):
        from repro.core import ModelConfig, TwoBranchSoCNet
        from repro.serve import ModelRegistry, StateJournal
        from repro.serve.engine import CellState

        registry = ModelRegistry(tmp_path / "reg")
        model = TwoBranchSoCNet(ModelConfig(), rng=np.random.default_rng(0))
        registry.publish("prod", model, chemistry="nmc")
        journal = tmp_path / "fleet.journal"
        with StateJournal(journal) as jrn:
            for cid in ("a", "b"):
                jrn.append_cell(CellState(cell_id=cid, chemistry="nmc", model_key="prod"))
            jrn.begin_rollout(120.0)
            for cid in ("a", "b"):
                jrn.append_windows([(cid, 0, 0.9)])
                jrn.append_windows(
                    [(cid, w, 0.9 - 0.05 * w, 1.0, 25.0, 120.0, 2.0) for w in range(1, 8)]
                )
        return registry, str(tmp_path / "reg"), str(journal)

    def test_offline_retrain_publishes_a_canary(self, plant, capsys):
        registry, registry_dir, journal = plant
        code = main(["retrain", registry_dir, "prod", "--journal", journal, "--epochs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "harvested 14 row(s) from 2 cell(s)" in out
        assert "published prod@v2 to the canary channel" in out
        registry.refresh()
        assert registry.channels("prod") == {"stable": 1, "canary": 2}
        entry = registry.describe("prod@canary")
        assert entry.extra["retrained_from"] == 1
        assert entry.extra["harvest_rows"] == 14

    def test_dry_run_trains_but_publishes_nothing(self, plant, capsys):
        registry, registry_dir, journal = plant
        code = main([
            "retrain", registry_dir, "prod", "--journal", journal, "--epochs", "2", "--dry-run",
        ])
        assert code == 0
        assert "dry run: candidate not published" in capsys.readouterr().out
        registry.refresh()
        assert registry.channels("prod") == {"stable": 1}

    def test_sparse_journal_publishes_nothing_and_exits_nonzero(self, plant, capsys):
        registry, registry_dir, journal = plant
        code = main([
            "retrain", registry_dir, "prod", "--journal", journal, "--min-rows", "500",
        ])
        assert code == 1
        assert "not enough rows" in capsys.readouterr().out
        registry.refresh()
        assert registry.channels("prod") == {"stable": 1}

    def test_unknown_model_is_an_error(self, plant):
        _, registry_dir, journal = plant
        with pytest.raises(SystemExit, match="error:"):
            main(["retrain", registry_dir, "ghost", "--journal", journal])


class TestLoadValidation:
    def test_non_checkpoint_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        save_state({"w": np.ones(3)}, bogus, meta={"something": 1})
        with pytest.raises(SystemExit, match="not a repro-soc checkpoint"):
            main(["inspect", str(bogus)])
