"""Tests for the canary autopilot (:mod:`repro.monitor.autopilot`).

Covers the decision rule in isolation (promote / rollback / veto /
cooldown), live divergence probing on in-process fleets, and the
end-to-end control-plane story on a **process-sharded** fleet: a
degraded candidate is flagged by the live monitors and rolled back
without human intervention, a golden-equivalent candidate is
auto-promoted — with every shard worker's metrics merging into one
registry view.
"""

import copy

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.monitor import (
    AutoCanaryPolicy,
    AutopilotConfig,
    ControlLoop,
    DivergenceProbe,
    DriftMonitor,
    MetricsRegistry,
)
from repro.monitor.drift import DriftEvent
from repro.serve import (
    CanaryController,
    FleetEngine,
    ModelRegistry,
    ShardedFleet,
    WorkerSpec,
)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


def clone_model(model, perturb: float = 0.0, seed: int = 99) -> TwoBranchSoCNet:
    """A new model object with identical (or noise-perturbed) weights."""
    clone = TwoBranchSoCNet(model.config, rng=np.random.default_rng(1))
    state = copy.deepcopy(model.state_dict())
    if perturb:
        rng = np.random.default_rng(seed)
        state = {k: v + perturb * rng.standard_normal(np.shape(v)) for k, v in state.items()}
    clone.load_state_dict(state)
    return clone


def make_fleet(tmp_path, model, n_cells=16, fraction=0.5):
    """A single-engine fleet serving ``name`` from a fresh registry."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("serve", model)
    engine = FleetEngine(registry=registry)
    for k in range(n_cells):
        engine.register_cell(f"cell-{k:03d}")
    controller = CanaryController(engine, registry, "serve", fraction=fraction)
    return engine, registry, controller


class FakeController:
    """Minimal controller double for exercising the decision rule."""

    def __init__(self):
        self.active = True
        self.candidate_version = 2
        self.promoted = 0
        self.rolled_back = 0

    def promote(self):
        self.active = False
        self.promoted += 1

    def rollback(self):
        self.active = False
        self.rolled_back += 1


# ----------------------------------------------------------------------
class TestDecisionRule:
    def test_holds_until_min_observations_then_promotes(self):
        controller = FakeController()
        policy = AutoCanaryPolicy(
            controller, config=AutopilotConfig(min_observations=3, divergence_budget=0.01)
        )
        decisions = [policy.step(np.array([0.001])) for _ in range(3)]
        assert decisions == ["hold", "hold", "promote"]
        assert controller.promoted == 1 and controller.rolled_back == 0
        # after the verdict the policy idles (cooldown, no active canary)
        assert policy.step(None) == "idle"

    def test_budget_breach_rolls_back(self):
        controller = FakeController()
        policy = AutoCanaryPolicy(
            controller, config=AutopilotConfig(min_observations=2, divergence_budget=0.01)
        )
        policy.step(np.array([0.05]))
        decision = policy.step(np.array([0.05]))
        assert decision == "rollback"
        assert controller.rolled_back == 1

    def test_hard_ceiling_short_circuits_min_observations(self):
        controller = FakeController()
        policy = AutoCanaryPolicy(
            controller,
            config=AutopilotConfig(min_observations=10, hard_divergence=0.2),
        )
        assert policy.step(np.array([0.5])) == "rollback"

    def test_drift_event_vetoes_promotion(self):
        controller = FakeController()
        drift = DriftMonitor(page_hinkley=None, cusum=None, bounds=None)
        policy = AutoCanaryPolicy(
            controller,
            drift=drift,
            config=AutopilotConfig(min_observations=1, divergence_budget=0.5),
        )
        policy.observe(np.array([0.001]))  # would promote on its own
        drift._emit(DriftEvent(kind="cusum", cell_id="c", value=1.0, threshold=0.1))
        assert policy.step(np.array([0.001])) == "rollback"
        assert controller.rolled_back == 1

    def test_stale_drift_events_do_not_veto_a_new_canary(self):
        drift = DriftMonitor(page_hinkley=None, cusum=None, bounds=None)
        drift._emit(DriftEvent(kind="cusum", cell_id="c", value=1.0, threshold=0.1))
        controller = FakeController()
        policy = AutoCanaryPolicy(
            controller,
            drift=drift,
            config=AutopilotConfig(min_observations=1, divergence_budget=0.5),
        )
        # baseline snapshots at first sight of the canary: old events ignored
        assert policy.step(np.array([0.001])) == "promote"

    def test_cooldown_keeps_policy_quiet_after_a_verdict(self):
        controller = FakeController()
        policy = AutoCanaryPolicy(
            controller,
            config=AutopilotConfig(min_observations=1, divergence_budget=0.5, cooldown_ticks=2),
        )
        assert policy.step(np.array([0.001])) == "promote"
        controller.active = True  # a new canary starts immediately
        controller.candidate_version = 3
        assert policy.step(np.array([0.001])) == "hold"  # cooling down
        assert policy.step(np.array([0.001])) == "promote"

    def test_decisions_land_in_metrics(self):
        metrics = MetricsRegistry()
        policy = AutoCanaryPolicy(
            FakeController(),
            config=AutopilotConfig(min_observations=1, divergence_budget=0.5),
            metrics=metrics,
        )
        policy.step(np.array([0.001]))
        assert metrics.counter_value("autopilot_decisions_total", decision="promote") == 1.0


# ----------------------------------------------------------------------
class TestDivergenceProbe:
    def test_golden_candidate_measures_zero(self, tmp_path, model):
        engine, registry, controller = make_fleet(tmp_path, model)
        controller.start(candidate=clone_model(model))
        probe = DivergenceProbe(engine, controller)
        diffs = probe.measure()
        assert diffs is not None and len(diffs) == 3
        np.testing.assert_allclose(diffs, 0.0, atol=1e-12)

    def test_degraded_candidate_measures_large(self, tmp_path, model):
        engine, registry, controller = make_fleet(tmp_path, model)
        controller.start(candidate=clone_model(model, perturb=0.5))
        diffs = DivergenceProbe(engine, controller).measure()
        assert float(np.max(diffs)) > 0.01

    def test_no_canary_or_no_pair_measures_none(self, tmp_path, model):
        engine, registry, controller = make_fleet(tmp_path, model, fraction=1.0)
        probe = DivergenceProbe(engine, controller)
        assert probe.measure() is None  # inactive
        controller.start(candidate=clone_model(model))
        assert probe.measure() is None  # every cell pinned: no stable group

    def test_probe_leaves_serving_state_untouched(self, tmp_path, model):
        engine, registry, controller = make_fleet(tmp_path, model)
        engine.estimate([f"cell-{k:03d}" for k in range(16)], 3.7, 1.0, 25.0)
        before = {s.cell_id: s.soc for s in engine.cells()}
        controller.start(candidate=clone_model(model))
        DivergenceProbe(engine, controller).measure()
        after = {s.cell_id: s.soc for s in engine.cells()}
        assert before == after


# ----------------------------------------------------------------------
class TestControlLoopEndToEnd:
    def test_in_process_fleet_rolls_back_degraded_then_promotes_golden(self, tmp_path, model):
        engine, registry, controller = make_fleet(tmp_path, model)
        drift = DriftMonitor()
        policy = AutoCanaryPolicy(
            controller,
            drift=drift,
            config=AutopilotConfig(min_observations=3, divergence_budget=1e-3, cooldown_ticks=0),
        )
        loop = ControlLoop(
            engine=engine,
            autopilot=policy,
            probe=DivergenceProbe(engine, controller),
            interval_s=0.0,
        )
        controller.start(candidate=clone_model(model, perturb=0.5))
        reports = loop.run(10, sleep=lambda s: None)
        assert reports[-1]["decision"] == "idle"
        assert "rollback" in [r["decision"] for r in reports]
        assert not controller.active
        assert registry.channels("serve") == {"stable": 1}

        controller.start(candidate=clone_model(model))
        reports = loop.run(10, sleep=lambda s: None)
        assert "promote" in [r["decision"] for r in reports]
        assert registry.channels("serve") == {"stable": 3}
        # the fleet serves the promoted version via bare-name routing
        assert all(s.model_key == "serve" for s in engine.cells())

    def test_process_sharded_fleet_full_control_plane(self, tmp_path, model):
        """The acceptance scenario: live subprocess workers, a degraded
        candidate auto-rolled-back, a golden candidate auto-promoted,
        and the whole topology's metrics merging into one view."""
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("serve", model)
        spec = WorkerSpec(
            url="pipe://",
            registry=tmp_path / "registry",
            journal=str(tmp_path / "w{shard}.journal"),
            name="w{shard}",
            monitor=True,
        )

        with ShardedFleet(2, registry=registry, spec=spec) as fleet:
            for k in range(16):
                fleet.register_cell(f"cell-{k:03d}")
            controller = CanaryController(fleet, registry, "serve", fraction=0.5)
            policy = AutoCanaryPolicy(
                controller,
                config=AutopilotConfig(min_observations=3, divergence_budget=1e-3, cooldown_ticks=0),
            )
            loop = ControlLoop(
                engine=fleet,
                autopilot=policy,
                probe=DivergenceProbe(fleet, controller),
                interval_s=0.0,
            )

            # degraded candidate: the divergence monitors flag it and the
            # autopilot rolls it back without human intervention
            controller.start(candidate=clone_model(model, perturb=0.5))
            assert controller.canary_cells()  # slice really is pinned
            reports = loop.run(10, sleep=lambda s: None)
            assert "rollback" in [r["decision"] for r in reports]
            assert registry.channels("serve") == {"stable": 1}
            assert not controller.active

            # golden-equivalent candidate: auto-promoted
            controller.start(candidate=clone_model(model))
            reports = loop.run(10, sleep=lambda s: None)
            assert "promote" in [r["decision"] for r in reports]
            assert registry.channels("serve") == {"stable": 3}

            # the promoted checkpoint serves: estimates flow and every
            # worker's metrics merge into one registry view
            ids = [f"cell-{k:03d}" for k in range(16)]
            fleet.estimate(ids, 3.7, 1.0, 25.0)
            merged = fleet.metrics()
            estimates = sum(
                value
                for key, value in merged["counters"].items()
                if key.startswith("engine_requests_total") and 'op="estimate"' in key
            )
            assert estimates >= 16  # both shards contributed
            predicts = sum(
                value
                for key, value in merged["counters"].items()
                if key.startswith("engine_requests_total") and 'op="predict"' in key
            )
            assert predicts > 0  # the probes themselves were served (and counted)


# ----------------------------------------------------------------------
class TestLatencyGate:
    """The canary latency signal: ProbeTiming and the promote-time gate."""

    def test_probe_timing_ratio(self):
        from repro.monitor import ProbeTiming

        assert ProbeTiming(candidate_s=2.0, stable_s=1.0).ratio == 2.0
        assert ProbeTiming(candidate_s=0.0, stable_s=0.0).ratio == 1.0
        assert ProbeTiming(candidate_s=1.0, stable_s=0.0).ratio == float("inf")

    def test_probe_records_last_timing_only_on_a_measurement(self, tmp_path, model):
        engine, registry, controller = make_fleet(tmp_path, model)
        probe = DivergenceProbe(engine, controller)
        assert probe.measure() is None and probe.last_timing is None
        controller.start(candidate=clone_model(model))
        assert probe.measure() is not None
        timing = probe.last_timing
        assert timing.candidate_s > 0 and timing.stable_s > 0
        controller.rollback()
        assert probe.measure() is None and probe.last_timing is None

    def _stepped(self, latency_budget, ratio, n=2):
        from repro.monitor import ProbeTiming

        controller = FakeController()
        policy = AutoCanaryPolicy(
            controller,
            config=AutopilotConfig(
                min_observations=n, divergence_budget=0.5, latency_budget=latency_budget
            ),
        )
        timing = ProbeTiming(candidate_s=ratio, stable_s=1.0)
        for _ in range(n - 1):
            assert policy.step(np.array([0.001]), latency=timing) == "hold"
        return policy, controller, policy.step(np.array([0.001]), latency=timing)

    def test_accurate_but_slow_candidate_is_vetoed(self):
        policy, controller, decision = self._stepped(latency_budget=1.5, ratio=3.0)
        assert decision == "rollback"
        assert policy.last_reason == "latency"
        assert controller.rolled_back == 1 and controller.promoted == 0

    def test_within_budget_latency_promotes(self):
        policy, controller, decision = self._stepped(latency_budget=1.5, ratio=1.2)
        assert decision == "promote"
        assert policy.last_reason == "within-budget"

    def test_no_budget_means_no_gate(self):
        policy, controller, decision = self._stepped(latency_budget=None, ratio=50.0)
        assert decision == "promote"

    def test_latency_only_vetoes_a_would_be_promotion(self):
        from repro.monitor import ProbeTiming

        controller = FakeController()
        policy = AutoCanaryPolicy(
            controller,
            config=AutopilotConfig(min_observations=5, divergence_budget=0.5, latency_budget=1.5),
        )
        slow = ProbeTiming(candidate_s=9.0, stable_s=1.0)
        assert policy.step(np.array([0.001]), latency=slow) == "hold"
        assert policy.last_reason == "warming-up"  # not "latency": still observing

    def test_latency_ewma_resets_between_canaries(self):
        policy, controller, decision = self._stepped(latency_budget=1.5, ratio=3.0)
        assert decision == "rollback"
        assert policy.latency_ewma is None  # next canary is judged fresh


# ----------------------------------------------------------------------
class TestControlLoopRetrain:
    """ControlLoop drives an attached retrain loop after canary steering."""

    class FakeRetrain:
        def __init__(self):
            self.ticks = 0

        def tick(self):
            self.ticks += 1
            return {"status": "idle", "fresh_events": 0}

    def test_tick_report_carries_the_retrain_report(self):
        retrain = self.FakeRetrain()
        loop = ControlLoop(retrain=retrain, interval_s=0.0)
        report = loop.tick()
        assert report["retrain"] == {"status": "idle", "fresh_events": 0}
        assert retrain.ticks == 1

    def test_without_a_retrain_loop_the_key_is_none(self):
        assert ControlLoop(interval_s=0.0).tick()["retrain"] is None

    def test_run_keeps_ticking_while_a_retrain_loop_is_attached(self):
        controller = FakeController()
        controller.active = False  # autopilot reports idle immediately
        policy = AutoCanaryPolicy(controller, config=AutopilotConfig(min_observations=1))
        retrain = self.FakeRetrain()
        loop = ControlLoop(autopilot=policy, retrain=retrain, interval_s=0.0)
        reports = loop.run(5, sleep=lambda s: None)
        assert len(reports) == 5  # idle no longer stops the loop
        assert retrain.ticks == 5
        without = ControlLoop(autopilot=policy, interval_s=0.0)
        assert len(without.run(5, sleep=lambda s: None)) == 1  # old early-stop intact
