"""Socket-backed shard workers: :class:`RemoteShardWorker` + :class:`WorkerSpec`.

The pipe-worker suite (``test_serve_workers.py``) covers the engine
API and crash semantics over stdio; this file covers what changes when
the same frames ride a real socket — spawned-listener lifecycle,
in-band death detection, restart-by-redial, and the single
:class:`WorkerSpec` factory the fleet resolves every topology through.
"""

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.serve import (
    FleetEngine,
    ProcessShardWorker,
    RemoteShardWorker,
    ShardedFleet,
    StateJournal,
    WorkerCrashError,
    WorkerSpec,
    generate_fleet,
)

FAST_FLEET = dict(
    ambient_temps_c=(25.0,),
    c_rates=(1.0, 2.0),
    protocols=("discharge",),
    max_time_s=1800.0,
)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def small_fleet():
    return generate_fleet(16, seed=7, **FAST_FLEET)


# ----------------------------------------------------------------------
class TestRemoteShardWorker:
    def test_serves_engine_api_over_tcp(self, model):
        local = FleetEngine(default_model=model)
        worker = RemoteShardWorker(
            "tcp://127.0.0.1:0", default_model=model, spawn=True, name="sock"
        )
        try:
            assert worker.url.startswith("tcp://127.0.0.1:")
            for engine in (local, worker):
                engine.register_cell("a", chemistry="nmc")
                engine.register_cell("b", chemistry="lfp")
            assert len(worker) == 2 and "a" in worker
            out = worker.estimate(["a", "b"], [3.7, 3.6], [1.0, 2.0], 25.0)
            ref = local.estimate(["a", "b"], [3.7, 3.6], [1.0, 2.0], 25.0)
            np.testing.assert_array_equal(out, ref)
            out = worker.predict(["a", "b"], 2.0, 25.0, 120.0)
            np.testing.assert_array_equal(out, local.predict(["a", "b"], 2.0, 25.0, 120.0))
            assert worker.cell("a").soc == local.cell("a").soc
        finally:
            assert worker.close() == 0

    def test_rollout_matches_in_process_engine(self, model, small_fleet):
        ref = FleetEngine(default_model=model).rollout_fleet(small_fleet.assignments(), 120.0)
        worker = RemoteShardWorker(
            "tcp://127.0.0.1:0", default_model=model, spawn=True, name="roll"
        )
        try:
            got = worker.rollout_fleet(small_fleet.assignments(), 120.0)
        finally:
            worker.close()
        for cell_id, _ in small_fleet.assignments():
            np.testing.assert_array_equal(got[cell_id].soc_pred, ref[cell_id].soc_pred)

    def test_kill_mid_rollout_over_socket_resumes_bit_for_bit(self, model, small_fleet, tmp_path):
        """The socket version of the acceptance property: the worker
        dies mid-rollout behind a TCP link, restarts (respawn +
        redial), restores from its journal, and the stitched resume
        equals an uninterrupted run exactly."""
        assignments = small_fleet.assignments()
        ref = FleetEngine(default_model=model).rollout_fleet(assignments, 120.0)
        worker = RemoteShardWorker(
            "tcp://127.0.0.1:0",
            default_model=model,
            journal_path=tmp_path / "crash.journal",
            spawn=True,
            name="phoenix",
        )
        worker.crash_after_window(3)
        with pytest.raises(WorkerCrashError):
            worker.rollout_fleet(assignments, 120.0)
        assert not worker.alive
        worker.restart()
        assert len(worker) == len(small_fleet)  # cells restored before serving
        resumed = worker.resume_rollout_fleet(assignments, 120.0)
        for cell_id, _ in assignments:
            np.testing.assert_array_equal(resumed[cell_id].soc_pred, ref[cell_id].soc_pred)
        worker.close()

    def test_check_alive_detects_silently_dead_peer(self, model):
        worker = RemoteShardWorker(
            "tcp://127.0.0.1:0", default_model=model, spawn=True, name="probe"
        )
        assert worker.check_alive(timeout_s=5.0)
        worker._spawn_proc.kill()
        worker._spawn_proc.wait(timeout=10)
        assert worker.check_alive(timeout_s=2.0) is False
        assert not worker.alive
        worker.close()

    def test_restart_requires_a_dialable_url(self, model):
        """An inbound worker (dialed us; from_transport) has no address
        to redial — restart must say so, not hang."""
        import io

        from repro.serve.transport import PipeTransport
        from repro.serve import wire

        # a canned transport that answers the init handshake
        body = wire.pickle_body(("ok", None))
        rd = io.BytesIO(wire.frame_header(len(body)) + body)
        transport = PipeTransport(io.BytesIO(), rd, peer="inbound")
        worker = RemoteShardWorker.from_transport(transport, name="inbound", default_model=model)
        worker._drop_link()
        with pytest.raises(WorkerCrashError, match="dial back in"):
            worker.restart()

    def test_restart_while_alive_is_an_error(self, model):
        worker = RemoteShardWorker(
            "tcp://127.0.0.1:0", default_model=model, spawn=True, name="up"
        )
        try:
            with pytest.raises(RuntimeError, match="still running"):
                worker.restart()
        finally:
            worker.close()


# ----------------------------------------------------------------------
class TestWorkerSpec:
    def test_resolves_every_topology(self, model):
        assert isinstance(WorkerSpec(model=model).resolve(0), FleetEngine)
        pipe_worker = WorkerSpec(url="pipe://", model=model).resolve(0)
        assert isinstance(pipe_worker, ProcessShardWorker)
        pipe_worker.close()
        tcp_worker = WorkerSpec(url="tcp://127.0.0.1:0", model=model, spawn=True).resolve(0)
        assert isinstance(tcp_worker, RemoteShardWorker)
        tcp_worker.close()

    def test_shard_templating(self, model, tmp_path):
        spec = WorkerSpec(
            url="pipe://",
            model=model,
            name="rack{shard}",
            journal=tmp_path / "fleet.journal",
        )
        assert spec._journal_path(2) == str(tmp_path / "fleet.journal.shard2")
        templated = WorkerSpec(
            url="pipe://", model=model, journal=str(tmp_path / "j{shard}.journal")
        )
        assert templated._journal_path(1) == str(tmp_path / "j1.journal")

    def test_needs_model_or_registry_for_workers(self):
        with pytest.raises(ValueError, match="default model"):
            WorkerSpec(url="pipe://")

    def test_rejects_journal_instance_for_process_workers(self, model, tmp_path):
        journal = StateJournal(tmp_path / "shared.journal")
        spec = WorkerSpec(url="pipe://", model=model, journal=journal)
        with pytest.raises(ValueError, match="pass a path template"):
            spec.resolve(0)

    def test_rejects_journal_path_for_in_process_shards(self, model, tmp_path):
        spec = WorkerSpec(model=model, journal=str(tmp_path / "fleet.journal"))
        with pytest.raises(ValueError, match="pass the instance"):
            spec.resolve(0)


# ----------------------------------------------------------------------
class TestShardedFleetSpec:
    def test_worker_factory_kwarg_is_gone(self, model):
        # the deprecated callable-factory path was removed; WorkerSpec is
        # the single construction seam now
        with pytest.raises(TypeError, match="worker_factory"):
            ShardedFleet(2, worker_factory=lambda k: FleetEngine(default_model=model))

    def test_spec_rejects_legacy_engine_kwargs(self, model):
        with pytest.raises(ValueError, match="spec carries the worker description"):
            ShardedFleet(2, spec=WorkerSpec(model=model), default_model=model)

    def test_tcp_fleet_matches_single_engine(self, model, small_fleet):
        """Acceptance: a tcp:// fleet produces the same estimates and
        rollout trajectories as one in-process engine (1e-9 / exact)."""
        assignments = small_fleet.assignments()
        single = FleetEngine(default_model=model)
        ref_roll = single.rollout_fleet(assignments, 120.0)
        fleet = ShardedFleet(
            2, spec=WorkerSpec(url="tcp://127.0.0.1:0", model=model, spawn=True, name="t{shard}")
        )
        with fleet:
            ids = [cell_id for cell_id, _ in assignments]
            for cid in ids:
                single.register_cell(cid)
                fleet.register_cell(cid)
            v = np.linspace(3.2, 4.0, len(ids))
            i = np.linspace(0.5, 3.0, len(ids))
            np.testing.assert_allclose(
                fleet.estimate(ids, v, i, 25.0), single.estimate(ids, v, i, 25.0),
                atol=1e-9, rtol=0,
            )
            got = fleet.rollout_fleet(assignments, 120.0)
            for cell_id, _ in assignments:
                np.testing.assert_array_equal(got[cell_id].soc_pred, ref_roll[cell_id].soc_pred)

    def test_heartbeat_flags_dead_tcp_worker_and_heals(self, model, tmp_path):
        fleet = ShardedFleet(
            2,
            spec=WorkerSpec(
                url="tcp://127.0.0.1:0",
                model=model,
                spawn=True,
                name="h{shard}",
                journal=tmp_path / "h.journal",
            ),
        )
        with fleet:
            fleet.register_cell("a")
            assert fleet.heartbeat(timeout_s=5.0) == [True, True]
            fleet._shards[0]._spawn_proc.kill()
            fleet._shards[0]._spawn_proc.wait(timeout=10)
            assert fleet.heartbeat(timeout_s=2.0) == [False, True]
            assert fleet.restart_dead_workers() == [0]
            assert fleet.heartbeat(timeout_s=5.0) == [True, True]
            assert "a" in fleet  # state restored, not a blank respawn

    def test_add_worker_by_url_migrates_cells(self, model):
        """The daemon registration path: growing the fleet by a bare
        URL reuses the spec template and migrates ~1/n of the cells."""
        spare = RemoteShardWorker(
            "tcp://127.0.0.1:0", default_model=model, spawn=True, name="spare"
        )
        spare._drop_link()  # free the listener: the fleet dials it next
        fleet = ShardedFleet(
            2, spec=WorkerSpec(url="tcp://127.0.0.1:0", model=model, spawn=True, name="g{shard}")
        )
        with fleet:
            ids = [f"c{k}" for k in range(20)]
            for cid in ids:
                fleet.register_cell(cid)
            socs = {cid: fleet.cell(cid).soc for cid in ids}
            index = fleet.add_worker(spare.url)
            assert index == 2 and fleet.n_shards == 3
            assert sum(fleet.shard_sizes()) == len(ids)
            assert fleet.shard_sizes()[index] > 0  # rendezvous moved some cells over
            for cid in ids:
                assert fleet.cell(cid).soc == socs[cid]
        spare.close()
