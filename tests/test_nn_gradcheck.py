"""Systematic finite-difference gradient checks for every differentiable
operation and composite module in the nn substrate."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_gradients, numeric_gradient
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(1234)


def _rand(*shape):
    return RNG.uniform(-2.0, 2.0, size=shape)


def _rand_pos(*shape):
    return RNG.uniform(0.5, 2.0, size=shape)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: x + 2.0,
            lambda x: 3.0 - x,
            lambda x: x * 1.7,
            lambda x: x / 2.5,
            lambda x: 4.0 / (x + 3.0),
            lambda x: -x,
            lambda x: x**3,
            lambda x: x.tanh(),
            lambda x: x.sigmoid(),
            lambda x: x.exp(),
            lambda x: (x * x + 1.0).sqrt(),
        ],
    )
    def test_unary(self, fn):
        check_gradients(fn, [_rand(4, 3)])

    def test_log(self):
        check_gradients(lambda x: x.log(), [_rand_pos(5)])

    def test_relu_away_from_kink(self):
        x = _rand(6, 2)
        x[np.abs(x) < 0.1] = 0.5
        check_gradients(lambda t: t.relu(), [x])

    def test_leaky_relu(self):
        x = _rand(6, 2)
        x[np.abs(x) < 0.1] = 0.5
        check_gradients(lambda t: t.leaky_relu(0.1), [x])

    def test_abs_away_from_zero(self):
        x = _rand(8)
        x[np.abs(x) < 0.1] = 1.0
        check_gradients(lambda t: t.abs(), [x])

    def test_clip_interior(self):
        x = _rand(8)
        x[np.abs(x - 1.0) < 0.1] = 0.0
        x[np.abs(x + 1.0) < 0.1] = 0.0
        check_gradients(lambda t: t.clip(-1.0, 1.0), [x])


class TestBinaryGradients:
    def test_add(self):
        check_gradients(lambda a, b: a + b, [_rand(3, 4), _rand(3, 4)])

    def test_mul(self):
        check_gradients(lambda a, b: a * b, [_rand(3, 4), _rand(3, 4)])

    def test_div(self):
        check_gradients(lambda a, b: a / b, [_rand(3, 4), _rand_pos(3, 4)])

    def test_broadcast_add(self):
        check_gradients(lambda a, b: a + b, [_rand(3, 4), _rand(4)])

    def test_broadcast_mul(self):
        check_gradients(lambda a, b: a * b, [_rand(2, 3, 4), _rand(1, 4)])

    def test_broadcast_div(self):
        check_gradients(lambda a, b: a / b, [_rand(3, 4), _rand_pos(1,)])

    def test_where(self):
        cond = RNG.random((3, 4)) > 0.5
        check_gradients(lambda a, b: nn.where(cond, a, b), [_rand(3, 4), _rand(3, 4)])

    def test_maximum_separated(self):
        a, b = _rand(5), _rand(5)
        close = np.abs(a - b) < 0.2
        a[close] += 0.5
        check_gradients(lambda x, y: nn.maximum(x, y), [a, b])


class TestMatmulGradients:
    def test_2d_2d(self):
        check_gradients(lambda a, b: a @ b, [_rand(3, 4), _rand(4, 5)])

    def test_2d_1d(self):
        check_gradients(lambda a, b: a @ b, [_rand(3, 4), _rand(4)])

    def test_1d_2d(self):
        check_gradients(lambda a, b: a @ b, [_rand(4), _rand(4, 5)])

    def test_1d_1d(self):
        check_gradients(lambda a, b: a @ b, [_rand(4), _rand(4)])

    def test_batched(self):
        check_gradients(lambda a, b: a @ b, [_rand(2, 3, 4), _rand(2, 4, 5)])

    def test_chain(self):
        check_gradients(lambda a, b, c: (a @ b) @ c, [_rand(2, 3), _rand(3, 4), _rand(4, 2)])


class TestReductionGradients:
    def test_sum_all(self):
        check_gradients(lambda x: x.sum(), [_rand(3, 4)])

    def test_sum_axis0(self):
        check_gradients(lambda x: x.sum(axis=0), [_rand(3, 4)])

    def test_sum_axis1_keepdims(self):
        check_gradients(lambda x: x.sum(axis=1, keepdims=True), [_rand(3, 4)])

    def test_mean_all(self):
        check_gradients(lambda x: x.mean(), [_rand(3, 4)])

    def test_mean_axis(self):
        check_gradients(lambda x: x.mean(axis=1), [_rand(3, 4)])

    def test_max_unique(self):
        x = np.arange(12.0).reshape(3, 4)
        check_gradients(lambda t: t.max(axis=1), [x])

    def test_min_unique(self):
        x = np.arange(12.0).reshape(3, 4)
        check_gradients(lambda t: t.min(axis=0), [x])


class TestShapeGradients:
    def test_reshape(self):
        check_gradients(lambda x: (x.reshape(2, 6) ** 2), [_rand(3, 4)])

    def test_transpose(self):
        check_gradients(lambda x: x.T ** 2, [_rand(3, 4)])

    def test_transpose_axes(self):
        check_gradients(lambda x: x.transpose(2, 0, 1) ** 2, [_rand(2, 3, 4)])

    def test_slice(self):
        check_gradients(lambda x: x[1:, :2] ** 2, [_rand(3, 4)])

    def test_cat(self):
        check_gradients(lambda a, b: nn.cat([a, b], axis=1) ** 2, [_rand(2, 3), _rand(2, 2)])

    def test_stack(self):
        check_gradients(lambda a, b: nn.stack([a, b], axis=0) ** 2, [_rand(4), _rand(4)])


class TestModuleGradients:
    def test_linear(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        x = _rand(5, 4)

        def fn(w, b):
            layer.weight.data = w.data
            layer.bias.data = b.data
            return layer(Tensor(x))

        # differentiate w.r.t. the input instead (weights checked via MLP below)
        check_gradients(lambda t: layer(t), [x])

    def test_mlp_input_gradient(self):
        mlp = nn.MLP(3, hidden=(8, 8), rng=np.random.default_rng(0), activation=nn.Tanh)
        check_gradients(lambda t: mlp(t), [_rand(4, 3)])

    def test_mlp_weight_gradient(self):
        mlp = nn.MLP(2, hidden=(4,), rng=np.random.default_rng(0), activation=nn.Tanh)
        x = _rand(3, 2)
        target = _rand(3, 1)
        params = mlp.parameters()

        loss = nn.mse_loss(mlp(Tensor(x)), Tensor(target))
        loss.backward()
        analytic = [p.grad.copy() for p in params]

        eps = 1e-6
        for p, a_grad in zip(params, analytic):
            it = np.nditer(p.data, flags=["multi_index"])
            while not it.finished:
                idx = it.multi_index
                orig = p.data[idx]
                p.data[idx] = orig + eps
                plus = nn.mse_loss(mlp(Tensor(x)), Tensor(target)).item()
                p.data[idx] = orig - eps
                minus = nn.mse_loss(mlp(Tensor(x)), Tensor(target)).item()
                p.data[idx] = orig
                numeric = (plus - minus) / (2 * eps)
                assert numeric == pytest.approx(float(a_grad[idx]), abs=1e-4)
                it.iternext()

    def test_layernorm(self):
        ln = nn.LayerNorm(6)
        check_gradients(lambda t: ln(t), [_rand(4, 6)], atol=1e-4)

    def test_lstm_cell_input_gradient(self):
        cell = nn.LSTMCell(3, 4, rng=np.random.default_rng(0))
        h0 = _rand(2, 4) * 0.1
        c0 = _rand(2, 4) * 0.1

        def fn(x):
            h, c = cell(x, (Tensor(h0), Tensor(c0)))
            return h * h + c

        check_gradients(fn, [_rand(2, 3)], atol=1e-4)

    def test_lstm_sequence_input_gradient(self):
        lstm = nn.LSTM(2, 3, num_layers=2, rng=np.random.default_rng(0))

        def fn(x):
            out, (h, c) = lstm(x)
            return out.sum() + (h * h).sum()

        check_gradients(fn, [_rand(2, 4, 2)], atol=1e-4)

    def test_lstm_weight_gradient(self):
        reg = nn.LSTMRegressor(input_size=2, hidden_size=3, num_layers=1, dense_size=2, rng=np.random.default_rng(0))
        x = _rand(2, 3, 2)
        target = _rand(2, 1)
        loss = nn.mae_loss(reg(Tensor(x)), Tensor(target))
        loss.backward()
        # spot-check one weight matrix numerically
        p = reg.lstm.cells[0].weight_ih
        analytic = p.grad.copy()
        eps = 1e-6
        for idx in [(0, 0), (1, 5), (0, 11)]:
            orig = p.data[idx]
            p.data[idx] = orig + eps
            plus = nn.mae_loss(reg(Tensor(x)), Tensor(target)).item()
            p.data[idx] = orig - eps
            minus = nn.mae_loss(reg(Tensor(x)), Tensor(target)).item()
            p.data[idx] = orig
            assert (plus - minus) / (2 * eps) == pytest.approx(float(analytic[idx]), abs=1e-4)


class TestLossGradients:
    def test_mse(self):
        check_gradients(lambda p, t: nn.mse_loss(p, t), [_rand(6, 1), _rand(6, 1)])

    def test_mae_away_from_zero(self):
        p, t = _rand(6, 1), _rand(6, 1)
        close = np.abs(p - t) < 0.2
        p[close] += 0.5
        check_gradients(lambda a, b: nn.mae_loss(a, b), [p, t])

    def test_huber(self):
        p, t = _rand(6, 1), _rand(6, 1)
        offset = np.abs(np.abs(p - t) - 1.0) < 0.1  # keep away from the delta kink
        p[offset] += 0.3
        check_gradients(lambda a, b: nn.huber_loss(a, b, delta=1.0), [p, t])


class TestNumericGradientHelper:
    def test_matches_known_derivative(self):
        g = numeric_gradient(lambda x: x * x, [np.array([3.0])], 0)
        np.testing.assert_allclose(g, [6.0], atol=1e-5)

    def test_check_gradients_detects_wrong_rule(self):
        class Bad:
            pass

        def broken(x):
            # forward of square but detached gradient path: gradient is
            # intentionally wrong (zero), check_gradients must catch it.
            return Tensor(x.data * x.data) + x * 0.0

        with pytest.raises(AssertionError):
            check_gradients(broken, [np.array([2.0])])
