"""Tests for the two-branch model, its configs, and complexity accounting."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    Branch1,
    Branch2,
    ModelConfig,
    PhysicsConfig,
    TrainConfig,
    TwoBranchSoCNet,
    lstm_complexity,
    mlp_complexity,
    model_complexity,
)


class TestConfigs:
    def test_model_defaults_match_paper(self):
        cfg = ModelConfig()
        assert cfg.hidden == (16, 32, 16)

    def test_model_config_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(hidden=())
        with pytest.raises(ValueError):
            ModelConfig(hidden=(16, 0))
        with pytest.raises(ValueError):
            ModelConfig(horizon_scale_s=0.0)

    def test_physics_config_validation(self):
        with pytest.raises(ValueError):
            PhysicsConfig(horizons_s=())
        with pytest.raises(ValueError):
            PhysicsConfig(horizons_s=(-30.0,))
        with pytest.raises(ValueError):
            PhysicsConfig(n_collocation=0)
        with pytest.raises(ValueError):
            PhysicsConfig(weight=-1.0)

    def test_train_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainConfig(lr=0.0)
        with pytest.raises(ValueError):
            TrainConfig(epochs_branch1=-1)
        with pytest.raises(ValueError):
            TrainConfig(grad_clip=-1.0)


class TestBranches:
    def test_branch_input_widths(self):
        rng = np.random.default_rng(0)
        b1, b2 = Branch1(rng=rng), Branch2(rng=rng)
        assert b1(nn.Tensor(np.zeros((5, 3)))).shape == (5, 1)
        assert b2(nn.Tensor(np.zeros((5, 4)))).shape == (5, 1)

    def test_branch_wrong_width_raises(self):
        b1 = Branch1(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            b1(nn.Tensor(np.zeros((5, 4))))

    def test_parameter_counts_match_paper(self):
        # Sec. III-A: 2,322 parameters total, ~9 kB at float32.
        rng = np.random.default_rng(0)
        total = Branch1(rng=rng).num_parameters() + Branch2(rng=rng).num_parameters()
        assert total == 2322


class TestTwoBranchSoCNet:
    @pytest.fixture()
    def model(self):
        return TwoBranchSoCNet(rng=np.random.default_rng(0))

    def test_total_parameters(self, model):
        assert model.num_parameters() == 2322

    def test_estimate_soc_shapes(self, model):
        out = model.estimate_soc([3.7, 3.6], [1.0, 2.0], [25.0, 25.0])
        assert out.shape == (2,)

    def test_estimate_soc_scalar_input(self, model):
        out = model.estimate_soc(3.7, 1.0, 25.0)
        assert out.shape == (1,)

    def test_predict_soc_shapes(self, model):
        out = model.predict_soc([0.8], [1.5], [25.0], [120.0])
        assert out.shape == (1,)

    def test_full_cascade_consistent_with_two_calls(self, model):
        soc = model.estimate_soc(3.7, 1.0, 25.0)
        direct = model.predict_soc(soc, 1.5, 25.0, 120.0)
        cascade = model.predict_from_sensors(3.7, 1.0, 25.0, 1.5, 25.0, 120.0)
        np.testing.assert_allclose(cascade, direct)

    def test_inference_does_not_build_tape(self, model):
        model.estimate_soc(3.7, 1.0, 25.0)
        assert all(p.grad is None for p in model.parameters())

    def test_deterministic_per_seed(self):
        a = TwoBranchSoCNet(rng=np.random.default_rng(3))
        b = TwoBranchSoCNet(rng=np.random.default_rng(3))
        np.testing.assert_allclose(
            a.estimate_soc(3.7, 1.0, 25.0), b.estimate_soc(3.7, 1.0, 25.0)
        )

    def test_predict_samples_ground_truth_mode(self, model, small_sandia):
        from repro.datasets import make_prediction_samples

        samples = make_prediction_samples(small_sandia.test(), horizon_s=120.0)
        with_gt = model.predict_samples(samples, use_ground_truth_soc=True)
        without = model.predict_samples(samples, use_ground_truth_soc=False)
        assert with_gt.shape == without.shape == (len(samples),)
        assert not np.allclose(with_gt, without)  # Branch 1 estimate differs from truth

    def test_repr_mentions_params(self, model):
        assert "2322" in repr(model)

    def test_state_dict_roundtrip(self, model):
        clone = TwoBranchSoCNet(rng=np.random.default_rng(99))
        clone.load_state_dict(model.state_dict())
        np.testing.assert_allclose(
            clone.predict_from_sensors(3.7, 1.0, 25.0, 1.5, 25.0, 120.0),
            model.predict_from_sensors(3.7, 1.0, 25.0, 1.5, 25.0, 120.0),
        )


class TestComplexity:
    def test_two_branch_report(self):
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        report = model_complexity(model)
        assert report.parameters == 2322
        assert report.memory_bytes == 2322 * 4  # ~9 kB, as the paper says
        assert 9.0 <= report.memory_kib() <= 9.2
        # both branches: (3+4)*16 + 2*(16*32 + 32*16) + 2*16 MACs
        assert report.macs == 2192
        assert report.ops > report.macs

    def test_mlp_complexity_hand_computed(self):
        mlp = nn.MLP(3, hidden=(16, 32, 16), rng=np.random.default_rng(0))
        report = mlp_complexity(mlp)
        assert report.macs == 3 * 16 + 16 * 32 + 32 * 16 + 16 * 1
        assert report.parameters == 1153

    def test_lstm_complexity_scales_with_seq_len(self):
        lstm = nn.LSTMRegressor(hidden_size=32, num_layers=1, rng=np.random.default_rng(0))
        short = lstm_complexity(lstm, seq_len=10)
        long = lstm_complexity(lstm, seq_len=100)
        assert long.macs > 9 * short.macs
        assert long.parameters == short.parameters

    def test_lstm_requires_seq_len(self):
        lstm = nn.LSTMRegressor(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            model_complexity(lstm)

    def test_lstm_invalid_seq_len(self):
        lstm = nn.LSTMRegressor(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            lstm_complexity(lstm, seq_len=0)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            model_complexity(nn.Linear(2, 2, rng=np.random.default_rng(0)))

    def test_reports_add(self):
        model = TwoBranchSoCNet(rng=np.random.default_rng(0))
        b1 = mlp_complexity(model.branch1.mlp)
        b2 = mlp_complexity(model.branch2.mlp)
        total = b1 + b2
        assert total.parameters == 2322
        assert total.macs == b1.macs + b2.macs

    def test_paper_lstm_ratio_order_of_magnitude(self):
        """The paper claims ~409x fewer parameters than the LSTM SoA and
        ~260k-x fewer ops; our baseline LSTM should reproduce those
        orders of magnitude."""
        two_branch = model_complexity(TwoBranchSoCNet(rng=np.random.default_rng(0)))
        lstm = nn.LSTMRegressor(hidden_size=256, num_layers=2, dense_size=128, rng=np.random.default_rng(0))
        report = lstm_complexity(lstm, seq_len=300)
        assert report.parameters / two_branch.parameters > 100  # hundreds of times bigger
        assert report.ops / two_branch.ops > 10000  # tens of thousands of times more work
