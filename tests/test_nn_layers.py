"""Tests for module mechanics: parameter discovery, state dicts,
train/eval switching, and the concrete layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def _rng():
    return np.random.default_rng(7)


class TestModuleMechanics:
    def test_parameters_found_in_nested_modules(self):
        model = nn.Sequential(nn.Linear(2, 3, rng=_rng()), nn.ReLU(), nn.Linear(3, 1, rng=_rng()))
        names = [n for n, _ in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.0.bias" in names
        assert "layers.2.weight" in names
        assert len(model.parameters()) == 4

    def test_num_parameters_linear(self):
        layer = nn.Linear(4, 3, rng=_rng())
        assert layer.num_parameters() == 4 * 3 + 3

    def test_num_parameters_branch_sizes_match_paper(self):
        # Paper Sec. III-A: branches with hidden 16/32/16, inputs 3 and 4,
        # together 2,322 trainable parameters.
        branch1 = nn.MLP(3, hidden=(16, 32, 16), rng=_rng())
        branch2 = nn.MLP(4, hidden=(16, 32, 16), rng=_rng())
        assert branch1.num_parameters() + branch2.num_parameters() == 2322

    def test_zero_grad_clears_all(self):
        model = nn.MLP(2, hidden=(4,), rng=_rng())
        out = model(Tensor(np.ones((3, 2)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_roundtrip(self):
        a = nn.MLP(3, hidden=(5, 5), rng=np.random.default_rng(0))
        b = nn.MLP(3, hidden=(5, 5), rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_is_a_copy(self):
        model = nn.Linear(2, 2, rng=_rng())
        snap = model.state_dict()
        model.weight.data += 1.0
        assert not np.allclose(snap["weight"], model.weight.data)

    def test_load_state_dict_missing_key_raises(self):
        model = nn.Linear(2, 2, rng=_rng())
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_state_dict_bad_shape_raises(self):
        model = nn.Linear(2, 2, rng=_rng())
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_recursive(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=_rng()), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestLinear:
    def test_forward_matches_manual(self):
        layer = nn.Linear(3, 2, rng=_rng())
        x = np.ones((4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False, rng=_rng())
        assert layer.bias is None
        assert layer.num_parameters() == 6

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 2)

    def test_deterministic_init(self):
        a = nn.Linear(3, 2, rng=np.random.default_rng(5))
        b = nn.Linear(3, 2, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_repr(self):
        assert "Linear(3, 2" in repr(nn.Linear(3, 2, rng=_rng()))


class TestActivations:
    def test_relu_module(self):
        out = nn.ReLU()(Tensor([-1.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_leaky_relu_module(self):
        out = nn.LeakyReLU(0.1)(Tensor([-1.0, 2.0]))
        np.testing.assert_allclose(out.data, [-0.1, 2.0])

    def test_tanh_sigmoid_identity(self):
        x = Tensor([0.0])
        assert nn.Tanh()(x).item() == 0.0
        assert nn.Sigmoid()(x).item() == 0.5
        assert nn.Identity()(x).item() == 0.0


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = nn.Dropout(0.9, rng=_rng())
        drop.eval()
        x = Tensor(np.ones(100))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_training_mode_zeroes_and_scales(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones(10000))
        out = drop(x).data
        zeros = np.sum(out == 0.0)
        assert 4500 < zeros < 5500  # about half dropped
        kept = out[out != 0.0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = nn.LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(16, 8)))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)


class TestSequentialAndMLP:
    def test_sequential_order(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=_rng()), nn.ReLU())
        assert len(model) == 2
        assert isinstance(model[1], nn.ReLU)

    def test_sequential_append(self):
        model = nn.Sequential()
        model.append(nn.Identity())
        assert len(model) == 1

    def test_mlp_output_shape(self):
        mlp = nn.MLP(3, hidden=(16, 32, 16), out_features=1, rng=_rng())
        out = mlp(Tensor(np.zeros((7, 3))))
        assert out.shape == (7, 1)

    def test_mlp_structure_is_inverted_bottleneck(self):
        mlp = nn.MLP(3, hidden=(16, 32, 16), rng=_rng())
        widths = [layer.out_features for layer in mlp.net.layers if isinstance(layer, nn.Linear)]
        assert widths == [16, 32, 16, 1]

    def test_mlp_output_unbounded(self):
        # Output layer has no activation: must be able to go negative.
        mlp = nn.MLP(1, hidden=(4,), rng=np.random.default_rng(3))
        for p in mlp.parameters():
            p.data = np.abs(p.data) * -1.0
        out = mlp(Tensor(np.ones((1, 1))))
        assert out.item() < 0.0


class TestInitializers:
    def test_xavier_uniform_bound(self):
        w = nn.init.xavier_uniform((100, 50), np.random.default_rng(0))
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self):
        w = nn.init.xavier_normal((500, 500), np.random.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_kaiming_normal_std(self):
        w = nn.init.kaiming_normal((1000, 10), np.random.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_orthogonal_is_orthogonal(self):
        w = nn.init.orthogonal((6, 6), np.random.default_rng(0))
        np.testing.assert_allclose(w @ w.T, np.eye(6), atol=1e-10)

    def test_orthogonal_rectangular(self):
        w = nn.init.orthogonal((4, 8), np.random.default_rng(0))
        np.testing.assert_allclose(w @ w.T, np.eye(4), atol=1e-10)

    def test_fan_requires_2d(self):
        with pytest.raises(ValueError):
            nn.init.xavier_uniform((5,), np.random.default_rng(0))

    def test_zeros(self):
        np.testing.assert_array_equal(nn.init.zeros((2, 2)), np.zeros((2, 2)))
