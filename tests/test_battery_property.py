"""Property-based tests (hypothesis) for battery-physics invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery import LumpedThermalModel, TheveninModel, coulomb, get_cell_spec

SOC = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
CURRENT = st.floats(min_value=-6.0, max_value=6.0, allow_nan=False)
HORIZON = st.floats(min_value=1.0, max_value=3600.0, allow_nan=False)
CAPACITY = st.floats(min_value=0.5, max_value=10.0, allow_nan=False)
TEMP = st.floats(min_value=-20.0, max_value=45.0, allow_nan=False)


class TestCoulombProperties:
    @given(soc=SOC, current=CURRENT, horizon=HORIZON, cap=CAPACITY)
    def test_linearity_in_time(self, soc, current, horizon, cap):
        """Two half-horizon steps equal one full-horizon step (Eq. 1 is linear)."""
        one = coulomb.predict_soc(soc, current, horizon, cap)
        half = coulomb.predict_soc(soc, current, horizon / 2, cap)
        two = coulomb.predict_soc(half, current, horizon / 2, cap)
        assert one == pytest.approx(two, abs=1e-12)

    @given(soc=SOC, current=CURRENT, horizon=HORIZON, cap=CAPACITY)
    def test_sign_convention(self, soc, current, horizon, cap):
        out = coulomb.predict_soc(soc, current, horizon, cap)
        if current > 0:
            assert out <= soc
        elif current < 0:
            assert out >= soc
        else:
            assert out == soc

    @given(soc=SOC, current=CURRENT, horizon=HORIZON, cap=CAPACITY)
    def test_charge_discharge_antisymmetry(self, soc, current, horizon, cap):
        down = coulomb.predict_soc(soc, current, horizon, cap) - soc
        up = coulomb.predict_soc(soc, -current, horizon, cap) - soc
        assert down == pytest.approx(-up, abs=1e-12)

    @given(soc=SOC, current=CURRENT, horizon=HORIZON, cap=CAPACITY)
    def test_clip_stays_in_range(self, soc, current, horizon, cap):
        out = coulomb.predict_soc(soc, current, horizon, cap, clip=True)
        assert 0.0 <= out <= 1.0

    @given(
        currents=st.lists(CURRENT, min_size=1, max_size=50),
        soc=SOC,
        cap=CAPACITY,
    )
    def test_trajectory_consistency(self, currents, soc, cap):
        """The vectorized trajectory equals step-by-step prediction."""
        arr = np.asarray(currents)
        traj = coulomb.soc_trajectory(soc, arr, 2.0, cap)
        running = soc
        for k, c in enumerate(arr):
            running = coulomb.predict_soc(running, c, 2.0, cap)
        assert traj[-1] == pytest.approx(running, abs=1e-9)


class TestECMProperties:
    @given(soc=st.floats(min_value=0.05, max_value=0.95), temp=TEMP)
    @settings(max_examples=40)
    def test_terminal_voltage_below_ocv_under_discharge(self, soc, temp):
        m = TheveninModel(get_cell_spec("sandia-nmc"))
        m.reset(soc)
        v = m.step(2.0, 1.0, temp)
        assert v < m.spec.chemistry.ocv(m.state.soc)

    @given(soc=st.floats(min_value=0.05, max_value=0.95), temp=TEMP)
    @settings(max_examples=40)
    def test_terminal_voltage_above_ocv_under_charge(self, soc, temp):
        m = TheveninModel(get_cell_spec("sandia-nmc"))
        m.reset(soc)
        v = m.step(-2.0, 1.0, temp)
        assert v > m.spec.chemistry.ocv(m.state.soc)

    @given(temp=TEMP)
    @settings(max_examples=40)
    def test_resistance_positive(self, temp):
        m = TheveninModel(get_cell_spec("sandia-lfp"))
        assert m.r0(0.5, temp) > 0

    @given(soc=SOC, temp=TEMP)
    @settings(max_examples=40)
    def test_effective_capacity_bounded(self, soc, temp):
        m = TheveninModel(get_cell_spec("lg-hg2"))
        cap = m.effective_capacity_ah(temp)
        assert 0.5 * m.spec.capacity_ah <= cap <= m.spec.capacity_ah

    @given(
        currents=st.lists(st.floats(min_value=-3.0, max_value=3.0, allow_nan=False), min_size=1, max_size=30),
    )
    @settings(max_examples=30)
    def test_soc_always_in_unit_interval(self, currents):
        m = TheveninModel(get_cell_spec("sandia-nca"))
        m.reset(0.5)
        for c in currents:
            m.step(c, 120.0, 25.0)
            assert 0.0 <= m.state.soc <= 1.0


class TestThermalProperties:
    @given(power=st.floats(min_value=0.0, max_value=10.0), ambient=TEMP)
    @settings(max_examples=40)
    def test_temperature_bounded_by_steady_state(self, power, ambient):
        t = LumpedThermalModel(0.047, 900.0, 0.15, initial_temp_c=ambient)
        limit = t.steady_state(power, ambient)
        for _ in range(50):
            t.step(power, ambient, 30.0)
            assert t.temp_c <= limit + 1e-9

    @given(ambient=TEMP, start=TEMP)
    @settings(max_examples=40)
    def test_zero_power_relaxes_toward_ambient(self, ambient, start):
        t = LumpedThermalModel(0.047, 900.0, 0.15, initial_temp_c=start)
        before = abs(t.temp_c - ambient)
        t.step(0.0, ambient, 60.0)
        assert abs(t.temp_c - ambient) <= before + 1e-12

    @given(power=st.floats(min_value=0.1, max_value=5.0), dt=st.floats(min_value=0.1, max_value=1e6))
    @settings(max_examples=40)
    def test_heating_monotone_in_power(self, power, dt):
        low = LumpedThermalModel(0.047, 900.0, 0.15, initial_temp_c=25.0)
        high = LumpedThermalModel(0.047, 900.0, 0.15, initial_temp_c=25.0)
        low.step(power, 25.0, dt)
        high.step(power * 2, 25.0, dt)
        assert high.temp_c >= low.temp_c
