"""Tests for the offline fine-tuner (:mod:`repro.learn.finetune`)."""

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.datasets.windowing import PredictionSamples
from repro.learn import FineTuneConfig, fine_tune, relabel_with_physics


@pytest.fixture(scope="module")
def base():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


def physics_samples(n=64, capacity_ah=2.0, seed=1):
    """Synthetic Branch 2 rows labeled exactly with Eq. 1."""
    rng = np.random.default_rng(seed)
    soc_t = rng.uniform(0.2, 1.0, n)
    i_avg = rng.uniform(0.5, 3.0, n)
    horizon_s = np.full(n, 120.0)
    target = soc_t - i_avg * horizon_s / (3600.0 * capacity_ah)
    return PredictionSamples(
        v_t=np.zeros(n),
        i_t=np.zeros(n),
        temp_t=np.zeros(n),
        soc_t=soc_t,
        i_avg=i_avg,
        temp_avg=np.full(n, 25.0),
        horizon_s=horizon_s,
        soc_target=target,
        capacity_ah=np.full(n, capacity_ah),
    )


class TestFineTune:
    def test_warm_start_leaves_the_base_untouched(self, base):
        before = {k: v.copy() for k, v in base.state_dict().items()}
        candidate = fine_tune(base, physics_samples(), FineTuneConfig(epochs=2))
        for key, value in base.state_dict().items():
            np.testing.assert_array_equal(value, before[key])
        assert any(np.max(np.abs(candidate.state_dict()[k] - before[k])) > 0 for k in before)

    def test_only_branch2_moves(self, base):
        before = {k: v.copy() for k, v in base.state_dict().items()}
        candidate = fine_tune(base, physics_samples(), FineTuneConfig(epochs=2))
        after = candidate.state_dict()
        branch1 = [k for k in before if k.startswith("branch1")]
        branch2 = [k for k in before if k.startswith("branch2")]
        assert branch1 and branch2, sorted(before)
        for key in branch1:
            np.testing.assert_array_equal(after[key], before[key])
        assert any(np.max(np.abs(after[key] - before[key])) > 0 for key in branch2)

    def test_reduces_physics_error_of_a_degraded_checkpoint(self, base):
        samples = physics_samples(n=128)
        # degrade branch 2 the way fleet drift shows up: the stable
        # checkpoint's predictions no longer track Eq. 1
        rng = np.random.default_rng(5)
        degraded = TwoBranchSoCNet(base.config, rng=np.random.default_rng(2))
        state = {
            k: v + (0.5 * rng.standard_normal(np.shape(v)) if k.startswith("branch2") else 0.0)
            for k, v in base.state_dict().items()
        }
        degraded.load_state_dict(state)

        def physics_rmse(model):
            pred = model.predict_samples(samples, use_ground_truth_soc=True)
            return float(np.sqrt(np.mean((pred - samples.soc_target) ** 2)))

        before = physics_rmse(degraded)
        candidate = fine_tune(
            degraded, samples, FineTuneConfig(epochs=60, lr=3e-3, physics_weight=0.5)
        )
        after = physics_rmse(candidate)
        assert after < before * 0.5, (before, after)

    def test_empty_sample_set_is_rejected(self, base):
        with pytest.raises(ValueError, match="empty"):
            fine_tune(base, physics_samples(n=0))

    def test_deterministic_for_a_fixed_seed(self, base):
        samples = physics_samples()
        config = FineTuneConfig(epochs=2, seed=7)
        a = fine_tune(base, samples, config).state_dict()
        b = fine_tune(base, samples, config).state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])


class TestRelabel:
    def test_targets_become_coulomb_counting(self):
        samples = physics_samples()
        shifted = samples.soc_target + 0.3  # pretend a drifted model labeled them
        import dataclasses

        drifted = dataclasses.replace(samples, soc_target=shifted)
        relabeled = relabel_with_physics(drifted)
        np.testing.assert_allclose(relabeled.soc_target, samples.soc_target, atol=1e-12)
        # inputs are untouched
        np.testing.assert_array_equal(relabeled.soc_t, samples.soc_t)

    def test_journal_targets_are_kept_verbatim_when_asked(self, base):
        samples = physics_samples(n=32)
        config = FineTuneConfig(epochs=1, targets="journal", physics_weight=0.0)
        fine_tune(base, samples, config)  # trains on the labels as-is

    def test_config_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            FineTuneConfig(epochs=0)
        with pytest.raises(ValueError, match="targets"):
            FineTuneConfig(targets="distill")
