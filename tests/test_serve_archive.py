"""Journal segment archival (:mod:`repro.serve.archive`).

Rotation ships sealed segments to the cold store and drops the local
copies; replay fetches them back; a gap in the archived numbering is a
hard error, never a silent partial restore.
"""

import json

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.serve import (
    DirectoryArchiveStore,
    FleetEngine,
    MissingSegmentError,
    StateJournal,
    restore_from_archive,
)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


@pytest.fixture
def store(tmp_path):
    return DirectoryArchiveStore(tmp_path / "cold")


def _rotated_engine(path, store, model, cells=40):
    """An engine whose journal has rotated several segments into the store."""
    journal = StateJournal(path, max_segment_bytes=512, compact_every=0, archive=store)
    engine = FleetEngine(default_model=model, journal=journal)
    for k in range(cells):
        engine.register_cell(f"c{k}", chemistry="nmc" if k % 2 else "lfp")
    ids = [f"c{k}" for k in range(cells)]
    engine.estimate(ids, 3.7, 1.0, 25.0)
    return engine, journal


# ----------------------------------------------------------------------
class TestDirectoryArchiveStore:
    def test_put_fetch_round_trip(self, store, tmp_path):
        source = tmp_path / "seg.jsonl"
        source.write_text('{"op": "x"}\n')
        store.put("fleet.journal.00001.jsonl", source)
        dest = tmp_path / "back.jsonl"
        store.fetch("fleet.journal.00001.jsonl", dest)
        assert dest.read_text() == source.read_text()

    def test_list_is_sorted_and_prefix_filtered(self, store, tmp_path):
        source = tmp_path / "seg.jsonl"
        source.write_text("{}\n")
        for name in ("b.journal.00002.jsonl", "a.journal.00001.jsonl", "b.journal.00001.jsonl"):
            store.put(name, source)
        expected = ["a.journal.00001.jsonl", "b.journal.00001.jsonl", "b.journal.00002.jsonl"]
        assert store.list() == expected
        assert store.list(prefix="b.journal.") == ["b.journal.00001.jsonl", "b.journal.00002.jsonl"]

    def test_fetch_missing_raises_missing_segment(self, store, tmp_path):
        with pytest.raises(MissingSegmentError, match="not in the archive"):
            store.fetch("ghost.00001.jsonl", tmp_path / "out.jsonl")
        assert not (tmp_path / "out.jsonl").exists()

    def test_delete_is_idempotent(self, store, tmp_path):
        source = tmp_path / "seg.jsonl"
        source.write_text("{}\n")
        store.put("x.00001.jsonl", source)
        store.delete("x.00001.jsonl")
        store.delete("x.00001.jsonl")  # already gone: not an error
        assert store.list() == []

    def test_missing_segment_error_is_a_value_error(self):
        assert issubclass(MissingSegmentError, ValueError)


# ----------------------------------------------------------------------
class TestJournalArchival:
    def test_rotation_ships_segments_and_unlinks_local(self, model, store, tmp_path):
        path = tmp_path / "fleet.journal"
        _, journal = _rotated_engine(path, store, model)
        shipped = journal.archived_segments()
        assert len(shipped) >= 3
        assert shipped[0] == "fleet.journal.00001.jsonl"
        assert journal.segments() == []  # local copies are cache, not record
        assert path.exists()  # the active file stays hot

    def test_restore_from_archive_replays_full_history(self, model, store, tmp_path):
        path = tmp_path / "fleet.journal"
        engine, journal = _rotated_engine(path, store, model)
        socs = {f"c{k}": engine.cell(f"c{k}").soc for k in range(40)}
        journal.close()
        # cold start on a "new host": only the active file + the store
        restored_journal = restore_from_archive(path, store, compact_every=0)
        restored = FleetEngine.restore(restored_journal, default_model=model)
        assert len(restored) == 40
        for cell_id, soc in socs.items():
            state = restored.cell(cell_id)
            assert state.soc == soc
            assert state.chemistry == ("nmc" if int(cell_id[1:]) % 2 else "lfp")
        # replayed local copies were fetched for replay, then dropped
        assert restored_journal.segments() == []

    def test_restore_without_active_file_still_replays(self, model, store, tmp_path):
        """Losing the hot disk loses only the active tail; everything
        sealed comes back from the store."""
        path = tmp_path / "fleet.journal"
        engine, journal = _rotated_engine(path, store, model)
        journal.close()
        path.unlink()  # the "disk" died; archived segments survive
        restored = FleetEngine.restore(
            restore_from_archive(path, store, compact_every=0), default_model=model
        )
        assert len(restored) > 0  # every fully-sealed registration is back

    def test_gap_in_archived_history_is_an_error(self, model, store, tmp_path):
        path = tmp_path / "fleet.journal"
        _, journal = _rotated_engine(path, store, model)
        journal.close()
        store.delete("fleet.journal.00002.jsonl")
        with pytest.raises(MissingSegmentError, match=r"missing segment\(s\) \[2\]"):
            restore_from_archive(path, store)

    def test_compact_clears_redundant_archived_segments(self, model, store, tmp_path):
        path = tmp_path / "fleet.journal"
        engine, journal = _rotated_engine(path, store, model)
        assert journal.archived_segments()
        journal.compact()
        assert journal.archived_segments() == []  # history folded into the active file
        restored = FleetEngine.restore(
            StateJournal(path, archive=store), default_model=model
        )
        assert len(restored) == len(engine)

    def test_rotation_resumes_numbering_after_restore(self, model, store, tmp_path):
        """Sealing after a cold restore must not overwrite shipped
        segments: numbering continues from the archived high-water mark."""
        path = tmp_path / "fleet.journal"
        _, journal = _rotated_engine(path, store, model)
        count = len(journal.archived_segments())
        journal.close()
        journal2 = restore_from_archive(path, store, max_segment_bytes=512, compact_every=0)
        engine = FleetEngine.restore(journal2, default_model=model)
        for k in range(40, 80):
            engine.register_cell(f"c{k}")
        names = journal2.archived_segments()
        assert len(names) > count
        assert names == sorted(set(names))  # no index reused

    def test_active_file_records_stay_json(self, model, store, tmp_path):
        """The archive changes where segments live, not the format."""
        path = tmp_path / "fleet.journal"
        _rotated_engine(path, store, model, cells=8)
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                json.loads(line)
