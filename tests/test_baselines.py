"""Tests for the comparison models: Physics-Only, LSTM, DE-PINN, EKF."""

import numpy as np
import pytest

from repro.baselines import (
    DEConfig,
    EKFConfig,
    EKFSoCEstimator,
    LSTMConfig,
    PhysicsOnlyModel,
    compact_config,
    make_de_pairs,
    make_sequence_samples,
    paper_scale_config,
    train_de_estimator,
    train_lstm_estimator,
)
from repro.battery import CellSimulator, SensorNoise, coulomb, get_cell_spec
from repro.datasets import make_prediction_samples


class TestPhysicsOnly:
    def test_matches_eq1(self):
        model = PhysicsOnlyModel(3.0)
        out = model.predict_soc(0.8, 1.5, 25.0, 600.0)
        assert out[0] == pytest.approx(coulomb.predict_soc(0.8, 1.5, 600.0, 3.0))

    def test_temperature_ignored(self):
        model = PhysicsOnlyModel(3.0)
        np.testing.assert_allclose(
            model.predict_soc(0.8, 1.5, -20.0, 600.0), model.predict_soc(0.8, 1.5, 40.0, 600.0)
        )

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PhysicsOnlyModel(0.0)

    def test_predict_samples_ground_truth_default(self, small_sandia):
        samples = make_prediction_samples(small_sandia.test(), horizon_s=120.0)
        model = PhysicsOnlyModel(3.0)
        out = model.predict_samples(samples)
        expected = coulomb.predict_soc(samples.soc_t, samples.i_avg, samples.horizon_s, 3.0)
        np.testing.assert_allclose(out, expected)

    def test_predict_samples_with_estimated_soc(self, small_sandia):
        samples = make_prediction_samples(small_sandia.test(), horizon_s=120.0)
        model = PhysicsOnlyModel(3.0)
        soc_hat = samples.soc_t + 0.1
        out = model.predict_samples(samples, soc_now=soc_hat)
        np.testing.assert_allclose(out, model.predict_samples(samples) + 0.1)

    def test_soc_now_length_checked(self, small_sandia):
        samples = make_prediction_samples(small_sandia.test(), horizon_s=120.0)
        with pytest.raises(ValueError):
            PhysicsOnlyModel(3.0).predict_samples(samples, soc_now=np.zeros(3))

    def test_rollout_step_signature(self):
        model = PhysicsOnlyModel(3.0)
        out = model.rollout_step(0.5, 1.0, 25.0, 3600.0)  # 1 A for 1 h on 3 Ah
        assert out == pytest.approx(0.5 - 1.0 / 3.0)


class TestLSTMBaseline:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            LSTMConfig(hidden_size=0)
        with pytest.raises(ValueError):
            LSTMConfig(lr=0.0)

    def test_paper_scale_parameter_count(self):
        """The published SoA model is ~1M parameters (~4 MB float32)."""
        from repro.nn import LSTMRegressor

        cfg = paper_scale_config()
        net = LSTMRegressor(
            hidden_size=cfg.hidden_size,
            num_layers=cfg.num_layers,
            dense_size=cfg.dense_size,
            rng=np.random.default_rng(0),
        )
        assert 0.5e6 < net.num_parameters() < 2e6

    def test_sequence_samples_shape(self, small_lg):
        samples = make_sequence_samples(small_lg.train(), seq_len=10, sample_stride=4, window_stride=50)
        assert samples.sequences.shape[1:] == (10, 3)
        assert len(samples) == len(samples.soc)

    def test_sequence_window_is_causal_history(self, small_lg):
        cycle = small_lg.train()[0]
        samples = make_sequence_samples([cycle], seq_len=5, sample_stride=2, window_stride=1000)
        d = cycle.data
        span = 4 * 2
        # first window ends at index `span`; its last element is that sample
        np.testing.assert_allclose(samples.sequences[0, -1, 0], d.voltage[span])
        np.testing.assert_allclose(samples.sequences[0, 0, 0], d.voltage[0])
        np.testing.assert_allclose(samples.soc[0], d.soc[span])

    def test_window_validation(self, small_lg):
        with pytest.raises(ValueError):
            make_sequence_samples(small_lg.train(), seq_len=0)

    def test_window_longer_than_cycle_raises(self, small_lg):
        with pytest.raises(ValueError):
            make_sequence_samples(small_lg.train(), seq_len=10**7)

    def test_training_reduces_loss(self, small_lg):
        samples = make_sequence_samples(small_lg.train(), seq_len=8, sample_stride=8, window_stride=100)
        cfg = LSTMConfig(hidden_size=12, num_layers=1, dense_size=8, seq_len=8, epochs=6, max_train_rows=400)
        model, log = train_lstm_estimator(samples, cfg)
        losses = log.series("loss")
        assert losses[-1] < losses[0]
        out = model.estimate(samples.sequences[:32])
        assert out.shape == (32,)

    def test_compact_config_trainable_size(self):
        cfg = compact_config()
        assert cfg.hidden_size <= 128


class TestDEBaseline:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DEConfig(backbone="transformer")
        with pytest.raises(ValueError):
            DEConfig(residual_weight=-1.0)
        with pytest.raises(ValueError):
            DEConfig(hidden=())

    def test_pairs_extraction(self, small_sandia):
        pairs = make_de_pairs(small_sandia.train(), stride=2)
        assert len(pairs.x_now) == len(pairs.x_next) == len(pairs)
        assert pairs.x_now.shape[1] == 3

    def test_pairs_are_consecutive(self, small_sandia):
        cycle = small_sandia.train()[0]
        pairs = make_de_pairs([cycle], stride=1)
        np.testing.assert_allclose(pairs.x_now[1, 0], cycle.data.voltage[1])
        np.testing.assert_allclose(pairs.x_next[1, 0], cycle.data.voltage[2])

    def test_invalid_stride(self, small_sandia):
        with pytest.raises(ValueError):
            make_de_pairs(small_sandia.train(), stride=0)

    def test_mlp_training_reduces_loss(self, small_sandia):
        pairs = make_de_pairs(small_sandia.train())
        cfg = DEConfig(backbone="mlp", hidden=(16,), epochs=15, max_train_rows=500)
        model, log = train_de_estimator(pairs, cfg)
        losses = log.series("loss")
        assert losses[-1] < losses[0]

    def test_lstm_backbone_runs(self, small_sandia):
        pairs = make_de_pairs(small_sandia.train())
        cfg = DEConfig(backbone="lstm", hidden=(8,), epochs=2, max_train_rows=200)
        model, _ = train_de_estimator(pairs, cfg)
        out = model.estimate(pairs.x_now[:10])
        assert out.shape == (10,)

    def test_residual_logged(self, small_sandia):
        pairs = make_de_pairs(small_sandia.train())
        cfg = DEConfig(backbone="mlp", hidden=(8,), epochs=2, max_train_rows=200)
        _, log = train_de_estimator(pairs, cfg)
        assert all(row["residual"] > 0 for row in log.rows)

    def test_zero_residual_weight_skips_physics(self, small_sandia):
        pairs = make_de_pairs(small_sandia.train())
        cfg = DEConfig(backbone="mlp", hidden=(8,), epochs=2, residual_weight=0.0, max_train_rows=200)
        _, log = train_de_estimator(pairs, cfg)
        assert all(row["residual"] == 0.0 for row in log.rows)


class TestEKF:
    def _trace(self, seed=0):
        spec = get_cell_spec("sandia-nmc")
        sim = CellSimulator(spec, noise=SensorNoise(sigma_v=0.002, sigma_i=0.01, sigma_t=0.1), rng=seed)
        sim.reset(soc=0.9, temp_c=25.0)
        trace = sim.run_profile(np.full(4000, 1.5), 1.0, 25.0, stop_at_cutoff=False)
        return spec, trace

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EKFConfig(r_voltage=0.0)
        with pytest.raises(ValueError):
            EKFConfig(initial_soc=1.5)

    def test_requires_rc_pair(self):
        import dataclasses

        spec = get_cell_spec("sandia-nmc")
        bare = dataclasses.replace(spec, rc_pairs=())
        with pytest.raises(ValueError):
            EKFSoCEstimator(bare)

    def test_converges_from_wrong_prior(self):
        spec, trace = self._trace()
        ekf = EKFSoCEstimator(spec, EKFConfig(initial_soc=0.3))
        estimates = ekf.run(trace.voltage, trace.current, 1.0)
        # after convergence, the filter should track the true SoC
        tail_err = np.abs(estimates[2000:] - trace.soc[2000:])
        assert tail_err.mean() < 0.05

    def test_beats_blind_coulomb_counting_with_wrong_prior(self):
        spec, trace = self._trace()
        ekf = EKFSoCEstimator(spec, EKFConfig(initial_soc=0.3))
        estimates = ekf.run(trace.voltage, trace.current, 1.0)
        blind = coulomb.soc_trajectory(0.3, trace.current, 1.0, spec.capacity_ah)
        assert np.abs(estimates - trace.soc).mean() < np.abs(blind - trace.soc).mean()

    def test_estimates_within_bounds(self):
        spec, trace = self._trace()
        ekf = EKFSoCEstimator(spec)
        estimates = ekf.run(trace.voltage, trace.current, 1.0)
        assert np.all((estimates >= 0.0) & (estimates <= 1.0))

    def test_reset(self):
        spec, _ = self._trace()
        ekf = EKFSoCEstimator(spec)
        ekf.step(3.7, 1.0, 1.0)
        ekf.reset(0.7)
        assert ekf.soc == 0.7

    def test_mismatched_traces_raise(self):
        spec, _ = self._trace()
        ekf = EKFSoCEstimator(spec)
        with pytest.raises(ValueError):
            ekf.run(np.zeros(5), np.zeros(4), 1.0)

    def test_invalid_dt(self):
        spec, _ = self._trace()
        with pytest.raises(ValueError):
            EKFSoCEstimator(spec).step(3.7, 1.0, 0.0)
