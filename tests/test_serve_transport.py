"""Tests for the URL-addressed transport layer (:mod:`repro.serve.transport`)."""

import os
import threading
import time

import pytest

from repro.serve import wire
from repro.serve.transport import (
    PeerGone,
    PipeTransport,
    ShmRing,
    SocketTransport,
    TransportError,
    TransportListener,
    TransportTimeout,
    connect,
    parse_url,
)


def _pipe_pair():
    """Two connected PipeTransports over real OS pipes."""
    a2b_r, a2b_w = os.pipe()
    b2a_r, b2a_w = os.pipe()
    a = PipeTransport(os.fdopen(a2b_w, "wb"), os.fdopen(b2a_r, "rb"), peer="a")
    b = PipeTransport(os.fdopen(b2a_w, "wb"), os.fdopen(a2b_r, "rb"), peer="b")
    return a, b


def _tcp_pair():
    """A connected (client, server) SocketTransport pair."""
    listener = TransportListener("tcp://127.0.0.1:0")
    client = connect(str(listener.url), timeout_s=5.0)
    server = listener.accept(timeout_s=5.0)
    listener.close()
    return client, server


# ----------------------------------------------------------------------
class TestParseURL:
    def test_tcp(self):
        url = parse_url("tcp://127.0.0.1:7355")
        assert (url.scheme, url.host, url.port) == ("tcp", "127.0.0.1", 7355)
        assert str(url) == "tcp://127.0.0.1:7355"

    def test_unix(self):
        url = parse_url("unix:///run/soc.sock")
        assert (url.scheme, url.path) == ("unix", "/run/soc.sock")

    def test_pipe(self):
        assert parse_url("pipe://").scheme == "pipe"

    def test_shm(self):
        url = parse_url("shm://")
        assert url.scheme == "shm"
        assert str(url) == "shm://"

    @pytest.mark.parametrize(
        "bad",
        [
            "http://x:1",  # unknown scheme
            "tcp://127.0.0.1",  # missing port
            "tcp://127.0.0.1:notaport",
            "tcp://127.0.0.1:70000",  # out of range
            "unix://relative/path",  # must be absolute
            "pipe://somewhere",  # pipes take no address
            "shm://somewhere",  # so do shm rings
            "127.0.0.1:7355",  # no scheme at all
        ],
    )
    def test_rejects_bad_urls(self, bad):
        with pytest.raises(ValueError):
            parse_url(bad)

    def test_parsed_urls_pass_through(self):
        url = parse_url("tcp://h:1")
        assert parse_url(url) is url


# ----------------------------------------------------------------------
class TestFraming:
    @pytest.fixture(params=["pipe", "tcp"])
    def pair(self, request):
        a, b = _pipe_pair() if request.param == "pipe" else _tcp_pair()
        yield a, b
        a.close()
        b.close()

    def test_pickle_round_trip(self, pair):
        a, b = pair
        a.send_pickle(("estimate", ("cell1", 3.7), {"temp_c": 25.0}))
        assert b.recv_frame() == ("estimate", ("cell1", 3.7), {"temp_c": 25.0})
        b.send_pickle(("ok", [1.0, 2.0]))
        assert a.recv_frame() == ("ok", [1.0, 2.0])

    def test_clean_close_reads_as_none(self, pair):
        a, b = pair
        a.close()
        assert b.recv_frame() is None

    def test_partial_frame_at_peer_disconnect_raises_peer_gone(self, pair):
        """EOF *inside* a frame is a death, not a close: the header
        promised bytes the peer never delivered."""
        a, b = pair
        body = wire.pickle_body(("op", (), {}))
        a.send_chunks([wire.frame_header(len(body)), body[: len(body) // 2]])
        a.close()
        with pytest.raises(PeerGone, match="mid-frame|gone"):
            b.recv_frame()

    def test_recv_deadline_raises_transport_timeout(self, pair):
        a, b = pair
        t0 = time.monotonic()
        with pytest.raises(TransportTimeout):
            b.recv_frame(timeout_s=0.15)
        assert time.monotonic() - t0 < 5.0

    def test_request_promotes_silent_close_to_peer_gone(self, pair):
        a, b = pair

        def server():
            b.recv_frame()
            b.close()  # hang up instead of replying

        thread = threading.Thread(target=server)
        thread.start()
        with pytest.raises(PeerGone, match="closed instead of replying"):
            a.request(("ping", (), {}), timeout_s=5.0)
        thread.join()

    def test_wait_readable_idle_does_not_poison(self, pair):
        """The server-loop idle wait: a False return consumes nothing,
        and the very next frame still parses."""
        a, b = pair
        assert b.wait_readable(timeout_s=0.05) is False
        a.send_pickle(("hello", (), {}))
        assert b.wait_readable(timeout_s=5.0) is True
        assert b.recv_frame() == ("hello", (), {})

    def test_wait_readable_sees_buffered_readahead(self, pair):
        """Two frames sent back-to-back may both sit in the reader's
        userspace buffer; wait_readable must not block on the empty fd."""
        a, b = pair
        a.send_pickle(("one", (), {}))
        a.send_pickle(("two", (), {}))
        assert b.recv_frame() == ("one", (), {})
        assert b.wait_readable(timeout_s=0.05) is True
        assert b.recv_frame() == ("two", (), {})

    def test_v2_frames_travel_unchanged(self, pair):
        import numpy as np

        a, b = pair
        chunks = wire.encode_v2("estimate", {"n": 2}, [np.arange(4.0), np.ones(2)])
        a.send_chunks(chunks)
        frame = b.recv_frame()
        assert isinstance(frame, wire.V2Frame)
        assert frame.kind == "estimate"
        np.testing.assert_array_equal(frame.arrays[0], np.arange(4.0))


# ----------------------------------------------------------------------
class TestShmRing:
    def test_place_returns_aligned_offsets(self, tmp_path):
        import numpy as np

        ring = ShmRing(str(tmp_path / "r"), slots=4, slab_bytes=1024, create=True)
        offsets = ring.place([np.arange(3.0), np.arange(5.0)])
        assert offsets is not None
        assert all(offset % 64 == 0 for offset in offsets)
        got = np.frombuffer(ring.buf, dtype=np.float64, count=3, offset=offsets[0])
        np.testing.assert_array_equal(got, np.arange(3.0))
        ring.close(unlink=True)

    def test_cursor_wraps_and_rewrites_from_the_front(self, tmp_path):
        import numpy as np

        ring = ShmRing(str(tmp_path / "r"), slots=3, slab_bytes=256, create=True)
        seen = set()
        for k in range(20):
            block = np.full(16, float(k))
            (offset,) = ring.place([block])
            seen.add(offset)
            got = np.frombuffer(ring.buf, dtype=np.float64, count=16, offset=offset)
            np.testing.assert_array_equal(got, block)
        assert seen == {0, 256, 512}  # every slot reused, never past the end
        ring.close(unlink=True)

    def test_message_larger_than_ring_returns_none(self, tmp_path):
        import numpy as np

        ring = ShmRing(str(tmp_path / "r"), slots=2, slab_bytes=256, create=True)
        assert ring.place([np.zeros(1024)]) is None
        ring.close(unlink=True)

    def test_attach_reuses_existing_file(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "r")
        writer = ShmRing(path, slots=2, slab_bytes=256, create=True)
        reader = ShmRing(path, slots=2, slab_bytes=256)
        (offset,) = writer.place([np.arange(4.0)])
        got = np.frombuffer(reader.buf, dtype=np.float64, count=4, offset=offset)
        np.testing.assert_array_equal(got, np.arange(4.0))
        reader.close()
        writer.close(unlink=True)

    def test_send_v2_rides_the_ring_when_attached(self, tmp_path):
        import numpy as np

        a, b = _pipe_pair()
        ring_path = str(tmp_path / "ab")
        tx = ShmRing(ring_path, slots=4, slab_bytes=4096, create=True)
        rx = ShmRing(ring_path, slots=4, slab_bytes=4096)
        a.attach_shm(tx=tx)
        b.attach_shm(rx=rx)
        payload = np.random.default_rng(0).standard_normal(200)
        a.send_v2("estimate", {"n": 200}, [payload, payload.astype(np.float32)])
        frame = b.recv_frame()
        assert isinstance(frame, wire.V2Frame)
        np.testing.assert_array_equal(frame.arrays[0], payload)
        assert frame.arrays[1].dtype == np.float32
        # the frame body itself stayed tiny: payload bytes lived in the ring
        a.close()
        b.close()
        rx.close()
        tx.close(unlink=True)

    def test_send_v2_falls_back_inline_when_oversized(self, tmp_path):
        import numpy as np

        a, b = _pipe_pair()
        tx = ShmRing(str(tmp_path / "t"), slots=1, slab_bytes=256, create=True)
        a.attach_shm(tx=tx)
        payload = np.arange(4096.0)
        a.send_v2("estimate", {"n": 4096}, [payload])
        frame = b.recv_frame()  # no rx ring attached: the frame must be self-contained
        np.testing.assert_array_equal(frame.arrays[0], payload)
        a.close()
        b.close()
        tx.close(unlink=True)


# ----------------------------------------------------------------------
class TestSocketLifecycle:
    def test_ephemeral_port_is_resolved(self):
        with TransportListener("tcp://127.0.0.1:0") as listener:
            assert listener.url.port not in (0, None)

    def test_connect_retries_until_listener_binds(self):
        """The restart-by-reconnect race: the dialer arrives before the
        listener exists and still connects within the window."""
        probe = TransportListener("tcp://127.0.0.1:0")
        url = str(probe.url)
        probe.close()  # free the port; rebind it shortly
        results = {}

        def dial():
            results["transport"] = connect(url, timeout_s=5.0)

        thread = threading.Thread(target=dial)
        thread.start()
        time.sleep(0.3)
        listener = TransportListener(url)
        server = listener.accept(timeout_s=5.0)
        thread.join(timeout=5.0)
        client = results["transport"]
        client.send_pickle("hi")
        assert server.recv_frame() == "hi"
        for closable in (client, server, listener):
            closable.close()

    def test_connect_gives_up_after_deadline(self):
        probe = TransportListener("tcp://127.0.0.1:0")
        url = str(probe.url)
        probe.close()
        with pytest.raises(TransportError, match="could not connect"):
            connect(url, timeout_s=0.3)

    def test_stale_unix_socket_file_is_replaced(self, tmp_path):
        path = tmp_path / "soc.sock"
        dead = TransportListener(f"unix://{path}")
        dead._sock.close()  # owner died without unlinking: stale file stays
        assert path.exists()
        listener = TransportListener(f"unix://{path}")
        client = connect(f"unix://{path}", timeout_s=5.0)
        server = listener.accept(timeout_s=5.0)
        client.send_pickle("after-steal")
        assert server.recv_frame() == "after-steal"
        for closable in (client, server, listener):
            closable.close()
        assert not path.exists()  # close() removes the socket file

    def test_live_unix_socket_is_not_stolen(self, tmp_path):
        path = tmp_path / "soc.sock"
        with TransportListener(f"unix://{path}"):
            with pytest.raises(TransportError, match="live process"):
                TransportListener(f"unix://{path}")

    def test_listener_close_unblocks_accept(self):
        listener = TransportListener("tcp://127.0.0.1:0")
        with pytest.raises(TransportTimeout):
            listener.accept(timeout_s=0.05)
        listener.close()
        with pytest.raises(TransportError):
            listener.accept(timeout_s=0.05)


# ----------------------------------------------------------------------
class TestPipeDeadlines:
    def test_deadline_spares_buffered_bytes(self):
        """A frame already sitting in the buffered reader must be
        served even when the fd itself polls empty."""
        a, b = _pipe_pair()
        try:
            a.send_pickle(("x", (), {}))
            time.sleep(0.05)  # let the bytes land in the pipe
            assert b.recv_frame(timeout_s=0.2) == ("x", (), {})
        finally:
            a.close()
            b.close()

    def test_in_memory_streams_skip_polling(self):
        import io

        body = wire.pickle_body("payload")
        rd = io.BytesIO(wire.frame_header(len(body)) + body)
        transport = PipeTransport(io.BytesIO(), rd, peer="mem")
        assert transport.wait_readable(timeout_s=0.01) is True
        assert transport.recv_frame(timeout_s=0.01) == "payload"


# ----------------------------------------------------------------------
class TestTransportTypes:
    def test_socket_transport_peer_names(self):
        client, server = _tcp_pair()
        try:
            assert client.peer.startswith("tcp://")
            assert server.peer.startswith("tcp://")
        finally:
            client.close()
            server.close()

    def test_send_after_close_raises_peer_gone(self):
        client, server = _tcp_pair()
        server.close()
        client.close()
        with pytest.raises((PeerGone, TransportError)):
            client.send_pickle("too late")
        assert isinstance(client, SocketTransport)
