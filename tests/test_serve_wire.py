"""Tests for the v2 zero-copy wire codec (:mod:`repro.serve.wire`)."""

import io
import pickle

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet, model_rollout
from repro.serve import FleetEngine, ProcessShardWorker, generate_fleet
from repro.serve import wire

FAST_FLEET = dict(
    ambient_temps_c=(25.0,),
    c_rates=(1.0, 2.0),
    protocols=("discharge",),
    max_time_s=1800.0,
)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def small_fleet():
    return generate_fleet(12, seed=7, **FAST_FLEET)


def roundtrip_v2(kind, meta, arrays):
    buf = io.BytesIO()
    wire.write_v2(buf, kind, meta, arrays)
    buf.seek(0)
    return wire.read_frame(buf)


# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_v2_roundtrip_is_bit_for_bit(self):
        rng = np.random.default_rng(0)
        arrays = [
            rng.standard_normal(257),
            np.array([np.nan, np.inf, -np.inf, 0.0, -0.0]),
            np.arange(7, dtype=np.int64),
            rng.standard_normal(33).astype(np.float32),
            np.empty(0),
        ]
        frame = roundtrip_v2("estimate", {"cell_ids": ["a", "b"], "now_s": None}, arrays)
        assert isinstance(frame, wire.V2Frame)
        assert frame.kind == "estimate"
        assert frame.meta == {"cell_ids": ["a", "b"], "now_s": None}
        assert len(frame.arrays) == len(arrays)
        for got, sent in zip(frame.arrays, arrays):
            assert got.dtype == sent.dtype
            assert got.shape == sent.shape
            # bit-for-bit: compare raw bytes, so NaN payloads count too
            assert got.tobytes() == sent.tobytes()

    def test_pickle_and_v2_frames_share_one_stream(self):
        buf = io.BytesIO()
        wire.write_pickle(buf, ("op", ("arg",), {}))
        wire.write_v2(buf, "estimate", {"k": 1}, [np.arange(3.0)])
        wire.write_pickle(buf, ("ok", 42))
        buf.seek(0)
        assert wire.read_frame(buf) == ("op", ("arg",), {})
        frame = wire.read_frame(buf)
        assert isinstance(frame, wire.V2Frame) and frame.meta == {"k": 1}
        assert wire.read_frame(buf) == ("ok", 42)
        assert wire.read_frame(buf) is None  # EOF

    def test_decoded_arrays_are_views_not_copies(self):
        frame = roundtrip_v2("x", {}, [np.arange(16.0)])
        array = frame.arrays[0]
        assert array.base is not None  # frombuffer view over the frame body
        assert not array.flags.writeable

    def test_non_json_meta_raises_before_writing(self):
        buf = io.BytesIO()
        with pytest.raises(TypeError):
            wire.write_v2(buf, "x", {"bad": object()}, [])
        assert buf.getvalue() == b""  # stream still clean for a pickle fallback

    def test_object_arrays_are_rejected(self):
        with pytest.raises(TypeError):
            wire.encode_v2("x", {}, [np.array([object()])])

    def test_too_many_arrays_raise_typeerror_for_pickle_fallback(self):
        """Past the 2-byte n_arrays limit the encoder must raise TypeError
        (not struct.error) so worker calls degrade to pickle frames."""
        one = np.zeros(1)
        with pytest.raises(TypeError, match="65535"):
            wire.encode_v2("rollout_fleet", {}, [one] * 65536)

    def test_newer_version_is_refused(self):
        chunks = wire.encode_v2("x", {}, [])
        body = b"".join(chunks)[4:]
        bumped = bytes([body[0], 99]) + body[2:]
        buf = io.BytesIO(len(bumped).to_bytes(4, "big") + bumped)
        with pytest.raises(ValueError, match="v99"):
            wire.read_frame(buf)


class TestDtypeFidelity:
    """float32 payloads must cross the wire without a float64 upcast."""

    def test_wire_col_preserves_float32(self):
        from repro.serve.workers import _wire_col

        col = np.linspace(0.0, 1.0, 17, dtype=np.float32)
        out = _wire_col(col)
        assert out.dtype == np.float32
        assert out.tobytes() == col.tobytes()

    def test_wire_col_upcasts_everything_else_to_float64(self):
        from repro.serve.workers import _wire_col

        assert _wire_col([1, 2, 3]).dtype == np.float64
        assert _wire_col(np.arange(3, dtype=np.int32)).dtype == np.float64
        assert _wire_col(3.7).dtype == np.float64
        assert _wire_col(np.float32(3.7)).dtype == np.float32

    def test_float32_frame_roundtrip_is_bit_for_bit(self):
        col = np.random.default_rng(3).standard_normal(129).astype(np.float32)
        frame = roundtrip_v2("estimate", {"n": 129}, [col])
        assert frame.arrays[0].dtype == np.float32
        assert frame.arrays[0].tobytes() == col.tobytes()

    def test_float32_worker_replies_stay_float32(self, model):
        local = FleetEngine(default_model=model, dtype=np.float32)
        rng = np.random.default_rng(5)
        ids = [f"c{k}" for k in range(48)]
        v = rng.uniform(2.8, 4.2, 48).astype(np.float32)
        i = rng.uniform(-5, 5, 48).astype(np.float32)
        t = rng.uniform(0, 45, 48).astype(np.float32)
        with ProcessShardWorker(default_model=model, dtype="float32", name="f32") as worker:
            for cid in ids:
                local.register_cell(cid)
                worker.register_cell(cid)
            out = worker.estimate(ids, v, i, t)
            assert out.dtype == np.float32
            np.testing.assert_array_equal(out, local.estimate(ids, v, i, t))
            pred = worker.predict(ids, i, t, 60.0)
            assert pred.dtype == np.float32
            np.testing.assert_array_equal(pred, local.predict(ids, i, t, 60.0))


class TestShmRefs:
    """The shm-ref variant of the v2 codec (payloads ride a slab ring)."""

    @pytest.fixture()
    def ring(self, tmp_path):
        from repro.serve.transport import ShmRing

        ring = ShmRing(str(tmp_path / "ring"), slots=4, slab_bytes=4096, create=True)
        yield ring
        ring.close(unlink=True)

    def test_roundtrip_preserves_dtype_and_bytes(self, ring):
        rng = np.random.default_rng(7)
        arrays = [
            rng.standard_normal(257),
            rng.standard_normal(33).astype(np.float32),
            np.arange(7, dtype=np.int64),
            np.empty(0),
        ]
        chunks = wire.encode_v2_shm("estimate", {"n": 257}, arrays, ring)
        assert chunks is not None
        frame = wire.decode_body(b"".join(chunks)[4:], shm=ring)
        assert isinstance(frame, wire.V2Frame) and frame.kind == "estimate"
        for got, sent in zip(frame.arrays, arrays):
            assert got.dtype == sent.dtype and got.shape == sent.shape
            assert got.tobytes() == sent.tobytes()
            assert not got.flags.writeable

    def test_decode_without_ring_raises(self, ring):
        chunks = wire.encode_v2_shm("x", {}, [np.arange(4.0)], ring)
        with pytest.raises(ValueError, match="no ring"):
            wire.decode_body(b"".join(chunks)[4:])

    def test_oversized_payload_reports_none_for_inline_fallback(self, ring):
        big = np.zeros(4 * 4096)  # larger than the whole ring
        assert wire.encode_v2_shm("x", {}, [big], ring) is None


class TestRolloutCodec:
    def test_request_roundtrip_preserves_cycle_sharing(self, small_fleet):
        cycle = small_fleet.members[0].cycle
        pairs = [("a", cycle), ("b", cycle), ("c", small_fleet.members[1].cycle)]
        meta, arrays = wire.encode_rollout_request(pairs, 60.0)
        assert len(meta["cycles"]) == 2  # deduplicated by identity
        frame = roundtrip_v2("rollout_fleet", meta, arrays)
        decoded, step_s = wire.decode_rollout_request(frame.meta, frame.arrays)
        assert step_s == 60.0
        assert [cid for cid, _ in decoded] == ["a", "b", "c"]
        assert decoded[0][1] is decoded[1][1]  # sharing rebuilt
        got = decoded[0][1]
        assert got.name == cycle.name and got.tags == cycle.tags
        np.testing.assert_array_equal(got.data.voltage, cycle.data.voltage)
        np.testing.assert_array_equal(got.data.soc, cycle.data.soc)

    def test_results_roundtrip_bit_for_bit(self, model, small_fleet):
        engine = FleetEngine(default_model=model)
        results = engine.rollout_fleet(small_fleet.assignments(), step_s=120.0)
        meta, arrays = wire.encode_rollout_results(results)
        frame = roundtrip_v2("ok", meta, arrays)
        decoded = wire.decode_rollout_results(frame.meta, frame.arrays)
        assert list(decoded) == list(results)
        for cell_id, ref in results.items():
            got = decoded[cell_id]
            np.testing.assert_array_equal(got.soc_pred, ref.soc_pred)
            np.testing.assert_array_equal(got.time_s, ref.time_s)
            np.testing.assert_array_equal(got.soc_true, ref.soc_true)
            assert got.initial_soc == ref.initial_soc
            assert got.step_s == ref.step_s and got.tail_s == ref.tail_s

    def test_empty_results_roundtrip(self):
        meta, arrays = wire.encode_rollout_results({})
        frame = roundtrip_v2("ok", meta, arrays)
        assert wire.decode_rollout_results(frame.meta, frame.arrays) == {}


class TestWorkerInterop:
    def test_v2_worker_estimate_is_bit_for_bit(self, model):
        local = FleetEngine(default_model=model)
        rng = np.random.default_rng(1)
        ids = [f"c{k}" for k in range(64)]
        v = rng.uniform(2.8, 4.2, 64)
        i = rng.uniform(-5, 5, 64)
        t = rng.uniform(0, 45, 64)
        with ProcessShardWorker(default_model=model, name="v2") as worker:
            for cid in ids:
                local.register_cell(cid)
                worker.register_cell(cid)
            np.testing.assert_array_equal(worker.estimate(ids, v, i, t), local.estimate(ids, v, i, t))
            np.testing.assert_array_equal(
                worker.predict(ids, i, t, 60.0, commit=True),
                local.predict(ids, i, t, 60.0, commit=True),
            )
            assert worker.cell("c0").soc == local.cell("c0").soc

    def test_v2_worker_rollout_is_bit_for_bit(self, model, small_fleet):
        local = FleetEngine(default_model=model)
        ref = local.rollout_fleet(small_fleet.assignments(), step_s=120.0)
        with ProcessShardWorker(default_model=model, name="v2roll") as worker:
            got = worker.rollout_fleet(small_fleet.assignments(), step_s=120.0)
        for cell_id in ref:
            np.testing.assert_array_equal(got[cell_id].soc_pred, ref[cell_id].soc_pred)
            np.testing.assert_array_equal(got[cell_id].time_s, ref[cell_id].time_s)

    def test_non_json_tags_fall_back_to_pickle(self, model, small_fleet):
        """A cycle whose tags v2 cannot express still rolls out (pickled)."""
        import dataclasses as dc

        cycle = small_fleet.members[0].cycle
        poisoned = dc.replace(cycle, tags={**cycle.tags, "blob": np.arange(3)})
        meta, arrays = wire.encode_rollout_request([("a", poisoned)], 120.0)
        with pytest.raises(TypeError):
            wire.encode_v2("rollout_fleet", meta, arrays)
        ref = model_rollout(model, poisoned, 120.0)
        with ProcessShardWorker(default_model=model, name="fallback") as worker:
            got = worker.rollout_fleet([("a", poisoned)], step_s=120.0)
        np.testing.assert_allclose(got["a"].soc_pred, ref.soc_pred, atol=1e-9, rtol=0)

    def test_scalar_broadcast_ships_one_element_and_results_are_writable(self, model, small_fleet):
        """Fleet-wide scalars cross the pipe once, and every returned
        array is writable — the same contract as an in-process engine."""
        local = FleetEngine(default_model=model)
        ids = [f"c{k}" for k in range(32)]
        with ProcessShardWorker(default_model=model, name="scalar") as worker:
            for cid in ids:
                local.register_cell(cid)
                worker.register_cell(cid)
            out = worker.estimate(ids, 3.7, 1.0, 25.0)
            np.testing.assert_array_equal(out, local.estimate(ids, 3.7, 1.0, 25.0))
            out *= 2.0  # writable
            rolled = worker.rollout_fleet(small_fleet.assignments(), step_s=120.0)
        first = next(iter(rolled.values()))
        first.soc_pred[-1] = 0.0  # writable

    def test_tensor_path_worker(self, model, small_fleet):
        """use_kernel=False ships to the child and serves equivalently."""
        ref = FleetEngine(default_model=model, use_kernel=False).rollout_fleet(
            small_fleet.assignments(), step_s=120.0
        )
        with ProcessShardWorker(default_model=model, use_kernel=False, name="tensor") as worker:
            got = worker.rollout_fleet(small_fleet.assignments(), step_s=120.0)
        for cell_id in ref:
            np.testing.assert_array_equal(got[cell_id].soc_pred, ref[cell_id].soc_pred)

    def test_v2_frames_beat_pickle_on_size(self):
        """The frame encoding of a bulk estimate is leaner than its pickle."""
        n = 512
        rng = np.random.default_rng(2)
        cols = [rng.uniform(2.8, 4.2, n), rng.uniform(-5, 5, n), rng.uniform(0, 45, n)]
        ids = [f"cell-{k}" for k in range(n)]
        chunks = wire.encode_v2("estimate", {"n": n, "now_s": None}, [wire.encode_str_list(ids), *cols])
        v2_bytes = sum(len(c) for c in chunks)
        v1_bytes = len(
            pickle.dumps(("estimate", (ids, *cols), {"now_s": None}), protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert v2_bytes < v1_bytes

    def test_str_list_roundtrip(self):
        ids = ["a", "cell-1", "日本語", ""]
        blob = wire.encode_str_list(ids)
        assert blob.dtype == np.uint8
        assert wire.decode_str_list(blob, len(ids)) == ids
        assert wire.decode_str_list(wire.encode_str_list([]), 0) == []
        with pytest.raises(TypeError, match="NUL"):
            wire.encode_str_list(["bad\x00id"])
