"""Tests for the perf lab (:mod:`repro.perflab`): tables, runs, analysis."""

import json
import math

import pytest

from repro.perflab import (
    RunConfig,
    aggregate_groups,
    analyze,
    capacity_model,
    execute_run,
    expand_table,
    fit_knee,
    load_table,
    run_table,
    t_critical,
)


class TestRunConfig:
    def test_run_and_group_ids(self):
        cfg = RunConfig(topology="pipe", workers=2, cells=64, shape="burst", rate=250.0, rep=1)
        assert cfg.run_id == "pipe-w2-c64-b64-burst-r250-rep1"
        assert cfg.group_id == "pipe-w2-c64-b64-burst-r250"

    def test_fractional_rate_is_filename_safe(self):
        cfg = RunConfig(rate=12.5)
        assert "." not in cfg.run_id

    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(topology="carrier-pigeon")
        with pytest.raises(ValueError):
            RunConfig(topology="inproc", workers=2)
        with pytest.raises(ValueError):
            RunConfig(workers=0)


class TestExpandTable:
    TABLE = {
        "defaults": {"reps": 2, "seed": 5, "duration_s": 0.5},
        "sweep": {"topology": "inproc", "shape": ["steady", "burst"], "rate": [100.0, 200.0]},
    }

    def test_cartesian_product_times_reps(self):
        configs = expand_table(self.TABLE)
        assert len(configs) == 8  # 2 shapes x 2 rates x 2 reps
        assert len({c.run_id for c in configs}) == 8

    def test_reps_vary_seed_only(self):
        configs = expand_table(self.TABLE)
        by_group = {}
        for c in configs:
            by_group.setdefault(c.group_id, []).append(c)
        for group in by_group.values():
            assert [c.rep for c in group] == [0, 1]
            assert [c.seed for c in group] == [5, 6]

    def test_defaults_carry_through(self):
        assert all(c.duration_s == 0.5 for c in expand_table(self.TABLE))

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axes"):
            expand_table({"sweep": {"shoe_size": [42]}})

    def test_unknown_default_rejected(self):
        with pytest.raises(ValueError, match="unknown defaults"):
            expand_table({"defaults": {"warp_factor": 9}})


class TestLoadTable:
    def test_json(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(self_table := {"sweep": {"rate": [10.0]}}))
        assert load_table(path) == self_table

    def test_yaml(self, tmp_path):
        path = tmp_path / "t.yaml"
        path.write_text("defaults:\n  reps: 1\nsweep:\n  rate: [10.0, 20.0]\n")
        table = load_table(path)
        assert table["sweep"]["rate"] == [10.0, 20.0]
        assert len(expand_table(table)) == 2


class TestStatistics:
    def test_t_critical_matches_known_values(self):
        assert t_critical(1) == pytest.approx(12.706, abs=0.01)
        assert t_critical(9) == pytest.approx(2.262, abs=0.01)

    def test_aggregate_mean_and_ci(self):
        def artifact(group, rep, p99):
            return {
                "config": {"group_id": group, "rep": rep, "topology": "inproc", "rate": 100.0},
                "load": {
                    "latency_ms": {"p99": p99, "p50": p99 / 2, "mean": p99 / 2},
                    "achieved_rate": 100.0,
                    "requests": 100,
                    "shed": 10,
                    "errors": 0,
                },
                "resources": {"peak_rss_bytes": 1e6, "cpu_seconds": 0.5},
            }

        groups = aggregate_groups([artifact("g", 0, 10.0), artifact("g", 1, 14.0)])
        assert len(groups) == 1
        g = groups[0]
        assert g["reps"] == 2
        assert g["p99_ms"]["mean"] == pytest.approx(12.0)
        # std = 2*sqrt(2)/sqrt(2)... half-width = t(1) * std / sqrt(2)
        expected_ci = 12.706 * math.sqrt(8.0) / math.sqrt(2)
        assert g["p99_ms"]["ci95"] == pytest.approx(expected_ci, rel=1e-3)
        assert g["shed_fraction"]["mean"] == pytest.approx(0.1)
        assert "rep" not in g["config"]

    def test_single_rep_has_no_ci(self):
        values = aggregate_groups(
            [
                {
                    "config": {"group_id": "g", "rep": 0},
                    "load": {
                        "latency_ms": {"p99": 5.0, "p50": 2.0, "mean": 2.0},
                        "achieved_rate": 10.0,
                        "requests": 10,
                        "shed": 0,
                        "errors": 0,
                    },
                    "resources": {"peak_rss_bytes": None, "cpu_seconds": None},
                }
            ]
        )
        assert values[0]["p99_ms"]["ci95"] is None


class TestFitKnee:
    def test_bracketed_crossing_interpolates(self):
        knee = fit_knee([(100.0, 5.0), (200.0, 10.0), (400.0, 50.0)], slo_ms=30.0)
        assert knee["status"] == "fit"
        assert knee["knee_rate"] == pytest.approx(300.0)  # halfway between 10 and 50

    def test_all_under_slo_is_unsaturated(self):
        knee = fit_knee([(100.0, 5.0), (200.0, 6.0)], slo_ms=30.0)
        assert knee["status"] == "unsaturated"
        assert knee["knee_rate"] == 200.0

    def test_all_over_slo_is_saturated(self):
        knee = fit_knee([(100.0, 50.0)], slo_ms=30.0)
        assert knee["status"] == "saturated"
        assert knee["knee_rate"] == 0.0

    def test_empty(self):
        assert fit_knee([], slo_ms=30.0)["status"] == "empty"
        assert fit_knee([(100.0, None)], slo_ms=30.0)["status"] == "empty"


class TestCapacityModel:
    def _group(self, shape, rate, p99):
        return {
            "group_id": f"inproc-w1-c32-b64-{shape}-r{rate:g}",
            "config": {
                "group_id": "",
                "topology": "inproc",
                "workers": 1,
                "cells": 32,
                "max_batch": 64,
                "shape": shape,
                "rate": rate,
            },
            "reps": 2,
            "p99_ms": {"mean": p99},
        }

    def test_knees_become_planning_numbers(self):
        groups = [
            self._group("steady", 100.0, 5.0),
            self._group("steady", 200.0, 50.0),
            self._group("burst", 100.0, 10.0),
            self._group("burst", 200.0, 80.0),
        ]
        capacity = capacity_model(groups, slo_p99_ms=25.0, per_cell_req_s=0.1)
        assert capacity["assumptions"]["slo_p99_ms"] == 25.0
        by_shape = {e["shape"]: e for e in capacity["curves"]}
        steady = by_shape["steady"]["knee"]["knee_rate"]
        burst = by_shape["burst"]["knee"]["knee_rate"]
        assert 100.0 < steady < 200.0 and 100.0 < burst < 200.0
        assert by_shape["steady"]["cells_per_host"] == pytest.approx(steady / 0.1)
        # headline picks the most conservative shape
        head = capacity["headline"]["inproc-w1"]
        assert head["knee_rate"] == pytest.approx(min(steady, burst))
        assert head["shape"] == ("steady" if steady < burst else "burst")


class TestEndToEnd:
    """An 8-run mini table through run_table + analyze (the acceptance path)."""

    TABLE = {
        "defaults": {
            "reps": 2,
            "seed": 0,
            "duration_s": 0.4,
            "warmup_s": 0.1,
            "cooldown_s": 0.05,
            "slo_p99_ms": 30.0,
            "per_cell_req_s": 0.1,
        },
        "sweep": {
            "topology": "inproc",
            "cells": 8,
            "shape": ["steady", "poisson"],
            "rate": [80.0, 160.0],
        },
    }

    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("perflab")
        manifest = run_table(self.TABLE, out, progress=lambda *_: None)
        return out, manifest

    def test_eight_artifacts_written(self, run_dir):
        out, manifest = run_dir
        assert len(manifest["runs"]) == 8
        assert all(r["ok"] for r in manifest["runs"])
        assert len(list(out.glob("run-*.json"))) == 8

    def test_artifact_contents(self, run_dir):
        out, manifest = run_dir
        artifact = json.loads((out / manifest["runs"][0]["file"]).read_text())
        assert artifact["load"]["mode"] == "open"
        assert artifact["load"]["requests"] > 0 and artifact["load"]["errors"] == 0
        assert artifact["load"]["latency_ms"]["p99"] > 0.0
        assert artifact["resources"]["samples"], "resource time series missing"
        assert artifact["resources"]["peak_rss_bytes"] > 1_000_000
        assert artifact["resources"]["per_process"], "per-process series missing"
        assert artifact["stages"], "trace stage attribution missing"
        assert "gateway.estimate" in artifact["stages"]
        # gateway counters cover warmup + measured phases
        assert artifact["gateway"]["estimate"]["requests"] >= artifact["load"]["requests"]

    def test_analyze_emits_capacity_with_cis(self, run_dir):
        out, _ = run_dir
        summary = analyze(out)
        assert summary["runs"] == 8
        assert len(summary["groups"]) == 4  # 2 shapes x 2 rates
        for group in summary["groups"]:
            assert group["reps"] == 2
            assert group["p99_ms"]["mean"] > 0.0
            assert group["p99_ms"]["ci95"] is not None
        capacity = summary["capacity"]
        # table-pinned assumptions flow through the manifest
        assert capacity["assumptions"]["slo_p99_ms"] == 30.0
        assert capacity["assumptions"]["per_cell_req_s"] == 0.1
        for entry in capacity["curves"]:
            if entry["knee"]["knee_rate"]:
                assert entry["req_s_per_worker"] == pytest.approx(entry["knee"]["knee_rate"])
                assert entry["cells_per_host"] == pytest.approx(entry["knee"]["knee_rate"] / 0.1)
        assert (out / "summary.json").exists()
        assert json.loads((out / "BENCH_capacity.json").read_text())["assumptions"]

    def test_cli_override_beats_pinned_slo(self, run_dir):
        out, _ = run_dir
        summary = analyze(out, slo_p99_ms=1e9)
        # an absurdly lax SLO makes every curve unsaturated at its top rate
        for entry in summary["capacity"]["curves"]:
            assert entry["knee"]["status"] == "unsaturated"
            assert entry["knee"]["knee_rate"] == 160.0


class TestExecuteRunSharded:
    def test_shards_topology_shares_registry(self):
        cfg = RunConfig(
            topology="shards", workers=2, cells=8, rate=80.0, duration_s=0.3, warmup_s=0.05, cooldown_s=0.0
        )
        artifact = execute_run(cfg)
        assert artifact["load"]["errors"] == 0
        assert artifact["resources"]["per_process"]  # parent pid series present
