"""Tests for subprocess shard workers (:mod:`repro.serve.workers`)."""

import os

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.serve import (
    FleetEngine,
    ModelRegistry,
    ProcessShardWorker,
    ShardedFleet,
    WorkerCrashError,
    WorkerSpec,
    generate_fleet,
)
from repro.serve.driftconfig import drift_resolver_from_registry

FAST_FLEET = dict(
    ambient_temps_c=(25.0,),
    c_rates=(1.0, 2.0),
    protocols=("discharge",),
    max_time_s=1800.0,
)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def small_fleet():
    return generate_fleet(16, seed=7, **FAST_FLEET)


# ----------------------------------------------------------------------
class TestProcessShardWorker:
    def test_serves_engine_api_across_the_wire(self, model):
        local = FleetEngine(default_model=model)
        with ProcessShardWorker(default_model=model, name="api") as worker:
            for engine in (local, worker):
                engine.register_cell("a", chemistry="nmc")
                engine.register_cell("b", chemistry="lfp")
            assert len(worker) == 2
            assert "a" in worker and "ghost" not in worker
            out = worker.estimate(["a", "b"], [3.7, 3.6], [1.0, 2.0], 25.0)
            ref = local.estimate(["a", "b"], [3.7, 3.6], [1.0, 2.0], 25.0)
            np.testing.assert_array_equal(out, ref)
            out = worker.predict(["a", "b"], 2.0, 25.0, 120.0)
            ref = local.predict(["a", "b"], 2.0, 25.0, 120.0)
            np.testing.assert_array_equal(out, ref)
            state = worker.cell("a")
            assert state.soc == pytest.approx(local.cell("a").soc, abs=0)
            assert {s.cell_id for s in worker.cells()} == {"a", "b"}
            dropped = worker.deregister_cell("b")
            assert dropped.cell_id == "b"
            assert len(worker) == 1

    def test_requires_model_or_registry(self):
        with pytest.raises(ValueError):
            ProcessShardWorker()

    def test_engine_errors_travel_the_wire(self, model):
        with ProcessShardWorker(default_model=model, name="err") as worker:
            with pytest.raises(KeyError):
                worker.cell("ghost")
            with pytest.raises(ValueError, match="process boundary"):
                worker.rollout_fleet([], 60.0, step_hook=lambda w: None)
            # the worker survives engine-level errors
            assert worker.alive

    def test_rollout_matches_in_process_engine(self, model, small_fleet):
        ref = FleetEngine(default_model=model).rollout_fleet(small_fleet.assignments(), 120.0)
        with ProcessShardWorker(default_model=model, name="roll") as worker:
            got = worker.rollout_fleet(small_fleet.assignments(), 120.0)
        for cell_id, _ in small_fleet.assignments():
            np.testing.assert_array_equal(got[cell_id].soc_pred, ref[cell_id].soc_pred)
            np.testing.assert_array_equal(got[cell_id].time_s, ref[cell_id].time_s)

    def test_graceful_close_exits_zero(self, model):
        worker = ProcessShardWorker(default_model=model, name="drain")
        worker.register_cell("a")
        assert worker.close() == 0
        assert not worker.alive
        assert worker.close() == 0  # idempotent
        with pytest.raises(WorkerCrashError, match="not running"):
            worker.cell("a")

    def test_crash_detection_reports_exit_code(self, model, small_fleet):
        worker = ProcessShardWorker(default_model=model, name="crashy")
        worker.crash_after_window(2)
        with pytest.raises(WorkerCrashError, match="exit code 86"):
            worker.rollout_fleet(small_fleet.assignments(), 120.0)
        assert not worker.alive
        assert worker.exit_code == 86
        with pytest.raises(WorkerCrashError, match="not running"):
            worker.estimate(["a"], 3.7, 1.0, 25.0)
        worker.close()

    def test_restart_without_journal_comes_back_empty(self, model):
        worker = ProcessShardWorker(default_model=model, name="amnesiac")
        worker.register_cell("a")
        worker.close()
        worker.restart()
        assert worker.alive
        assert worker.restarts == 1
        assert len(worker) == 0
        worker.close()

    def test_restart_restores_state_from_journal(self, model, tmp_path):
        path = tmp_path / "worker.journal"
        worker = ProcessShardWorker(default_model=model, journal_path=path, name="durable")
        assert worker.durable
        worker.register_cell("a", chemistry="nmc")
        worker.estimate(["a"], 3.7, 1.0, 25.0)
        soc = worker.cell("a").soc
        worker.close()
        worker.restart()
        state = worker.cell("a")
        assert state.soc == soc
        assert state.chemistry == "nmc"
        worker.close()

    def test_kill_and_restore_mid_rollout_bit_for_bit(self, model, small_fleet, tmp_path):
        """The acceptance property: crash mid-rollout, restart from the
        journal, resume — the stitched trajectories equal an
        uninterrupted run exactly."""
        assignments = small_fleet.assignments()
        ref = FleetEngine(default_model=model).rollout_fleet(assignments, 120.0)
        worker = ProcessShardWorker(
            default_model=model, journal_path=tmp_path / "crash.journal", name="phoenix"
        )
        worker.crash_after_window(3)
        with pytest.raises(WorkerCrashError):
            worker.rollout_fleet(assignments, 120.0)
        worker.restart()
        assert len(worker) == len(small_fleet)  # cells restored before serving
        resumed = worker.resume_rollout_fleet(assignments, 120.0)
        for cell_id, _ in assignments:
            np.testing.assert_array_equal(resumed[cell_id].soc_pred, ref[cell_id].soc_pred)
        worker.close()


# ----------------------------------------------------------------------
class TestShardedFleetProcessWorkers:
    def test_matches_single_engine_on_1k_cell_rollout(self, model):
        """The acceptance property: process-sharded == single engine to
        1e-9 across a 1,000-cell fleet."""
        fleet = generate_fleet(1000, seed=0, **FAST_FLEET)
        assignments = fleet.assignments()
        ref = FleetEngine(default_model=model).rollout_fleet(assignments, 120.0)
        sharded = ShardedFleet(2, spec=WorkerSpec(url="pipe://", model=model, name="s{shard}"))
        with sharded:
            got = sharded.rollout_fleet(assignments, 120.0)
            assert sum(sharded.shard_sizes()) == 1000
        worst = 0.0
        for cell_id, _ in assignments:
            worst = max(worst, float(np.max(np.abs(got[cell_id].soc_pred - ref[cell_id].soc_pred))))
        assert worst <= 1e-9

    def test_estimate_fans_out_and_gathers_in_order(self, model):
        ids = [f"c{k}" for k in range(12)]
        single = FleetEngine(default_model=model)
        sharded = ShardedFleet(3, spec=WorkerSpec(url="pipe://", model=model, name="e{shard}"))
        with sharded:
            for cid in ids:
                single.register_cell(cid)
                sharded.register_cell(cid)
            v = np.linspace(3.2, 4.0, len(ids))
            i = np.linspace(0.5, 3.0, len(ids))
            out = sharded.estimate(ids, v, i, 25.0)
            ref = single.estimate(ids, v, i, 25.0)
            np.testing.assert_allclose(out, ref, atol=1e-9, rtol=0)
            assert sorted(sharded.worker_health()) == [True, True, True]

    def test_rebalance_migrates_live_state_between_processes(self, model):
        sharded = ShardedFleet(2, spec=WorkerSpec(url="pipe://", model=model, name="r{shard}"))
        with sharded:
            ids = [f"c{k}" for k in range(20)]
            for cid in ids:
                sharded.register_cell(cid)
            sharded.estimate(ids, 3.7, 1.0, 25.0)
            socs = {cid: sharded.cell(cid).soc for cid in ids}
            moved = sharded.rebalance(3)
            assert sharded.n_shards == 3
            assert 0 < moved < len(ids)  # stable rebalancing, not a reshuffle
            for cid in ids:
                assert sharded.cell(cid).soc == socs[cid]

    def test_rebalance_migration_survives_worker_restarts(self, model, tmp_path):
        """Migrated cells must land in their new owner's journal (and
        leave the old owner's), or a restart after a rebalance loses
        them / resurrects stale copies."""
        spec = WorkerSpec(
            url="pipe://",
            model=model,
            journal=str(tmp_path / "shard{shard}.journal"),
            name="m{shard}",
        )
        sharded = ShardedFleet(2, spec=spec)
        ids = [f"c{k}" for k in range(20)]
        for cid in ids:
            sharded.register_cell(cid)
        sharded.estimate(ids, 3.7, 1.0, 25.0)
        socs = {cid: sharded.cell(cid).soc for cid in ids}
        assert sharded.rebalance(3) > 0
        for worker in sharded._shards:  # every worker restarts from its journal
            worker.close()
            worker.restart()
        for cid in ids:
            assert sharded.cell(cid).soc == socs[cid]
        assert sum(sharded.shard_sizes()) == len(ids)  # no stale resurrections
        sharded.close()

    def test_shared_journal_instance_is_rejected_for_process_workers(self, model, tmp_path):
        from repro.serve import StateJournal

        journal = StateJournal(tmp_path / "shared.journal")
        spec = WorkerSpec(url="pipe://", model=model, journal=journal)
        with pytest.raises(ValueError, match="own their journal file"):
            ShardedFleet(2, spec=spec)

    def test_fleet_resume_after_one_worker_crash(self, model, small_fleet, tmp_path):
        """Kill one of two durable workers mid-rollout; restart it and
        resume the *fleet* — results match an uninterrupted fleet run
        bit-for-bit."""
        assignments = small_fleet.assignments()
        spec = WorkerSpec(
            url="pipe://",
            model=model,
            journal=str(tmp_path / "shard{shard}.journal"),
            name="f{shard}",
        )
        ref = FleetEngine(default_model=model).rollout_fleet(assignments, 120.0)
        sharded = ShardedFleet(2, spec=spec)
        workers = sharded._shards
        # ShardedFleet visits shards in index order, so arming shard 0
        # interrupts the fleet rollout partway through
        workers[0].crash_after_window(2)
        with pytest.raises(WorkerCrashError):
            sharded.rollout_fleet(assignments, 120.0)
        assert sharded.worker_health() == [False, True]
        workers[0].restart()
        resumed = sharded.resume_rollout_fleet(assignments, 120.0)
        for cell_id, _ in assignments:
            np.testing.assert_array_equal(resumed[cell_id].soc_pred, ref[cell_id].soc_pred)
        exit_codes = [worker.close() for worker in workers]
        assert exit_codes == [0, 0]


# ----------------------------------------------------------------------
class TestShmWorkers:
    """The ``shm://`` scheme: same subprocess, payloads ride slab rings."""

    def test_shm_worker_matches_pipe_worker_everywhere(self, model, small_fleet):
        ids = [f"c{k}" for k in range(64)]
        rng = np.random.default_rng(3)
        v = rng.uniform(2.8, 4.2, 64)
        i = rng.uniform(-5, 5, 64)
        t = rng.uniform(0, 45, 64)
        with ProcessShardWorker(default_model=model, name="pipe") as pipe_worker:
            with ProcessShardWorker(default_model=model, name="shm", shm=True) as shm_worker:
                for cid in ids:
                    pipe_worker.register_cell(cid)
                    shm_worker.register_cell(cid)
                np.testing.assert_array_equal(
                    shm_worker.estimate(ids, v, i, t), pipe_worker.estimate(ids, v, i, t)
                )
                np.testing.assert_array_equal(
                    shm_worker.predict(ids, i, t, 60.0), pipe_worker.predict(ids, i, t, 60.0)
                )
                got = shm_worker.rollout_fleet(small_fleet.assignments(), 120.0)
                ref = pipe_worker.rollout_fleet(small_fleet.assignments(), 120.0)
                for cell_id, _ in small_fleet.assignments():
                    np.testing.assert_array_equal(got[cell_id].soc_pred, ref[cell_id].soc_pred)

    def test_ring_files_are_created_and_cleaned_up(self, model):
        from repro.serve.transport import shm_ring_dir

        worker = ProcessShardWorker(default_model=model, name="rings", shm=True)
        rings = worker._rings
        assert rings is not None and all(os.path.exists(ring.path) for ring in rings)
        assert all(ring.path.startswith(shm_ring_dir()) for ring in rings)
        worker.close()
        assert all(not os.path.exists(ring.path) for ring in rings)

    def test_restart_swaps_in_fresh_rings(self, model):
        worker = ProcessShardWorker(default_model=model, name="reborn", shm=True)
        worker.register_cell("a")
        before = worker.estimate(["a"], 3.7, 1.0, 25.0)
        old_paths = [ring.path for ring in worker._rings]
        worker._proc.kill()
        worker._proc.wait()
        worker.restart()
        worker.register_cell("a")
        assert all(not os.path.exists(path) for path in old_paths)  # dead rings unlinked
        assert [ring.path for ring in worker._rings] != old_paths
        np.testing.assert_array_equal(worker.estimate(["a"], 3.7, 1.0, 25.0), before)
        worker.close()

    def test_undersized_ring_falls_back_to_inline_frames(self, model):
        ids = [f"c{k}" for k in range(256)]
        with ProcessShardWorker(default_model=model, name="tiny") as ref_worker:
            with ProcessShardWorker(
                default_model=model, name="tiny-shm", shm=True, shm_slots=1, shm_slab_bytes=256
            ) as shm_worker:
                for cid in ids:
                    ref_worker.register_cell(cid)
                    shm_worker.register_cell(cid)
                v = np.linspace(3.0, 4.1, 256)
                np.testing.assert_array_equal(
                    shm_worker.estimate(ids, v, 1.0, 25.0), ref_worker.estimate(ids, v, 1.0, 25.0)
                )

    def test_sharded_fleet_over_shm_spec(self, model):
        ids = [f"c{k}" for k in range(24)]
        single = FleetEngine(default_model=model)
        sharded = ShardedFleet(2, spec=WorkerSpec(url="shm://", model=model, name="shm{shard}"))
        with sharded:
            for cid in ids:
                single.register_cell(cid)
                sharded.register_cell(cid)
            v = np.linspace(3.2, 4.0, len(ids))
            out = sharded.estimate(ids, v, 1.0, 25.0)
            np.testing.assert_allclose(out, single.estimate(ids, v, 1.0, 25.0), atol=1e-9, rtol=0)
            assert sorted(sharded.worker_health()) == [True, True]


# ----------------------------------------------------------------------
class TestWorkerMetrics:
    """The ``metrics`` wire op: each worker ships its registry snapshot
    to the parent, and ``ShardedFleet.metrics()`` merges the topology."""

    def test_snapshot_is_none_without_monitoring(self, model):
        with ProcessShardWorker(default_model=model, name="quiet") as worker:
            worker.register_cell("a")
            worker.estimate(["a"], 3.7, 1.0, 25.0)
            assert worker.metrics_snapshot() is None

    def test_monitored_worker_ships_its_snapshot(self, model):
        with ProcessShardWorker(default_model=model, name="mon", monitor=True) as worker:
            worker.register_cell("a")
            worker.register_cell("b")
            worker.estimate(["a", "b"], 3.7, 1.0, 25.0)
            snap = worker.metrics_snapshot()
        key = 'engine_requests_total{model="__default__",op="estimate",path="kernel"}'
        assert snap["counters"][key] == 2.0
        assert snap["gauges"]["engine_cells"] == 2.0

    def test_sharded_fleet_merges_all_workers(self, model, small_fleet):
        spec = WorkerSpec(url="pipe://", model=model, name="m{shard}", monitor=True)
        with ShardedFleet(2, spec=spec) as fleet:
            ids = [m.cell_id for m in small_fleet.members]
            for cid in ids:
                fleet.register_cell(cid)
            assert all(size > 0 for size in fleet.shard_sizes())  # both shards populated
            fleet.estimate(ids, 3.7, 1.0, 25.0)
            fleet.rollout_fleet(small_fleet.assignments(), 120.0)
            merged = fleet.metrics()
        key = 'engine_requests_total{model="__default__",op="estimate",path="kernel"}'
        assert merged["counters"][key] == float(len(ids))
        rollout_key = 'engine_requests_total{model="__default__",op="rollout",path="kernel"}'
        assert merged["counters"][rollout_key] == float(len(ids))
        assert merged["gauges"]["engine_cells"] == float(len(ids))  # gauges sum across shards
        hist = merged["histograms"]['engine_physics_residual{model="__default__"}']
        assert hist["count"] > 0
        assert hist["min"] >= 0.0

    def test_dead_workers_are_skipped_not_fatal(self, model):
        spec = WorkerSpec(url="pipe://", model=model, name="d{shard}", monitor=True)
        fleet = ShardedFleet(2, spec=spec)
        try:
            for k in range(8):
                fleet.register_cell(f"c{k}")
            fleet.estimate([f"c{k}" for k in range(8)], 3.7, 1.0, 25.0)
            victim = fleet._shards[0]
            victim._proc.kill()
            victim._proc.wait()
            merged = fleet.metrics()  # no raise; surviving shard reports
            key = 'engine_requests_total{model="__default__",op="estimate",path="kernel"}'
            assert 0 < merged["counters"][key] < 8.0
        finally:
            fleet.close()


# ----------------------------------------------------------------------
# an impossible SoC band: every estimate violates it, so tests can tell
# "registry spec applied" from "default detectors" in one call
_ALARM_SPEC = {"page_hinkley": None, "cusum": None, "bounds": {"soc_min": 1.5, "soc_max": 2.0}}


class TestDriftFromRegistry:
    """Per-chemistry drift configs resolved from registry metadata
    (``WorkerSpec(drift_from_registry=True)`` /
    :func:`drift_resolver_from_registry`)."""

    def _registry(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("lfp_net", model, chemistry="lfp", extra={"drift": _ALARM_SPEC})
        registry.publish("generic", model)  # no chemistry, no drift spec
        return registry

    def test_resolver_returns_the_published_spec(self, tmp_path, model):
        resolver = drift_resolver_from_registry(self._registry(tmp_path, model))
        assert resolver("lfp") == _ALARM_SPEC
        # chemistries served by a spec-less model fall back to defaults
        assert resolver("nmc") is None
        assert resolver(None) is None

    def test_resolver_survives_an_empty_registry(self, tmp_path):
        resolver = drift_resolver_from_registry(ModelRegistry(tmp_path / "empty"))
        assert resolver("lfp") is None

    def test_resolver_rejects_a_non_dict_spec(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("m", model, chemistry="lfp", extra={"drift": "loose"})
        resolver = drift_resolver_from_registry(registry)
        with pytest.raises(TypeError, match="non-dict 'drift' spec"):
            resolver("lfp")

    def test_spec_requires_a_registry(self, model):
        with pytest.raises(ValueError, match="needs a registry"):
            WorkerSpec(url="pipe://", model=model, drift_from_registry=True)
        with pytest.raises(ValueError, match="needs a registry"):
            ProcessShardWorker(default_model=model, drift_from_registry=True)

    def test_worker_routes_drift_per_chemistry_from_the_registry(self, tmp_path, model):
        registry = self._registry(tmp_path, model)
        worker = ProcessShardWorker(
            registry_root=registry.root, name="driftcfg", drift_from_registry=True
        )
        with worker:
            worker.register_cell("hot", chemistry="lfp")
            worker.register_cell("calm", chemistry="nmc")
            assert worker.drift_events() == []
            worker.estimate(["hot", "calm"], [3.7, 3.7], [1.0, 1.0], 25.0)
            events = worker.drift_events()
            # only the lfp cell trips its registry-declared bounds; the
            # nmc cell runs default detectors, which stay quiet here
            assert events and {event.cell_id for event in events} == {"hot"}
            assert {event.kind for event in events} == {"soc_bounds"}

    def test_sharded_fleet_merges_worker_drift_events(self, tmp_path, model):
        registry = self._registry(tmp_path, model)
        spec = WorkerSpec(
            url="pipe://", registry=registry.root, name="dr{shard}", drift_from_registry=True
        )
        with ShardedFleet(2, spec=spec) as fleet:
            ids = [f"c{k}" for k in range(8)]
            for cid in ids:
                fleet.register_cell(cid, chemistry="lfp")
            assert all(size > 0 for size in fleet.shard_sizes())
            fleet.estimate(ids, 3.7, 1.0, 25.0)
            events = fleet.drift_events()
            assert {event.cell_id for event in events} == set(ids)
