"""Tests for the retrain loop and publisher (:mod:`repro.learn.loop`)."""

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.learn import FineTuneConfig, RetrainConfig, RetrainLoop, publish_candidate
from repro.monitor import MetricsRegistry
from repro.monitor.drift import DriftEvent
from repro.serve import ModelRegistry, StateJournal
from repro.serve.engine import CellState

FAST_TUNE = FineTuneConfig(epochs=2)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


def _event(cell_id):
    return DriftEvent(kind="cusum", cell_id=cell_id, value=1.0, threshold=0.1)


def make_journal(tmp_path, cells=("a", "b"), windows=8):
    path = tmp_path / "w.journal"
    with StateJournal(path) as journal:
        for cid in cells:
            journal.append_cell(CellState(cell_id=cid, chemistry=None, model_key="serve"))
        journal.begin_rollout(120.0)
        for cid in cells:
            journal.append_windows([(cid, 0, 0.9)])
            journal.append_windows(
                [
                    (cid, w, 0.9 - 0.05 * w, 1.0, 25.0, 120.0, 2.0)
                    for w in range(1, windows)
                ]
            )
    return path


def make_loop(tmp_path, model, target=None, metrics=None, **config):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("serve", model)
    journal = make_journal(tmp_path)
    events = []
    config = RetrainConfig(name="serve", finetune=FAST_TUNE, **config)
    loop = RetrainLoop(
        source=lambda: list(events),
        journals=journal,
        registry=registry,
        target=registry if target is None else target,
        config=config,
        metrics=metrics,
    )
    return loop, registry, events


class FakeController:
    def __init__(self):
        self.active = False
        self.started = []

    def start(self, candidate=None, version=None, chemistry=None, dataset=None, extra=None):
        if self.active:
            raise ValueError("canary already active")
        self.active = True
        self.started.append((candidate, chemistry, dataset, extra))
        return 2

    @property
    def candidate_version(self):
        return 2 if self.active else None


# ----------------------------------------------------------------------
class TestRetrainLoop:
    def test_idles_without_fresh_drift(self, tmp_path, model):
        loop, registry, events = make_loop(tmp_path, model)
        report = loop.tick()
        assert report == {"status": "idle", "fresh_events": 0}
        assert registry.channels("serve") == {"stable": 1}

    def test_drift_produces_a_canary_candidate_then_cools_down(self, tmp_path, model):
        metrics = MetricsRegistry()
        loop, registry, events = make_loop(tmp_path, model, metrics=metrics)
        events.append(_event("a"))
        report = loop.tick()
        assert report["status"] == "published"
        assert report["version"] == 2
        assert report["rows"] >= loop.config.min_rows
        assert report["cells"] == 1
        assert registry.channels("serve") == {"stable": 1, "canary": 2}
        entry = registry.describe("serve@canary")
        assert entry.extra["retrained_from"] == 1
        assert entry.extra["harvest_rows"] == report["rows"]
        assert loop.retrains == 1
        assert metrics.counter_value("retrain_ticks_total", status="published") == 1.0

    def test_waits_out_an_active_canary_before_retraining_again(self, tmp_path, model):
        loop, registry, events = make_loop(tmp_path, model, cooldown_ticks=1)
        events.append(_event("a"))
        assert loop.tick()["status"] == "published"
        events.append(_event("b"))
        assert loop.tick()["status"] == "cooldown"
        # canary from the first retrain is still being judged
        assert loop.tick()["status"] == "canary-active"
        registry.promote("serve")
        report = loop.tick()
        assert report["status"] == "published"
        assert report["fresh_events"] == 1  # only the unconsumed event counted
        assert registry.describe("serve@canary").extra["retrained_from"] == 2

    def test_consumed_events_do_not_retrigger(self, tmp_path, model):
        loop, registry, events = make_loop(tmp_path, model, cooldown_ticks=0)
        events.append(_event("a"))
        assert loop.tick()["status"] == "published"
        registry.rollback("serve")  # verdict lands; no new drift since
        assert loop.tick() == {"status": "idle", "fresh_events": 0}

    def test_sparse_windows_consume_events_without_publishing(self, tmp_path, model):
        loop, registry, events = make_loop(tmp_path, model, min_rows=64)
        events.append(_event("a"))
        report = loop.tick()
        assert report["status"] == "no-data"
        assert 0 < report["rows"] < 64
        assert registry.channels("serve") == {"stable": 1}
        assert loop.tick()["status"] == "cooldown"

    def test_min_events_threshold_filters_single_alarms(self, tmp_path, model):
        loop, registry, events = make_loop(tmp_path, model, min_events=3)
        events.append(_event("a"))
        assert loop.tick()["status"] == "idle"
        events.extend([_event("a"), _event("b")])
        assert loop.tick()["status"] == "published"

    def test_publishes_through_a_controller(self, tmp_path, model):
        controller = FakeController()
        loop, registry, events = make_loop(tmp_path, model, target=controller)
        events.append(_event("a"))
        report = loop.tick()
        assert report["status"] == "published" and report["version"] == 2
        (candidate, chemistry, dataset, extra) = controller.started[0]
        assert isinstance(candidate, TwoBranchSoCNet)
        assert extra["retrained_from"] == 1
        # the controller's own .active now gates the next attempt
        events.append(_event("b"))
        loop.tick()  # cooldown
        assert loop.tick()["status"] == "canary-active"

    def test_a_canary_racing_the_publish_leaves_events_unconsumed(self, tmp_path, model):
        controller = FakeController()
        loop, registry, events = make_loop(tmp_path, model, target=controller, cooldown_ticks=0)

        events.append(_event("a"))
        real_active = FakeController.start

        def race(self, **kwargs):
            # a human (or another loop) started a canary between the
            # loop's check and its publish
            raise ValueError("canary already active")

        controller.start = race.__get__(controller)
        report = loop.tick()
        assert report["status"] == "canary-active"
        assert loop.retrains == 0
        # the drift is still fresh: once the lane clears, it retrains
        controller.start = real_active.__get__(controller)
        assert loop.tick()["status"] == "published"

    def test_config_validation(self):
        with pytest.raises(ValueError, match="min_events"):
            RetrainConfig(name="serve", min_events=0)
        with pytest.raises(ValueError, match="min_rows"):
            RetrainConfig(name="serve", min_rows=0)
        with pytest.raises(ValueError, match="cooldown"):
            RetrainConfig(name="serve", cooldown_ticks=-1)


# ----------------------------------------------------------------------
class TestPublishCandidate:
    def test_registry_target_publishes_to_canary_channel(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("serve", model)
        version = publish_candidate(registry, "serve", model, extra={"k": 1})
        assert version == 2
        assert registry.channels("serve") == {"stable": 1, "canary": 2}
        assert registry.describe("serve@canary").extra["k"] == 1

    def test_controller_target_starts_the_canary(self, model):
        controller = FakeController()
        assert publish_candidate(controller, "serve", model) == 2
        assert controller.active

    def test_unknown_target_is_a_type_error(self, model):
        with pytest.raises(TypeError, match="cannot publish through"):
            publish_candidate(object(), "serve", model)
