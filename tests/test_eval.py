"""Tests for metrics, reporting, the experiment harness, and drivers."""

import numpy as np
import pytest

from repro.core import PhysicsConfig, TrainConfig
from repro.eval import (
    PHYSICS_ONLY,
    ExperimentResult,
    VariantResult,
    evaluate_variants,
    format_mae_grid,
    format_rollout_summary,
    format_table,
    improvement_percent,
    mae,
    max_abs_error,
    rmse,
    save_csv,
)


class TestMetrics:
    def test_mae(self):
        assert mae([1.0, 2.0], [2.0, 0.0]) == pytest.approx(1.5)

    def test_rmse(self):
        assert rmse([1.0, 2.0], [2.0, 0.0]) == pytest.approx(np.sqrt(2.5))

    def test_rmse_ge_mae(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=100), rng.normal(size=100)
        assert rmse(a, b) >= mae(a, b)

    def test_max_abs_error(self):
        assert max_abs_error([1.0, 5.0], [1.5, 1.0]) == pytest.approx(4.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mae([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mae([], [])

    def test_improvement_percent(self):
        assert improvement_percent(0.1, 0.08) == pytest.approx(20.0)
        assert improvement_percent(0.1, 0.12) == pytest.approx(-20.0)

    def test_improvement_invalid_baseline(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 0.1)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1.0, "x"], [2.5, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_table_floats(self):
        text = format_table(["v"], [[0.123456]], float_digits=3)
        assert "0.123" in text

    def test_format_table_validation(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_mae_grid_improvements(self):
        grid = {"No-PINN": {30.0: 0.1}, "PINN": {30.0: 0.05}}
        text = format_mae_grid(grid, baseline="No-PINN")
        assert "+50%" in text

    def test_format_mae_grid_empty_raises(self):
        with pytest.raises(ValueError):
            format_mae_grid({})

    def test_format_rollout_summary(self):
        from repro.core import RolloutResult

        result = RolloutResult(
            time_s=np.array([0.0, 30.0, 60.0]),
            soc_pred=np.array([0.9, 0.7, 0.5]),
            soc_true=np.array([0.9, 0.8, 0.45]),
            initial_soc=0.9,
            step_s=30.0,
        )
        text = format_rollout_summary({"us06": result})
        assert "us06" in text and "rmse" in text and "max|err|" in text
        assert f"{result.rmse():.4f}" in text
        assert f"{result.max_error():.4f}" in text

    def test_format_rollout_summary_truncates(self):
        from repro.core import RolloutResult

        r = RolloutResult(
            time_s=np.zeros(2), soc_pred=np.zeros(2), soc_true=np.zeros(2),
            initial_soc=0.0, step_s=1.0,
        )
        text = format_rollout_summary({"a": r, "b": r, "c": r}, max_rows=1)
        assert "2 more trajectories" in text
        with pytest.raises(ValueError):
            format_rollout_summary({})

    def test_save_csv_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "out.csv"
        save_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[2] == "3,4"


class TestVariantResult:
    def test_mean_std(self):
        v = VariantResult("x", {30.0: [0.1, 0.2]})
        assert v.mean(30.0) == pytest.approx(0.15)
        assert v.std(30.0) == pytest.approx(0.05)


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            dataset="d",
            train_horizon_s=30.0,
            test_horizons_s=(30.0, 70.0),
            variants={
                "A": VariantResult("A", {30.0: [0.1], 70.0: [0.3]}),
                "B": VariantResult("B", {30.0: [0.2], 70.0: [0.1]}),
            },
        )

    def test_mean_grid(self):
        grid = self._result().mean_grid()
        assert grid["A"][30.0] == pytest.approx(0.1)

    def test_best_variant(self):
        result = self._result()
        assert result.best_variant(30.0) == "A"
        assert result.best_variant(70.0) == "B"
        assert result.best_variant(30.0, exclude=("A",)) == "B"

    def test_best_horizon(self):
        result = self._result()
        assert result.best_horizon("A") == 30.0
        assert result.best_horizon("B") == 70.0


class TestEvaluateVariants:
    """Miniature end-to-end run of the Fig. 3-style harness."""

    @pytest.fixture(scope="class")
    def tiny_result(self, request):
        small_sandia = request.getfixturevalue("small_sandia")
        return evaluate_variants(
            small_sandia.train(),
            small_sandia.test(),
            train_horizon_s=120.0,
            test_horizons_s=(120.0, 240.0),
            variants={
                "No-PINN": None,
                "Physics-Only": PHYSICS_ONLY,
                "PINN": PhysicsConfig(horizons_s=(120.0, 240.0), n_collocation=64),
            },
            seeds=(0, 1),
            train_config=TrainConfig(epochs_branch1=20, epochs_branch2=20),
            keep_models=True,
        )

    def test_all_variants_scored(self, tiny_result):
        assert set(tiny_result.variants) == {"No-PINN", "Physics-Only", "PINN"}

    def test_one_score_per_seed(self, tiny_result):
        for v in tiny_result.variants.values():
            assert all(len(scores) == 2 for scores in v.mae_by_horizon.values())

    def test_scores_positive_and_finite(self, tiny_result):
        for v in tiny_result.variants.values():
            for scores in v.mae_by_horizon.values():
                assert all(0 < s < 1 for s in scores)

    def test_models_kept_per_seed(self, tiny_result):
        assert len(tiny_result.models["No-PINN"]) == 2
        assert len(tiny_result.models["PINN"]) == 2
        assert "Physics-Only" not in tiny_result.models

    def test_empty_variants_raise(self, small_sandia):
        with pytest.raises(ValueError):
            evaluate_variants(
                small_sandia.train(), small_sandia.test(), 120.0, (120.0,), {}, seeds=(0,)
            )

    def test_group_by_missing_tag_raises(self, small_sandia):
        with pytest.raises(ValueError):
            evaluate_variants(
                small_sandia.train(),
                small_sandia.test(),
                120.0,
                (120.0,),
                {"No-PINN": None},
                seeds=(0,),
                train_config=TrainConfig(epochs_branch1=1, epochs_branch2=1),
                group_by_tag="no-such-tag",
            )

    def test_group_by_chemistry_pools_scores(self, small_sandia):
        result = evaluate_variants(
            small_sandia.train(),
            small_sandia.test(),
            120.0,
            (120.0,),
            {"No-PINN": None},
            seeds=(0,),
            train_config=TrainConfig(epochs_branch1=2, epochs_branch2=2),
            group_by_tag="chemistry",
        )
        # one chemistry in the small fixture -> one score per seed
        assert len(result.variants["No-PINN"].mae_by_horizon[120.0]) == 1
