"""Tests for the span tracer and HTTP exposition
(:mod:`repro.monitor.tracing`, :mod:`repro.monitor.exposition`)."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.monitor import (
    DriftMonitor,
    ExpositionServer,
    MetricsRegistry,
    SpanTracer,
    activate,
    escape_label_value,
    prometheus_text,
    stage,
)
from repro.monitor.drift import PhysicsBounds
from repro.monitor.tracing import TRACE_STATE, Span, _NOOP


class FakeClock:
    """Deterministic monotonic clock: advances only when told to."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----------------------------------------------------------------------
class TestHeadSampling:
    def test_first_request_always_samples(self):
        tracer = SpanTracer(sample_rate=0.001)
        with tracer.trace("req"):
            pass
        assert tracer.counts()["committed"] == 1

    def test_one_in_n_deterministic(self):
        tracer = SpanTracer(sample_rate=0.25)
        for _ in range(12):
            with tracer.trace("req"):
                pass
        counts = tracer.counts()
        assert counts["started"] == 12
        assert counts["sampled"] == 3  # requests 0, 4, 8
        assert counts["committed"] == 3

    def test_rate_one_records_everything(self):
        tracer = SpanTracer(sample_rate=1.0)
        for _ in range(5):
            with tracer.trace("req"):
                pass
        assert tracer.counts()["committed"] == 5

    def test_rate_zero_records_nothing_without_slow_capture(self):
        tracer = SpanTracer(sample_rate=0.0)
        assert tracer.start_trace("req") is None
        handle = tracer.trace("req")
        assert handle is _NOOP
        with handle:
            pass
        assert tracer.counts() == {
            "started": 2, "sampled": 0, "committed": 0,
            "discarded": 0, "spans_dropped": 0, "live": 0, "stored": 0,
        }

    def test_unsampled_request_leaves_no_context(self):
        tracer = SpanTracer(sample_rate=0.5)
        with tracer.trace("req"):  # request 0: sampled
            assert getattr(TRACE_STATE, "ctx", None) is not None
        with tracer.trace("req"):  # request 1: not sampled -> _NOOP
            assert getattr(TRACE_STATE, "ctx", None) is None


class TestSlowCapture:
    def test_slow_unsampled_request_commits(self):
        clock = FakeClock()
        tracer = SpanTracer(sample_rate=0.0, slow_trace_s=0.5, clock=clock)
        with tracer.trace("req"):
            clock.advance(0.9)
        counts = tracer.counts()
        assert counts["sampled"] == 0 and counts["committed"] == 1
        assert tracer.trace_trees()[0]["sampled"] == "slow"

    def test_fast_unsampled_request_discards(self):
        clock = FakeClock()
        tracer = SpanTracer(sample_rate=0.0, slow_trace_s=0.5, clock=clock)
        with tracer.trace("req"):
            clock.advance(0.1)
        counts = tracer.counts()
        assert counts["committed"] == 0 and counts["discarded"] == 1
        assert counts["live"] == 0  # provisional buffer must not leak

    def test_head_sampled_commits_regardless_of_duration(self):
        clock = FakeClock()
        tracer = SpanTracer(sample_rate=1.0, slow_trace_s=10.0, clock=clock)
        with tracer.trace("req"):
            clock.advance(0.01)
        assert tracer.counts()["committed"] == 1
        assert tracer.trace_trees()[0]["sampled"] == "head"


class TestBounds:
    def test_trace_ring_evicts_oldest(self):
        tracer = SpanTracer(sample_rate=1.0, max_traces=3)
        for k in range(5):
            with tracer.trace(f"req{k}"):
                pass
        trees = tracer.trace_trees()
        assert [t["root_name"] for t in trees] == ["req4", "req3", "req2"]
        assert tracer.counts()["stored"] == 3

    def test_span_budget_drops_and_counts(self):
        tracer = SpanTracer(sample_rate=1.0, max_spans_per_trace=4)
        with tracer.trace("req"):
            for k in range(10):
                with stage(f"child{k}"):
                    pass
        counts = tracer.counts()
        # 4 children buffered, 6 dropped; the root itself then exceeds
        # the budget and is dropped too (counted, never silent)
        assert counts["spans_dropped"] == 7
        assert counts["committed"] == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SpanTracer(max_traces=0)
        with pytest.raises(ValueError):
            SpanTracer(max_spans_per_trace=1)


class TestSpansAndContext:
    def test_nested_stages_build_a_tree(self):
        clock = FakeClock()
        tracer = SpanTracer(sample_rate=1.0, clock=clock)
        with tracer.trace("root", kind="estimate"):
            clock.advance(0.010)
            with stage("child", shard="0"):
                clock.advance(0.020)
                with stage("grandchild"):
                    clock.advance(0.030)
            clock.advance(0.005)
        (tree,) = tracer.trace_trees()
        root = tree["root"]
        assert root["name"] == "root" and root["attrs"] == {"kind": "estimate"}
        assert tree["orphans"] == []
        (child,) = root["children"]
        assert child["name"] == "child"
        (grand,) = child["children"]
        assert grand["name"] == "grandchild"
        assert grand["end_s"] - grand["start_s"] == pytest.approx(0.030)
        # children nest inside the parent window
        assert root["start_s"] <= child["start_s"] <= grand["start_s"]
        assert grand["end_s"] <= child["end_s"] <= root["end_s"]

    def test_stage_without_context_is_shared_noop(self):
        assert stage("anything") is _NOOP
        with stage("anything") as handle:
            assert handle is None

    def test_exception_closes_span_with_error_attr(self):
        tracer = SpanTracer(sample_rate=1.0)
        with pytest.raises(RuntimeError):
            with tracer.trace("root"):
                raise RuntimeError("boom")
        (tree,) = tracer.trace_trees()
        assert tree["root"]["attrs"] == {"error": "RuntimeError"}

    def test_finish_is_idempotent_and_merges_attrs(self):
        tracer = SpanTracer(sample_rate=1.0)
        handle = tracer.start_trace("root")
        handle.finish(ok=True, batch_size=3)
        handle.finish(ok=False)  # ignored: already closed
        (tree,) = tracer.trace_trees()
        assert tree["root"]["attrs"] == {"ok": True, "batch_size": 3}
        assert tracer.counts()["committed"] == 1

    def test_activate_carries_context_across_threads(self):
        tracer = SpanTracer(sample_rate=1.0)
        handle = tracer.start_trace("root")
        seen = {}

        def worker():
            with activate(handle.ctx):
                with stage("thread.child"):
                    pass
            seen["after"] = getattr(TRACE_STATE, "ctx", None)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        handle.finish()
        assert seen["after"] is None
        (tree,) = tracer.trace_trees()
        assert [c["name"] for c in tree["root"]["children"]] == ["thread.child"]

    def test_record_appends_pre_timed_span(self):
        tracer = SpanTracer(sample_rate=1.0)
        handle = tracer.start_trace("root")
        tracer.record(handle.ctx, "queue_wait", 1.0, 1.25, batch_size=8)
        handle.finish()
        (tree,) = tracer.trace_trees()
        (child,) = tree["root"]["children"]
        assert child["name"] == "queue_wait"
        assert child["end_s"] - child["start_s"] == pytest.approx(0.25)
        assert child["attrs"] == {"batch_size": 8}


class TestCrossProcessPropagation:
    def test_wire_round_trip_joins_one_tree(self):
        parent = SpanTracer(sample_rate=1.0, service="gateway")
        child = SpanTracer(sample_rate=0.0, service="worker")
        root = parent.start_trace("gateway.estimate")
        wire_triple = root.ctx.to_wire()

        # "worker process": rebuild the context, record, drain
        ctx = child.from_wire(list(wire_triple))
        assert ctx.sampled is True
        with child.span(ctx, "worker.compute", op="estimate"):
            pass
        shipped = child.drain(ctx.trace_id)
        assert child.counts()["live"] == 0
        assert all(isinstance(r, dict) for r in shipped)
        json.dumps(shipped)  # reply meta must be JSON-safe

        parent.absorb(shipped)
        root.finish()
        (tree,) = parent.trace_trees()
        assert tree["orphans"] == []
        (compute,) = tree["root"]["children"]
        assert compute["name"] == "worker.compute"
        assert compute["service"] == "worker"

    def test_absorb_after_trace_closed_is_dropped(self):
        parent = SpanTracer(sample_rate=1.0)
        root = parent.start_trace("req")
        span = Span(
            trace_id=root.ctx.trace_id, span_id=999, parent_id=root.ctx.span_id,
            name="late", start_s=0.0, end_s=1.0, service="worker", pid=1, attrs={},
        )
        root.finish()
        parent.absorb([span.to_dict()])  # no live buffer -> dropped quietly
        (tree,) = parent.trace_trees()
        assert tree["root"]["children"] == []
        assert parent.counts()["live"] == 0

    def test_ids_are_process_qualified(self):
        tracer = SpanTracer(sample_rate=1.0)
        import os

        assert tracer._next_id() >> 32 == os.getpid()


class TestMetricsRollup:
    def test_committed_trace_rolls_into_stage_histograms(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        tracer = SpanTracer(sample_rate=1.0, metrics=metrics, clock=clock)
        with tracer.trace("gateway.estimate"):
            with stage("engine.estimate"):
                clock.advance(0.040)
        snapshot = metrics.snapshot()
        hists = snapshot["histograms"]
        assert 'trace_stage_seconds{stage="engine.estimate"}' in hists
        assert 'trace_stage_seconds{stage="gateway.estimate"}' in hists
        assert hists['trace_stage_seconds{stage="engine.estimate"}']["count"] == 1
        assert snapshot["counters"]['trace_traces_total{sampled="head"}'] == 1.0

    def test_discarded_trace_does_not_roll_up(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        tracer = SpanTracer(sample_rate=0.0, slow_trace_s=5.0, metrics=metrics, clock=clock)
        with tracer.trace("req"):
            clock.advance(0.01)
        assert metrics.snapshot()["histograms"] == {}

    def test_rollup_renders_as_prometheus_text(self):
        metrics = MetricsRegistry()
        tracer = SpanTracer(sample_rate=1.0, metrics=metrics)
        with tracer.trace("req"):
            with stage("batch.serve"):
                pass
        text = prometheus_text(metrics.snapshot())
        assert 'trace_stage_seconds{stage="batch.serve"}_count 1' not in text  # sanity: names are sane
        assert 'stage="batch.serve"' in text
        assert "trace_traces_total" in text


class TestChromeExport:
    def test_export_shape_and_units(self):
        clock = FakeClock()
        tracer = SpanTracer(sample_rate=1.0, service="gateway", clock=clock)
        with tracer.trace("req"):
            with stage("child"):
                clock.advance(0.002)
        doc = tracer.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        child = next(e for e in doc["traceEvents"] if e["name"] == "child")
        assert child["ph"] == "X"
        assert child["cat"] == "gateway"
        assert child["dur"] == pytest.approx(2000.0)  # microseconds
        json.dumps(doc)

    def test_limit_keeps_newest(self):
        tracer = SpanTracer(sample_rate=1.0)
        for k in range(4):
            with tracer.trace(f"req{k}"):
                pass
        names = {e["name"] for e in tracer.to_chrome(limit=2)["traceEvents"]}
        assert names == {"req2", "req3"}


class TestDriftExemplars:
    def test_drift_event_carries_active_trace_id(self):
        tracer = SpanTracer(sample_rate=1.0)
        monitor = DriftMonitor(bounds=PhysicsBounds())
        handle = tracer.start_trace("req")
        with handle:
            monitor.observe_soc(["c1"], np.array([2.0]))  # > soc_max
        (event,) = monitor.events()
        assert event.trace_ids == (handle.ctx.trace_id,)

    def test_no_active_trace_means_no_exemplar(self):
        monitor = DriftMonitor(bounds=PhysicsBounds())
        monitor.observe_soc(["c1"], np.array([2.0]))
        (event,) = monitor.events()
        assert event.trace_ids == ()


class TestLabelEscaping:
    def test_escape_rules(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        assert escape_label_value("plain") == "plain"

    def test_round_trip_through_exposition(self):
        metrics = MetricsRegistry()
        metrics.counter("requests_total", path='a\\b"c\nx').inc()
        text = prometheus_text(metrics.snapshot())
        (line,) = [ln for ln in text.splitlines() if ln.startswith("requests_total")]
        assert line == 'requests_total{path="a\\\\b\\"c\\nx"} 1'
        # the escaped label value decodes back to the original
        raw = line.split('path="', 1)[1].rsplit('"', 1)[0]
        decoded = raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        assert decoded == 'a\\b"c\nx'


# ----------------------------------------------------------------------
def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers.get("Content-Type", ""), exc.read().decode("utf-8")


class TestExpositionServer:
    def test_metrics_traces_healthz(self):
        metrics = MetricsRegistry()
        metrics.counter("gateway_requests_total", endpoint="estimate").inc(2)
        tracer = SpanTracer(sample_rate=1.0, metrics=metrics)
        with tracer.trace("gateway.estimate"):
            with stage("engine.estimate"):
                pass
        with ExpositionServer(
            metrics=metrics, tracer=tracer, health=lambda: {"ok": True, "workers": [True]}
        ) as server:
            status, ctype, body = _get(server.url + "/metrics")
            assert status == 200 and ctype.startswith("text/plain")
            assert 'gateway_requests_total{endpoint="estimate"} 2' in body
            assert 'trace_stage_seconds' in body

            status, ctype, body = _get(server.url + "/traces")
            assert status == 200 and ctype.startswith("application/json")
            doc = json.loads(body)
            assert doc["summary"]["committed"] == 1
            assert doc["traces"][0]["root_name"] == "gateway.estimate"

            status, _, body = _get(server.url + "/traces?format=chrome")
            assert status == 200
            assert json.loads(body)["displayTimeUnit"] == "ms"

            status, _, body = _get(server.url + "/healthz")
            assert status == 200
            assert json.loads(body) == {"ok": True, "workers": [True]}

    def test_unhealthy_is_503_and_unknown_path_404(self):
        with ExpositionServer(health=lambda: {"ok": False, "workers": [False]}) as server:
            status, _, body = _get(server.url + "/healthz")
            assert status == 503
            assert json.loads(body)["ok"] is False
            status, _, _ = _get(server.url + "/nope")
            assert status == 404

    def test_bad_limit_is_400_and_callable_metrics_source(self):
        snapshot = {"counters": {"x_total": 1.0}, "gauges": {}, "histograms": {}}
        with ExpositionServer(metrics=lambda: snapshot, tracer=SpanTracer()) as server:
            status, _, _ = _get(server.url + "/traces?limit=banana")
            assert status == 400
            status, _, body = _get(server.url + "/metrics")
            assert status == 200
            assert "x_total 1" in body

    def test_no_sources_serves_empty(self):
        with ExpositionServer() as server:
            status, _, body = _get(server.url + "/metrics")
            assert status == 200 and body == ""
            status, _, body = _get(server.url + "/traces")
            assert status == 200
            assert json.loads(body) == {"traces": [], "summary": {}}
            status, _, body = _get(server.url + "/healthz")
            assert status == 200
            assert json.loads(body) == {"ok": True}

    def test_double_start_raises_and_stop_is_idempotent(self):
        server = ExpositionServer()
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()
            server.stop()
