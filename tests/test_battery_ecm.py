"""Tests for the Thevenin ECM, thermal model, and Coulomb counting."""

import numpy as np
import pytest

from repro.battery import LumpedThermalModel, TheveninModel, coulomb, get_cell_spec


def _model(name="sandia-nmc"):
    return TheveninModel(get_cell_spec(name))


class TestTheveninModel:
    def test_reset_state(self):
        m = _model()
        m.reset(0.5)
        assert m.state.soc == 0.5
        np.testing.assert_array_equal(m.state.rc_voltages, 0.0)

    def test_reset_invalid_soc(self):
        with pytest.raises(ValueError):
            _model().reset(1.5)

    def test_open_circuit_voltage_at_rest(self):
        m = _model()
        m.reset(0.8)
        expected = m.spec.chemistry.ocv(0.8)
        assert m.terminal_voltage(0.0, 25.0) == pytest.approx(expected)

    def test_discharge_decreases_soc(self):
        m = _model()
        m.reset(0.9)
        m.step(3.0, 60.0, 25.0)
        assert m.state.soc < 0.9

    def test_charge_increases_soc(self):
        m = _model()
        m.reset(0.5)
        m.step(-3.0, 60.0, 25.0)
        assert m.state.soc > 0.5

    def test_coulomb_balance_exact_at_reference_temp(self):
        m = _model()
        m.reset(1.0)
        # 1 A for 1 hour out of a 3 Ah cell = 1/3 SoC drop
        for _ in range(3600):
            m.step(1.0, 1.0, m.spec.ref_temp_c)
        assert m.state.soc == pytest.approx(1.0 - 1.0 / 3.0, abs=1e-9)

    def test_voltage_sag_increases_with_current(self):
        m = _model()
        sags = []
        for current in (1.0, 3.0, 6.0):
            m.reset(0.8)
            v = m.step(current, 1.0, 25.0)
            sags.append(m.spec.chemistry.ocv(m.state.soc) - v)
        assert sags[0] < sags[1] < sags[2]

    def test_rc_relaxation_after_load(self):
        m = _model()
        m.reset(0.8)
        for _ in range(300):
            m.step(3.0, 1.0, 25.0)
        polarization = m.state.rc_voltages.sum()
        assert polarization > 0.01
        for _ in range(100000):
            m.step(0.0, 10.0, 25.0)
        assert m.state.rc_voltages.sum() < polarization * 1e-3

    def test_rc_steady_state_voltage(self):
        # Under constant current, each RC branch approaches R_i * I.
        m = _model()
        m.reset(1.0)
        current = 1.0
        for _ in range(2000):
            m.step(current, 10.0, 25.0)
            m.state.soc = 0.8  # pin SoC so only RC dynamics are observed
        for i in range(len(m.spec.rc_pairs)):
            expected = m.branch_resistance(i, 25.0) * current
            assert m.state.rc_voltages[i] == pytest.approx(expected, rel=1e-3)

    def test_resistance_grows_in_cold(self):
        m = _model()
        assert m.r0(0.8, -10.0) > m.r0(0.8, 25.0) > m.r0(0.8, 45.0)

    def test_resistance_grows_at_low_soc(self):
        m = _model()
        assert m.r0(0.05, 25.0) > m.r0(0.95, 25.0)

    def test_cold_capacity_shrinks(self):
        m = _model()
        assert m.effective_capacity_ah(0.0) < m.effective_capacity_ah(25.0)
        assert m.effective_capacity_ah(40.0) == pytest.approx(m.spec.capacity_ah)

    def test_capacity_floor(self):
        m = _model()
        assert m.effective_capacity_ah(-200.0) >= 0.5 * m.spec.capacity_ah

    def test_soc_clipped_to_bounds(self):
        m = _model()
        m.reset(0.001)
        for _ in range(100):
            m.step(10.0, 60.0, 25.0)
        assert m.state.soc == 0.0

    def test_at_limit_discharge(self):
        m = _model()
        m.reset(0.0)
        assert m.at_limit(1.0, 25.0)

    def test_at_limit_charge(self):
        m = _model()
        m.reset(1.0)
        assert m.at_limit(-1.0, 25.0)

    def test_not_at_limit_mid_soc(self):
        m = _model()
        m.reset(0.5)
        assert not m.at_limit(1.0, 25.0)

    def test_power_loss_positive_under_load(self):
        m = _model()
        m.reset(0.8)
        m.step(3.0, 10.0, 25.0)
        assert m.power_loss(3.0, 25.0) > 0.0

    def test_power_loss_zero_at_rest_relaxed(self):
        m = _model()
        m.reset(0.8)
        assert m.power_loss(0.0, 25.0) == pytest.approx(0.0)

    def test_invalid_dt_raises(self):
        with pytest.raises(ValueError):
            _model().step(1.0, 0.0, 25.0)

    def test_state_copy_is_independent(self):
        m = _model()
        snap = m.state.copy()
        m.step(3.0, 60.0, 25.0)
        assert snap.soc != m.state.soc or not np.array_equal(snap.rc_voltages, m.state.rc_voltages)


class TestThermalModel:
    def _model(self):
        return LumpedThermalModel(mass_kg=0.047, cp_j_per_kg_k=900.0, h_w_per_k=0.15, initial_temp_c=25.0)

    def test_heats_under_load(self):
        t = self._model()
        t.step(2.0, 25.0, 60.0)
        assert t.temp_c > 25.0

    def test_relaxes_to_ambient(self):
        t = self._model()
        t.reset(40.0)
        for _ in range(100):
            t.step(0.0, 25.0, 60.0)
        assert t.temp_c == pytest.approx(25.0, abs=0.1)

    def test_steady_state(self):
        t = self._model()
        expected = 25.0 + 2.0 / 0.15
        assert t.steady_state(2.0, 25.0) == pytest.approx(expected)
        for _ in range(10000):
            t.step(2.0, 25.0, 60.0)
        assert t.temp_c == pytest.approx(expected, abs=0.05)

    def test_exact_update_stable_for_huge_dt(self):
        t = self._model()
        t.step(2.0, 25.0, 1e9)
        assert t.temp_c == pytest.approx(t.steady_state(2.0, 25.0))

    def test_adiabatic_when_h_zero(self):
        t = LumpedThermalModel(0.047, 900.0, 0.0, initial_temp_c=25.0)
        t.step(42.3, 25.0, 10.0)
        assert t.temp_c == pytest.approx(25.0 + 42.3 * 10.0 / (0.047 * 900.0))

    def test_adiabatic_steady_state_raises(self):
        t = LumpedThermalModel(0.047, 900.0, 0.0)
        with pytest.raises(ZeroDivisionError):
            t.steady_state(1.0, 25.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LumpedThermalModel(0.0, 900.0, 0.1)
        with pytest.raises(ValueError):
            LumpedThermalModel(0.047, 900.0, -0.1)

    def test_negative_power_raises(self):
        with pytest.raises(ValueError):
            self._model().step(-1.0, 25.0, 1.0)

    def test_invalid_dt_raises(self):
        with pytest.raises(ValueError):
            self._model().step(1.0, 25.0, 0.0)


class TestCoulombCounting:
    def test_delta_soc_discharge(self):
        # 1 A for 1 h on a 3 Ah cell removes exactly 1/3 of the charge.
        assert coulomb.delta_soc(1.0, 3600.0, 3.0) == pytest.approx(-1.0 / 3.0)

    def test_delta_soc_charge(self):
        # -1 A (charging) for 30 min on a 3 Ah cell adds 1/6.
        assert coulomb.delta_soc(-1.0, 1800.0, 3.0) == pytest.approx(1.0 / 6.0)

    def test_delta_soc_broadcasts(self):
        out = coulomb.delta_soc(np.array([1.0, 2.0]), 3600.0, 2.0)
        np.testing.assert_allclose(out, [-0.5, -1.0])

    def test_predict_soc_matches_eq1(self):
        # Eq. 1: SoC_p(t+Np) = SoC(t) + (1/Crated) * integral(I dt) with
        # charge-positive convention; ours is discharge-positive.
        assert coulomb.predict_soc(0.8, 3.0, 600.0, 3.0) == pytest.approx(0.8 - 3.0 * 600.0 / 10800.0)

    def test_predict_soc_no_clip_by_default(self):
        assert coulomb.predict_soc(0.1, 10.0, 3600.0, 1.0) < 0.0

    def test_predict_soc_clip(self):
        assert coulomb.predict_soc(0.1, 10.0, 3600.0, 1.0, clip=True) == 0.0
        assert coulomb.predict_soc(0.9, -10.0, 3600.0, 1.0, clip=True) == 1.0

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            coulomb.delta_soc(1.0, 1.0, 0.0)

    def test_integrate_current(self):
        assert coulomb.integrate_current(np.ones(10), 2.0) == pytest.approx(20.0)

    def test_integrate_invalid_dt(self):
        with pytest.raises(ValueError):
            coulomb.integrate_current(np.ones(3), 0.0)

    def test_soc_trajectory_endpoints(self):
        current = np.full(3600, 1.5)  # 1.5 A for 1 h on a 3 Ah cell
        traj = coulomb.soc_trajectory(1.0, current, 1.0, 3.0)
        assert traj[-1] == pytest.approx(0.5)
        assert len(traj) == 3600

    def test_soc_trajectory_monotone_for_discharge(self):
        traj = coulomb.soc_trajectory(1.0, np.ones(100), 1.0, 3.0)
        assert np.all(np.diff(traj) < 0)

    def test_trajectory_matches_repeated_predict(self):
        current = np.array([1.0, -2.0, 0.5])
        traj = coulomb.soc_trajectory(0.5, current, 10.0, 3.0)
        step = 0.5
        for i, c in enumerate(current):
            step = coulomb.predict_soc(step, c, 10.0, 3.0)
            assert traj[i] == pytest.approx(step)
