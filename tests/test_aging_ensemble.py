"""Tests for the aging model and the SoH-dispatched ensemble (the
paper's named future-work extension, Sec. III-B / ref. [26])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery import CellSimulator, SensorNoise, get_cell_spec
from repro.battery.aging import AgingModel, aged_spec
from repro.core import TwoBranchSoCNet
from repro.core.ensemble import SoHEnsemble


class TestAgingModel:
    def test_fresh_cell(self):
        assert AgingModel().soh_after_cycles(0) == 1.0

    def test_monotone_decreasing(self):
        model = AgingModel()
        soh = model.soh_after_cycles(np.arange(0, 2000, 50))
        assert np.all(np.diff(soh) <= 0)

    def test_eol_floor(self):
        model = AgingModel(eol_soh=0.6)
        assert model.soh_after_cycles(10**7) == pytest.approx(0.6)

    def test_negative_cycles_raise(self):
        with pytest.raises(ValueError):
            AgingModel().soh_after_cycles(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            AgingModel(k_cycle_sqrt=-1.0)
        with pytest.raises(ValueError):
            AgingModel(eol_soh=1.5)

    def test_cycles_to_soh_inverts_fade(self):
        model = AgingModel()
        n = model.cycles_to_soh(0.9)
        assert model.soh_after_cycles(n) <= 0.9
        assert model.soh_after_cycles(n - 1) > 0.9

    def test_cycles_to_soh_fresh(self):
        assert AgingModel().cycles_to_soh(1.0) == 0

    def test_cycles_to_soh_out_of_range(self):
        with pytest.raises(ValueError):
            AgingModel(eol_soh=0.6).cycles_to_soh(0.5)

    def test_resistance_grows_with_fade(self):
        model = AgingModel(resistance_growth=2.0)
        assert model.resistance_factor(1.0) == 1.0
        assert model.resistance_factor(0.8) == pytest.approx(1.4)

    def test_resistance_factor_validation(self):
        with pytest.raises(ValueError):
            AgingModel().resistance_factor(0.0)

    @given(st.integers(min_value=0, max_value=100000))
    @settings(max_examples=50)
    def test_soh_always_in_bounds(self, cycles):
        model = AgingModel()
        soh = model.soh_after_cycles(cycles)
        assert model.eol_soh <= soh <= 1.0


class TestAgedSpec:
    def test_capacity_scales(self):
        fresh = get_cell_spec("lg-hg2")
        aged = aged_spec(fresh, 0.8)
        assert aged.capacity_ah == pytest.approx(fresh.capacity_ah * 0.8)

    def test_resistance_grows(self):
        fresh = get_cell_spec("lg-hg2")
        aged = aged_spec(fresh, 0.8)
        assert aged.r0_ohm > fresh.r0_ohm
        assert all(ar > fr for (ar, _), (fr, _) in zip(aged.rc_pairs, fresh.rc_pairs))

    def test_name_tagged(self):
        aged = aged_spec(get_cell_spec("lg-hg2"), 0.85)
        assert "@soh0.85" in aged.name

    def test_aged_cell_discharges_faster(self):
        fresh_spec = get_cell_spec("sandia-nmc")
        old_spec = aged_spec(fresh_spec, 0.7)
        durations = []
        for spec in (fresh_spec, old_spec):
            sim = CellSimulator(spec, noise=SensorNoise.none(), rng=0)
            sim.reset(0.95, 25.0)
            # same absolute current drains the smaller pack sooner
            trace = sim.run_constant_current(3.0, 1.0, 25.0, 4 * 3600)
            durations.append(trace.duration_s())
        assert durations[1] < durations[0]


class TestSoHEnsemble:
    def _ensemble(self, blend=True):
        members = {
            1.0: TwoBranchSoCNet(rng=np.random.default_rng(1)),
            0.9: TwoBranchSoCNet(rng=np.random.default_rng(2)),
            0.8: TwoBranchSoCNet(rng=np.random.default_rng(3)),
        }
        return SoHEnsemble(members, blend=blend), members

    def test_levels_sorted(self):
        ens, _ = self._ensemble()
        assert ens.levels == (0.8, 0.9, 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SoHEnsemble({})

    def test_invalid_level_raises(self):
        with pytest.raises(ValueError):
            SoHEnsemble({1.2: TwoBranchSoCNet(rng=np.random.default_rng(0))})

    def test_member_nearest(self):
        ens, members = self._ensemble()
        assert ens.member(0.99) is members[1.0]
        assert ens.member(0.84) is members[0.8]

    def test_exact_level_matches_member(self):
        ens, members = self._ensemble()
        out = ens.estimate_soc(0.9, 3.7, 1.0, 25.0)
        expected = members[0.9].estimate_soc(3.7, 1.0, 25.0)
        np.testing.assert_allclose(out, expected)

    def test_blend_interpolates(self):
        ens, members = self._ensemble(blend=True)
        mid = ens.estimate_soc(0.95, 3.7, 1.0, 25.0)
        lo = members[0.9].estimate_soc(3.7, 1.0, 25.0)
        hi = members[1.0].estimate_soc(3.7, 1.0, 25.0)
        np.testing.assert_allclose(mid, 0.5 * lo + 0.5 * hi)

    def test_no_blend_snaps_to_nearest(self):
        ens, members = self._ensemble(blend=False)
        out = ens.estimate_soc(0.96, 3.7, 1.0, 25.0)
        np.testing.assert_allclose(out, members[1.0].estimate_soc(3.7, 1.0, 25.0))

    def test_clamps_outside_range(self):
        ens, members = self._ensemble()
        low = ens.estimate_soc(0.65, 3.7, 1.0, 25.0)
        np.testing.assert_allclose(low, members[0.8].estimate_soc(3.7, 1.0, 25.0))

    def test_invalid_query_soh(self):
        ens, _ = self._ensemble()
        with pytest.raises(ValueError):
            ens.estimate_soc(0.0, 3.7, 1.0, 25.0)

    def test_predict_paths(self):
        ens, _ = self._ensemble()
        assert ens.predict_soc(0.9, 0.8, 3.0, 25.0, 30.0).shape == (1,)
        assert ens.predict_from_sensors(0.9, 3.7, 1.0, 25.0, 3.0, 25.0, 30.0).shape == (1,)

    def test_ensemble_beats_single_fresh_model_on_aged_cell(self, small_sandia):
        """Integration: training members on fresh and aged campaigns and
        dispatching by SoH must beat using the fresh model on aged data
        (the motivation of ref. [26])."""
        from repro.core import TrainConfig, train_two_branch
        from repro.datasets import (
            SandiaConfig,
            generate_sandia,
            make_estimation_samples,
            make_prediction_samples,
        )
        from repro.eval import mae

        # the "aged" campaign: same protocol, cells at ~65% capacity
        aged_campaign = generate_sandia(
            SandiaConfig(
                cells=("sandia-nmc",),
                ambient_temps_c=(25.0,),
                sim_dt_s=2.0,
                capacity_factor_range=(0.64, 0.66),
                seed=12,
            )
        )
        cfg = TrainConfig(epochs_branch1=120, epochs_branch2=120, seed=0)

        fresh_est = make_estimation_samples(small_sandia.train())
        fresh_pred = make_prediction_samples(small_sandia.train(), horizon_s=120.0)
        fresh_model, _ = train_two_branch(fresh_est, fresh_pred, train_config=cfg)

        aged_est = make_estimation_samples(aged_campaign.train())
        aged_pred = make_prediction_samples(aged_campaign.train(), horizon_s=120.0)
        aged_model, _ = train_two_branch(aged_est, aged_pred, train_config=cfg)

        # small_sandia uses factors ~0.84-0.94 -> fresh-ish; aged ~0.75
        ensemble = SoHEnsemble({0.9: fresh_model, 0.65: aged_model})

        test = make_prediction_samples(aged_campaign.test(), horizon_s=120.0)
        fresh_err = mae(fresh_model.predict_samples(test), test.soc_target)
        ens_pred = ensemble.member(0.65).predict_samples(test)
        ens_err = mae(ens_pred, test.soc_target)
        assert ens_err < fresh_err
