"""Tests for the async gateway (:mod:`repro.serve.gateway`) and the
thread-safety of the batcher underneath it."""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core import TwoBranchSoCNet
from repro.serve import (
    FleetEngine,
    GatewayOverloaded,
    MicroBatcher,
    ShardedFleet,
    SocGateway,
    WorkerSpec,
    generate_fleet,
)

FAST_FLEET = dict(
    ambient_temps_c=(25.0,),
    c_rates=(1.0, 2.0),
    protocols=("discharge",),
    max_time_s=1800.0,
)


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


def make_engine(model, n_cells=32):
    engine = FleetEngine(default_model=model)
    for k in range(n_cells):
        engine.register_cell(f"c{k}")
    return engine


class SlowRollout:
    """Engine wrapper whose rollout takes a fixed wall-clock time."""

    def __init__(self, inner, delay_s: float):
        self._inner = inner
        self._delay_s = delay_s

    def rollout_fleet(self, assignments, step_s, step_hook=None):
        time.sleep(self._delay_s)
        return self._inner.rollout_fleet(assignments, step_s, step_hook=step_hook)

    def __contains__(self, cell_id):
        return cell_id in self._inner

    def __getattr__(self, name):
        return getattr(self._inner, name)


# ----------------------------------------------------------------------
class TestMicroBatcherConcurrency:
    def test_deadline_trigger_under_concurrent_submitters(self, model):
        """Eight threads hammer the batcher while the main thread polls:
        every request completes exactly once, none is lost or torn."""
        engine = make_engine(model)
        batcher = MicroBatcher(engine, max_batch=10_000, max_delay_s=0.005)
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)
        submitted: list[int] = []
        submitted_lock = threading.Lock()

        def submitter(t: int) -> None:
            barrier.wait()
            ids = []
            for j in range(per_thread):
                ids.append(batcher.submit_estimate(f"c{(t + j) % 32}", 3.7, 1.0, 25.0))
            with submitted_lock:
                submitted.extend(ids)

        threads = [threading.Thread(target=submitter, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        completions = []
        deadline = time.monotonic() + 10.0
        while len(completions) < n_threads * per_thread and time.monotonic() < deadline:
            completions.extend(batcher.poll())
            time.sleep(0.001)
        for thread in threads:
            thread.join()
        completions.extend(batcher.flush())
        assert len(completions) == n_threads * per_thread
        assert {c.req_id for c in completions} == set(submitted)
        assert all(c.ok for c in completions)
        assert batcher.stats.deadline_flushes >= 1
        assert batcher.pending == 0


# ----------------------------------------------------------------------
class TestSocGateway:
    def test_rejects_bad_config(self, model):
        with pytest.raises(ValueError):
            SocGateway(make_engine(model), max_in_flight=0)

    def test_concurrent_estimates_coalesce_into_one_batch(self, model):
        engine = make_engine(model)
        gateway = SocGateway(engine, max_batch=8, max_delay_s=10.0, max_in_flight=64)

        async def drive():
            async with gateway:
                return await asyncio.gather(
                    *(gateway.estimate(f"c{k}", 3.5 + 0.05 * k, 1.0, 25.0) for k in range(8))
                )

        completions = asyncio.run(drive())
        assert all(c.ok for c in completions)
        assert all(c.batch_size == 8 for c in completions)  # one coalesced engine call
        for k, completion in enumerate(completions):
            expected = float(model.estimate_soc(3.5 + 0.05 * k, 1.0, 25.0)[0])
            assert completion.value == pytest.approx(expected, abs=1e-12)
        stats = gateway.stats_dict()["estimate"]
        assert stats["completed"] == 8 and stats["errors"] == 0 and stats["shed"] == 0

    def test_lone_request_completes_via_deadline_flusher(self, model):
        gateway = SocGateway(make_engine(model), max_batch=1000, max_delay_s=0.01)

        async def drive():
            async with gateway:
                return await asyncio.wait_for(gateway.estimate("c0", 3.7, 1.0, 25.0), timeout=5.0)

        completion = asyncio.run(drive())
        assert completion.ok
        assert completion.batch_size == 1
        assert completion.wait_s >= 0.01  # released by the deadline, not a size trigger

    def test_load_shed_returns_ok_false_instead_of_hanging(self, model):
        """Beyond max_in_flight the gateway must answer immediately with
        ok=False completions — never queue without bound."""
        gateway = SocGateway(make_engine(model), max_batch=1000, max_delay_s=0.05, max_in_flight=4)

        async def drive():
            async with gateway:
                return await asyncio.wait_for(
                    asyncio.gather(*(gateway.estimate(f"c{k}", 3.7, 1.0, 25.0) for k in range(20))),
                    timeout=5.0,
                )

        completions = asyncio.run(drive())
        served = [c for c in completions if c.ok]
        shed = [c for c in completions if not c.ok]
        assert len(served) == 4 and len(shed) == 16
        assert all(c.error.startswith("shed:") for c in shed)
        assert all(np.isnan(c.value) for c in shed)
        stats = gateway.stats_dict()["estimate"]
        assert stats["shed"] == 16 and stats["completed"] == 4 and stats["errors"] == 0
        assert gateway.in_flight == 0

    def test_engine_error_surfaces_as_error_completion(self, model):
        gateway = SocGateway(make_engine(model), max_batch=1, max_delay_s=10.0)

        async def drive():
            async with gateway:
                return await gateway.predict("c0", 2.0, 25.0, 120.0)  # no stored SoC yet

        completion = asyncio.run(drive())
        assert not completion.ok
        assert "no stored SoC" in completion.error
        assert gateway.stats_dict()["predict"]["errors"] == 1

    def test_rollout_endpoint_matches_direct_engine_call(self, model):
        fleet = generate_fleet(10, seed=3, **FAST_FLEET)
        ref = FleetEngine(default_model=model).rollout_fleet(fleet.assignments(), 120.0)
        gateway = SocGateway(FleetEngine(default_model=model))

        async def drive():
            async with gateway:
                return await gateway.rollout(fleet.assignments(), 120.0)

        results = asyncio.run(drive())
        for cell_id, _ in fleet.assignments():
            np.testing.assert_allclose(results[cell_id].soc_pred, ref[cell_id].soc_pred, atol=1e-9, rtol=0)
        stats = gateway.stats_dict()["rollout"]
        assert stats["completed"] == 1 and stats["errors"] == 0

    def test_rollout_sheds_with_exception_at_capacity(self, model):
        fleet = generate_fleet(4, seed=3, **FAST_FLEET)
        gateway = SocGateway(make_engine(model), max_batch=1000, max_delay_s=0.02, max_in_flight=1)

        async def drive():
            async with gateway:
                pending = asyncio.ensure_future(gateway.estimate("c0", 3.7, 1.0, 25.0))
                await asyncio.sleep(0)  # let the estimate occupy the only slot
                with pytest.raises(GatewayOverloaded, match="shed"):
                    await gateway.rollout(fleet.assignments(), 120.0)
                return await pending

        completion = asyncio.run(drive())
        assert completion.ok
        assert gateway.stats_dict()["rollout"]["shed"] == 1

    def test_event_loop_stays_live_during_rollout(self, model):
        """A slow rollout holds the batcher lock on the executor; the
        event loop must keep ticking (accepting/shedding) meanwhile —
        not block on that lock in the flusher or a submission."""
        fleet = generate_fleet(4, seed=3, **FAST_FLEET)
        engine = SlowRollout(make_engine(model), delay_s=0.5)
        gateway = SocGateway(engine, max_batch=1000, max_delay_s=0.01, max_in_flight=64)

        async def drive():
            async with gateway:
                rollout_task = asyncio.ensure_future(gateway.rollout(fleet.assignments(), 120.0))
                await asyncio.sleep(0)  # let the rollout claim the lock
                submitted = asyncio.ensure_future(gateway.estimate("c0", 3.7, 1.0, 25.0))
                ticks = 0
                while not rollout_task.done():  # heartbeat: frozen loop => ~0 ticks
                    await asyncio.sleep(0.01)
                    ticks += 1
                results = await rollout_task
                completion = await asyncio.wait_for(submitted, timeout=5.0)
                return ticks, results, completion

        ticks, results, completion = asyncio.run(drive())
        assert ticks >= 10  # ~50 expected over a 0.5 s rollout
        assert len(results) == 4
        assert completion.ok  # queued behind the rollout, then served

    def test_cancelled_submitter_does_not_leak_orphans(self, model):
        """A client timeout while its submission is parked behind a
        rollout must not leave an unclaimed completion behind."""
        fleet = generate_fleet(4, seed=3, **FAST_FLEET)
        engine = SlowRollout(make_engine(model), delay_s=0.3)
        gateway = SocGateway(engine, max_batch=1000, max_delay_s=0.01, max_in_flight=64)

        async def drive():
            async with gateway:
                rollout_task = asyncio.ensure_future(gateway.rollout(fleet.assignments(), 120.0))
                await asyncio.sleep(0.05)  # rollout now holds the batcher lock
                victim = asyncio.ensure_future(gateway.estimate("c0", 3.7, 1.0, 25.0))
                await asyncio.sleep(0.05)  # victim is parked on the executor
                victim.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await victim
                await rollout_task
                return await asyncio.wait_for(gateway.estimate("c1", 3.7, 1.0, 25.0), timeout=5.0)

        survivor = asyncio.run(drive())
        assert survivor.ok  # the gateway still serves after the cancellation
        assert gateway._orphans == {}  # the victim's completion was not parked forever
        assert gateway._abandoned == set()
        assert gateway.in_flight == 0

    def test_stop_during_rollout_completes_queued_requests(self, model):
        """stop() while a rollout blocks the flusher mid executor-poll
        must still deliver queued completions, not discard them with
        the cancelled task."""
        fleet = generate_fleet(4, seed=3, **FAST_FLEET)
        clock_start = time.monotonic()
        engine = SlowRollout(make_engine(model), delay_s=0.4)
        gateway = SocGateway(engine, max_batch=1000, max_delay_s=0.01)

        async def drive():
            gateway.start()
            rollout_task = asyncio.ensure_future(gateway.rollout(fleet.assignments(), 120.0))
            await asyncio.sleep(0.05)  # rollout holds the lock; flusher falls back to executor
            pending = asyncio.ensure_future(gateway.estimate("c0", 3.7, 1.0, 25.0))
            await asyncio.sleep(0.05)
            await gateway.stop()  # cancels the flusher mid-poll; must not strand the request
            completion = await asyncio.wait_for(pending, timeout=5.0)
            await rollout_task
            return completion

        completion = asyncio.run(drive())
        assert completion.ok
        assert time.monotonic() - clock_start < 10.0  # sanity: nothing dead-locked
        assert gateway.in_flight == 0

    def test_stop_completes_stragglers(self, model):
        gateway = SocGateway(make_engine(model), max_batch=1000, max_delay_s=60.0)

        async def drive():
            gateway.start()
            pending = asyncio.ensure_future(gateway.estimate("c0", 3.7, 1.0, 25.0))
            while gateway.batcher.pending == 0:  # submission crosses the executor
                await asyncio.sleep(0.001)
            await gateway.stop()  # must flush the queued request, not strand it
            return await asyncio.wait_for(pending, timeout=1.0)

        completion = asyncio.run(drive())
        assert completion.ok

    def test_pump_drives_completions_without_flusher(self, model):
        clock_now = [0.0]
        gateway = SocGateway(make_engine(model), max_batch=1000, max_delay_s=0.5, clock=lambda: clock_now[0])

        async def drive():
            pending = asyncio.ensure_future(gateway.estimate("c0", 3.7, 1.0, 25.0))
            while gateway.batcher.pending == 0:  # submission crosses the executor
                await asyncio.sleep(0.001)
            assert gateway.pump() == 0  # deadline not reached on the fake clock
            clock_now[0] = 1.0
            assert gateway.pump() == 1
            return await pending

        completion = asyncio.run(drive())
        assert completion.ok
        assert completion.wait_s == pytest.approx(1.0)

    def test_registry_backed_stats_expose_metrics_snapshot(self, model):
        """The retired EndpointStats reservoir is gone: the same numbers
        come from the metrics registry, in both stats_dict shape and
        the mergeable snapshot format."""
        gateway = SocGateway(make_engine(model), max_batch=4, max_delay_s=10.0)

        async def drive():
            async with gateway:
                return await asyncio.gather(*(gateway.estimate(f"c{k}", 3.7, 1.0, 25.0) for k in range(4)))

        completions = asyncio.run(drive())
        assert all(c.ok for c in completions)
        snap = gateway.metrics_snapshot()
        assert snap["counters"]['gateway_requests_total{endpoint="estimate"}'] == 4.0
        assert snap["counters"]['gateway_completed_total{endpoint="estimate"}'] == 4.0
        hist = snap["histograms"]['gateway_latency_seconds{endpoint="estimate"}']
        assert hist["count"] == 4
        stats = gateway.stats_dict()["estimate"]
        assert stats["completed"] == 4 and stats["p50_ms"] >= 0.0
        assert gateway.stats_dict()["retries"] == 0

    def test_shared_registry_is_used_when_given(self, model):
        from repro.monitor import MetricsRegistry

        metrics = MetricsRegistry()
        gateway = SocGateway(make_engine(model), metrics=metrics)
        assert gateway.metrics is metrics
        gateway.stats["estimate"].requests.inc()
        assert metrics.counter_value("gateway_requests_total", endpoint="estimate") == 1.0


# ----------------------------------------------------------------------
class TestWorkerCrashRetry:
    """Gateway retry/hedging: a WorkerCrashError mid-flight restarts the
    dead (journaled) worker and retries the affected cells once, instead
    of surfacing ok=False."""

    def _worker_fleet(self, model, tmp_path, n_cells=8):
        spec = WorkerSpec(
            url="pipe://",
            model=model,
            journal=str(tmp_path / "w{shard}.journal"),
            name="w{shard}",
        )
        fleet = ShardedFleet(2, spec=spec)
        ids = [f"c{k}" for k in range(n_cells)]
        for cid in ids:
            fleet.register_cell(cid)
        return fleet, ids

    @staticmethod
    def _kill_worker(fleet, shard: int) -> None:
        worker = fleet._shards[shard]
        worker._proc.kill()
        worker._proc.wait()

    def test_estimates_survive_a_worker_crash(self, model, tmp_path):
        fleet, ids = self._worker_fleet(model, tmp_path)
        try:
            gateway = SocGateway(fleet, max_batch=len(ids), max_delay_s=10.0)
            self._kill_worker(fleet, 0)
            assert fleet.worker_health() == [False, True]

            async def drive():
                async with gateway:
                    return await asyncio.gather(*(gateway.estimate(cid, 3.7, 1.0, 25.0) for cid in ids))

            completions = asyncio.run(drive())
            assert all(c.ok for c in completions), [c.error for c in completions]
            assert fleet.worker_health() == [True, True]
            assert gateway.stats_dict()["retries"] == 1
            assert gateway.metrics.counter_value("gateway_retries_total") == 1.0
            # the restarted worker restored its cells from its journal
            reference = FleetEngine(default_model=model)
            for cid in ids:
                reference.register_cell(cid)
            expected = reference.estimate(ids, 3.7, 1.0, 25.0)
            by_cell = {c.cell_id: c.value for c in completions}
            for k, cid in enumerate(ids):
                assert by_cell[cid] == pytest.approx(float(expected[k]), abs=1e-12)
        finally:
            fleet.close()

    def test_rollout_survives_a_worker_crash(self, model, tmp_path):
        fleet, ids = self._worker_fleet(model, tmp_path)
        try:
            small = generate_fleet(6, seed=3, **FAST_FLEET)
            assignments = [(cid, cycle) for cid, (_, cycle) in zip(ids[:6], small.assignments())]
            gateway = SocGateway(fleet)
            self._kill_worker(fleet, 1)

            async def drive():
                async with gateway:
                    return await gateway.rollout(assignments, 120.0)

            results = asyncio.run(drive())
            assert set(results) == set(ids[:6])
            assert fleet.worker_health() == [True, True]
            assert gateway.stats_dict()["retries"] == 1
            ref = FleetEngine(default_model=model).rollout_fleet(assignments, 120.0)
            for cid, _ in assignments:
                np.testing.assert_allclose(results[cid].soc_pred, ref[cid].soc_pred, atol=1e-9, rtol=0)
        finally:
            fleet.close()

    def test_unrecoverable_engines_still_surface_errors(self, model):
        """Single engines have no workers to heal: behavior is unchanged."""
        gateway = SocGateway(make_engine(model))
        assert gateway._recover_workers() is False
