"""The "Physics-Only" baseline: Eq. 1 with no learning at all.

This is the configuration the paper plots as *Physics-Only* in Figs. 3
and 4: the predictive branch is replaced by plain Coulomb counting,
using the cell's rated capacity and the expected average current.  It
needs no training data, but it also cannot see voltage or temperature,
so its rollouts drift (Fig. 5) — the motivating contrast for the
hybrid PINN.
"""

from __future__ import annotations

import numpy as np

from ..battery import coulomb
from ..datasets.windowing import PredictionSamples

__all__ = ["PhysicsOnlyModel"]


class PhysicsOnlyModel:
    """Coulomb-counting SoC predictor (no parameters, no training).

    Parameters
    ----------
    capacity_ah:
        Rated capacity used when a sample set does not carry one.
    """

    def __init__(self, capacity_ah: float):
        if capacity_ah <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_ah = capacity_ah

    def predict_soc(self, soc_now, current_avg, temp_avg_c, horizon_s) -> np.ndarray:
        """Eq. 1: ``SoC(t+N) = SoC(t) - I_avg * N / (3600 * Crated)``.

        The temperature argument is accepted (same signature as the
        neural model) but ignored — exactly the deficiency the paper's
        NN compensates for.
        """
        del temp_avg_c  # physics-only ignores temperature
        out = coulomb.predict_soc(soc_now, current_avg, horizon_s, self.capacity_ah)
        return np.atleast_1d(np.asarray(out))

    def predict_samples(self, samples: PredictionSamples, soc_now: np.ndarray | None = None) -> np.ndarray:
        """Predict SoC(t+N) for windowed rows, honoring per-row capacity.

        Parameters
        ----------
        samples:
            Windowed rows.
        soc_now:
            Initial SoC per row.  In the paper's "Physics-Only"
            configuration this is the trained Branch 1's estimate (the
            second branch is replaced by Eq. 1, the first is kept);
            defaults to the dataset's ground truth.
        """
        soc0 = samples.soc_t if soc_now is None else np.asarray(soc_now, dtype=np.float64)
        if len(soc0) != len(samples):
            raise ValueError("soc_now must have one entry per sample row")
        out = np.empty(len(samples))
        for cap in np.unique(samples.capacity_ah):
            mask = samples.capacity_ah == cap
            out[mask] = coulomb.predict_soc(
                soc0[mask], samples.i_avg[mask], samples.horizon_s[mask], float(cap)
            )
        return out

    def rollout_step(self, soc: float, i_avg: float, temp_avg: float, horizon_s: float) -> float:
        """Autoregressive step for :func:`repro.core.rollout.rollout_cycle`."""
        del temp_avg
        return float(coulomb.predict_soc(soc, i_avg, horizon_s, self.capacity_ah))
