"""``repro.baselines`` — every comparison model the paper evaluates against.

- :mod:`repro.baselines.physics_only` — Eq. 1 with no learning (the
  "Physics-Only" bars of Figs. 3/4);
- :mod:`repro.baselines.lstm` — Wong-style LSTM SoC estimator (the
  state-of-the-art row of Table I);
- :mod:`repro.baselines.de_pinn` — Dang-style DE-MLP / DE-LSTM (the
  related-PINN rows of Table I);
- :mod:`repro.baselines.ekf` — extended Kalman filter on a 1-RC model
  (extra physics-based anchor, not in the paper's tables).
"""

from .de_pinn import DEConfig, DEEstimator, DEPairs, make_de_pairs, train_de_estimator
from .ekf import EKFConfig, EKFSoCEstimator
from .lstm import (
    LSTMConfig,
    LSTMSoCEstimator,
    SequenceSamples,
    compact_config,
    make_sequence_samples,
    paper_scale_config,
    train_lstm_estimator,
)
from .physics_only import PhysicsOnlyModel

__all__ = [
    "PhysicsOnlyModel",
    "LSTMConfig",
    "LSTMSoCEstimator",
    "SequenceSamples",
    "make_sequence_samples",
    "train_lstm_estimator",
    "paper_scale_config",
    "compact_config",
    "DEConfig",
    "DEEstimator",
    "DEPairs",
    "make_de_pairs",
    "train_de_estimator",
    "EKFConfig",
    "EKFSoCEstimator",
]
