"""Extended Kalman filter SoC estimator on a 1-RC Thevenin model.

The classic physics-based estimator family the paper cites as category
(2) of SoC methods (e.g. Xiong et al., adaptive EKF).  Not part of the
paper's experimental comparison, but included as an extra baseline: it
shows what a model-based observer achieves on the same synthetic
campaigns with the *true* cell parameters available — an upper bound
for physics-based estimation, and a useful sanity anchor for Branch 1.

State: ``x = [SoC, V1]`` (polarization voltage of one RC branch).
Measurement: terminal voltage ``V = OCV(SoC) - I R0 - V1``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..battery.cell import CellSpec

__all__ = ["EKFConfig", "EKFSoCEstimator"]


@dataclasses.dataclass(frozen=True)
class EKFConfig:
    """Filter tuning.

    Attributes
    ----------
    q_soc, q_v1:
        Process-noise variances for the two states.
    r_voltage:
        Measurement-noise variance of the voltage sensor.
    p0:
        Initial state covariance (diagonal).
    initial_soc:
        Prior SoC when the filter starts blind.
    """

    q_soc: float = 1e-10
    q_v1: float = 1e-6
    r_voltage: float = 1e-4
    p0: float = 0.1
    initial_soc: float = 0.5

    def __post_init__(self):
        if min(self.q_soc, self.q_v1, self.r_voltage, self.p0) <= 0:
            raise ValueError("noise variances must be positive")
        if not 0.0 <= self.initial_soc <= 1.0:
            raise ValueError("initial SoC must be in [0, 1]")


class EKFSoCEstimator:
    """EKF observer over a 1-RC equivalent circuit.

    Parameters
    ----------
    spec:
        The cell's parameters (the filter uses the first RC pair).
    config:
        Filter tuning.
    """

    def __init__(self, spec: CellSpec, config: EKFConfig | None = None):
        if not spec.rc_pairs:
            raise ValueError("EKF needs at least one RC pair in the cell spec")
        self.spec = spec
        self.config = config if config is not None else EKFConfig()
        self.r1, self.c1 = spec.rc_pairs[0]
        self.reset()

    def reset(self, soc: float | None = None) -> None:
        """Reinitialize state and covariance."""
        soc0 = self.config.initial_soc if soc is None else soc
        self.x = np.array([float(soc0), 0.0])
        self.p = np.eye(2) * self.config.p0

    @property
    def soc(self) -> float:
        """Current SoC estimate."""
        return float(self.x[0])

    def _predict(self, current_a: float, dt_s: float) -> None:
        tau = self.r1 * self.c1
        decay = np.exp(-dt_s / tau) if tau > 0 else 0.0
        self.x[0] -= current_a * dt_s / (3600.0 * self.spec.capacity_ah)
        self.x[1] = self.x[1] * decay + self.r1 * current_a * (1.0 - decay)
        f = np.array([[1.0, 0.0], [0.0, decay]])
        q = np.diag([self.config.q_soc, self.config.q_v1])
        self.p = f @ self.p @ f.T + q

    def _update(self, voltage: float, current_a: float) -> None:
        ocv = self.spec.chemistry.ocv
        soc_clamped = float(np.clip(self.x[0], 0.0, 1.0))
        predicted_v = float(ocv(soc_clamped)) - current_a * self.spec.r0_ohm - self.x[1]
        h = np.array([float(ocv.derivative(soc_clamped)), -1.0])
        s = float(h @ self.p @ h) + self.config.r_voltage
        k = (self.p @ h) / s
        self.x = self.x + k * (voltage - predicted_v)
        self.p = (np.eye(2) - np.outer(k, h)) @ self.p

    def step(self, voltage: float, current_a: float, dt_s: float) -> float:
        """One predict/update cycle; returns the new SoC estimate."""
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        self._predict(current_a, dt_s)
        self._update(voltage, current_a)
        self.x[0] = float(np.clip(self.x[0], 0.0, 1.0))
        return self.soc

    def run(self, voltage: np.ndarray, current: np.ndarray, dt_s: float) -> np.ndarray:
        """Filter a whole trace; returns the SoC estimate per sample."""
        voltage = np.asarray(voltage, dtype=np.float64)
        current = np.asarray(current, dtype=np.float64)
        if voltage.shape != current.shape:
            raise ValueError("voltage and current traces must align")
        out = np.empty(len(voltage))
        for k in range(len(voltage)):
            out[k] = self.step(float(voltage[k]), float(current[k]), dt_s)
        return out
