"""Wong-style LSTM SoC estimator — the state-of-the-art row of Table I.

Wong et al. (GoodIT 2021) estimate SoC(t) from a window of past
``(V, I, T)`` samples with stacked LSTM layers and a dense head
(~1M parameters, megabytes of weights, hundreds of millions of
operations per inference).  The paper's comparison (Table I) trains its
2.3k-parameter network on the same data and shows near-identical MAE.

Two configurations are provided:

- :func:`paper_scale_config` — the ~1M-parameter architecture used for
  the Mem/Ops columns (its complexity is computed analytically);
- :func:`compact_config` — a smaller, laptop-trainable variant used to
  obtain the accuracy numbers on the synthetic campaign.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..datasets.base import CycleRecord, CycleSet
from ..datasets.preprocessing import FeatureScaler, branch1_scaler
from ..utils.logging import RunLogger
from ..utils.rng import spawn_seed

__all__ = [
    "LSTMConfig",
    "paper_scale_config",
    "compact_config",
    "SequenceSamples",
    "make_sequence_samples",
    "LSTMSoCEstimator",
    "train_lstm_estimator",
]


@dataclasses.dataclass(frozen=True)
class LSTMConfig:
    """Architecture + training settings for the LSTM baseline.

    Attributes
    ----------
    hidden_size, num_layers, dense_size:
        Network shape (input is always the 3 sensor channels).
    seq_len:
        Window length in *samples* fed to the LSTM.
    sample_stride:
        Spacing (in recorded samples) between consecutive window
        elements — dense 0.1 s data is thinned inside the window.
    epochs, batch_size, lr:
        Training loop settings.
    max_train_rows:
        Cap on training windows (0 disables).
    seed:
        Weight init / shuffling seed.
    """

    hidden_size: int = 64
    num_layers: int = 1
    dense_size: int = 32
    seq_len: int = 30
    sample_stride: int = 10
    epochs: int = 20
    batch_size: int = 64
    lr: float = 3e-3
    max_train_rows: int = 3000
    seed: int = 0

    def __post_init__(self):
        if min(self.hidden_size, self.num_layers, self.dense_size, self.seq_len, self.sample_stride) < 1:
            raise ValueError("architecture/window settings must be positive")
        if self.epochs < 0 or self.batch_size < 1 or self.lr <= 0:
            raise ValueError("invalid training settings")


def paper_scale_config() -> LSTMConfig:
    """The ~1M-parameter architecture of the published SoA baseline.

    Only its *complexity* is evaluated at this scale (Table I's Mem/Ops
    columns); training it on the numpy substrate would be needlessly
    slow.
    """
    return LSTMConfig(hidden_size=256, num_layers=2, dense_size=128, seq_len=300)


def compact_config() -> LSTMConfig:
    """Laptop-trainable variant used for the accuracy rows."""
    return LSTMConfig()


@dataclasses.dataclass
class SequenceSamples:
    """Windowed sequences for the LSTM: ``(n, seq_len, 3)`` + labels."""

    sequences: np.ndarray
    soc: np.ndarray

    def __post_init__(self):
        if self.sequences.ndim != 3 or self.sequences.shape[2] != 3:
            raise ValueError("sequences must be (n, seq_len, 3)")
        if len(self.sequences) != len(self.soc):
            raise ValueError("sequences and labels must align")

    def __len__(self) -> int:
        return len(self.soc)


def make_sequence_samples(
    cycles: CycleSet | list[CycleRecord],
    seq_len: int,
    sample_stride: int = 1,
    window_stride: int = 1,
) -> SequenceSamples:
    """Extract LSTM windows ending at each labelled instant.

    Parameters
    ----------
    cycles:
        Source cycles (measured channels become features).
    seq_len:
        Number of window elements.
    sample_stride:
        Recorded samples between window elements (e.g. 10 turns 0.1 s
        data into 1 s-spaced window elements).
    window_stride:
        Recorded samples between consecutive window *ends*.
    """
    if seq_len < 1 or sample_stride < 1 or window_stride < 1:
        raise ValueError("window parameters must be positive")
    span = (seq_len - 1) * sample_stride
    seq_parts, label_parts = [], []
    for cycle in cycles:
        d = cycle.data
        if len(d) <= span:
            continue
        ends = np.arange(span, len(d), window_stride)
        offsets = np.arange(-span, 1, sample_stride)
        index = ends[:, None] + offsets[None, :]
        features = np.stack([d.voltage[index], d.current[index], d.temp_c[index]], axis=2)
        seq_parts.append(features)
        label_parts.append(d.soc[ends])
    if not seq_parts:
        raise ValueError("no window fits in any cycle")
    return SequenceSamples(np.concatenate(seq_parts), np.concatenate(label_parts))


class LSTMSoCEstimator:
    """LSTM regressor + fixed scaler, with a raw-units inference API."""

    def __init__(self, config: LSTMConfig | None = None, rng: np.random.Generator | None = None):
        self.config = config if config is not None else LSTMConfig()
        rng = rng if rng is not None else np.random.default_rng()
        self.net = nn.LSTMRegressor(
            input_size=3,
            hidden_size=self.config.hidden_size,
            num_layers=self.config.num_layers,
            dense_size=self.config.dense_size,
            rng=rng,
        )
        self.scaler: FeatureScaler = branch1_scaler()

    def estimate(self, sequences: np.ndarray) -> np.ndarray:
        """Estimate SoC for raw ``(n, seq_len, 3)`` windows."""
        scaled = self.scaler.transform(sequences)
        with nn.no_grad():
            out = self.net(nn.Tensor(scaled))
        return out.data[:, 0].copy()

    def num_parameters(self) -> int:
        """Trainable parameter count."""
        return self.net.num_parameters()


def train_lstm_estimator(
    samples: SequenceSamples,
    config: LSTMConfig | None = None,
) -> tuple[LSTMSoCEstimator, RunLogger]:
    """Train the baseline with Adam + MAE (as the original work does)."""
    config = config if config is not None else LSTMConfig()
    model = LSTMSoCEstimator(config, rng=np.random.default_rng(spawn_seed(config.seed, "lstm-init")))
    rng = np.random.default_rng(spawn_seed(config.seed, "lstm-data"))
    features = model.scaler.transform(samples.sequences)
    targets = samples.soc.reshape(-1, 1)
    if config.max_train_rows and len(features) > config.max_train_rows:
        idx = rng.choice(len(features), size=config.max_train_rows, replace=False)
        features, targets = features[idx], targets[idx]
    dataset = nn.TensorDataset(features, targets)
    loader = nn.DataLoader(dataset, batch_size=config.batch_size, shuffle=True, rng=rng)
    optimizer = nn.Adam(model.net.parameters(), lr=config.lr)
    log = RunLogger()
    for epoch in range(config.epochs):
        epoch_loss = 0.0
        for x, y in loader:
            optimizer.zero_grad()
            loss = nn.mae_loss(model.net(nn.Tensor(x)), nn.Tensor(y))
            loss.backward()
            nn.clip_grad_norm(model.net.parameters(), 5.0)
            optimizer.step()
            epoch_loss += loss.item()
        log.log(epoch=epoch, loss=epoch_loss / max(1, len(loader)))
    return model, log
