"""Dang-style differential-equation-informed models (DE-MLP / DE-LSTM).

Dang et al. (IEEE TIM 2024) — the paper's closest related work — train
conventional estimators ``(V, I, T) -> SoC(t)`` whose loss adds the
residual of the first-order battery dynamics

.. math::

    \\frac{dSoC}{dt} = -\\frac{I}{3600\\,C_{rated}}

evaluated with finite differences on consecutive samples.  Table I of
the reproduced paper compares against their DE-MLP and DE-LSTM rows
(MAE 0.177 / 0.129 at 0 C), noting that the two-branch network beats
them chiefly thanks to its moving-average input preprocessing.  To keep
that comparison faithful, these baselines consume the *raw* (unsmoothed)
channels.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..datasets.base import CycleRecord, CycleSet
from ..datasets.preprocessing import branch1_scaler
from ..utils.logging import RunLogger
from ..utils.rng import spawn_seed

__all__ = ["DEConfig", "DEPairs", "make_de_pairs", "DEEstimator", "train_de_estimator"]


@dataclasses.dataclass(frozen=True)
class DEConfig:
    """Architecture + training settings for the DE-informed estimator.

    Attributes
    ----------
    backbone:
        ``"mlp"`` (DE-MLP) or ``"lstm"`` (DE-LSTM).
    hidden:
        Hidden widths (MLP) or hidden size per layer (LSTM uses
        ``hidden[0]`` with ``len(hidden)`` layers).
    seq_len:
        LSTM window length (ignored by the MLP backbone).
    residual_weight:
        Multiplier of the ODE-residual loss term.
    epochs, batch_size, lr, max_train_rows, seed:
        Training loop settings.
    """

    backbone: str = "mlp"
    hidden: tuple[int, ...] = (32, 32)
    seq_len: int = 10
    residual_weight: float = 1.0
    epochs: int = 25
    batch_size: int = 64
    lr: float = 3e-3
    max_train_rows: int = 4000
    seed: int = 0

    def __post_init__(self):
        if self.backbone not in ("mlp", "lstm"):
            raise ValueError("backbone must be 'mlp' or 'lstm'")
        if not self.hidden or any(h < 1 for h in self.hidden):
            raise ValueError("hidden widths must be positive")
        if self.residual_weight < 0:
            raise ValueError("residual weight cannot be negative")


@dataclasses.dataclass
class DEPairs:
    """Consecutive-sample training pairs for the residual loss.

    ``x_now``/``x_next`` are raw ``(V, I, T)`` rows ``dt`` seconds
    apart; the residual constrains the *predicted* SoC difference to
    match Coulomb counting over ``dt``.
    """

    x_now: np.ndarray
    x_next: np.ndarray
    soc_now: np.ndarray
    dt_s: np.ndarray
    capacity_ah: np.ndarray

    def __post_init__(self):
        n = len(self.soc_now)
        if not (len(self.x_now) == len(self.x_next) == len(self.dt_s) == len(self.capacity_ah) == n):
            raise ValueError("all pair columns must align")

    def __len__(self) -> int:
        return len(self.soc_now)


def make_de_pairs(cycles: CycleSet | list[CycleRecord], stride: int = 1) -> DEPairs:
    """Extract consecutive-sample pairs from every cycle."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    xs_now, xs_next, socs, dts, caps = [], [], [], [], []
    for cycle in cycles:
        d = cycle.data
        if len(d) < 2:
            continue
        starts = np.arange(0, len(d) - 1, stride)
        features = np.column_stack([d.voltage, d.current, d.temp_c])
        xs_now.append(features[starts])
        xs_next.append(features[starts + 1])
        socs.append(d.soc[starts])
        dts.append(np.full(len(starts), cycle.sampling_period_s))
        caps.append(np.full(len(starts), cycle.capacity_ah))
    if not xs_now:
        raise ValueError("no pairs could be extracted")
    return DEPairs(
        x_now=np.concatenate(xs_now),
        x_next=np.concatenate(xs_next),
        soc_now=np.concatenate(socs),
        dt_s=np.concatenate(dts),
        capacity_ah=np.concatenate(caps),
    )


class DEEstimator:
    """DE-informed SoC estimator with an MLP or LSTM backbone."""

    def __init__(self, config: DEConfig | None = None, rng: np.random.Generator | None = None):
        self.config = config if config is not None else DEConfig()
        rng = rng if rng is not None else np.random.default_rng()
        self.scaler = branch1_scaler()
        if self.config.backbone == "mlp":
            self.net: nn.Module = nn.MLP(3, hidden=self.config.hidden, out_features=1, rng=rng)
        else:
            self.net = nn.LSTMRegressor(
                input_size=3,
                hidden_size=self.config.hidden[0],
                num_layers=len(self.config.hidden),
                dense_size=max(8, self.config.hidden[0] // 2),
                rng=rng,
            )

    def _forward(self, x_scaled: nn.Tensor) -> nn.Tensor:
        if self.config.backbone == "mlp":
            return self.net(x_scaled)
        # LSTM consumes the single sample as a length-1 sequence
        return self.net(x_scaled.reshape(x_scaled.shape[0], 1, 3))

    def estimate(self, features: np.ndarray) -> np.ndarray:
        """Estimate SoC for raw ``(n, 3)`` sensor rows."""
        scaled = self.scaler.transform(np.atleast_2d(features))
        with nn.no_grad():
            out = self._forward(nn.Tensor(scaled))
        return out.data[:, 0].copy()

    def num_parameters(self) -> int:
        """Trainable parameter count."""
        return self.net.num_parameters()


def train_de_estimator(pairs: DEPairs, config: DEConfig | None = None) -> tuple[DEEstimator, RunLogger]:
    """Train with data MAE + ODE-residual loss (Dang et al.'s recipe).

    Per minibatch of consecutive pairs:

    - data term: ``MAE(f(x_now), soc_now)``;
    - residual term:
      ``MAE(f(x_next) - f(x_now), -I_now * dt / (3600 * C))``.
    """
    config = config if config is not None else DEConfig()
    model = DEEstimator(config, rng=np.random.default_rng(spawn_seed(config.seed, "de-init")))
    rng = np.random.default_rng(spawn_seed(config.seed, "de-data"))

    x_now = model.scaler.transform(pairs.x_now)
    x_next = model.scaler.transform(pairs.x_next)
    soc = pairs.soc_now.reshape(-1, 1)
    delta_phys = (-pairs.x_now[:, 1] * pairs.dt_s / (3600.0 * pairs.capacity_ah)).reshape(-1, 1)

    n = len(soc)
    if config.max_train_rows and n > config.max_train_rows:
        idx = rng.choice(n, size=config.max_train_rows, replace=False)
        x_now, x_next, soc, delta_phys = x_now[idx], x_next[idx], soc[idx], delta_phys[idx]

    dataset = nn.TensorDataset(x_now, x_next, soc, delta_phys)
    loader = nn.DataLoader(dataset, batch_size=config.batch_size, shuffle=True, rng=rng)
    optimizer = nn.Adam(model.net.parameters(), lr=config.lr)
    log = RunLogger()
    for epoch in range(config.epochs):
        data_sum, res_sum = 0.0, 0.0
        for bx_now, bx_next, by, bdelta in loader:
            optimizer.zero_grad()
            pred_now = model._forward(nn.Tensor(bx_now))
            data_loss = nn.mae_loss(pred_now, nn.Tensor(by))
            if config.residual_weight > 0:
                pred_next = model._forward(nn.Tensor(bx_next))
                residual = nn.mae_loss(pred_next - pred_now, nn.Tensor(bdelta))
                loss = data_loss + config.residual_weight * residual
                res_sum += residual.item()
            else:
                loss = data_loss
            loss.backward()
            nn.clip_grad_norm(model.net.parameters(), 5.0)
            optimizer.step()
            data_sum += data_loss.item()
        n_batches = max(1, len(loader))
        log.log(epoch=epoch, loss=data_sum / n_batches, residual=res_sum / n_batches)
    return model, log
