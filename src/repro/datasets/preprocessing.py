"""Preprocessing: causal moving average and fixed feature scaling.

Two pieces of the paper's pipeline live here:

1. The **30 s moving average** applied to the LG dataset's V/I/T
   channels before the network (Sec. IV-B) — the authors credit it for
   beating the DE-MLP/DE-LSTM baselines.  It is *causal* (uses only
   past samples), as an online BMS filter must be.
2. **Feature scaling.**  Scales are fixed physical constants rather
   than statistics fit on the training set: the physics loss evaluates
   the network on randomly generated collocation points whose horizons
   ``Np`` intentionally exceed anything in the data (Sec. III-B), so a
   data-fit scaler would put them out of distribution.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..battery.simulator import SimulationResult
from .base import CycleRecord

__all__ = ["moving_average", "smooth_cycle", "FeatureScaler", "branch1_scaler", "branch2_scaler"]


def moving_average(values: np.ndarray, window_samples: int) -> np.ndarray:
    """Causal moving average: each output is the mean of the trailing window.

    The first ``window_samples - 1`` outputs average the (shorter)
    available prefix, so the output has no startup bias toward zero and
    the same length as the input.

    Parameters
    ----------
    values:
        1-D sample array.
    window_samples:
        Window length in samples (>= 1; 1 is the identity).
    """
    if window_samples < 1:
        raise ValueError("window must be at least one sample")
    x = np.asarray(values, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("moving_average expects a 1-D array")
    if window_samples == 1 or len(x) == 0:
        return x.copy()
    csum = np.cumsum(x)
    out = np.empty_like(x)
    w = window_samples
    out[:w] = csum[:w] / np.arange(1, min(w, len(x)) + 1)
    if len(x) > w:
        out[w:] = (csum[w:] - csum[:-w]) / w
    return out


def smooth_cycle(cycle: CycleRecord, window_s: float) -> CycleRecord:
    """Return a copy of ``cycle`` with V/I/T moving-averaged over ``window_s``.

    Only the *measured* channels are filtered; ground-truth channels
    are passed through untouched (labels must stay exact).
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    w = max(1, int(round(window_s / cycle.sampling_period_s)))
    d = cycle.data
    smoothed = SimulationResult(
        time_s=d.time_s.copy(),
        voltage=moving_average(d.voltage, w),
        current=moving_average(d.current, w),
        temp_c=moving_average(d.temp_c, w),
        soc=d.soc.copy(),
        voltage_true=d.voltage_true.copy(),
        current_true=d.current_true.copy(),
        temp_true=d.temp_true.copy(),
        stopped_early=d.stopped_early,
        stop_reason=d.stop_reason,
    )
    return dataclasses.replace(cycle, data=smoothed, tags={**cycle.tags, "smoothed_s": window_s})


@dataclasses.dataclass(frozen=True)
class FeatureScaler:
    """Affine feature scaling with fixed physical constants.

    ``transform`` maps raw features to roughly unit range via
    ``(x - offset) / scale`` column-wise; ``inverse`` undoes it.
    """

    offsets: tuple[float, ...]
    scales: tuple[float, ...]

    def __post_init__(self):
        if len(self.offsets) != len(self.scales):
            raise ValueError("offsets and scales must have equal length")
        if any(s <= 0 for s in self.scales):
            raise ValueError("scales must be positive")

    @property
    def n_features(self) -> int:
        """Number of feature columns the scaler expects."""
        return len(self.offsets)

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Scale a ``(n, k)`` or ``(k,)`` feature array."""
        arr = np.asarray(x, dtype=np.float64)
        if arr.shape[-1] != self.n_features:
            raise ValueError(f"expected {self.n_features} features, got {arr.shape[-1]}")
        return (arr - np.asarray(self.offsets)) / np.asarray(self.scales)

    def inverse(self, x: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        arr = np.asarray(x, dtype=np.float64)
        if arr.shape[-1] != self.n_features:
            raise ValueError(f"expected {self.n_features} features, got {arr.shape[-1]}")
        return arr * np.asarray(self.scales) + np.asarray(self.offsets)


def branch1_scaler() -> FeatureScaler:
    """Scaler for Branch 1 inputs ``(V, I, T)``.

    Voltage is centred mid-window, current scaled by a typical max
    discharge amplitude, temperature centred at room temperature.
    """
    return FeatureScaler(offsets=(3.4, 0.0, 25.0), scales=(0.8, 5.0, 25.0))


def branch2_scaler(horizon_scale_s: float = 360.0) -> FeatureScaler:
    """Scaler for Branch 2 inputs ``(SoC, I_avg, T_avg, N)``.

    Parameters
    ----------
    horizon_scale_s:
        Normalization constant for the horizon input; chosen per
        dataset as the largest horizon the model will be asked about
        (360 s for Sandia, 70 s for LG — fixed, not data-fit).
    """
    if horizon_scale_s <= 0:
        raise ValueError("horizon scale must be positive")
    return FeatureScaler(offsets=(0.0, 0.0, 25.0, 0.0), scales=(1.0, 5.0, 25.0, horizon_scale_s))
