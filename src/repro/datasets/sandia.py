"""Synthetic reproduction of the Sandia National Lab cycling dataset.

The real dataset (Preger et al., 2020) cycles commercial NCA, NMC and
LFP 18650 cells with constant-current charge/discharge at several rates
and ambient temperatures, sampling every 120 s.  The paper's protocol
(Sec. IV-A):

- **train**: all cycles charged at 0.5C and discharged at 1C;
- **test**:  cycles discharged at 2C and 3C (unseen rates);
- prediction horizon ``N = 120 s`` (the sampling period), with longer
  test horizons built by window-averaging.

This module reruns that exact campaign on the simulated cells.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from ..battery.cell import get_cell_spec
from ..battery.protocols import CycleSpec, run_cc_cycle
from ..battery.simulator import CellSimulator, SensorNoise
from ..utils.rng import spawn_seed
from .base import CycleRecord, CycleSet

__all__ = ["SandiaConfig", "generate_sandia", "cached_sandia"]


@dataclasses.dataclass(frozen=True)
class SandiaConfig:
    """Parameters of the synthetic Sandia campaign.

    Defaults follow the paper: three chemistries, 0.5C charge, 1C
    discharge for training, 2C/3C for testing, ambient 15/25/35 C,
    120 s sampling.

    Attributes
    ----------
    cells:
        Registry names of the cycled cells.
    charge_c_rate:
        CC charge rate for every cycle.
    train_discharge_c_rates / test_discharge_c_rates:
        Discharge rates that define the train/test split.
    ambient_temps_c:
        Ambient temperatures the campaign sweeps.
    cycles_per_condition:
        Fresh cycles per (cell, rate, temperature) combination.
    sampling_period_s:
        Recorded sample spacing (the dataset's 120 s).
    sim_dt_s:
        Internal simulation step.
    noise:
        Sensor-noise magnitudes.
    capacity_factor_range:
        Per-cycle actual-to-rated capacity ratio (Sandia cells are
        aged commercial cells; the paper's Eq. 1 only knows the
        datasheet rating).
    current_gain_sigma:
        Std of the per-cycle current-sensor gain error.
    seed:
        Campaign seed (sensor noise, capacity factors, gain errors).
    """

    cells: tuple[str, ...] = ("sandia-nca", "sandia-nmc", "sandia-lfp")
    charge_c_rate: float = 0.5
    train_discharge_c_rates: tuple[float, ...] = (1.0,)
    test_discharge_c_rates: tuple[float, ...] = (2.0, 3.0)
    ambient_temps_c: tuple[float, ...] = (15.0, 25.0, 35.0)
    cycles_per_condition: int = 1
    sampling_period_s: float = 120.0
    sim_dt_s: float = 1.0
    noise: SensorNoise = SensorNoise()
    capacity_factor_range: tuple[float, float] = (0.84, 0.94)
    current_gain_sigma: float = 0.006
    seed: int = 0

    def __post_init__(self):
        if self.sampling_period_s % self.sim_dt_s != 0:
            raise ValueError("sampling period must be a multiple of the simulation step")
        if self.cycles_per_condition < 1:
            raise ValueError("need at least one cycle per condition")

    @property
    def record_every(self) -> int:
        """Decimation factor between simulation and recorded samples."""
        return int(self.sampling_period_s / self.sim_dt_s)


def generate_sandia(config: SandiaConfig | None = None) -> CycleSet:
    """Run the campaign and return the labelled cycle collection.

    Each recorded cycle is one full charge / rest / discharge / rest
    sequence starting from the discharged state, exactly what the lab
    cycler stored.
    """
    config = config if config is not None else SandiaConfig()
    cycles: list[CycleRecord] = []
    conditions = [
        (rate, "train") for rate in config.train_discharge_c_rates
    ] + [(rate, "test") for rate in config.test_discharge_c_rates]

    for cell_name in config.cells:
        spec = get_cell_spec(cell_name)
        for discharge_rate, split in conditions:
            for ambient in config.ambient_temps_c:
                for k in range(config.cycles_per_condition):
                    stream = f"{cell_name}/{discharge_rate}/{ambient}/{k}"
                    instance_rng = np.random.default_rng(spawn_seed(config.seed, "cell-" + stream))
                    lo, hi = config.capacity_factor_range
                    sim = CellSimulator(
                        spec,
                        noise=config.noise,
                        rng=spawn_seed(config.seed, stream),
                        capacity_factor=float(instance_rng.uniform(lo, hi)),
                        current_gain=float(
                            np.clip(instance_rng.normal(1.0, config.current_gain_sigma), 0.97, 1.03)
                        ),
                    )
                    sim.reset(soc=0.05, temp_c=ambient)
                    recipe = CycleSpec(
                        charge_c_rate=config.charge_c_rate,
                        discharge_c_rate=discharge_rate,
                        ambient_c=ambient,
                        dt_s=config.sim_dt_s,
                        record_every=config.record_every,
                    )
                    trace = run_cc_cycle(sim, recipe)
                    chem = spec.chemistry.name
                    cycles.append(
                        CycleRecord(
                            name=f"{chem}-{discharge_rate:g}C-{ambient:g}C-cycle{k}",
                            split=split,
                            ambient_c=ambient,
                            sampling_period_s=config.sampling_period_s,
                            capacity_ah=spec.capacity_ah,
                            data=trace,
                            tags={
                                "chemistry": chem,
                                "cell": cell_name,
                                "charge_c_rate": config.charge_c_rate,
                                "discharge_c_rate": discharge_rate,
                            },
                        )
                    )
    return CycleSet(cycles)


@functools.lru_cache(maxsize=4)
def cached_sandia(config: SandiaConfig | None = None) -> CycleSet:
    """Memoized :func:`generate_sandia` (configs are frozen/hashable).

    Experiments sweep many model configurations over one campaign; this
    keeps dataset generation out of every training run.
    """
    return generate_sandia(config)
