"""Containers for synthetic dataset campaigns.

A *cycle* is one contiguous recorded trace (a Sandia charge/discharge
cycle or an LG driving cycle); a *campaign* (:class:`CycleSet`) is the
collection of cycles that plays the role of one public dataset, with
train/test split metadata baked in exactly as the paper describes.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from ..battery.simulator import SimulationResult

__all__ = ["CycleRecord", "CycleSet"]


@dataclasses.dataclass
class CycleRecord:
    """One recorded cycle with its provenance.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"nmc-1C-25C-cycle0"`` or
        ``"udds-25C"``).
    split:
        ``"train"`` or ``"test"``.
    ambient_c:
        Ambient temperature of the run.
    sampling_period_s:
        Time between recorded samples.
    capacity_ah:
        Rated capacity of the cycled cell (the :math:`C_{rated}` that
        Eq. 1 uses for this cycle's data).
    data:
        The recorded trace (measured + ground-truth channels).
    tags:
        Free-form metadata (chemistry, C-rates, pattern name, ...).
    """

    name: str
    split: str
    ambient_c: float
    sampling_period_s: float
    capacity_ah: float
    data: SimulationResult
    tags: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        if self.split not in ("train", "test"):
            raise ValueError(f"split must be 'train' or 'test', got {self.split!r}")
        if self.sampling_period_s <= 0:
            raise ValueError("sampling period must be positive")

    def __len__(self) -> int:
        return len(self.data)

    def duration_s(self) -> float:
        """Wall-clock span of the recorded trace."""
        return self.data.duration_s()


class CycleSet:
    """A list of :class:`CycleRecord` with filtering helpers."""

    def __init__(self, cycles: list[CycleRecord]):
        self.cycles = list(cycles)

    def __len__(self) -> int:
        return len(self.cycles)

    def __iter__(self) -> Iterator[CycleRecord]:
        return iter(self.cycles)

    def __getitem__(self, index: int) -> CycleRecord:
        return self.cycles[index]

    def train(self) -> "CycleSet":
        """Cycles marked for training."""
        return self.filter(lambda c: c.split == "train")

    def test(self) -> "CycleSet":
        """Cycles marked for testing."""
        return self.filter(lambda c: c.split == "test")

    def filter(self, predicate: Callable[[CycleRecord], bool]) -> "CycleSet":
        """Subset by arbitrary predicate."""
        return CycleSet([c for c in self.cycles if predicate(c)])

    def by_name(self, name: str) -> CycleRecord:
        """Fetch a single cycle by exact name.

        Raises
        ------
        KeyError
            When no cycle has that name.
        """
        for cycle in self.cycles:
            if cycle.name == name:
                return cycle
        raise KeyError(f"no cycle named {name!r}; have {[c.name for c in self.cycles]}")

    def by_tag(self, key: str, value) -> "CycleSet":
        """Subset of cycles whose ``tags[key] == value``."""
        return self.filter(lambda c: c.tags.get(key) == value)

    def total_samples(self) -> int:
        """Total number of recorded rows across all cycles."""
        return int(sum(len(c) for c in self.cycles))

    def summary(self) -> str:
        """One line per cycle: name, split, temp, length."""
        lines = [
            f"{c.name:<28s} {c.split:<5s} T={c.ambient_c:>6.1f}C  "
            f"n={len(c):>7d}  dur={c.duration_s() / 3600.0:6.2f}h"
            for c in self.cycles
        ]
        return "\n".join(lines)
