"""Synthetic reproduction of the LG (McMaster) LGHG2 dataset.

The real dataset (Kollmeyer et al., 2020) drives a 3 Ah LGHG2 cell with
currents derived from four standard driving schedules (UDDS, HWFET,
LA92, US06) plus eight mixed cycles, sampled at 0.1 s, over a wide
temperature range.  Following the paper (Sec. IV-B):

- **train**: seven of the eight mixed cycles, ambients 0..25 C;
- **test**:  the four single-pattern cycles plus the remaining mixed
  cycle ("MIXED8" in Fig. 5);
- horizons of 30/50/70 s; a 30 s moving average smooths V/I/T before
  the network.

Test cycles are generated at both 25 C (Fig. 4 / Fig. 5) and 0 C
(Table I's cold rows).
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from ..battery.cell import get_cell_spec
from ..battery.simulator import CellSimulator, SensorNoise
from ..utils.rng import make_rng, spawn_seed
from .base import CycleRecord, CycleSet
from .drive_cycles import DRIVE_CYCLES, pattern_current

__all__ = ["LGConfig", "generate_lg", "cached_lg"]

_PATTERNS = ("udds", "hwfet", "la92", "us06")


@dataclasses.dataclass(frozen=True)
class LGConfig:
    """Parameters of the synthetic LG campaign.

    Attributes
    ----------
    cell:
        Registry name of the cell (the 3 Ah LGHG2).
    sampling_period_s:
        Recorded sample spacing (the dataset's 0.1 s).
    n_train_mixed:
        Number of mixed cycles used for training (paper: 7).
    train_temps_c:
        Ambient temperatures assigned round-robin to the training
        cycles (paper: 0 to 25 C).
    test_temps_c:
        Ambients at which every test cycle is generated (25 C for
        Fig. 4/5, plus 0 C for Table I).
    mixed_segment_s:
        Length range of each pattern chunk inside a mixed cycle.
    initial_soc:
        Start-of-cycle SoC (cycles begin from a full cell).
    test_patterns:
        Which test cycles to generate (subset for fast test suites).
    noise:
        Sensor-noise magnitudes (visible at 0.1 s sampling).
    capacity_factor_range:
        Per-cycle actual-to-rated capacity ratio (even a fresh cell
        rarely delivers its exact datasheet capacity; Eq. 1 only knows
        the rating).
    current_gain_sigma:
        Std of the per-cycle current-sensor gain error.
    seed:
        Campaign seed (drive-profile synthesis + sensor noise).
    """

    cell: str = "lg-hg2"
    sampling_period_s: float = 0.1
    n_train_mixed: int = 7
    train_temps_c: tuple[float, ...] = (0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 25.0)
    test_temps_c: tuple[float, ...] = (25.0, 0.0)
    mixed_segment_s: tuple[float, float] = (300.0, 900.0)
    initial_soc: float = 1.0
    test_patterns: tuple[str, ...] = ("udds", "hwfet", "la92", "us06", "mixed")
    noise: SensorNoise = SensorNoise()
    capacity_factor_range: tuple[float, float] = (0.84, 0.90)
    current_gain_sigma: float = 0.006
    seed: int = 0

    def __post_init__(self):
        if self.n_train_mixed < 1:
            raise ValueError("need at least one training cycle")
        if len(self.train_temps_c) < self.n_train_mixed:
            raise ValueError("need one training temperature per mixed cycle")
        known = set(_PATTERNS) | {"mixed"}
        if not set(self.test_patterns) <= known:
            raise ValueError(f"test_patterns must be a subset of {sorted(known)}")


def _mixed_current(config: LGConfig, capacity_ah: float, max_c: float, rng: np.random.Generator) -> np.ndarray:
    """Concatenate random chunks of the four patterns until the total
    charge suffices to empty a full cell (the simulator stops at the
    voltage cutoff anyway)."""
    dt = config.sampling_period_s
    needed_coulombs = 1.15 * capacity_ah * 3600.0
    chunks: list[np.ndarray] = []
    total = 0.0
    lo, hi = config.mixed_segment_s
    while total < needed_coulombs:
        pattern = _PATTERNS[rng.integers(len(_PATTERNS))]
        seg_duration = float(rng.uniform(lo, hi))
        seg = pattern_current(
            pattern, capacity_ah, seg_duration, rng=rng, dt_s=dt, max_discharge_c=max_c
        )
        chunks.append(seg)
        total += float(np.sum(np.maximum(seg, 0.0))) * dt
    return np.concatenate(chunks)


def _single_pattern_current(
    config: LGConfig, pattern: str, capacity_ah: float, max_c: float, rng: np.random.Generator
) -> np.ndarray:
    """A single-pattern profile long enough to empty a full cell."""
    dt = config.sampling_period_s
    c_rate = DRIVE_CYCLES[pattern].target_c_rate
    duration = 1.2 * 3600.0 / c_rate  # margin past the nominal discharge time
    return pattern_current(pattern, capacity_ah, duration, rng=rng, dt_s=dt, max_discharge_c=max_c)


def generate_lg(config: LGConfig | None = None) -> CycleSet:
    """Run the campaign and return the labelled cycle collection."""
    config = config if config is not None else LGConfig()
    spec = get_cell_spec(config.cell)
    max_c = spec.max_discharge_c
    dt = config.sampling_period_s
    cycles: list[CycleRecord] = []

    def _make_sim(stream: str) -> CellSimulator:
        instance_rng = make_rng(spawn_seed(config.seed, "cell-" + stream))
        lo, hi = config.capacity_factor_range
        return CellSimulator(
            spec,
            noise=config.noise,
            rng=spawn_seed(config.seed, "noise-" + stream),
            capacity_factor=float(instance_rng.uniform(lo, hi)),
            current_gain=float(np.clip(instance_rng.normal(1.0, config.current_gain_sigma), 0.97, 1.03)),
        )

    # --- training: mixed cycles at assorted temperatures -------------
    for k in range(config.n_train_mixed):
        ambient = config.train_temps_c[k]
        profile_rng = make_rng(spawn_seed(config.seed, f"mixed-train-{k}"))
        profile = _mixed_current(config, spec.capacity_ah, max_c, profile_rng)
        sim = _make_sim(f"train-{k}")
        sim.reset(soc=config.initial_soc, temp_c=ambient)
        trace = sim.run_profile(profile, dt, ambient, cutoff="discharge")
        cycles.append(
            CycleRecord(
                name=f"mixed{k + 1}-{ambient:g}C",
                split="train",
                ambient_c=ambient,
                sampling_period_s=dt,
                capacity_ah=spec.capacity_ah,
                data=trace,
                tags={"pattern": "mixed", "index": k + 1},
            )
        )

    # --- test: the four driving patterns + the held-out mixed cycle --
    for ambient in config.test_temps_c:
        for pattern in config.test_patterns:
            stream = f"{pattern}-test-{ambient:g}"
            profile_rng = make_rng(spawn_seed(config.seed, stream))
            if pattern == "mixed":
                profile = _mixed_current(config, spec.capacity_ah, max_c, profile_rng)
                name = f"mixed8-{ambient:g}C"
            else:
                profile = _single_pattern_current(config, pattern, spec.capacity_ah, max_c, profile_rng)
                name = f"{pattern}-{ambient:g}C"
            sim = _make_sim(stream)
            sim.reset(soc=config.initial_soc, temp_c=ambient)
            trace = sim.run_profile(profile, dt, ambient, cutoff="discharge")
            cycles.append(
                CycleRecord(
                    name=name,
                    split="test",
                    ambient_c=ambient,
                    sampling_period_s=dt,
                    capacity_ah=spec.capacity_ah,
                    data=trace,
                    tags={"pattern": pattern, "index": 8 if pattern == "mixed" else None},
                )
            )
    return CycleSet(cycles)


@functools.lru_cache(maxsize=2)
def cached_lg(config: LGConfig | None = None) -> CycleSet:
    """Memoized :func:`generate_lg` (configs are frozen/hashable)."""
    return generate_lg(config)
