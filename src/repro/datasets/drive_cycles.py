"""Synthetic standard-drive-cycle current profiles.

The LG dataset stimulates the cell with currents derived from four
standard dynamometer driving schedules — UDDS, HWFET, LA92 and US06 —
plus mixtures of them.  The real speed traces are not redistributable
here, so this module synthesizes speed profiles with each schedule's
published macro-statistics (mean/max speed, stop density, acceleration
aggressiveness), converts them to traction power with a longitudinal
vehicle model, and scales the resulting cell current so each pattern
empties the cell over roughly the duration seen in the paper's Fig. 5.

The essential properties for the reproduction are preserved: currents
vary strongly within a cycle (unlike Sandia's constant currents), each
pattern has a distinct temporal signature (urban stop-and-go versus
steady highway), and regenerative braking injects charge back.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..utils.rng import make_rng

__all__ = ["DriveCycleSpec", "DRIVE_CYCLES", "synthesize_speed", "speed_to_cell_current", "pattern_current"]

_G = 9.81
_RHO_AIR = 1.2


@dataclasses.dataclass(frozen=True)
class DriveCycleSpec:
    """Macro-statistics of one driving schedule.

    Attributes
    ----------
    name:
        Schedule identifier.
    mean_speed_kmh, max_speed_kmh:
        Published schedule statistics the synthesizer targets.
    stop_fraction:
        Fraction of time spent at standstill.
    accel_ms2:
        Typical acceleration magnitude (aggressiveness).
    segment_s:
        Mean duration of one micro-trip (accelerate/cruise/brake/idle).
    target_c_rate:
        Net average discharge C-rate the scaled current should hit;
        controls how long a full discharge takes (paper Fig. 5: UDDS
        ~16000 s, LA92 ~9000 s, US06 ~3000 s on the 3 Ah cell).
    """

    name: str
    mean_speed_kmh: float
    max_speed_kmh: float
    stop_fraction: float
    accel_ms2: float
    segment_s: float
    target_c_rate: float


DRIVE_CYCLES: dict[str, DriveCycleSpec] = {
    "udds": DriveCycleSpec("udds", 31.5, 91.2, 0.19, 0.9, 70.0, 0.22),
    "hwfet": DriveCycleSpec("hwfet", 77.7, 96.4, 0.01, 0.4, 180.0, 0.50),
    "la92": DriveCycleSpec("la92", 39.6, 108.1, 0.16, 1.3, 60.0, 0.40),
    "us06": DriveCycleSpec("us06", 77.9, 129.2, 0.07, 2.0, 90.0, 1.15),
}


@dataclasses.dataclass(frozen=True)
class VehicleModel:
    """Longitudinal vehicle dynamics + powertrain scaling.

    Defaults model a compact EV whose pack is built from cells like the
    LGHG2; only the *shape* of the power demand matters because the
    final current is rescaled to the pattern's target C-rate.
    """

    mass_kg: float = 1600.0
    cd_a: float = 0.65
    crr: float = 0.011
    drivetrain_eff: float = 0.9
    regen_eff: float = 0.6
    max_regen_c: float = 1.0


def synthesize_speed(
    spec: DriveCycleSpec,
    duration_s: float,
    rng: np.random.Generator | int | None = None,
    dt_s: float = 1.0,
) -> np.ndarray:
    """Generate a speed trace (m/s) with the schedule's macro-statistics.

    The trace is a chain of micro-trips: idle, accelerate to a sampled
    target speed, cruise with small fluctuations, brake back down.

    Parameters
    ----------
    spec:
        Which schedule to imitate.
    duration_s:
        Length of the returned trace.
    rng:
        Seed or generator for reproducibility.
    dt_s:
        Sample period of the returned trace.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and dt must be positive")
    gen = make_rng(rng)
    n = int(np.ceil(duration_s / dt_s))
    speed = np.zeros(n)
    v_max = spec.max_speed_kmh / 3.6
    # moving-speed target: the published mean includes standstill time
    v_moving = min(v_max * 0.85, spec.mean_speed_kmh / 3.6 / max(0.05, 1.0 - spec.stop_fraction))
    p_stop = min(0.9, 2.5 * spec.stop_fraction + 0.1)
    k = 0
    v = 0.0
    while k < n:
        target = float(np.clip(gen.normal(v_moving, 0.35 * v_moving), 2.0, v_max))
        accel = spec.accel_ms2 * float(gen.uniform(0.7, 1.3))
        brake = spec.accel_ms2 * float(gen.uniform(1.0, 1.8))
        # accelerate (or slow) toward the target
        while k < n and abs(v - target) > accel * dt_s:
            v += np.sign(target - v) * accel * dt_s
            speed[k] = v
            k += 1
        # cruise with jitter; cap the exponential tail so a single trip
        # cannot swallow the whole trace
        cruise = int(np.clip(gen.exponential(spec.segment_s), 0.3 * spec.segment_s, 3.0 * spec.segment_s) / dt_s)
        for _ in range(max(1, cruise)):
            if k >= n:
                break
            v = float(np.clip(v + gen.normal(0.0, 0.3), 0.5 * target, v_max))
            speed[k] = v
            k += 1
        # decide between a full stop and a partial slowdown
        to_zero = gen.random() < p_stop
        floor = 0.0 if to_zero else float(gen.uniform(0.3, 0.7)) * v
        trip_time = target / accel + cruise * dt_s + target / brake
        while k < n and v > floor:
            v = max(floor, v - brake * dt_s)
            speed[k] = v
            k += 1
        if to_zero and spec.stop_fraction > 0:
            # idle long enough that idles occupy ~stop_fraction of the trace
            idle_mean = spec.stop_fraction * trip_time / (p_stop * (1.0 - spec.stop_fraction))
            idle = max(1, int(gen.exponential(idle_mean) / dt_s))
            stop = min(n, k + idle)
            speed[k:stop] = 0.0
            k = stop
            v = 0.0
    return speed


def speed_to_cell_current(
    speed_ms: np.ndarray,
    capacity_ah: float,
    target_c_rate: float,
    vehicle: VehicleModel | None = None,
    dt_s: float = 1.0,
    max_discharge_c: float = 5.0,
) -> np.ndarray:
    """Convert a speed trace to a per-cell current trace (A).

    Traction power follows the standard longitudinal model
    ``P = m a v + 0.5 rho CdA v^3 + Crr m g v``; positive power maps to
    discharge current, braking power to (efficiency-limited) regen
    charge current.  The final trace is scaled so its *net mean* equals
    ``target_c_rate`` times the cell capacity, which fixes the full
    discharge duration.

    Returns
    -------
    numpy.ndarray
        Cell current samples, positive = discharge.
    """
    if capacity_ah <= 0 or target_c_rate <= 0:
        raise ValueError("capacity and target C-rate must be positive")
    veh = vehicle if vehicle is not None else VehicleModel()
    v = np.asarray(speed_ms, dtype=np.float64)
    a = np.gradient(v, dt_s)
    p_inertia = veh.mass_kg * a * v
    p_aero = 0.5 * _RHO_AIR * veh.cd_a * v**3
    p_roll = veh.crr * veh.mass_kg * _G * v
    p_wheel = p_inertia + p_aero + p_roll
    # wheel power -> battery power, with asymmetric efficiency
    p_batt = np.where(p_wheel >= 0, p_wheel / veh.drivetrain_eff, p_wheel * veh.regen_eff)
    # shape only: normalize so the net mean matches the target C-rate
    mean_p = float(np.mean(p_batt))
    if mean_p <= 0:
        raise ValueError("speed profile has non-positive net power; cannot scale")
    target_mean = target_c_rate * capacity_ah
    low = -veh.max_regen_c * capacity_ah
    high = max_discharge_c * capacity_ah
    scaled = p_batt * (target_mean / mean_p)
    # clipping to cell limits shifts the mean; iterate the scale factor
    # so the *clipped* trace hits the target net rate
    current = np.clip(scaled, low, high)
    for _ in range(10):
        mean_now = float(np.mean(current))
        if abs(mean_now - target_mean) <= 0.005 * target_mean or mean_now <= 0:
            break
        scaled = scaled * (target_mean / mean_now)
        current = np.clip(scaled, low, high)
    return current


def pattern_current(
    pattern: str,
    capacity_ah: float,
    duration_s: float,
    rng: np.random.Generator | int | None = None,
    dt_s: float = 1.0,
    max_discharge_c: float = 5.0,
) -> np.ndarray:
    """Synthesize the cell-current trace of one named driving pattern.

    Convenience composition of :func:`synthesize_speed` and
    :func:`speed_to_cell_current` using the registry statistics.

    Raises
    ------
    KeyError
        For unknown pattern names.
    """
    key = pattern.lower()
    if key not in DRIVE_CYCLES:
        raise KeyError(f"unknown drive cycle {pattern!r}; known: {sorted(DRIVE_CYCLES)}")
    spec = DRIVE_CYCLES[key]
    gen = make_rng(rng)
    # Short segments of stop-heavy schedules can come out all-idle, which
    # cannot be scaled to a positive net discharge; resynthesize in that case.
    last_error: ValueError | None = None
    for _ in range(8):
        speed = synthesize_speed(spec, duration_s, rng=gen, dt_s=dt_s)
        try:
            return speed_to_cell_current(
                speed,
                capacity_ah,
                spec.target_c_rate,
                dt_s=dt_s,
                max_discharge_c=max_discharge_c,
            )
        except ValueError as err:
            last_error = err
    raise ValueError(f"could not synthesize a driveable {pattern!r} segment: {last_error}")
