"""Sample extraction: turning recorded cycles into training/test rows.

Two sample shapes exist, one per network branch (paper Sec. III-A):

- **estimation samples** for Branch 1: ``(V(t), I(t), T(t)) -> SoC(t)``;
- **prediction samples** for Branch 2 / the full model:
  ``(SoC(t), I_avg(t..t+N), T_avg(t..t+N), N) -> SoC(t+N)``.

Longer-horizon test sets are built exactly as the paper describes
(Sec. IV-A): sliding windows over the recorded samples, averaging
current and temperature inside the window, with the window-final SoC
as the target.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .base import CycleRecord, CycleSet

__all__ = ["EstimationSamples", "PredictionSamples", "make_estimation_samples", "make_prediction_samples"]


@dataclasses.dataclass
class EstimationSamples:
    """Row-wise samples for the SoC-estimation branch.

    ``features`` columns are ``(V, I, T)`` as measured; ``soc`` is the
    ground-truth label.
    """

    features: np.ndarray
    soc: np.ndarray

    def __post_init__(self):
        if len(self.features) != len(self.soc):
            raise ValueError("features and labels must align")
        if self.features.ndim != 2 or self.features.shape[1] != 3:
            raise ValueError("features must be (n, 3): V, I, T")

    def __len__(self) -> int:
        return len(self.soc)

    @staticmethod
    def concatenate(parts: list["EstimationSamples"]) -> "EstimationSamples":
        """Pool several sample sets into one."""
        if not parts:
            raise ValueError("nothing to concatenate")
        return EstimationSamples(
            features=np.concatenate([p.features for p in parts]),
            soc=np.concatenate([p.soc for p in parts]),
        )


@dataclasses.dataclass
class PredictionSamples:
    """Row-wise samples for SoC prediction over a horizon.

    Attributes
    ----------
    v_t, i_t, temp_t:
        Measured channels at the window start (Branch 1's inputs when
        the full cascade is evaluated).
    soc_t:
        Ground-truth SoC at the window start (fed to Branch 2 during
        training, per the paper's split-training scheme).
    i_avg, temp_avg:
        Averages of the measured current/temperature over the window —
        the "expected workload" inputs of Branch 2.
    horizon_s:
        The window length ``N`` in seconds.
    soc_target:
        Ground-truth SoC at the window end (the label).
    capacity_ah:
        Rated capacity of the cycled cell (per-sample, so mixed-cell
        campaigns keep Eq. 1 exact).
    """

    v_t: np.ndarray
    i_t: np.ndarray
    temp_t: np.ndarray
    soc_t: np.ndarray
    i_avg: np.ndarray
    temp_avg: np.ndarray
    horizon_s: np.ndarray
    soc_target: np.ndarray
    capacity_ah: np.ndarray

    def __post_init__(self):
        lengths = {
            len(self.v_t), len(self.i_t), len(self.temp_t), len(self.soc_t),
            len(self.i_avg), len(self.temp_avg), len(self.horizon_s),
            len(self.soc_target), len(self.capacity_ah),
        }
        if len(lengths) != 1:
            raise ValueError("all sample columns must have equal length")

    def __len__(self) -> int:
        return len(self.soc_t)

    def branch2_features(self) -> np.ndarray:
        """Stack the ``(SoC(t), I_avg, T_avg, N)`` input matrix."""
        return np.column_stack([self.soc_t, self.i_avg, self.temp_avg, self.horizon_s])

    def branch1_features(self) -> np.ndarray:
        """Stack the ``(V(t), I(t), T(t))`` input matrix."""
        return np.column_stack([self.v_t, self.i_t, self.temp_t])

    @staticmethod
    def concatenate(parts: list["PredictionSamples"]) -> "PredictionSamples":
        """Pool several sample sets into one."""
        if not parts:
            raise ValueError("nothing to concatenate")
        fields = [f.name for f in dataclasses.fields(PredictionSamples)]
        return PredictionSamples(**{
            name: np.concatenate([getattr(p, name) for p in parts]) for name in fields
        })

    def subsample(self, max_rows: int, rng: np.random.Generator) -> "PredictionSamples":
        """Random subset of at most ``max_rows`` rows (without replacement)."""
        if max_rows <= 0:
            raise ValueError("max_rows must be positive")
        n = len(self)
        if n <= max_rows:
            return self
        idx = np.sort(rng.choice(n, size=max_rows, replace=False))
        fields = [f.name for f in dataclasses.fields(PredictionSamples)]
        return PredictionSamples(**{name: getattr(self, name)[idx] for name in fields})


def _as_cycles(cycles: CycleSet | list[CycleRecord]) -> list[CycleRecord]:
    return list(cycles)


def make_estimation_samples(cycles: CycleSet | list[CycleRecord], stride: int = 1) -> EstimationSamples:
    """Extract Branch-1 rows from every cycle.

    Parameters
    ----------
    cycles:
        Source cycles (measured channels become features).
    stride:
        Keep every ``stride``-th sample (dense 0.1 s data needs thinning).
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    parts = []
    for cycle in _as_cycles(cycles):
        d = cycle.data
        if len(d) == 0:
            continue
        sl = slice(None, None, stride)
        parts.append(
            EstimationSamples(
                features=np.column_stack([d.voltage[sl], d.current[sl], d.temp_c[sl]]),
                soc=d.soc[sl].copy(),
            )
        )
    if not parts:
        raise ValueError("no samples could be extracted")
    return EstimationSamples.concatenate(parts)


def make_prediction_samples(
    cycles: CycleSet | list[CycleRecord],
    horizon_s: float,
    stride: int = 1,
) -> PredictionSamples:
    """Extract windowed Branch-2 rows at a fixed horizon.

    For each window start ``k`` the sample carries measured values at
    ``k``, averages of measured current/temperature over
    ``(k, k + N]``, and the true SoC at ``k + N`` as the label —
    the construction of the paper's test sets (Sec. IV-A).

    Parameters
    ----------
    cycles:
        Source cycles.
    horizon_s:
        The horizon ``N``; must be at least one sampling period.  It is
        rounded to whole samples per cycle, and the *actual* rounded
        horizon is stored in the output.
    stride:
        Spacing between consecutive window starts, in samples.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    parts = []
    for cycle in _as_cycles(cycles):
        d = cycle.data
        steps = int(round(horizon_s / cycle.sampling_period_s))
        if steps < 1:
            raise ValueError(
                f"horizon {horizon_s}s is below the sampling period {cycle.sampling_period_s}s"
            )
        n = len(d) - steps
        if n <= 0:
            continue
        starts = np.arange(0, n, stride)
        actual_horizon = steps * cycle.sampling_period_s
        # Trailing-window means via cumulative sums: mean over (k, k+steps].
        csum_i = np.concatenate([[0.0], np.cumsum(d.current)])
        csum_t = np.concatenate([[0.0], np.cumsum(d.temp_c)])
        i_avg = (csum_i[starts + steps + 1] - csum_i[starts + 1]) / steps
        t_avg = (csum_t[starts + steps + 1] - csum_t[starts + 1]) / steps
        parts.append(
            PredictionSamples(
                v_t=d.voltage[starts].copy(),
                i_t=d.current[starts].copy(),
                temp_t=d.temp_c[starts].copy(),
                soc_t=d.soc[starts].copy(),
                i_avg=i_avg,
                temp_avg=t_avg,
                horizon_s=np.full(len(starts), actual_horizon),
                soc_target=d.soc[starts + steps].copy(),
                capacity_ah=np.full(len(starts), cycle.capacity_ah),
            )
        )
    if not parts:
        raise ValueError("no samples could be extracted (cycles shorter than the horizon?)")
    return PredictionSamples.concatenate(parts)
