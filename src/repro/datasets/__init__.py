"""``repro.datasets`` — synthetic reproductions of the paper's datasets.

- :mod:`repro.datasets.base` — cycle containers and splits;
- :mod:`repro.datasets.drive_cycles` — UDDS/HWFET/LA92/US06 current
  synthesis (speed statistics -> vehicle model -> cell current);
- :mod:`repro.datasets.sandia` — constant-current cycling campaign
  (train 0.5C/-1C, test -2C/-3C, 120 s sampling);
- :mod:`repro.datasets.lg` — drive-cycle campaign on the 3 Ah cell
  (7 mixed train cycles, 4 pattern + 1 mixed test cycles, 0.1 s
  sampling);
- :mod:`repro.datasets.preprocessing` — causal moving average and fixed
  feature scaling;
- :mod:`repro.datasets.windowing` — Branch-1/Branch-2 sample extraction
  with sliding-window horizons.
"""

from .base import CycleRecord, CycleSet
from .drive_cycles import (
    DRIVE_CYCLES,
    DriveCycleSpec,
    VehicleModel,
    pattern_current,
    speed_to_cell_current,
    synthesize_speed,
)
from .lg import LGConfig, cached_lg, generate_lg
from .preprocessing import FeatureScaler, branch1_scaler, branch2_scaler, moving_average, smooth_cycle
from .sandia import SandiaConfig, cached_sandia, generate_sandia
from .windowing import (
    EstimationSamples,
    PredictionSamples,
    make_estimation_samples,
    make_prediction_samples,
)

__all__ = [
    "CycleRecord",
    "CycleSet",
    "DriveCycleSpec",
    "DRIVE_CYCLES",
    "VehicleModel",
    "synthesize_speed",
    "speed_to_cell_current",
    "pattern_current",
    "SandiaConfig",
    "generate_sandia",
    "cached_sandia",
    "LGConfig",
    "generate_lg",
    "cached_lg",
    "moving_average",
    "smooth_cycle",
    "FeatureScaler",
    "branch1_scaler",
    "branch2_scaler",
    "EstimationSamples",
    "PredictionSamples",
    "make_estimation_samples",
    "make_prediction_samples",
]
