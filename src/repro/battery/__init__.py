"""``repro.battery`` — equivalent-circuit battery simulation substrate.

Stands in for the physical cells behind the paper's two datasets.  The
stack, bottom-up:

- :mod:`repro.battery.chemistry` — analytic OCV-vs-SoC curves (NCA,
  NMC, LFP) with exact derivatives;
- :mod:`repro.battery.cell` — cell parameter registry (Sandia 18650s,
  LG HG2);
- :mod:`repro.battery.ecm` — Thevenin model with temperature- and
  SoC-dependent parameters;
- :mod:`repro.battery.thermal` — lumped thermal node with Joule
  self-heating;
- :mod:`repro.battery.coulomb` — Coulomb counting (the paper's Eq. 1);
- :mod:`repro.battery.simulator` — time-stepped runs with sensor noise;
- :mod:`repro.battery.protocols` — CC cycling recipes (lab cycler).
"""

from . import coulomb
from .aging import AgingModel, aged_spec
from .cell import CELL_SPECS, CellSpec, get_cell_spec
from .chemistry import CHEMISTRIES, Chemistry, OCVCurve, OCVTerm, get_chemistry
from .ecm import ECMState, TheveninModel
from .protocols import CycleSpec, run_cc_cycle, run_full_discharge
from .simulator import CellSimulator, SensorNoise, SimulationResult
from .thermal import LumpedThermalModel

__all__ = [
    "coulomb",
    "AgingModel",
    "aged_spec",
    "Chemistry",
    "OCVCurve",
    "OCVTerm",
    "CHEMISTRIES",
    "get_chemistry",
    "CellSpec",
    "CELL_SPECS",
    "get_cell_spec",
    "ECMState",
    "TheveninModel",
    "LumpedThermalModel",
    "CellSimulator",
    "SensorNoise",
    "SimulationResult",
    "CycleSpec",
    "run_cc_cycle",
    "run_full_discharge",
]
