"""Lumped-parameter thermal model for a single cell.

Cell temperature matters to the paper's task twice: it is one of the
three measured inputs of Branch 1, and the datasets sweep wide ambient
ranges (15-35 C for Sandia, -20..+40 C for LG).  A single thermal mass
with Joule self-heating and convective exchange with ambient reproduces
the first-order coupling between load current and measured temperature.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LumpedThermalModel"]


class LumpedThermalModel:
    """Single-node thermal model.

    .. math::

        m c_p \\frac{dT}{dt} = P_{loss} - h (T - T_{amb})

    where ``P_loss`` is the resistive dissipation reported by the
    electrical model.

    Parameters
    ----------
    mass_kg:
        Cell mass.
    cp_j_per_kg_k:
        Specific heat capacity.
    h_w_per_k:
        Effective convective conductance to ambient (W/K).
    initial_temp_c:
        Starting cell temperature (defaults to ambient at reset).
    """

    def __init__(self, mass_kg: float, cp_j_per_kg_k: float, h_w_per_k: float, initial_temp_c: float = 25.0):
        if mass_kg <= 0 or cp_j_per_kg_k <= 0 or h_w_per_k < 0:
            raise ValueError("thermal parameters must be positive (h may be zero)")
        self.mass_kg = mass_kg
        self.cp = cp_j_per_kg_k
        self.h = h_w_per_k
        self.temp_c = float(initial_temp_c)

    @property
    def heat_capacity(self) -> float:
        """Total heat capacity (J/K)."""
        return self.mass_kg * self.cp

    def reset(self, temp_c: float) -> None:
        """Set the cell temperature (typically to ambient before a run)."""
        self.temp_c = float(temp_c)

    def step(self, power_loss_w: float, ambient_c: float, dt_s: float) -> float:
        """Advance the temperature by ``dt_s`` seconds and return it.

        Uses an exact exponential update for the linear relaxation part
        so large timesteps remain stable:

        ``T' = T_inf + (T - T_inf) * exp(-h*dt/(m*cp))`` with
        ``T_inf = T_amb + P/h`` (or pure integration when ``h == 0``).
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        if power_loss_w < 0:
            raise ValueError("power loss cannot be negative")
        if self.h == 0.0:
            self.temp_c += power_loss_w * dt_s / self.heat_capacity
            return self.temp_c
        t_inf = ambient_c + power_loss_w / self.h
        decay = np.exp(-self.h * dt_s / self.heat_capacity)
        self.temp_c = t_inf + (self.temp_c - t_inf) * decay
        return self.temp_c

    def steady_state(self, power_loss_w: float, ambient_c: float) -> float:
        """Equilibrium temperature for a constant dissipation."""
        if self.h == 0.0:
            raise ZeroDivisionError("no steady state without convection")
        return ambient_c + power_loss_w / self.h
