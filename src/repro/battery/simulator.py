"""Time-stepped cell simulator: ECM + thermal model + sensor noise.

This is the stand-in for the physical cells and lab cyclers behind the
Sandia and LG datasets.  It produces exactly what those datasets
contain: sampled traces of measured voltage, current and temperature
together with the ground-truth SoC that lab equipment derives from
precise coulomb integration.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..utils.rng import make_rng
from .cell import CellSpec
from .ecm import TheveninModel
from .thermal import LumpedThermalModel

__all__ = ["SensorNoise", "SimulationResult", "CellSimulator"]


@dataclasses.dataclass(frozen=True)
class SensorNoise:
    """Gaussian measurement-noise magnitudes for the three sensors.

    The LG dataset's fine 0.1 s sampling shows visible sensor noise —
    the reason the paper adds a 30 s moving average before the network
    (Sec. IV-B).  Defaults are typical BMS front-end figures.
    """

    sigma_v: float = 0.004
    sigma_i: float = 0.020
    sigma_t: float = 0.15

    @staticmethod
    def none() -> "SensorNoise":
        """Noise-free sensors (useful for exact-physics tests)."""
        return SensorNoise(0.0, 0.0, 0.0)


@dataclasses.dataclass
class SimulationResult:
    """Sampled output of one simulator run.

    All arrays share the same length.  ``voltage``/``current``/``temp``
    are the *measured* (noisy) channels the networks see; the ``*_true``
    channels are the clean ground truth used for labels and invariants.
    """

    time_s: np.ndarray
    voltage: np.ndarray
    current: np.ndarray
    temp_c: np.ndarray
    soc: np.ndarray
    voltage_true: np.ndarray
    current_true: np.ndarray
    temp_true: np.ndarray
    stopped_early: bool = False
    stop_reason: str = ""

    def __len__(self) -> int:
        return len(self.time_s)

    def duration_s(self) -> float:
        """Elapsed time covered by the trace."""
        return float(self.time_s[-1] - self.time_s[0]) if len(self) else 0.0

    def concat(self, other: "SimulationResult") -> "SimulationResult":
        """Append another result (time offset so the axis stays monotonic)."""
        if len(self) == 0:
            return other
        offset = self.time_s[-1] + (self.time_s[1] - self.time_s[0] if len(self) > 1 else 1.0)
        return SimulationResult(
            time_s=np.concatenate([self.time_s, other.time_s + offset]),
            voltage=np.concatenate([self.voltage, other.voltage]),
            current=np.concatenate([self.current, other.current]),
            temp_c=np.concatenate([self.temp_c, other.temp_c]),
            soc=np.concatenate([self.soc, other.soc]),
            voltage_true=np.concatenate([self.voltage_true, other.voltage_true]),
            current_true=np.concatenate([self.current_true, other.current_true]),
            temp_true=np.concatenate([self.temp_true, other.temp_true]),
            stopped_early=other.stopped_early,
            stop_reason=other.stop_reason,
        )


class CellSimulator:
    """Drives a :class:`TheveninModel` plus thermal model over time.

    Parameters
    ----------
    spec:
        The cell to simulate.
    noise:
        Sensor-noise magnitudes (default: realistic BMS noise).
    rng:
        Generator for the noise streams (deterministic campaigns).
    capacity_factor:
        Actual-to-rated capacity ratio of this cell instance (see
        :class:`~repro.battery.ecm.TheveninModel`).
    current_gain:
        Multiplicative gain error of the current sensor (shunt/hall
        calibration tolerance).  Measured current is
        ``gain * true + noise``; ground truth integrates the true
        current, so Coulomb counting on measurements drifts.
    """

    def __init__(
        self,
        spec: CellSpec,
        noise: SensorNoise | None = None,
        rng: np.random.Generator | int | None = None,
        capacity_factor: float = 1.0,
        current_gain: float = 1.0,
    ):
        if not 0.9 <= current_gain <= 1.1:
            raise ValueError("current gain must be within [0.9, 1.1]")
        self.spec = spec
        self.ecm = TheveninModel(spec, capacity_factor=capacity_factor)
        self.thermal = LumpedThermalModel(spec.mass_kg, spec.cp_j_per_kg_k, spec.h_w_per_k)
        self.noise = noise if noise is not None else SensorNoise()
        self.current_gain = current_gain
        self._rng = make_rng(rng)

    def reset(self, soc: float = 1.0, temp_c: float = 25.0) -> None:
        """Re-initialize electrical and thermal state."""
        self.ecm.reset(soc)
        self.thermal.reset(temp_c)

    @property
    def soc(self) -> float:
        """Current true SoC."""
        return self.ecm.state.soc

    @property
    def temp_c(self) -> float:
        """Current cell temperature."""
        return self.thermal.temp_c

    # ------------------------------------------------------------------
    def run_profile(
        self,
        current_a: np.ndarray,
        dt_s: float,
        ambient_c: float,
        record_every: int = 1,
        stop_at_cutoff: bool = True,
        cutoff: str = "both",
    ) -> SimulationResult:
        """Apply a sampled current profile and record the response.

        Parameters
        ----------
        current_a:
            Current samples (positive = discharge), one per ``dt_s``.
        dt_s:
            Simulation timestep in seconds.
        ambient_c:
            Ambient temperature for the whole run.
        record_every:
            Keep every k-th sample (e.g. simulate at 1 s, record at
            120 s for the Sandia protocol).
        stop_at_cutoff:
            Truncate the run when a voltage cutoff is crossed.
        cutoff:
            Which limits end the run: ``"both"`` (CC protocol phases),
            ``"discharge"`` (drive cycles: only the low cutoff stops the
            run, and regen into a full cell is curtailed to zero, as a
            BMS would), or ``"charge"``.

        Returns
        -------
        SimulationResult
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        if record_every < 1:
            raise ValueError("record_every must be >= 1")
        if cutoff not in ("both", "discharge", "charge"):
            raise ValueError("cutoff must be 'both', 'discharge', or 'charge'")
        current_a = np.asarray(current_a, dtype=np.float64)
        n = len(current_a)
        rows: list[tuple] = []
        stopped, reason = False, ""
        check_charge = cutoff in ("both", "charge")
        check_discharge = cutoff in ("both", "discharge")
        for k in range(n):
            i_k = float(current_a[k])
            if not check_charge and i_k < 0.0 and self.ecm.state.soc >= 1.0:
                i_k = 0.0  # BMS curtails regen into a full cell
            temp = self.thermal.temp_c
            v = self.ecm.step(i_k, dt_s, temp)
            loss = self.ecm.power_loss(i_k, temp)
            self.thermal.step(loss, ambient_c, dt_s)
            if k % record_every == 0:
                rows.append((k * dt_s, v, i_k, self.thermal.temp_c, self.ecm.state.soc))
            if stop_at_cutoff and self.ecm.at_limit(i_k, self.thermal.temp_c):
                charging = i_k < 0.0
                if (charging and check_charge) or (not charging and check_discharge):
                    stopped = True
                    reason = "voltage cutoff" if 0.0 < self.ecm.state.soc < 1.0 else "soc limit"
                    break
        return self._package(rows, stopped, reason)

    def run_constant_current(
        self,
        current_a: float,
        dt_s: float,
        ambient_c: float,
        max_time_s: float,
        record_every: int = 1,
    ) -> SimulationResult:
        """Hold a constant current until cutoff or ``max_time_s``."""
        steps = int(np.ceil(max_time_s / dt_s))
        profile = np.full(steps, float(current_a))
        return self.run_profile(profile, dt_s, ambient_c, record_every=record_every)

    def run_rest(self, duration_s: float, dt_s: float, ambient_c: float, record_every: int = 1) -> SimulationResult:
        """Zero-current relaxation period."""
        steps = max(1, int(np.ceil(duration_s / dt_s)))
        profile = np.zeros(steps)
        return self.run_profile(profile, dt_s, ambient_c, record_every=record_every, stop_at_cutoff=False)

    # ------------------------------------------------------------------
    def _package(self, rows: list[tuple], stopped: bool, reason: str) -> SimulationResult:
        if rows:
            time_s, v, i, t, soc = (np.asarray(col, dtype=np.float64) for col in zip(*rows))
        else:
            time_s = v = i = t = soc = np.zeros(0)
        n = len(time_s)
        noisy_v = v + self._rng.normal(0.0, self.noise.sigma_v, n) if self.noise.sigma_v else v.copy()
        noisy_i = self.current_gain * i
        if self.noise.sigma_i:
            noisy_i = noisy_i + self._rng.normal(0.0, self.noise.sigma_i, n)
        noisy_t = t + self._rng.normal(0.0, self.noise.sigma_t, n) if self.noise.sigma_t else t.copy()
        return SimulationResult(
            time_s=time_s,
            voltage=noisy_v,
            current=noisy_i,
            temp_c=noisy_t,
            soc=soc,
            voltage_true=v,
            current_true=i,
            temp_true=t,
            stopped_early=stopped,
            stop_reason=reason,
        )
