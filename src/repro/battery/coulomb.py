"""Coulomb counting — the physics behind the paper's PINN loss (Eq. 1).

The paper regularizes its predictive branch with the first-order charge
balance

.. math::

    SoC_p(t + N_p) = SoC(t) - \\frac{1}{C_{rated}} \\int_t^{t+N_p} I\\,dt

(with our sign convention: positive current discharges the cell, so the
integral is subtracted).  These helpers implement that equation for
scalars, arrays, and sampled current traces, and are shared by the
physics loss (:mod:`repro.core.physics`), the Physics-Only baseline and
the battery simulator's ground-truth SoC integration.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "delta_soc",
    "predict_soc",
    "integrate_current",
    "soc_trajectory",
]

SECONDS_PER_HOUR = 3600.0


def delta_soc(current_a, horizon_s, capacity_ah: float):
    """SoC change caused by drawing ``current_a`` for ``horizon_s`` seconds.

    Parameters
    ----------
    current_a:
        Average current in amperes; positive discharges.
    horizon_s:
        Elapsed time in seconds (the paper's ``N`` / ``Np``).
    capacity_ah:
        Rated capacity :math:`C_{rated}` in ampere-hours.

    Returns
    -------
    float or numpy.ndarray
        Negative for discharge, positive for charge.  Broadcasts over
        array inputs.
    """
    if capacity_ah <= 0:
        raise ValueError("capacity must be positive")
    return -np.asarray(current_a, dtype=np.float64) * np.asarray(horizon_s, dtype=np.float64) / (
        capacity_ah * SECONDS_PER_HOUR
    )


def predict_soc(soc_now, current_a, horizon_s, capacity_ah: float, clip: bool = False):
    """Coulomb-counting SoC prediction (Eq. 1 of the paper).

    Parameters
    ----------
    soc_now:
        SoC at time ``t`` (fraction of rated capacity).
    current_a, horizon_s, capacity_ah:
        As in :func:`delta_soc`.
    clip:
        When true, clamp the result to [0, 1].  The paper's physics
        loss does *not* clip (the NN output is an unrestricted scalar),
        so the default is off.

    Returns
    -------
    float or numpy.ndarray
    """
    predicted = np.asarray(soc_now, dtype=np.float64) + delta_soc(current_a, horizon_s, capacity_ah)
    if clip:
        predicted = np.clip(predicted, 0.0, 1.0)
    return predicted if predicted.shape else float(predicted)


def integrate_current(current_a: np.ndarray, dt_s: float) -> float:
    """Total charge (coulombs) in a sampled current trace.

    Uses the rectangle rule, matching the simulator's forward-Euler
    charge bookkeeping exactly (important for conservation tests).
    """
    if dt_s <= 0:
        raise ValueError("dt must be positive")
    return float(np.sum(np.asarray(current_a, dtype=np.float64)) * dt_s)


def soc_trajectory(soc0: float, current_a: np.ndarray, dt_s: float, capacity_ah: float) -> np.ndarray:
    """Cumulative Coulomb-counting SoC along a sampled current trace.

    Returns an array the same length as ``current_a`` where entry ``k``
    is the SoC *after* the first ``k+1`` samples have been applied.
    """
    if dt_s <= 0:
        raise ValueError("dt must be positive")
    if capacity_ah <= 0:
        raise ValueError("capacity must be positive")
    charge = np.cumsum(np.asarray(current_a, dtype=np.float64)) * dt_s
    return soc0 - charge / (capacity_ah * SECONDS_PER_HOUR)
