"""Thevenin equivalent-circuit model (ECM) of a Li-ion cell.

This is the "physics-based digital twin" class of model the paper
contrasts data-driven approaches against (Sec. II, category 2), and the
engine behind our synthetic datasets: OCV source in series with an
ohmic resistance and one or more RC polarization branches.

State per step: SoC (true coulomb balance), one voltage per RC branch,
and the cell temperature (owned by the caller / simulator).  Resistance
grows at low temperature (Arrhenius) and at low SoC; usable capacity
shrinks in the cold.  These second-order couplings are exactly what a
pure Coulomb-counting predictor cannot see — and what the paper's
Branch 1/2 networks learn from data.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .cell import CellSpec

__all__ = ["ECMState", "TheveninModel"]

_KELVIN = 273.15


@dataclasses.dataclass
class ECMState:
    """Electrical state of the Thevenin model."""

    soc: float
    rc_voltages: np.ndarray

    def copy(self) -> "ECMState":
        return ECMState(self.soc, self.rc_voltages.copy())


class TheveninModel:
    """N-branch Thevenin ECM with temperature/SoC-dependent parameters.

    Parameters
    ----------
    spec:
        The cell to model.
    capacity_factor:
        Ratio of the cell's *actual* capacity to the datasheet rating
        (manufacturing variability and aging; Sec. II of the paper
        points out that assuming the nominal ``Qmax`` "might not be an
        accurate guess due to various variability effects").  Ground
        truth SoC is charge relative to the actual capacity, while
        Eq. 1 users only know the rating — the gap is what makes pure
        Coulomb counting approximate.

    Notes
    -----
    Sign convention matches the rest of the package: **positive current
    discharges** the cell.  The RC branches use the exact exponential
    discretization, so arbitrarily large ``dt`` remains stable.
    """

    def __init__(self, spec: CellSpec, capacity_factor: float = 1.0):
        if not 0.5 <= capacity_factor <= 1.2:
            raise ValueError("capacity factor must be within [0.5, 1.2]")
        self.spec = spec
        self.capacity_factor = capacity_factor
        self.state = ECMState(soc=1.0, rc_voltages=np.zeros(len(spec.rc_pairs)))

    # ------------------------------------------------------------------
    # parameter laws
    # ------------------------------------------------------------------
    def _temp_factor(self, temp_c: float) -> float:
        """Arrhenius resistance multiplier relative to the reference temp."""
        if self.spec.r_temp_ea == 0.0:
            return 1.0
        t = temp_c + _KELVIN
        t_ref = self.spec.ref_temp_c + _KELVIN
        return float(np.exp(self.spec.r_temp_ea * (1.0 / t - 1.0 / t_ref)))

    def r0(self, soc: float, temp_c: float) -> float:
        """Ohmic resistance at the given operating point."""
        soc_factor = 1.0 + self.spec.r_soc_slope * (1.0 - np.clip(soc, 0.0, 1.0))
        return self.spec.r0_ohm * soc_factor * self._temp_factor(temp_c)

    def branch_resistance(self, index: int, temp_c: float) -> float:
        """Polarization resistance of RC branch ``index`` at ``temp_c``."""
        r, _ = self.spec.rc_pairs[index]
        return r * self._temp_factor(temp_c)

    def effective_capacity_ah(self, temp_c: float) -> float:
        """Usable capacity at ``temp_c`` (shrinks below reference),
        including the cell's actual-vs-rated capacity factor."""
        deficit = max(0.0, self.spec.ref_temp_c - temp_c)
        factor = max(0.5, 1.0 - self.spec.capacity_temp_coeff * deficit)
        return self.spec.capacity_ah * self.capacity_factor * factor

    # ------------------------------------------------------------------
    # state handling
    # ------------------------------------------------------------------
    def reset(self, soc: float = 1.0) -> None:
        """Reset to the given SoC with relaxed (zero) RC voltages."""
        if not 0.0 <= soc <= 1.0:
            raise ValueError("initial SoC must be in [0, 1]")
        self.state = ECMState(soc=float(soc), rc_voltages=np.zeros(len(self.spec.rc_pairs)))

    def terminal_voltage(self, current_a: float, temp_c: float) -> float:
        """Terminal voltage for the present state under ``current_a``."""
        ocv = self.spec.chemistry.ocv(self.state.soc)
        drop = current_a * self.r0(self.state.soc, temp_c)
        return float(ocv - drop - self.state.rc_voltages.sum())

    def power_loss(self, current_a: float, temp_c: float) -> float:
        """Resistive dissipation (W) for the present state and current."""
        loss = current_a**2 * self.r0(self.state.soc, temp_c)
        for i, (r, _) in enumerate(self.spec.rc_pairs):
            r_t = self.branch_resistance(i, temp_c)
            if r_t > 0:
                loss += self.state.rc_voltages[i] ** 2 / r_t
        return float(loss)

    def step(self, current_a: float, dt_s: float, temp_c: float) -> float:
        """Advance the electrical state by ``dt_s`` and return terminal voltage.

        Parameters
        ----------
        current_a:
            Applied current (positive = discharge) held constant over
            the step.
        dt_s:
            Step length in seconds.
        temp_c:
            Cell temperature during the step (from the thermal model).

        Returns
        -------
        float
            Terminal voltage at the *end* of the step.
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        # RC branches: exact exponential response to a constant current.
        for i, (r, c) in enumerate(self.spec.rc_pairs):
            r_t = self.branch_resistance(i, temp_c)
            tau = r_t * c
            if tau <= 0:
                self.state.rc_voltages[i] = 0.0
                continue
            decay = np.exp(-dt_s / tau)
            self.state.rc_voltages[i] = (
                self.state.rc_voltages[i] * decay + r_t * current_a * (1.0 - decay)
            )
        # Coulomb balance against the temperature-dependent usable capacity.
        capacity_c = self.effective_capacity_ah(temp_c) * 3600.0
        self.state.soc = float(np.clip(self.state.soc - current_a * dt_s / capacity_c, 0.0, 1.0))
        return self.terminal_voltage(current_a, temp_c)

    def at_limit(self, current_a: float, temp_c: float) -> bool:
        """True when the terminal voltage has crossed a cutoff."""
        v = self.terminal_voltage(current_a, temp_c)
        chem = self.spec.chemistry
        if current_a >= 0.0:  # discharging or rest
            return v <= chem.v_min or self.state.soc <= 0.0
        return v >= chem.v_max or self.state.soc >= 1.0
