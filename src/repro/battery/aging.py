"""Battery aging: State-of-Health (SoH) degradation model.

The paper's model "does not account for battery SoH degradation"
(Sec. III-B) and names the ensemble approach of Alamin et al. [26] as
the way to stay accurate across SoH levels: train one SoC model per
SoH bracket and dispatch on a separate SoH estimate.  This module
provides the aging substrate for that extension
(:mod:`repro.core.ensemble`): an empirical capacity-fade and
resistance-growth law that converts a cycle count into the aged cell
parameters the simulator needs.

The fade law is the usual square-root-of-throughput calendar+cycle
blend used in BMS engineering:

.. math::

    SoH(n) = 1 - k_{cyc} \\sqrt{n} - k_{lin} n

with resistance growing proportionally to the capacity lost.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .cell import CellSpec

__all__ = ["AgingModel", "aged_spec"]


@dataclasses.dataclass(frozen=True)
class AgingModel:
    """Empirical capacity-fade / resistance-growth law.

    Attributes
    ----------
    k_cycle_sqrt:
        Square-root fade coefficient (dominant early-life mechanism,
        SEI growth).
    k_cycle_linear:
        Linear fade coefficient (late-life mechanism).
    resistance_growth:
        Fractional R0 increase per unit of capacity fade (an 80% SoH
        cell with growth 2.0 has 1.4x the fresh resistance).
    eol_soh:
        End-of-life SoH; below it the model refuses to extrapolate
        (the usual automotive convention is 0.8, retired cells 0.6).
    """

    k_cycle_sqrt: float = 2.0e-3
    k_cycle_linear: float = 2.0e-5
    resistance_growth: float = 2.0
    eol_soh: float = 0.6

    def __post_init__(self):
        if self.k_cycle_sqrt < 0 or self.k_cycle_linear < 0:
            raise ValueError("fade coefficients cannot be negative")
        if not 0.0 < self.eol_soh < 1.0:
            raise ValueError("end-of-life SoH must be in (0, 1)")

    def soh_after_cycles(self, cycles: int | np.ndarray):
        """SoH (capacity fraction) after ``cycles`` full cycles.

        Clamped at the end-of-life floor; fresh cells return 1.0.
        """
        n = np.asarray(cycles, dtype=np.float64)
        if np.any(n < 0):
            raise ValueError("cycle count cannot be negative")
        soh = 1.0 - self.k_cycle_sqrt * np.sqrt(n) - self.k_cycle_linear * n
        soh = np.clip(soh, self.eol_soh, 1.0)
        return soh if soh.shape else float(soh)

    def cycles_to_soh(self, target_soh: float) -> int:
        """Smallest cycle count at which SoH drops to ``target_soh``.

        Solves the fade law by bisection (monotone decreasing).
        """
        if not self.eol_soh <= target_soh <= 1.0:
            raise ValueError(f"target SoH must be within [{self.eol_soh}, 1.0]")
        if target_soh >= 1.0:
            return 0
        lo, hi = 0, 1
        while self.soh_after_cycles(hi) > target_soh:
            hi *= 2
            if hi > 10**9:
                raise RuntimeError("fade law never reaches the target SoH")
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.soh_after_cycles(mid) > target_soh:
                lo = mid
            else:
                hi = mid
        return hi

    def resistance_factor(self, soh: float) -> float:
        """R0 multiplier at the given SoH (1.0 when fresh)."""
        if not 0.0 < soh <= 1.0:
            raise ValueError("SoH must be in (0, 1]")
        return 1.0 + self.resistance_growth * (1.0 - soh)


def aged_spec(spec: CellSpec, soh: float, aging: AgingModel | None = None) -> CellSpec:
    """Return a copy of ``spec`` degraded to the given SoH.

    Capacity scales by ``soh``; ohmic and polarization resistances grow
    per the aging model.  The returned spec keeps the original *name*
    with an ``@soh`` suffix so campaign provenance stays readable.

    Parameters
    ----------
    spec:
        The fresh cell.
    soh:
        Target state of health in (0, 1].
    aging:
        The degradation law (defaults to :class:`AgingModel`).
    """
    aging = aging if aging is not None else AgingModel()
    factor = aging.resistance_factor(soh)
    return dataclasses.replace(
        spec,
        name=f"{spec.name}@soh{soh:.2f}",
        capacity_ah=spec.capacity_ah * soh,
        r0_ohm=spec.r0_ohm * factor,
        rc_pairs=tuple((r * factor, c) for r, c in spec.rc_pairs),
    )
