"""Open-circuit-voltage (OCV) curves and chemistry definitions.

The two public datasets behind the paper were measured on real cells:
Sandia cycled commercial NCA, NMC and LFP 18650s; the LG dataset uses an
LGHG2 3 Ah NMC cell.  This module provides analytic OCV-vs-SoC curves
with the characteristic shape of each chemistry (steep knee near empty,
mild mid-range slope for NCA/NMC, the famously flat LFP plateau), which
the equivalent-circuit simulator uses to synthesize realistic voltage
traces.

Curves are sums of simple differentiable terms so that both the value
and the exact derivative (needed by the EKF baseline) are available.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

__all__ = ["OCVTerm", "OCVCurve", "Chemistry", "get_chemistry", "CHEMISTRIES"]


@dataclasses.dataclass(frozen=True)
class OCVTerm:
    """One additive term of an OCV curve.

    Supported kinds (``s`` is the state of charge in [0, 1]):

    - ``const``:   ``a``
    - ``linear``:  ``a * s``
    - ``power``:   ``a * s**p``
    - ``exp``:     ``a * exp(k * (s - x0))``
    - ``tanh``:    ``a * tanh(k * (s - x0))``
    """

    kind: str
    a: float
    k: float = 0.0
    x0: float = 0.0
    p: float = 1.0

    def value(self, s: np.ndarray) -> np.ndarray:
        if self.kind == "const":
            return np.full_like(s, self.a)
        if self.kind == "linear":
            return self.a * s
        if self.kind == "power":
            return self.a * s**self.p
        if self.kind == "exp":
            return self.a * np.exp(self.k * (s - self.x0))
        if self.kind == "tanh":
            return self.a * np.tanh(self.k * (s - self.x0))
        raise ValueError(f"unknown OCV term kind {self.kind!r}")

    def derivative(self, s: np.ndarray) -> np.ndarray:
        if self.kind == "const":
            return np.zeros_like(s)
        if self.kind == "linear":
            return np.full_like(s, self.a)
        if self.kind == "power":
            return self.a * self.p * s ** (self.p - 1.0)
        if self.kind == "exp":
            return self.a * self.k * np.exp(self.k * (s - self.x0))
        if self.kind == "tanh":
            return self.a * self.k / np.cosh(self.k * (s - self.x0)) ** 2
        raise ValueError(f"unknown OCV term kind {self.kind!r}")


class OCVCurve:
    """Analytic OCV-vs-SoC curve built from :class:`OCVTerm` pieces.

    The curve clamps its input to [0, 1]; real BMS code never queries
    outside that range and the simulator enforces SoC bounds anyway.
    """

    def __init__(self, terms: Sequence[OCVTerm]):
        if not terms:
            raise ValueError("an OCV curve needs at least one term")
        self.terms = tuple(terms)

    def __call__(self, soc) -> np.ndarray:
        s = np.clip(np.asarray(soc, dtype=np.float64), 0.0, 1.0)
        out = np.zeros_like(s)
        for term in self.terms:
            out = out + term.value(s)
        return out if out.shape else float(out)

    def derivative(self, soc) -> np.ndarray:
        """Exact dOCV/dSoC (zero outside [0, 1] because of clamping)."""
        s_raw = np.asarray(soc, dtype=np.float64)
        s = np.clip(s_raw, 0.0, 1.0)
        out = np.zeros_like(s)
        for term in self.terms:
            out = out + term.derivative(s)
        inside = (s_raw >= 0.0) & (s_raw <= 1.0)
        out = np.where(inside, out, 0.0)
        return out if out.shape else float(out)


@dataclasses.dataclass(frozen=True)
class Chemistry:
    """A cell chemistry: OCV curve plus voltage limits.

    Attributes
    ----------
    name:
        Canonical chemistry label (``"nca"``, ``"nmc"``, ``"lfp"``).
    ocv:
        The open-circuit-voltage curve.
    v_min, v_max:
        Discharge/charge cutoff voltages (V).
    nominal_voltage:
        Datasheet nominal voltage (V), used for energy accounting.
    """

    name: str
    ocv: OCVCurve
    v_min: float
    v_max: float
    nominal_voltage: float


# Curve shapes: v(0) sits below the discharge cutoff so CC discharges
# terminate on voltage (like a lab cycler) with a rate-dependent amount
# of charge delivered; v(1) sits at/above the charge cutoff.
_NCA_OCV = OCVCurve(
    [
        OCVTerm("const", 3.40),
        OCVTerm("linear", 0.62),
        OCVTerm("power", 0.20, p=5.0),
        OCVTerm("exp", -0.80, k=-18.0),
    ]
)

_NMC_OCV = OCVCurve(
    [
        OCVTerm("const", 3.50),
        OCVTerm("linear", 0.55),
        OCVTerm("power", 0.15, p=6.0),
        OCVTerm("exp", -0.95, k=-20.0),
    ]
)

_LFP_OCV = OCVCurve(
    [
        OCVTerm("const", 3.00),
        OCVTerm("linear", 0.03),
        OCVTerm("exp", -1.05, k=-25.0),
        OCVTerm("const", 0.30),  # plateau level reached once the knee decays
        OCVTerm("exp", 0.35, k=15.0, x0=1.0),
    ]
)

CHEMISTRIES: dict[str, Chemistry] = {
    "nca": Chemistry("nca", _NCA_OCV, v_min=2.70, v_max=4.20, nominal_voltage=3.60),
    "nmc": Chemistry("nmc", _NMC_OCV, v_min=2.70, v_max=4.20, nominal_voltage=3.63),
    "lfp": Chemistry("lfp", _LFP_OCV, v_min=2.50, v_max=3.65, nominal_voltage=3.20),
}


def get_chemistry(name: str) -> Chemistry:
    """Look up a chemistry by case-insensitive name.

    Raises
    ------
    KeyError
        With the list of known names when the chemistry is unknown.
    """
    key = name.lower()
    if key not in CHEMISTRIES:
        raise KeyError(f"unknown chemistry {name!r}; known: {sorted(CHEMISTRIES)}")
    return CHEMISTRIES[key]
