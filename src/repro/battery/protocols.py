"""Charge/discharge protocol drivers (lab-cycler behaviours).

The Sandia campaign the paper trains on is a grid of constant-current
cycles: CC charge at 0.5C to the upper cutoff, rest, CC discharge at
1C/2C/3C to the lower cutoff, rest — repeated across ambient
temperatures.  This module turns a :class:`~repro.battery.simulator.CellSimulator`
into such a cycler.
"""

from __future__ import annotations

import dataclasses

from .simulator import CellSimulator, SimulationResult

__all__ = ["CycleSpec", "run_cc_cycle", "run_full_discharge"]


@dataclasses.dataclass(frozen=True)
class CycleSpec:
    """One constant-current cycling recipe.

    Attributes
    ----------
    charge_c_rate:
        Charging C-rate (applied as negative current).
    discharge_c_rate:
        Discharging C-rate (positive current).
    ambient_c:
        Ambient temperature for the cycle.
    rest_s:
        Rest duration between phases.
    dt_s:
        Internal simulation step.
    record_every:
        Decimation factor between simulation and recorded samples
        (Sandia records every 120 s; we simulate at 1 s).
    """

    charge_c_rate: float = 0.5
    discharge_c_rate: float = 1.0
    ambient_c: float = 25.0
    rest_s: float = 600.0
    dt_s: float = 1.0
    record_every: int = 120

    def __post_init__(self):
        if self.charge_c_rate <= 0 or self.discharge_c_rate <= 0:
            raise ValueError("C-rates must be positive magnitudes")
        if self.dt_s <= 0 or self.record_every < 1:
            raise ValueError("invalid timing parameters")


def run_cc_cycle(sim: CellSimulator, spec: CycleSpec, max_phase_time_s: float = 6.0 * 3600.0) -> SimulationResult:
    """Run one full charge/rest/discharge/rest cycle.

    The simulator must be reset by the caller (the campaign decides the
    starting SoC and temperature).  Returns the concatenated trace of
    all four phases.

    Parameters
    ----------
    sim:
        The simulator to drive (stateful; left at end-of-cycle state).
    spec:
        The cycling recipe.
    max_phase_time_s:
        Safety bound per CC phase.
    """
    cell = sim.spec
    charge_current = -cell.current_from_c_rate(spec.charge_c_rate)
    discharge_current = cell.current_from_c_rate(spec.discharge_c_rate)
    if spec.discharge_c_rate > cell.max_discharge_c:
        raise ValueError(
            f"discharge rate {spec.discharge_c_rate}C exceeds the cell limit {cell.max_discharge_c}C"
        )

    charge = sim.run_constant_current(
        charge_current, spec.dt_s, spec.ambient_c, max_phase_time_s, record_every=spec.record_every
    )
    rest1 = sim.run_rest(spec.rest_s, spec.dt_s, spec.ambient_c, record_every=spec.record_every)
    discharge = sim.run_constant_current(
        discharge_current, spec.dt_s, spec.ambient_c, max_phase_time_s, record_every=spec.record_every
    )
    rest2 = sim.run_rest(spec.rest_s, spec.dt_s, spec.ambient_c, record_every=spec.record_every)
    return charge.concat(rest1).concat(discharge).concat(rest2)


def run_full_discharge(
    sim: CellSimulator,
    c_rate: float,
    ambient_c: float,
    dt_s: float = 1.0,
    record_every: int = 1,
    max_time_s: float = 6.0 * 3600.0,
) -> SimulationResult:
    """Discharge from the present state to the voltage cutoff.

    Convenience wrapper used by tests and the Fig. 5 ground-truth
    generation (full "driving" discharges).
    """
    current = sim.spec.current_from_c_rate(c_rate)
    return sim.run_constant_current(current, dt_s, ambient_c, max_time_s, record_every=record_every)
