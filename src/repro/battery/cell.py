"""Cell specifications: electrical, thermal and rating parameters.

A :class:`CellSpec` bundles everything the simulator needs to behave
like one physical cell.  The registry mirrors the cells behind the two
datasets the paper evaluates on:

- ``sandia-nca`` / ``sandia-nmc`` / ``sandia-lfp`` — the three 18650
  chemistries cycled by Sandia National Lab;
- ``lg-hg2`` — the LGHG2 3 Ah cell measured at McMaster University.

Parameter values are representative datasheet/literature numbers for
each format, not fitted to the (unavailable) measurements; what matters
for the reproduction is the *structure* of the response (OCV shape, IR
drop, RC relaxation, rate and temperature sensitivity).
"""

from __future__ import annotations

import dataclasses

from .chemistry import Chemistry, get_chemistry

__all__ = ["CellSpec", "get_cell_spec", "CELL_SPECS"]


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """Full parameter set for one simulated cell.

    Electrical (Thevenin) parameters are given at the reference
    temperature ``ref_temp_c``; the ECM applies Arrhenius-style scaling
    away from it.

    Attributes
    ----------
    name:
        Registry key.
    chemistry:
        The cell chemistry (OCV curve + voltage limits).
    capacity_ah:
        Rated capacity :math:`C_{rated}` in ampere-hours — the constant
        in the paper's Coulomb-counting equation (Eq. 1).
    r0_ohm:
        Ohmic (instantaneous) resistance at reference temperature.
    rc_pairs:
        Tuple of ``(R_i, C_i)`` polarization branches (ohm, farad).
    r_temp_ea:
        Arrhenius activation factor (kelvin) for resistance growth at
        low temperature; 0 disables temperature dependence.
    r_soc_slope:
        Fractional increase of R0 when going from full to empty; models
        the well-known resistance rise at low SoC.
    capacity_temp_coeff:
        Fractional usable-capacity loss per kelvin below reference
        (cold cells deliver less charge).
    mass_kg, cp_j_per_kg_k, h_w_per_k:
        Lumped thermal model: mass, specific heat, and effective
        convective conductance to ambient.
    max_charge_c, max_discharge_c:
        Datasheet C-rate limits (used for input validation).
    """

    name: str
    chemistry: Chemistry
    capacity_ah: float
    r0_ohm: float
    rc_pairs: tuple[tuple[float, float], ...]
    r_temp_ea: float = 1800.0
    r_soc_slope: float = 0.6
    capacity_temp_coeff: float = 0.006
    mass_kg: float = 0.047
    cp_j_per_kg_k: float = 900.0
    h_w_per_k: float = 0.15  # fan-forced thermal chamber (lab conditions)
    max_charge_c: float = 4.0
    max_discharge_c: float = 5.0
    ref_temp_c: float = 25.0

    def __post_init__(self):
        if self.capacity_ah <= 0:
            raise ValueError("capacity must be positive")
        if self.r0_ohm < 0 or any(r < 0 or c <= 0 for r, c in self.rc_pairs):
            raise ValueError("resistances must be >= 0 and capacitances > 0")

    @property
    def capacity_coulombs(self) -> float:
        """Rated capacity in coulombs (ampere-seconds)."""
        return self.capacity_ah * 3600.0

    def current_from_c_rate(self, c_rate: float) -> float:
        """Convert a C-rate to amperes for this cell (positive = discharge)."""
        return c_rate * self.capacity_ah

    def time_constants(self) -> tuple[float, ...]:
        """RC time constants (seconds) of the polarization branches."""
        return tuple(r * c for r, c in self.rc_pairs)


def _sandia_18650(name: str, chemistry: str, capacity_ah: float, r0: float) -> CellSpec:
    return CellSpec(
        name=name,
        chemistry=get_chemistry(chemistry),
        capacity_ah=capacity_ah,
        r0_ohm=r0,
        rc_pairs=((r0 * 0.6, 2000.0), (r0 * 0.9, 60000.0)),
    )


CELL_SPECS: dict[str, CellSpec] = {
    # Sandia cycled 18650s: NCA ~3.2 Ah, NMC ~3.0 Ah, LFP ~1.1 Ah.
    "sandia-nca": _sandia_18650("sandia-nca", "nca", 3.2, 0.030),
    "sandia-nmc": _sandia_18650("sandia-nmc", "nmc", 3.0, 0.025),
    "sandia-lfp": _sandia_18650("sandia-lfp", "lfp", 1.1, 0.045),
    # LG HG2: 3 Ah high-drain NMC cell (the McMaster dataset's cell).
    "lg-hg2": CellSpec(
        name="lg-hg2",
        chemistry=get_chemistry("nmc"),
        capacity_ah=3.0,
        r0_ohm=0.020,
        rc_pairs=((0.012, 1500.0), (0.018, 50000.0)),
        max_discharge_c=6.7,  # 20 A continuous
    ),
}


def get_cell_spec(name: str) -> CellSpec:
    """Look up a cell spec by case-insensitive registry name.

    Raises
    ------
    KeyError
        With the list of known names when the cell is unknown.
    """
    key = name.lower()
    if key not in CELL_SPECS:
        raise KeyError(f"unknown cell {name!r}; known: {sorted(CELL_SPECS)}")
    return CELL_SPECS[key]
