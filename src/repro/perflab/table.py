"""Declarative run tables for the perf lab.

A run table is one JSON or YAML document with two sections::

    {
      "defaults": {"duration_s": 2.0, "warmup_s": 0.5, "cooldown_s": 0.2,
                   "reps": 2, "seed": 0,
                   "slo_p99_ms": 50.0, "per_cell_req_s": 0.0333},
      "sweep": {"topology": ["inproc", "pipe"],
                "workers": [1, 2],
                "cells": 64,
                "max_batch": 64,
                "shape": ["steady", "burst"],
                "rate": [200.0, 400.0]}
    }

Every ``sweep`` axis may be a scalar or a list; :func:`expand_table`
takes the cartesian product and replicates each point ``reps`` times
(repetition ``k`` runs with ``seed + k`` so reps differ in their
stochastic arrivals but stay reproducible).  The expansion order is
deterministic, so a table file pins an experiment exactly.

``slo_p99_ms`` and ``per_cell_req_s`` are *analysis* parameters (the
latency objective and the assumed steady-state per-cell request rate —
default one estimate every 30 s); they ride along in the manifest so
``perf_lab analyze`` reproduces the capacity model without re-stating
assumptions.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path

__all__ = ["RunConfig", "expand_table", "load_table", "TOPOLOGIES"]

TOPOLOGIES = ("inproc", "shards", "pipe", "shm", "tcp")

_SWEEP_AXES = ("topology", "workers", "cells", "max_batch", "shape", "rate")

DEFAULTS = {
    "duration_s": 2.0,
    "warmup_s": 0.5,
    "cooldown_s": 0.2,
    "reps": 2,
    "seed": 0,
    "max_in_flight": 1024,
    "max_delay_s": 0.002,
    "slo_p99_ms": 50.0,
    "per_cell_req_s": 1.0 / 30.0,
}


@dataclass(frozen=True)
class RunConfig:
    """One fully resolved cell of the run table (one measured run)."""

    topology: str = "inproc"
    workers: int = 1
    cells: int = 64
    max_batch: int = 64
    shape: str = "steady"
    rate: float = 200.0
    rep: int = 0
    duration_s: float = 2.0
    warmup_s: float = 0.5
    cooldown_s: float = 0.2
    seed: int = 0
    max_in_flight: int = 1024
    max_delay_s: float = 0.002

    def __post_init__(self):
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r} (expected one of {TOPOLOGIES})")
        if self.workers < 1 or self.cells < 1 or self.max_batch < 1:
            raise ValueError("workers, cells, and max_batch must be positive")
        if self.topology == "inproc" and self.workers != 1:
            raise ValueError("topology 'inproc' is a single engine; use 'shards' for workers > 1")

    @property
    def run_id(self) -> str:
        """Stable, filename-safe identity, e.g. ``pipe-w2-c64-b64-burst-r200-rep0``."""
        rate = f"{self.rate:g}".replace(".", "p")
        return (
            f"{self.topology}-w{self.workers}-c{self.cells}-b{self.max_batch}"
            f"-{self.shape}-r{rate}-rep{self.rep}"
        )

    @property
    def group_id(self) -> str:
        """Identity of the table cell with the repetition stripped."""
        return self.run_id.rsplit("-rep", 1)[0]

    def to_dict(self) -> dict:
        return {"run_id": self.run_id, "group_id": self.group_id, **asdict(self)}


def _as_list(value) -> list:
    return list(value) if isinstance(value, (list, tuple)) else [value]


def expand_table(table: dict) -> list[RunConfig]:
    """Cartesian product of the sweep axes × repetitions, in table order."""
    defaults = {**DEFAULTS, **(table.get("defaults") or {})}
    sweep = table.get("sweep") or {}
    unknown = set(sweep) - set(_SWEEP_AXES)
    if unknown:
        raise ValueError(f"unknown sweep axes {sorted(unknown)!r} (expected among {_SWEEP_AXES})")
    axes = [_as_list(sweep.get(axis, RunConfig.__dataclass_fields__[axis].default)) for axis in _SWEEP_AXES]
    reps = int(defaults.pop("reps"))
    if reps < 1:
        raise ValueError("reps must be at least 1")
    base_seed = int(defaults.pop("seed"))
    analysis_only = {"slo_p99_ms", "per_cell_req_s"}
    run_fields = {f.name for f in fields(RunConfig)}
    extra = set(defaults) - run_fields - analysis_only
    if extra:
        raise ValueError(f"unknown defaults {sorted(extra)!r}")
    carried = {k: v for k, v in defaults.items() if k in run_fields}
    configs: list[RunConfig] = []
    for values in itertools.product(*axes):
        point = dict(zip(_SWEEP_AXES, values))
        for rep in range(reps):
            configs.append(RunConfig(**point, rep=rep, seed=base_seed + rep, **carried))
    return configs


def load_table(path: str | Path) -> dict:
    """Read a run table from JSON or YAML (by file extension)."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - yaml ships in the image
            raise RuntimeError(f"YAML table {path} needs pyyaml; use JSON instead") from exc
        return yaml.safe_load(text)
    return json.loads(text)


def analysis_defaults(table: dict) -> dict:
    """The analysis parameters (SLO, per-cell rate) a table pins."""
    defaults = {**DEFAULTS, **(table.get("defaults") or {})}
    return {
        "slo_p99_ms": float(defaults["slo_p99_ms"]),
        "per_cell_req_s": float(defaults["per_cell_req_s"]),
    }
