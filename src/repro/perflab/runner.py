"""Execute run-table cells: build the topology, drive open-loop load, record.

One :func:`execute_run` call is one experiment: it builds the serving
stack the config names (engine or sharded fleet under a
:class:`~repro.serve.gateway.SocGateway`), warms it up with a discarded
steady phase, drives the measured phase with **open-loop** arrivals
from :mod:`repro.serve.loadgen`, then lets the stack cool down and
returns one JSON-safe artifact containing:

- the resolved config (``run_id`` / ``group_id`` for the analyzer);
- the load report — exact latency quantiles measured from *scheduled*
  arrival times, ok/error/shed counts, send-lag;
- the gateway's own per-endpoint stats (P² quantiles from
  :class:`~repro.monitor.metrics.MetricsRegistry`);
- trace-stage attribution (``trace_stage_seconds{stage=...}`` rollup
  from a sampling :class:`~repro.monitor.tracing.SpanTracer`);
- a resource time series (RSS / CPU seconds sampled from ``/proc`` by
  :class:`~repro.monitor.resources.ResourceSampler`) plus the
  per-worker ``process_*`` series from the topology-merged snapshot.

Topologies: ``inproc`` (one :class:`FleetEngine`), ``shards``
(in-process :class:`ShardedFleet`), ``pipe``/``shm``/``tcp``
(subprocess workers over the respective transports, each child with
its own registry merged over the wire).

Runs are driven with an untrained-but-deterministic
:class:`~repro.core.TwoBranchSoCNet` — forward cost is identical to a
trained model's, and the lab measures serving, not accuracy.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from ..core import TwoBranchSoCNet
from ..monitor.metrics import MetricsRegistry, merge_snapshots
from ..monitor.resources import install_process_metrics
from ..monitor.tracing import SpanTracer
from ..serve.engine import FleetEngine
from ..serve.fleet_sim import generate_fleet
from ..serve.gateway import SocGateway
from ..serve.loadgen import arrival_times, run_open_loop
from ..serve.sharding import ShardedFleet
from ..serve.workers import WorkerSpec
from .table import RunConfig, analysis_defaults, expand_table

__all__ = ["build_topology", "execute_run", "run_table"]

_URLS = {"pipe": "pipe://", "shm": "shm://", "tcp": "tcp://127.0.0.1:0"}


def build_topology(cfg: RunConfig, model, metrics: MetricsRegistry):
    """The engine (or fleet) for one config.  Caller closes sharded fleets."""
    if cfg.topology == "inproc":
        return FleetEngine(default_model=model, metrics=metrics)
    if cfg.topology == "shards":
        return ShardedFleet(cfg.workers, default_model=model, metrics=metrics)
    spec = WorkerSpec(
        url=_URLS[cfg.topology],
        model=model,
        monitor=True,
        spawn=cfg.topology == "tcp",
    )
    return ShardedFleet(cfg.workers, spec=spec)


def _stage_attribution(snapshot: dict) -> dict:
    """``trace_stage_seconds{stage=...}`` histograms -> per-stage summary."""
    stages: dict[str, dict] = {}
    for key, summary in (snapshot.get("histograms") or {}).items():
        if not key.startswith("trace_stage_seconds{"):
            continue
        labels = key[key.find("{") + 1 : -1]
        stage = next(
            (part.split("=", 1)[1].strip('"') for part in labels.split(",") if part.startswith("stage=")),
            None,
        )
        if stage is None:
            continue
        stages[stage] = {
            "count": summary.get("count", 0),
            "total_s": summary.get("sum", 0.0),
            "mean_ms": (summary["sum"] / summary["count"] * 1e3) if summary.get("count") else None,
        }
    return stages


def _process_series(snapshot: dict) -> dict:
    """Per-pid ``process_*`` values from a (merged) snapshot."""
    out: dict[str, dict] = {}
    for kind, name in (("gauges", "process_resident_bytes"), ("counters", "process_cpu_seconds_total")):
        for key, value in (snapshot.get(kind) or {}).items():
            if key.startswith(name + "{"):
                pid = key[key.find('pid="') + 5 : key.rfind('"')]
                out.setdefault(pid, {})[name] = value
    return out


def execute_run(cfg: RunConfig, *, model=None, sample_interval_s: float = 0.1) -> dict:
    """Run one table cell end to end and return its artifact dict."""
    if model is None:
        model = TwoBranchSoCNet(rng=np.random.default_rng(cfg.seed))
    scenario = generate_fleet(
        cfg.cells,
        seed=cfg.seed,
        ambient_temps_c=(25.0,),
        c_rates=(1.0, 2.0),
        protocols=("discharge",),
        max_time_s=1800.0,
    )
    members = list(scenario.members)
    metrics = MetricsRegistry()
    sampler = install_process_metrics(metrics)
    tracer = SpanTracer(sample_rate=0.05, metrics=metrics)
    engine = build_topology(cfg, model, metrics)
    sharded = isinstance(engine, ShardedFleet)
    try:
        for m in members:
            engine.register_cell(m.cell_id, chemistry=m.chemistry)
        # pre-seed every cell with one batched estimate so the measured
        # phase never pays first-touch state initialisation
        engine.estimate([m.cell_id for m in members], 3.7, 1.0, 25.0)

        def readings(j: int):
            m = members[j % len(members)]
            data = m.cycle.data
            idx = (j * 13) % len(m.cycle)
            return (
                m.cell_id,
                float(data.voltage[idx]),
                float(data.current[idx]),
                float(data.temp_c[idx]),
            )

        async def drive() -> dict:
            gateway = SocGateway(
                engine,
                max_batch=cfg.max_batch,
                max_delay_s=cfg.max_delay_s,
                max_in_flight=cfg.max_in_flight,
                metrics=metrics,
                tracer=tracer,
            )
            async with gateway:

                async def call(j: int):
                    cell_id, v, i, t = readings(j)
                    return await gateway.estimate(cell_id, v, i, t)

                if cfg.warmup_s > 0:
                    await run_open_loop(
                        call, arrival_times("steady", cfg.rate, cfg.warmup_s, cfg.seed), shape="warmup"
                    )
                sampler.start(sample_interval_s)
                t0 = time.monotonic()
                report = await run_open_loop(
                    call,
                    arrival_times(cfg.shape, cfg.rate, cfg.duration_s, cfg.seed),
                    shape=cfg.shape,
                )
                measured_s = time.monotonic() - t0
                if cfg.cooldown_s > 0:
                    await asyncio.sleep(cfg.cooldown_s)
                sampler.stop()
                sampler.sample()
                return {"report": report.to_dict(), "measured_s": measured_s, "gateway": gateway.stats_dict()}

        result = asyncio.run(drive())
        if cfg.topology in _URLS:
            # subprocess children carry their own registries; the parent
            # registry (gateway latency, tracer stages, parent process_*)
            # merges in on top
            merged = merge_snapshots([metrics.snapshot(), engine.metrics()])
        elif sharded:
            # in-process shards share the parent registry — metrics()
            # already deduplicates it, merging again would double-count
            merged = engine.metrics()
        else:
            merged = metrics.snapshot()
        resources = sampler.series()
        return {
            "config": cfg.to_dict(),
            "load": result["report"],
            "measured_s": result["measured_s"],
            "gateway": result["gateway"],
            "stages": _stage_attribution(merged),
            "resources": {
                "samples": resources,
                "peak_rss_bytes": max((s["rss_bytes"] for s in resources), default=None),
                "cpu_seconds": (
                    resources[-1]["cpu_seconds"] - resources[0]["cpu_seconds"] if len(resources) > 1 else None
                ),
                "per_process": _process_series(merged),
            },
        }
    finally:
        sampler.stop()
        if sharded:
            engine.close()


def run_table(table: dict, out_dir: str | Path, *, progress=print) -> dict:
    """Execute every cell of ``table``; one artifact file per run.

    Writes ``run-<run_id>.json`` per run plus ``manifest.json`` (the
    table, the expansion, and the analysis defaults) into ``out_dir``.
    A run that raises is recorded as failed in the manifest and does
    not abort the rest of the sweep.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    configs = expand_table(table)
    manifest = {
        "table": table,
        "analysis": analysis_defaults(table),
        "runs": [],
    }
    for k, cfg in enumerate(configs):
        progress(f"[{k + 1}/{len(configs)}] {cfg.run_id} ...")
        entry = {"run_id": cfg.run_id, "group_id": cfg.group_id}
        try:
            t0 = time.monotonic()
            artifact = execute_run(cfg)
            artifact["wall_s"] = time.monotonic() - t0
            path = out / f"run-{cfg.run_id}.json"
            path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
            load = artifact["load"]
            entry.update(ok=True, file=path.name)
            progress(
                f"    offered {load['offered_rate']:.0f}/s achieved {load['achieved_rate']:.0f}/s "
                f"p99 {load['latency_ms']['p99']:.2f}ms shed {load['shed']} "
                f"({artifact['wall_s']:.1f}s wall)"
            )
        except Exception as exc:
            entry.update(ok=False, error=f"{type(exc).__name__}: {exc}")
            progress(f"    FAILED: {entry['error']}")
        manifest["runs"].append(entry)
    (out / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    done = sum(1 for r in manifest["runs"] if r["ok"])
    progress(f"{done}/{len(configs)} runs completed -> {out}")
    return manifest
