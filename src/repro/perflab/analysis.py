"""Aggregate perf-lab runs into a statistical summary and a capacity model.

Repetitions of the same table cell aggregate into mean ± 95% CI (t
distribution — reps are few, so normal-theory intervals would be too
tight; falls back to a small-n critical-value table when scipy is
absent).  Each (topology, workers, cells, max_batch, shape) slice then
forms a latency-vs-offered-load curve across the swept rates, and
:func:`fit_knee` finds the **capacity knee**: the largest offered rate
whose mean p99 still meets the SLO, linearly interpolating the SLO
crossing between the last passing and first failing rate.  Curves that
never cross are flagged (``unsaturated`` — the knee is only a lower
bound; sweep higher rates) as are curves already over the SLO at the
lowest rate (``saturated``).

The capacity model turns knees into planning numbers:

- ``req_s_per_worker`` — knee rate / workers;
- ``cells_per_host`` — knee rate / assumed per-cell request rate
  (default one estimate per cell every 30 s, recorded in
  ``assumptions``).

Everything lands in ``summary.json`` (per-group aggregates + curves)
and ``BENCH_capacity.json`` (the capacity table + assumptions) inside
the run directory, so a sweep is self-describing.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

__all__ = ["aggregate_groups", "analyze", "capacity_model", "fit_knee", "load_runs", "t_critical"]

# two-sided 95% t critical values by degrees of freedom (fallback when
# scipy is unavailable); beyond the table, the normal value is close
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262}


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided t critical value; scipy when available, table fallback."""
    if df < 1:
        return float("nan")
    try:
        from scipy.stats import t

        return float(t.ppf(0.5 + confidence / 2.0, df))
    except ImportError:  # pragma: no cover - scipy ships in the image
        if confidence != 0.95:
            raise
        return _T95.get(df, 1.96)


def _mean_ci(values: list[float]) -> dict:
    """mean, std (n-1), and half-width of the 95% CI for a rep set."""
    values = [v for v in values if v is not None and not math.isnan(v)]
    n = len(values)
    if n == 0:
        return {"n": 0, "mean": None, "std": None, "ci95": None}
    mean = sum(values) / n
    if n == 1:
        return {"n": 1, "mean": mean, "std": 0.0, "ci95": None}
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(var)
    return {"n": n, "mean": mean, "std": std, "ci95": t_critical(n - 1) * std / math.sqrt(n)}


def load_runs(out_dir: str | Path) -> list[dict]:
    """All per-run artifacts in a run directory (sorted by run id)."""
    out = Path(out_dir)
    artifacts = []
    for path in sorted(out.glob("run-*.json")):
        with open(path, encoding="utf-8") as fh:
            artifacts.append(json.load(fh))
    return artifacts


_GROUP_METRICS = (
    ("p99_ms", lambda a: a["load"]["latency_ms"]["p99"]),
    ("p50_ms", lambda a: a["load"]["latency_ms"]["p50"]),
    ("mean_ms", lambda a: a["load"]["latency_ms"]["mean"]),
    ("achieved_rate", lambda a: a["load"]["achieved_rate"]),
    ("shed_fraction", lambda a: a["load"]["shed"] / a["load"]["requests"] if a["load"]["requests"] else 0.0),
    ("error_fraction", lambda a: a["load"]["errors"] / a["load"]["requests"] if a["load"]["requests"] else 0.0),
    ("peak_rss_mb", lambda a: (a["resources"]["peak_rss_bytes"] or 0) / 1e6 or None),
    ("cpu_seconds", lambda a: a["resources"]["cpu_seconds"]),
)


def aggregate_groups(artifacts: list[dict]) -> list[dict]:
    """Collapse repetitions: one entry per table cell with mean ± CI95."""
    by_group: dict[str, list[dict]] = {}
    for artifact in artifacts:
        by_group.setdefault(artifact["config"]["group_id"], []).append(artifact)
    groups = []
    for group_id in sorted(by_group):
        reps = by_group[group_id]
        cfg = dict(reps[0]["config"])
        for drop in ("rep", "seed", "run_id"):
            cfg.pop(drop, None)
        entry = {"group_id": group_id, "config": cfg, "reps": len(reps)}
        for name, pick in _GROUP_METRICS:
            try:
                values = [pick(a) for a in reps]
            except (KeyError, TypeError):
                values = []
            entry[name] = _mean_ci(values)
        groups.append(entry)
    return groups


def fit_knee(points: list[tuple[float, float]], slo_ms: float) -> dict:
    """Largest offered rate meeting the p99 SLO, interpolating the crossing.

    ``points`` are (offered_rate, p99_ms) pairs for one curve.  Returns
    the knee rate plus a status: ``fit`` (crossing bracketed),
    ``unsaturated`` (every rate meets the SLO — knee is a lower bound),
    ``saturated`` (even the lowest rate misses it), or ``empty``.
    """
    points = sorted((r, p) for r, p in points if p is not None)
    if not points:
        return {"status": "empty", "knee_rate": None}
    below = [(r, p) for r, p in points if p <= slo_ms]
    above = [(r, p) for r, p in points if p > slo_ms]
    if not below:
        return {"status": "saturated", "knee_rate": 0.0, "points": points}
    last_ok = max(below)
    past = [(r, p) for r, p in above if r > last_ok[0]]
    if not past:
        return {"status": "unsaturated", "knee_rate": last_ok[0], "points": points}
    first_bad = min(past)
    r0, p0 = last_ok
    r1, p1 = first_bad
    # linear interpolation of the SLO crossing between the bracket ends
    frac = (slo_ms - p0) / (p1 - p0) if p1 > p0 else 0.0
    return {"status": "fit", "knee_rate": r0 + frac * (r1 - r0), "points": points}


def _curve_key(cfg: dict) -> tuple:
    return (cfg["topology"], cfg["workers"], cfg["cells"], cfg["max_batch"], cfg["shape"])


def capacity_model(groups: list[dict], slo_p99_ms: float, per_cell_req_s: float) -> dict:
    """Knees per curve -> req/s-per-worker and cells-per-host figures."""
    curves: dict[tuple, list[dict]] = {}
    for group in groups:
        curves.setdefault(_curve_key(group["config"]), []).append(group)
    entries = []
    for key in sorted(curves, key=str):
        topology, workers, cells, max_batch, shape = key
        members = curves[key]
        points = [(g["config"]["rate"], g["p99_ms"]["mean"]) for g in members]
        knee = fit_knee(points, slo_p99_ms)
        rate = knee["knee_rate"]
        entries.append(
            {
                "topology": topology,
                "workers": workers,
                "cells": cells,
                "max_batch": max_batch,
                "shape": shape,
                "knee": knee,
                "req_s_per_worker": (rate / workers) if rate else None,
                "cells_per_host": (rate / per_cell_req_s) if rate else None,
            }
        )
    # headline: the most conservative fitted shape per (topology, workers)
    headline: dict[str, dict] = {}
    for entry in entries:
        rate = entry["knee"]["knee_rate"]
        if not rate:
            continue
        key = f"{entry['topology']}-w{entry['workers']}"
        current = headline.get(key)
        if current is None or rate < current["knee_rate"]:
            headline[key] = {
                "knee_rate": rate,
                "shape": entry["shape"],
                "status": entry["knee"]["status"],
                "req_s_per_worker": entry["req_s_per_worker"],
                "cells_per_host": entry["cells_per_host"],
            }
    return {
        "assumptions": {
            "slo_p99_ms": slo_p99_ms,
            "per_cell_req_s": per_cell_req_s,
            "note": (
                "open-loop arrivals; latency measured from scheduled arrival; "
                "cells_per_host = knee_rate / per_cell_req_s; knee from the "
                "p99-vs-offered-load curve at the stated SLO; 'unsaturated' "
                "knees are lower bounds (sweep higher rates to tighten)"
            ),
        },
        "curves": entries,
        "headline": headline,
    }


def analyze(
    out_dir: str | Path,
    slo_p99_ms: float | None = None,
    per_cell_req_s: float | None = None,
) -> dict:
    """Aggregate a run directory; write ``summary.json`` + ``BENCH_capacity.json``."""
    out = Path(out_dir)
    artifacts = load_runs(out)
    if not artifacts:
        raise FileNotFoundError(f"no run-*.json artifacts under {out}")
    manifest_path = out / "manifest.json"
    pinned = {}
    if manifest_path.exists():
        with open(manifest_path, encoding="utf-8") as fh:
            pinned = json.load(fh).get("analysis", {})
    slo = slo_p99_ms if slo_p99_ms is not None else float(pinned.get("slo_p99_ms", 50.0))
    per_cell = per_cell_req_s if per_cell_req_s is not None else float(pinned.get("per_cell_req_s", 1.0 / 30.0))
    groups = aggregate_groups(artifacts)
    capacity = capacity_model(groups, slo, per_cell)
    summary = {"runs": len(artifacts), "groups": groups, "capacity": capacity}
    (out / "summary.json").write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    (out / "BENCH_capacity.json").write_text(json.dumps(capacity, indent=2) + "\n", encoding="utf-8")
    return summary
