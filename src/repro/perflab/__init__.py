"""``repro.perflab`` — the reproducible performance laboratory.

Turns "how many cells per host?" from folklore into a measured
observable: declarative run tables sweep topology × workers × fleet
size × batch × traffic shape (:mod:`~repro.perflab.table`), every cell
runs under **open-loop** load (:mod:`repro.serve.loadgen`) with
resource telemetry (:mod:`repro.monitor.resources`) and produces one
JSON artifact (:mod:`~repro.perflab.runner`), and the analysis stage
aggregates repetitions with confidence intervals, fits the capacity
knee of each latency-vs-load curve, and emits ``BENCH_capacity.json``
(:mod:`~repro.perflab.analysis`).

Front ends: ``python benchmarks/perf_lab.py run|analyze`` and
``repro-soc perf-lab run|analyze``.  See ``benchmarks/README.md``.
"""

from .analysis import aggregate_groups, analyze, capacity_model, fit_knee, load_runs, t_critical
from .runner import build_topology, execute_run, run_table
from .table import DEFAULTS, TOPOLOGIES, RunConfig, analysis_defaults, expand_table, load_table

__all__ = [
    "DEFAULTS",
    "RunConfig",
    "TOPOLOGIES",
    "aggregate_groups",
    "analysis_defaults",
    "analyze",
    "build_topology",
    "capacity_model",
    "execute_run",
    "expand_table",
    "fit_knee",
    "load_runs",
    "load_table",
    "run_table",
    "t_critical",
]
