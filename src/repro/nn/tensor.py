"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of :mod:`repro.nn`, the small deep-learning
substrate used throughout the reproduction (the paper trains its networks
with a conventional deep-learning stack; this module provides equivalent
semantics without external dependencies).

The design is a vectorized tape: every :class:`Tensor` produced by an
operation remembers its parent tensors and a closure that accumulates
gradients into them.  Calling :meth:`Tensor.backward` topologically sorts
the tape and runs the closures in reverse order.

Broadcasting follows numpy semantics; gradients flowing into a broadcast
operand are summed over the broadcast axes (see :func:`unbroadcast`).

Example
-------
>>> x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad
array([2., 4., 6.])
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence, Union

import numpy as np

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "full",
    "arange",
    "randn",
    "rand",
    "cat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "no_grad",
    "is_grad_enabled",
]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking.

    Operations executed inside the block produce tensors with
    ``requires_grad=False`` and record nothing on the tape.  Mirrors the
    usual deep-learning-framework idiom for inference-only code paths.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` over axes that were added or expanded by broadcasting.

    Parameters
    ----------
    grad:
        Gradient with the broadcast (output) shape.
    shape:
        The original shape of the operand the gradient must match.

    Returns
    -------
    numpy.ndarray
        Gradient reshaped to ``shape``.
    """
    if grad.shape == shape:
        return grad
    # Remove leading axes introduced by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes where the operand had size 1 but the output did not.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype)
    if arr.dtype.kind in "iub":  # promote integers/booleans to float
        arr = arr.astype(np.float64)
    return arr


def _as_tensor(value: ArrayLike) -> "Tensor":
    return value if isinstance(value, Tensor) else Tensor(value)


class Tensor:
    """A numpy array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Anything convertible to a floating-point numpy array.
    requires_grad:
        When true, gradients are accumulated into :attr:`grad` by
        :meth:`backward`.

    Notes
    -----
    Only floating-point tensors can require gradients.  In-place
    mutation of :attr:`data` is allowed for optimizer updates but must
    never be performed on tensors that participate in a live tape.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    # Make numpy defer to Tensor's reflected operators (e.g. np.float64 * Tensor).
    __array_priority__ = 100.0

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        if requires_grad and self.data.dtype.kind != "f":
            raise TypeError("only floating-point tensors can require gradients")
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Dtype of the underlying array."""
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array_repr(self.data)}{grad_note})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the tape."""
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        """Return a tape-free deep copy of this tensor."""
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # tape plumbing
    # ------------------------------------------------------------------
    def _make_result(
        self,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = unbroadcast(np.asarray(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: ArrayLike | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1.0, which is only valid for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.broadcast_to(_as_array(grad), self.data.shape)

        # Topological order over the tape reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make_result(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make_result(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make_result(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make_result(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_result(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if other.data.ndim == 2 else grad * self.data)
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return self._make_result(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make_result(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make_result(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self**0.5

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make_result(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid, computed stably for large inputs."""
        x = np.atleast_1d(self.data)
        out_data = np.empty_like(x)
        pos = x >= 0
        out_data[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out_data[~pos] = ex / (1.0 + ex)
        out_data = out_data.reshape(self.data.shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_result(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_result(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        """Elementwise leaky ReLU with the given slope for negative inputs."""
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)
        out_data = self.data * scale

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * scale)

        return self._make_result(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at zero)."""
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make_result(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_result(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over the given axis (or all elements)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make_result(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over the given axis (or all elements)."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over the given axis; ties split gradient evenly."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out_data, axis=axis)
            mask = (self.data == out).astype(self.data.dtype)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / counts)

        return self._make_result(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Minimum over the given axis; ties split gradient evenly."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Return a tensor with the same data viewed in a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return self._make_result(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        """Return a 1-D view of the tensor."""
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        """Permute dimensions (reverse order when no axes are given)."""
        axes_t = axes if axes else None
        if axes_t is not None and len(axes_t) == 1 and isinstance(axes_t[0], (tuple, list)):
            axes_t = tuple(axes_t[0])
        out_data = self.data.transpose(axes_t)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes_t is None:
                self._accumulate(np.asarray(grad).transpose())
            else:
                inverse = np.argsort(axes_t)
                self._accumulate(np.asarray(grad).transpose(inverse))

        return self._make_result(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        """Transposed view (reversed axes)."""
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full_grad = np.zeros_like(self.data)
                np.add.at(full_grad, index, grad)
                self._accumulate(full_grad)

        return self._make_result(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # comparisons (no gradient; returned as plain numpy arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)


# ----------------------------------------------------------------------
# free functions
# ----------------------------------------------------------------------
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` (convenience constructor)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    """Tensor of zeros with the given shape."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    """Tensor of ones with the given shape."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def full(shape, value: float, requires_grad: bool = False) -> Tensor:
    """Tensor filled with ``value``."""
    return Tensor(np.full(shape, float(value)), requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False) -> Tensor:
    """Float-valued ``numpy.arange`` wrapped in a tensor."""
    return Tensor(np.arange(*args, dtype=np.float64), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    """Standard-normal tensor; uses ``rng`` when provided for determinism."""
    gen = rng if rng is not None else np.random.default_rng()
    return Tensor(gen.standard_normal(shape), requires_grad=requires_grad)


def rand(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    """Uniform ``[0, 1)`` tensor; uses ``rng`` when provided."""
    gen = rng if rng is not None else np.random.default_rng()
    return Tensor(gen.random(shape), requires_grad=requires_grad)


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    anchor = tensors[0]
    return anchor._make_result(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(grad, i, axis=axis))

    anchor = tensors[0]
    return anchor._make_result(out_data, tensors, backward)


def where(condition: ArrayLike, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    cond = _as_array(condition).astype(bool)
    a_t, b_t = _as_tensor(a), _as_tensor(b)
    out_data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        if a_t.requires_grad:
            a_t._accumulate(grad * cond)
        if b_t.requires_grad:
            b_t._accumulate(grad * ~cond)

    return a_t._make_result(out_data, (a_t, b_t), backward)


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum; gradient follows the winning operand."""
    a_t, b_t = _as_tensor(a), _as_tensor(b)
    return where(a_t.data >= b_t.data, a_t, b_t)


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise minimum; gradient follows the winning operand."""
    a_t, b_t = _as_tensor(a), _as_tensor(b)
    return where(a_t.data <= b_t.data, a_t, b_t)
