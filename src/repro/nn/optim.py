"""Gradient-descent optimizers and learning-rate schedulers.

Adam is the workhorse used to train the paper's networks; SGD (with
momentum) and AdamW are provided for ablations and baselines, together
with the usual schedulers and global-norm gradient clipping.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .layers import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "CosineAnnealingLR",
    "ReduceLROnPlateau",
    "clip_grad_norm",
]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so the global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging/tests).
    """
    params = [p for p in parameters if p.grad is not None]
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update; must be overridden."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = grad + self.momentum * v if self.nesterov else v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.betas = (beta1, beta2)
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.parameters:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class StepLR:
    """Multiply the optimizer's learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class CosineAnnealingLR:
    """Cosine-annealed learning rate from the base value down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the learning rate."""
        self.epoch = min(self.epoch + 1, self.t_max)
        cos = (1 + math.cos(math.pi * self.epoch / self.t_max)) / 2
        self.optimizer.lr = self.eta_min + (self.base_lr - self.eta_min) * cos


class ReduceLROnPlateau:
    """Reduce the learning rate when a monitored metric stops improving."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 5,
        min_lr: float = 1e-6,
        threshold: float = 1e-4,
    ):
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.threshold = threshold
        self.best = math.inf
        self.bad_epochs = 0

    def step(self, metric: float) -> None:
        """Record the epoch metric and reduce the LR after ``patience`` bad epochs."""
        if metric < self.best - self.threshold:
            self.best = metric
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.bad_epochs > self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
                self.bad_epochs = 0
