"""Weight initialization schemes for :mod:`repro.nn` layers.

All initializers take an explicit :class:`numpy.random.Generator` so that
every experiment in the reproduction is exactly seedable (the paper reports
averages over 5 random seeds; see ``repro.eval.harness``).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "kaiming_normal",
    "uniform",
    "zeros",
    "orthogonal",
]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        raise ValueError(f"need at least 2 dimensions to compute fans, got {shape}")
    fan_in, fan_out = shape[0], shape[1]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return fan_in * receptive, fan_out * receptive


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization, ``U(-a, a)`` with ``a = gain*sqrt(6/(fan_in+fan_out))``."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization with std ``gain*sqrt(2/(fan_in+fan_out))``."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5.0)) -> np.ndarray:
    """He/Kaiming uniform initialization (the default for ReLU stacks)."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a**2))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator, a: float = 0.0) -> np.ndarray:
    """He/Kaiming normal initialization with std ``sqrt(2/((1+a^2)*fan_in))``."""
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / ((1.0 + a**2) * fan_in))
    return rng.normal(0.0, std, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Plain uniform initialization on ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization (used for recurrent kernels)."""
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]
