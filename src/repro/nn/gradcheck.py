"""Finite-difference gradient checking for the autograd engine.

Used heavily by the test suite to prove that every backward rule in
:mod:`repro.nn.tensor` is correct; exposed as a public utility so that
users extending the substrate with new ops can validate them the same
way.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients"]


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function taking :class:`Tensor` arguments and returning a tensor.
    inputs:
        Numpy arrays; ``inputs[index]`` is perturbed elementwise.
    index:
        Which input to differentiate with respect to.
    eps:
        Perturbation step.

    Returns
    -------
    numpy.ndarray
        Gradient with the same shape as ``inputs[index]``.
    """
    base = [np.array(a, dtype=np.float64) for a in inputs]
    target = base[index]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = target[idx]
        target[idx] = original + eps
        plus = float(fn(*[Tensor(a) for a in base]).sum().item())
        target[idx] = original - eps
        minus = float(fn(*[Tensor(a) for a in base]).sum().item())
        target[idx] = original
        grad[idx] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``sum(fn(*inputs))`` match finite differences.

    Raises
    ------
    AssertionError
        When any input's analytic gradient deviates beyond tolerance.
    """
    tensors = [Tensor(np.array(a, dtype=np.float64), requires_grad=True) for a in inputs]
    out = fn(*tensors).sum()
    out.backward()
    for i, t in enumerate(tensors):
        expected = numeric_gradient(fn, inputs, i, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(actual - expected)))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{actual}\nnumeric:\n{expected}"
            )
