"""Loss functions for :mod:`repro.nn`.

The paper trains both branches with the Mean Absolute Error (Sec. III-B)
and adds a second MAE term computed on Coulomb-counting collocation
points (Eq. 2).  MSE and Huber are provided for the baselines and
ablations.
"""

from __future__ import annotations

from .tensor import Tensor

__all__ = ["mae_loss", "mse_loss", "huber_loss", "MAELoss", "MSELoss", "HuberLoss"]


def _check_shapes(prediction: Tensor, target: Tensor) -> None:
    if prediction.shape != target.shape:
        raise ValueError(f"prediction shape {prediction.shape} != target shape {target.shape}")


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error ``mean(|prediction - target|)``."""
    _check_shapes(prediction, target)
    return (prediction - target).abs().mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error ``mean((prediction - target)^2)``."""
    _check_shapes(prediction, target)
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic inside ``|e| <= delta``, linear outside."""
    _check_shapes(prediction, target)
    if delta <= 0:
        raise ValueError("delta must be positive")
    error = prediction - target
    abs_error = error.abs()
    quadratic = 0.5 * error * error
    linear = delta * abs_error - 0.5 * delta * delta
    from .tensor import where

    return where(abs_error.data <= delta, quadratic, linear).mean()


class MAELoss:
    """Callable wrapper around :func:`mae_loss`."""

    def __call__(self, prediction: Tensor, target: Tensor) -> Tensor:
        return mae_loss(prediction, target)


class MSELoss:
    """Callable wrapper around :func:`mse_loss`."""

    def __call__(self, prediction: Tensor, target: Tensor) -> Tensor:
        return mse_loss(prediction, target)


class HuberLoss:
    """Callable wrapper around :func:`huber_loss` with a fixed delta."""

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def __call__(self, prediction: Tensor, target: Tensor) -> Tensor:
        return huber_loss(prediction, target, delta=self.delta)
