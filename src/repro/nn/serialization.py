"""Model checkpointing: save/load ``state_dict`` snapshots as ``.npz``.

The paper's deployment story (a 9 kB model running on a BMS/PMIC) makes
compact, dependency-free serialization part of the system; ``.npz`` keeps
that property while remaining loadable anywhere numpy exists.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["save_state", "load_state", "peek_meta", "save_model", "load_model_into"]

_META_KEY = "__meta_json__"


def save_state(state: dict[str, np.ndarray], path: str | Path, meta: dict | None = None) -> None:
    """Write a name->array mapping (plus optional JSON metadata) to ``path``.

    Parameters
    ----------
    state:
        Typically the output of :meth:`repro.nn.layers.Module.state_dict`.
    path:
        Target file; the ``.npz`` suffix is appended by numpy if absent.
    meta:
        Optional JSON-serializable metadata (configs, seeds, metrics).
    """
    payload = dict(state)
    if _META_KEY in payload:
        raise ValueError(f"state may not contain reserved key {_META_KEY!r}")
    if meta is not None:
        payload[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(str(path), **payload)


def load_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict | None]:
    """Read back a state mapping and metadata written by :func:`save_state`."""
    with np.load(str(path)) as archive:
        meta = None
        state = {}
        for key in archive.files:
            if key == _META_KEY:
                meta = json.loads(archive[key].tobytes().decode("utf-8"))
            else:
                state[key] = archive[key]
    return state, meta


def peek_meta(path: str | Path) -> dict | None:
    """Read only the metadata of a checkpoint, skipping the weights.

    ``np.load`` maps the archive lazily, so this stays cheap even for
    large checkpoints — it is what lets a model registry index a whole
    directory of snapshots without materializing any weight arrays.
    """
    with np.load(str(path)) as archive:
        if _META_KEY not in archive.files:
            return None
        return json.loads(archive[_META_KEY].tobytes().decode("utf-8"))


def save_model(model: Module, path: str | Path, meta: dict | None = None) -> None:
    """Snapshot a module's parameters to ``path``."""
    save_state(model.state_dict(), path, meta=meta)


def load_model_into(model: Module, path: str | Path) -> dict | None:
    """Load parameters saved by :func:`save_model` into ``model`` in place.

    Returns the metadata dict stored alongside the weights (or ``None``).
    """
    state, meta = load_state(path)
    model.load_state_dict(state)
    return meta
