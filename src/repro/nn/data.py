"""Minimal dataset / dataloader utilities for training loops.

Mirrors the familiar Dataset / DataLoader split: a :class:`TensorDataset`
pairs feature and target arrays, and :class:`DataLoader` yields shuffled
minibatches as numpy arrays (converted to tensors inside the training
loop, where gradient tracking starts).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["Dataset", "TensorDataset", "DataLoader", "train_val_split"]


class Dataset:
    """Abstract random-access dataset."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class TensorDataset(Dataset):
    """Dataset wrapping equally-long arrays; indexing returns row tuples."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("TensorDataset needs at least one array")
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ValueError(f"arrays have mismatched lengths: {sorted(lengths)}")
        self.arrays = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index):
        return tuple(a[index] for a in self.arrays)


class DataLoader:
    """Iterate minibatches over a :class:`TensorDataset`.

    Parameters
    ----------
    dataset:
        The dataset to draw from.
    batch_size:
        Number of rows per batch.
    shuffle:
        Reshuffle indices at the start of every epoch.
    rng:
        Generator used for shuffling (deterministic experiments).
    drop_last:
        Drop the final short batch when the dataset size is not a
        multiple of ``batch_size``.
    """

    def __init__(
        self,
        dataset: TensorDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        n = len(self.dataset)
        indices = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(indices)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            batch = indices[start : start + self.batch_size]
            yield self.dataset[batch]


def train_val_split(
    dataset: TensorDataset,
    val_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
) -> tuple[TensorDataset, TensorDataset]:
    """Randomly split a dataset into train and validation subsets.

    Parameters
    ----------
    dataset:
        Source dataset.
    val_fraction:
        Fraction of rows assigned to the validation set, in (0, 1).
    rng:
        Generator for the permutation.

    Returns
    -------
    (train, val):
        Two new :class:`TensorDataset` objects over copied row subsets.
    """
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    n = len(dataset)
    n_val = max(1, int(round(n * val_fraction)))
    if n_val >= n:
        raise ValueError("dataset too small for the requested split")
    gen = rng if rng is not None else np.random.default_rng()
    perm = gen.permutation(n)
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    train = TensorDataset(*(a[train_idx] for a in dataset.arrays))
    val = TensorDataset(*(a[val_idx] for a in dataset.arrays))
    return train, val
