"""Neural-network modules (layers) for :mod:`repro.nn`.

The :class:`Module` base class provides parameter discovery, train/eval
mode switching, and ``state_dict`` round-tripping; concrete layers cover
everything the paper's models need: fully-connected layers with ReLU
activations (the two-branch network of Sec. III-A) plus a few extras used
by the baselines.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from . import init as initializers
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "MLP",
    "export_affine_chain",
]


class Parameter(Tensor):
    """A tensor that is registered as trainable by :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically by :meth:`parameters`
    and :meth:`named_parameters`.
    """

    def __init__(self):
        self.training = True

    # -- forward ------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the layer output; must be overridden."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter discovery -------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            if name == "training":
                continue
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters as a flat list."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # -- mode switching -------------------------------------------------
    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules, depth-first."""
        yield self
        for child in self._children():
            yield from child.modules()

    def _children(self) -> Iterator["Module"]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def train(self) -> "Module":
        """Put the module (recursively) into training mode."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Put the module (recursively) into evaluation mode."""
        for m in self.modules():
            m.training = False
        return self

    # -- state dict -------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a name->array snapshot of all parameters (copies)."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values in place from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = value.astype(param.data.dtype, copy=True)


class Linear(Module):
    """Fully-connected affine layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Include an additive bias (default true).
    rng:
        Generator used for weight initialization; a fresh default
        generator is used when omitted.
    weight_init:
        Initializer from :mod:`repro.nn.init` (default Kaiming uniform,
        matching common framework defaults for ReLU stacks).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        weight_init: Callable = initializers.kaiming_uniform,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer widths must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init((in_features, out_features), rng))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_features,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky ReLU activation with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic-sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    """No-op layer (useful as a configurable placeholder)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_shape))
        self.beta = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    def append(self, layer: Module) -> "Sequential":
        """Append a layer and return self for chaining."""
        self.layers.append(layer)
        return self


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden stack.

    This is the building block used for both branches of the paper's
    network (Sec. III-A: hidden widths 16/32/16 with ReLU, single
    linear output unit).

    Parameters
    ----------
    in_features:
        Input width (3 for Branch 1, 4 for Branch 2).
    hidden:
        Sequence of hidden-layer widths.
    out_features:
        Output width (1 for a scalar SoC head).
    activation:
        Factory for the activation module between hidden layers.
    rng:
        Generator for deterministic initialization.
    """

    def __init__(
        self,
        in_features: int,
        hidden: tuple[int, ...] = (16, 32, 16),
        out_features: int = 1,
        activation: Callable[[], Module] = ReLU,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        widths = [in_features, *hidden]
        layers: list[Module] = []
        for w_in, w_out in zip(widths[:-1], widths[1:]):
            layers.append(Linear(w_in, w_out, rng=rng))
            layers.append(activation())
        layers.append(Linear(widths[-1], out_features, rng=rng))
        self.net = Sequential(*layers)
        self.in_features = in_features
        self.out_features = out_features
        self.hidden = tuple(hidden)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


def export_affine_chain(module: Module) -> list[tuple[np.ndarray, np.ndarray | None, str]]:
    """Flatten a feed-forward stack into ``(weight, bias, activation)`` triples.

    This is the weight-export half of the compiled inference path (see
    :class:`repro.core.kernels.CompiledTwoBranchKernel`): an :class:`MLP`
    or :class:`Sequential` of affine layers and elementwise activations
    is reduced to plain contiguous numpy blocks — one ``(in, out)``
    weight matrix, one ``(out,)`` bias (or ``None``) and an activation
    tag per affine stage — with no :class:`Module`/:class:`Tensor`
    machinery left.  Weights are *copies* detached from autograd, so a
    compiled consumer is a snapshot of the module at export time.

    Activation tags are ``"identity"``, ``"relu"``, ``"tanh"``,
    ``"sigmoid"`` or ``"leaky_relu:<slope>"``; a trailing affine layer
    (the usual linear head) exports with ``"identity"``.

    Raises
    ------
    TypeError
        When the stack contains anything other than :class:`Linear`
        layers and supported elementwise activations (``Dropout``,
        ``LayerNorm`` and friends are not affine-chain material).
    ValueError
        When an activation appears with no affine layer before it.
    """
    if isinstance(module, MLP):
        module = module.net
    if isinstance(module, Linear):
        layers: list[Module] = [module]
    elif isinstance(module, Sequential):
        layers = list(module.layers)
    else:
        raise TypeError(f"cannot export {type(module).__name__} as an affine chain")
    simple_tags = {ReLU: "relu", Tanh: "tanh", Sigmoid: "sigmoid", Identity: "identity"}
    staged: list[tuple[Linear, str]] = []
    pending: Linear | None = None
    for layer in layers:
        if isinstance(layer, Linear):
            if pending is not None:
                staged.append((pending, "identity"))
            pending = layer
            continue
        if isinstance(layer, LeakyReLU):
            tag = f"leaky_relu:{layer.negative_slope!r}"
        elif type(layer) in simple_tags:
            tag = simple_tags[type(layer)]
        else:
            raise TypeError(f"cannot export layer {layer!r} into an affine chain")
        if tag == "identity":
            continue
        if pending is None:
            raise ValueError(f"activation {tag!r} has no affine layer before it")
        staged.append((pending, tag))
        pending = None
    if pending is not None:
        staged.append((pending, "identity"))
    if not staged:
        raise ValueError("empty affine chain: no Linear layers to export")
    return [
        (
            np.ascontiguousarray(lin.weight.data, dtype=np.float64),
            None if lin.bias is None else np.ascontiguousarray(lin.bias.data, dtype=np.float64),
            tag,
        )
        for lin, tag in staged
    ]
