"""``repro.nn`` — a compact, dependency-free deep-learning substrate.

The paper trains small fully-connected networks (and compares against an
LSTM baseline) with a conventional deep-learning stack.  This package
provides equivalent building blocks implemented on numpy:

- :mod:`repro.nn.tensor` — reverse-mode autograd tensors;
- :mod:`repro.nn.layers` — modules (Linear, activations, MLP, ...);
- :mod:`repro.nn.recurrent` — LSTM layers for the SoA baseline;
- :mod:`repro.nn.losses` — MAE/MSE/Huber;
- :mod:`repro.nn.optim` — SGD/Adam/AdamW + schedulers;
- :mod:`repro.nn.data` — datasets and minibatch loaders;
- :mod:`repro.nn.serialization` — ``.npz`` checkpoints.

Gradients of every operation are validated against finite differences in
``tests/test_nn_tensor.py`` and ``tests/test_nn_gradcheck.py``.
"""

from . import init
from .data import DataLoader, Dataset, TensorDataset, train_val_split
from .layers import (
    MLP,
    Dropout,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    export_affine_chain,
)
from .losses import HuberLoss, MAELoss, MSELoss, huber_loss, mae_loss, mse_loss
from .optim import (
    SGD,
    Adam,
    AdamW,
    CosineAnnealingLR,
    Optimizer,
    ReduceLROnPlateau,
    StepLR,
    clip_grad_norm,
)
from .recurrent import LSTM, LSTMCell, LSTMRegressor
from .serialization import load_model_into, load_state, peek_meta, save_model, save_state
from .tensor import (
    Tensor,
    arange,
    cat,
    full,
    is_grad_enabled,
    maximum,
    minimum,
    no_grad,
    ones,
    rand,
    randn,
    stack,
    tensor,
    where,
    zeros,
)

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "full",
    "arange",
    "randn",
    "rand",
    "cat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "no_grad",
    "is_grad_enabled",
    "init",
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "MLP",
    "export_affine_chain",
    "LSTM",
    "LSTMCell",
    "LSTMRegressor",
    "mae_loss",
    "mse_loss",
    "huber_loss",
    "MAELoss",
    "MSELoss",
    "HuberLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "CosineAnnealingLR",
    "ReduceLROnPlateau",
    "clip_grad_norm",
    "Dataset",
    "TensorDataset",
    "DataLoader",
    "train_val_split",
    "save_state",
    "load_state",
    "peek_meta",
    "save_model",
    "load_model_into",
]
