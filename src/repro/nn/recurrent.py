"""Recurrent layers (LSTM) used by the state-of-the-art baseline.

The paper compares its 2.3k-parameter feed-forward network against the
LSTM SoC estimator of Wong et al. (Table I).  This module provides a
faithful LSTM implementation on top of the autograd tensor so that the
baseline can be trained and measured on the same synthetic data.
"""

from __future__ import annotations

import numpy as np

from .layers import Linear, Module, Parameter
from .tensor import Tensor, stack

__all__ = ["LSTMCell", "LSTM", "LSTMRegressor"]


class LSTMCell(Module):
    """A single LSTM cell with the standard gate formulation.

    Gates are packed in i, f, g, o order along the last axis of the
    weight matrices.  The forget-gate bias is initialized to 1, the
    usual trick for stable early training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        k = 1.0 / np.sqrt(hidden_size)
        self.weight_ih = Parameter(rng.uniform(-k, k, size=(input_size, 4 * hidden_size)))
        self.weight_hh = Parameter(rng.uniform(-k, k, size=(hidden_size, 4 * hidden_size)))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor] | None = None) -> tuple[Tensor, Tensor]:
        """Advance one timestep.

        Parameters
        ----------
        x:
            Input of shape ``(batch, input_size)``.
        state:
            Tuple ``(h, c)`` each of shape ``(batch, hidden_size)``;
            zeros when omitted.

        Returns
        -------
        (h, c):
            The new hidden and cell states.
        """
        batch = x.shape[0]
        if state is None:
            h = Tensor(np.zeros((batch, self.hidden_size)))
            c = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            h, c = state
        gates = x @ self.weight_ih + h @ self.weight_hh + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new


class LSTM(Module):
    """Multi-layer unidirectional LSTM over batched sequences."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        ]

    def forward(self, x: Tensor) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Run the stack over a full sequence.

        Parameters
        ----------
        x:
            Input of shape ``(batch, seq_len, input_size)``.

        Returns
        -------
        (outputs, (h, c)):
            ``outputs`` has shape ``(batch, seq_len, hidden_size)`` (top
            layer); ``h``/``c`` are the final states of the top layer.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, seq, features), got shape {x.shape}")
        seq_len = x.shape[1]
        layer_input = [x[:, t, :] for t in range(seq_len)]
        h_final = c_final = None
        for cell in self.cells:
            h = c = None
            outputs = []
            for step in layer_input:
                h, c = cell(step, None if h is None else (h, c))
                outputs.append(h)
            layer_input = outputs
            h_final, c_final = h, c
        return stack(layer_input, axis=1), (h_final, c_final)


class LSTMRegressor(Module):
    """LSTM stack with a dense regression head (the Wong-style baseline).

    The published baseline maps a window of ``(V, I, T)`` samples to the
    SoC at the window's end.  Structure: ``num_layers`` LSTM layers
    followed by a ReLU dense layer and a linear scalar head.
    """

    def __init__(
        self,
        input_size: int = 3,
        hidden_size: int = 64,
        num_layers: int = 2,
        dense_size: int = 32,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.lstm = LSTM(input_size, hidden_size, num_layers=num_layers, rng=rng)
        self.dense = Linear(hidden_size, dense_size, rng=rng)
        self.head = Linear(dense_size, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(batch, seq, features)`` windows to ``(batch, 1)`` SoC."""
        _, (h, _) = self.lstm(x)
        return self.head(self.dense(h).relu())
