"""Reproduction of *Coupling Neural Networks and Physics Equations For
Li-Ion Battery State-of-Charge Prediction* (DATE 2025).

Package layout
--------------
- :mod:`repro.nn` - numpy autograd / NN substrate (stand-in for the deep
  learning framework used by the authors);
- :mod:`repro.battery` - equivalent-circuit battery simulator (stand-in
  for the lab cells behind the Sandia and LG datasets);
- :mod:`repro.datasets` - synthetic campaigns reproducing the two public
  datasets' collection protocols;
- :mod:`repro.core` - the paper's contribution: the two-branch SoC
  network, Coulomb-counting physics loss, split training, rollout;
- :mod:`repro.baselines` - Physics-Only, LSTM, DE-MLP/DE-LSTM, EKF;
- :mod:`repro.eval` - metrics, multi-seed harness, experiment drivers
  for Fig. 3, Fig. 4, Table I and Fig. 5.

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md``
for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
