"""Plain-text tables and CSV dumps for the experiment drivers.

The reproduction is headless (no plotting dependency), so every figure
is regenerated as the *numbers behind the figure*: an aligned text
table on stdout plus an optional CSV with the raw series.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

__all__ = ["format_table", "save_csv", "format_mae_grid", "format_rollout_summary"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], float_digits: int = 4) -> str:
    """Render an aligned monospace table.

    Floats are formatted to ``float_digits``; everything else via
    ``str``.  Column widths adapt to content.
    """
    if not headers:
        raise ValueError("need at least one column")

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_mae_grid(
    mae_by_variant: dict[str, dict[float, float]],
    baseline: str | None = None,
    float_digits: int = 4,
) -> str:
    """Render the Fig. 3/4-style grid: one row per variant, one column
    per test horizon, with percent improvement vs a baseline variant.

    Parameters
    ----------
    mae_by_variant:
        ``{variant: {horizon_s: mean_mae}}``.
    baseline:
        Variant name used for the improvement annotation (usually
        ``"No-PINN"``); omit to skip the annotation.
    """
    if not mae_by_variant:
        raise ValueError("no results to format")
    horizons = sorted(next(iter(mae_by_variant.values())))
    headers = ["config"] + [f"test@{h:g}s" for h in horizons]
    rows = []
    base = mae_by_variant.get(baseline) if baseline else None
    for name, per_h in mae_by_variant.items():
        cells: list[str] = [name]
        for h in horizons:
            value = per_h[h]
            cell = f"{value:.{float_digits}f}"
            if base is not None and name != baseline and base[h] > 0:
                gain = 100.0 * (base[h] - value) / base[h]
                cell += f" ({gain:+.0f}%)"
            cells.append(cell)
        rows.append(cells)
    return format_table(headers, rows, float_digits)


def format_rollout_summary(rollouts: dict, max_rows: int | None = None, float_digits: int = 4) -> str:
    """Render one table row per rollout trajectory.

    Columns cover the full error picture of an autoregressive trace:
    step count, trajectory MAE/RMSE, worst-point error, and the
    end-of-window error the paper reports.

    Parameters
    ----------
    rollouts:
        ``{label: RolloutResult}`` (e.g. per cycle, or per fleet cell).
    max_rows:
        Truncate to the first ``max_rows`` trajectories (a trailing
        line reports how many were omitted); ``None`` shows all.
    """
    if not rollouts:
        raise ValueError("no rollouts to format")
    headers = ["trajectory", "steps", "mae", "rmse", "max|err|", "final|err|"]
    items = list(rollouts.items())
    omitted = 0
    if max_rows is not None and len(items) > max_rows:
        omitted = len(items) - max_rows
        items = items[:max_rows]
    rows = [
        [label, len(r) - 1, r.mae(), r.rmse(), r.max_error(), r.final_error()]
        for label, r in items
    ]
    text = format_table(headers, rows, float_digits)
    if omitted:
        text += f"\n... ({omitted} more trajectories)"
    return text


def save_csv(path: str | Path, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Write rows (with a header line) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
