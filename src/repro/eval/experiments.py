"""Canonical experiment drivers: one per table/figure of the paper.

Each ``run_*`` function regenerates the rows/series behind one artifact
of the evaluation section:

- :func:`run_fig3` — Sandia MAE bars (Fig. 3);
- :func:`run_fig4` — LG MAE bars (Fig. 4);
- :func:`run_table1` — state-of-the-art comparison (Table I);
- :func:`run_fig5` — autoregressive full-discharge rollouts (Fig. 5).

Two budgets exist: ``fast_budget()`` (scaled-down campaigns, fewer
seeds/epochs — minutes on a laptop; used by the pytest benchmarks) and
``full_budget()`` (paper-parity protocol: full campaigns, 5 seeds).
Run from the command line::

    python -m repro.eval.experiments fig3 [--full] [--out results/]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

import numpy as np

from ..baselines.de_pinn import DEConfig, make_de_pairs, train_de_estimator
from ..baselines.lstm import LSTMConfig, make_sequence_samples, paper_scale_config, train_lstm_estimator
from ..baselines.physics_only import PhysicsOnlyModel
from ..core.complexity import lstm_complexity, model_complexity
from ..core.config import ModelConfig, PhysicsConfig, TrainConfig
from ..core.rollout import model_rollout, rollout_cycle
from ..datasets.base import CycleSet
from ..datasets.lg import LGConfig, cached_lg
from ..datasets.preprocessing import smooth_cycle
from ..datasets.sandia import SandiaConfig, cached_sandia
from ..datasets.windowing import make_estimation_samples, make_prediction_samples
from ..nn.recurrent import LSTMRegressor
from .harness import PHYSICS_ONLY, ExperimentResult, evaluate_variants
from .metrics import mae
from .reporting import format_mae_grid, format_table, save_csv

__all__ = [
    "Budget",
    "fast_budget",
    "full_budget",
    "sandia_variants",
    "lg_variants",
    "run_fig3",
    "run_fig4",
    "run_table1",
    "run_fig5",
    "main",
]


@dataclasses.dataclass(frozen=True)
class Budget:
    """Compute budget for the experiment drivers.

    ``fast`` trades campaign size, seeds and epochs for wall-clock;
    ``full`` follows the paper's protocol.
    """

    name: str
    seeds: tuple[int, ...]
    sandia_train: TrainConfig
    lg_train: TrainConfig
    sandia: SandiaConfig
    lg: LGConfig
    lg_smooth_s: float
    lg_train_stride: int
    lg_test_stride: int
    sandia_stride: int
    lstm: LSTMConfig
    de_mlp: DEConfig
    de_lstm: DEConfig


def fast_budget() -> Budget:
    """Minutes-scale budget used by the pytest benchmarks."""
    return Budget(
        name="fast",
        seeds=(0, 1),
        sandia_train=TrainConfig(epochs_branch1=120, epochs_branch2=120),
        lg_train=TrainConfig(epochs_branch1=80, epochs_branch2=80, max_train_rows=10000),
        sandia=SandiaConfig(sim_dt_s=2.0, seed=0),
        lg=LGConfig(
            sampling_period_s=0.5,
            n_train_mixed=3,
            train_temps_c=(0.0, 10.0, 25.0),
            mixed_segment_s=(180.0, 420.0),
            seed=0,
        ),
        lg_smooth_s=30.0,
        lg_train_stride=10,
        lg_test_stride=20,
        sandia_stride=1,
        lstm=LSTMConfig(seq_len=30, sample_stride=2, epochs=6, max_train_rows=1500),
        de_mlp=DEConfig(backbone="mlp", epochs=10, max_train_rows=3000),
        de_lstm=DEConfig(backbone="lstm", hidden=(24,), epochs=6, max_train_rows=1500),
    )


def full_budget() -> Budget:
    """Paper-parity budget (full campaigns, 5 seeds)."""
    return Budget(
        name="full",
        seeds=(0, 1, 2, 3, 4),
        sandia_train=TrainConfig(epochs_branch1=250, epochs_branch2=250),
        lg_train=TrainConfig(epochs_branch1=40, epochs_branch2=40, max_train_rows=12000),
        sandia=SandiaConfig(seed=0),
        lg=LGConfig(seed=0),
        lg_smooth_s=30.0,
        lg_train_stride=100,
        lg_test_stride=100,
        sandia_stride=1,
        lstm=LSTMConfig(seq_len=30, sample_stride=10, epochs=15, max_train_rows=3000),
        de_mlp=DEConfig(backbone="mlp", epochs=25, max_train_rows=4000),
        de_lstm=DEConfig(backbone="lstm", hidden=(32,), epochs=12, max_train_rows=2000),
    )


def sandia_variants() -> dict:
    """The six Fig. 3 configurations."""
    return {
        "No-PINN": None,
        "Physics-Only": PHYSICS_ONLY,
        "PINN-120s": PhysicsConfig(horizons_s=(120.0,)),
        "PINN-240s": PhysicsConfig(horizons_s=(240.0,)),
        "PINN-360s": PhysicsConfig(horizons_s=(360.0,)),
        "PINN-All": PhysicsConfig(horizons_s=(120.0, 240.0, 360.0)),
    }


def lg_variants() -> dict:
    """The six Fig. 4 configurations."""
    return {
        "No-PINN": None,
        "Physics-Only": PHYSICS_ONLY,
        "PINN-30s": PhysicsConfig(horizons_s=(30.0,)),
        "PINN-50s": PhysicsConfig(horizons_s=(50.0,)),
        "PINN-70s": PhysicsConfig(horizons_s=(70.0,)),
        "PINN-All": PhysicsConfig(horizons_s=(30.0, 50.0, 70.0)),
    }


# ----------------------------------------------------------------------
# Fig. 3 — Sandia
# ----------------------------------------------------------------------
def run_fig3(budget: Budget | None = None, out_dir: str | Path | None = None, quiet: bool = False) -> ExperimentResult:
    """Regenerate Fig. 3: SoC-prediction MAE on Sandia, 6 configs x 3 horizons."""
    budget = budget if budget is not None else fast_budget()
    data = cached_sandia(budget.sandia)
    result = evaluate_variants(
        data.train(),
        data.test(),
        train_horizon_s=120.0,
        test_horizons_s=(120.0, 240.0, 360.0),
        variants=sandia_variants(),
        seeds=budget.seeds,
        train_config=budget.sandia_train,
        model_config=ModelConfig(horizon_scale_s=360.0),
        train_stride=budget.sandia_stride,
        test_stride=budget.sandia_stride,
        dataset_name="sandia",
        group_by_tag="chemistry",
    )
    text = format_mae_grid(result.mean_grid(), baseline="No-PINN")
    if not quiet:
        print(f"\n== Fig. 3 (Sandia, {budget.name} budget, {len(budget.seeds)} seeds) ==")
        print(text)
    if out_dir is not None:
        rows = [
            [name, f"{h:g}", v.mean(h), v.std(h)]
            for name, v in result.variants.items()
            for h in result.test_horizons_s
        ]
        save_csv(Path(out_dir) / "fig3_sandia.csv", ["config", "horizon_s", "mae_mean", "mae_std"], rows)
    return result


# ----------------------------------------------------------------------
# Fig. 4 — LG
# ----------------------------------------------------------------------
def run_fig4(
    budget: Budget | None = None,
    out_dir: str | Path | None = None,
    quiet: bool = False,
    keep_models: bool = False,
) -> ExperimentResult:
    """Regenerate Fig. 4: SoC-prediction MAE on LG, 6 configs x 3 horizons.

    Tests use the four driving-pattern cycles plus the held-out mixed
    cycle at 25 C, with the 30 s moving-average preprocessing.
    """
    budget = budget if budget is not None else fast_budget()
    data = cached_lg(budget.lg)
    test_25 = data.test().filter(lambda c: c.ambient_c == 25.0)
    result = evaluate_variants(
        data.train(),
        test_25,
        train_horizon_s=30.0,
        test_horizons_s=(30.0, 50.0, 70.0),
        variants=lg_variants(),
        seeds=budget.seeds,
        train_config=budget.lg_train,
        model_config=ModelConfig(horizon_scale_s=70.0),
        smooth_window_s=budget.lg_smooth_s,
        train_stride=budget.lg_train_stride,
        test_stride=budget.lg_test_stride,
        dataset_name="lg",
        keep_models=keep_models,
    )
    text = format_mae_grid(result.mean_grid(), baseline="No-PINN")
    if not quiet:
        print(f"\n== Fig. 4 (LG, {budget.name} budget, {len(budget.seeds)} seeds) ==")
        print(text)
    if out_dir is not None:
        rows = [
            [name, f"{h:g}", v.mean(h), v.std(h)]
            for name, v in result.variants.items()
            for h in result.test_horizons_s
        ]
        save_csv(Path(out_dir) / "fig4_lg.csv", ["config", "horizon_s", "mae_mean", "mae_std"], rows)
    return result


# ----------------------------------------------------------------------
# Table I — state-of-the-art comparison on LG
# ----------------------------------------------------------------------
def run_table1(budget: Budget | None = None, out_dir: str | Path | None = None, quiet: bool = False) -> list[list]:
    """Regenerate Table I: SoC(t) / SoC(t+N) MAE at 0 C and 25 C plus
    memory and operation counts, for our variants and the baselines."""
    budget = budget if budget is not None else fast_budget()
    data = cached_lg(budget.lg)
    horizon = 30.0
    rows: list[list] = []

    smoothed_train = CycleSet([smooth_cycle(c, budget.lg_smooth_s) for c in data.train()])
    estimation = make_estimation_samples(smoothed_train, stride=budget.lg_train_stride)
    prediction = make_prediction_samples(smoothed_train, horizon_s=horizon, stride=budget.lg_train_stride)

    temps = sorted({c.ambient_c for c in data.test()})
    test_sets = {}
    for temp in temps:
        cycles = CycleSet([smooth_cycle(c, budget.lg_smooth_s) for c in data.test() if c.ambient_c == temp])
        test_sets[temp] = {
            "est": make_estimation_samples(cycles, stride=budget.lg_test_stride),
            "pred": make_prediction_samples(cycles, horizon_s=horizon, stride=budget.lg_test_stride),
        }

    # --- our model: No-PINN and PINN-All -----------------------------
    from ..core.trainer import train_two_branch

    ours = {
        "No-PINN": None,
        "PINN-All": PhysicsConfig(horizons_s=(30.0, 50.0, 70.0)),
    }
    for name, physics in ours.items():
        per_temp_est = {t: [] for t in temps}
        per_temp_pred = {t: [] for t in temps}
        complexity = None
        for seed in budget.seeds:
            model, _ = train_two_branch(
                estimation,
                prediction,
                model_config=ModelConfig(horizon_scale_s=70.0),
                train_config=budget.lg_train,
                physics=physics,
                seed=seed,
            )
            complexity = model_complexity(model)
            for temp, sets in test_sets.items():
                est = sets["est"]
                soc_hat = model.estimate_soc(est.features[:, 0], est.features[:, 1], est.features[:, 2])
                per_temp_est[temp].append(mae(soc_hat, est.soc))
                per_temp_pred[temp].append(mae(model.predict_samples(sets["pred"]), sets["pred"].soc_target))
        for temp in temps:
            rows.append([
                name,
                f"{temp:g}",
                float(np.mean(per_temp_est[temp])),
                float(np.mean(per_temp_pred[temp])),
                f"{complexity.memory_kib():.1f} KiB",
                f"{complexity.ops:,}",
            ])

    # --- LSTM SoA baseline (accuracy: compact; complexity: paper scale)
    lstm_samples = make_sequence_samples(
        smoothed_train,
        seq_len=budget.lstm.seq_len,
        sample_stride=budget.lstm.sample_stride,
        window_stride=budget.lg_train_stride,
    )
    lstm_model, _ = train_lstm_estimator(lstm_samples, budget.lstm)
    paper_cfg = paper_scale_config()
    paper_net = LSTMRegressor(
        hidden_size=paper_cfg.hidden_size,
        num_layers=paper_cfg.num_layers,
        dense_size=paper_cfg.dense_size,
        rng=np.random.default_rng(0),
    )
    paper_report = lstm_complexity(paper_net, seq_len=paper_cfg.seq_len)
    for temp in temps:
        cycles = CycleSet([smooth_cycle(c, budget.lg_smooth_s) for c in data.test() if c.ambient_c == temp])
        seqs = make_sequence_samples(
            cycles,
            seq_len=budget.lstm.seq_len,
            sample_stride=budget.lstm.sample_stride,
            window_stride=budget.lg_test_stride,
        )
        rows.append([
            "LSTM [17]",
            f"{temp:g}",
            mae(lstm_model.estimate(seqs.sequences), seqs.soc),
            float("nan"),
            f"{paper_report.memory_bytes / 2**20:.1f} MiB",
            f"{paper_report.ops:,}",
        ])

    # --- DE-MLP / DE-LSTM (raw, unsmoothed inputs, as published) -----
    de_pairs = make_de_pairs(data.train(), stride=budget.lg_train_stride)
    for label, cfg in (("DE-LSTM [7]", budget.de_lstm), ("DE-MLP [7]", budget.de_mlp)):
        de_model, _ = train_de_estimator(de_pairs, cfg)
        for temp in temps:
            raw_cycles = CycleSet([c for c in data.test() if c.ambient_c == temp])
            est = make_estimation_samples(raw_cycles, stride=budget.lg_test_stride)
            rows.append([
                label,
                f"{temp:g}",
                mae(de_model.estimate(est.features), est.soc),
                float("nan"),
                f"{de_model.num_parameters() * 4 / 1024:.1f} KiB",
                "n.a.",
            ])

    headers = ["model", "T [C]", "SoC(t) MAE", "SoC(t+N) MAE", "Mem", "Ops"]
    if not quiet:
        print(f"\n== Table I (LG, {budget.name} budget) ==")
        print(format_table(headers, rows))
    if out_dir is not None:
        save_csv(Path(out_dir) / "table1_soa.csv", headers, rows)
    return rows


# ----------------------------------------------------------------------
# Fig. 5 — autoregressive full-discharge rollouts
# ----------------------------------------------------------------------
def run_fig5(
    budget: Budget | None = None,
    out_dir: str | Path | None = None,
    quiet: bool = False,
    fig4_result: ExperimentResult | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Regenerate Fig. 5: full-discharge rollouts at 25 C.

    Every variant rolls each test cycle autoregressively with its best
    single-step horizon (No-PINN and Physics-Only use the native 30 s,
    as in the paper).  Returns
    ``{cycle: {config: {"mae", "final_error", "steps"}}}`` and reports
    the average end-of-discharge error.
    """
    budget = budget if budget is not None else fast_budget()
    if fig4_result is None:
        fig4_result = run_fig4(budget, quiet=True, keep_models=True)
    if not fig4_result.models:
        raise ValueError("Fig. 4 result carries no trained models; run with keep_models=True")

    data = cached_lg(budget.lg)
    test_25 = [smooth_cycle(c, budget.lg_smooth_s) for c in data.test() if c.ambient_c == 25.0]
    capacity = test_25[0].capacity_ah if test_25 else 3.0
    physics_only = PhysicsOnlyModel(capacity)

    step_choice: dict[str, float] = {}
    for name in fig4_result.variants:
        if name in ("No-PINN", "Physics-Only"):
            step_choice[name] = fig4_result.train_horizon_s
        else:
            step_choice[name] = fig4_result.best_horizon(name)

    results: dict[str, dict[str, dict[str, float]]] = {}
    series_rows: list[list] = []
    for cycle in test_25:
        per_config: dict[str, dict[str, float]] = {}
        for name in fig4_result.variants:
            step = step_choice[name]
            if name == "Physics-Only":
                rollouts = [
                    rollout_cycle(
                        physics_only.rollout_step, cycle, step, initial_soc=float(cycle.data.soc[0])
                    )
                ]
            else:
                rollouts = [model_rollout(m, cycle, step) for m in fig4_result.models[name]]
            per_config[name] = {
                "mae": float(np.mean([r.mae() for r in rollouts])),
                "final_error": float(np.mean([r.final_error() for r in rollouts])),
                "steps": float(len(rollouts[0]) - 1),
            }
            rollout = rollouts[0]  # representative series for the CSV
            for t, pred, truth in zip(rollout.time_s, rollout.soc_pred, rollout.soc_true):
                series_rows.append([cycle.name, name, t, pred, truth])
        results[cycle.name] = per_config

    configs = list(fig4_result.variants)
    headers = ["cycle"] + configs
    table_rows = [
        [cycle_name] + [results[cycle_name][c]["final_error"] for c in configs] for cycle_name in results
    ]
    avg_row = ["AVG final |err|"] + [
        float(np.mean([results[cy][c]["final_error"] for cy in results])) for c in configs
    ]
    table_rows.append(avg_row)
    if not quiet:
        print(f"\n== Fig. 5 (LG rollouts at 25 C, {budget.name} budget) ==")
        print("single-step horizons: " + ", ".join(f"{k}={v:g}s" for k, v in step_choice.items()))
        print(format_table(headers, table_rows))
    if out_dir is not None:
        save_csv(
            Path(out_dir) / "fig5_rollouts.csv",
            ["cycle", "config", "time_s", "soc_pred", "soc_true"],
            series_rows,
        )
    return results


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """Command-line entry point (``python -m repro.eval.experiments``)."""
    parser = argparse.ArgumentParser(description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment", choices=["fig3", "fig4", "table1", "fig5", "all"])
    parser.add_argument("--full", action="store_true", help="use the paper-parity budget")
    parser.add_argument("--out", type=str, default=None, help="directory for CSV outputs")
    args = parser.parse_args(argv)
    budget = full_budget() if args.full else fast_budget()
    if args.experiment in ("fig3", "all"):
        run_fig3(budget, out_dir=args.out)
    if args.experiment in ("fig4", "all"):
        result = run_fig4(budget, out_dir=args.out, keep_models=args.experiment == "all")
        if args.experiment == "all":
            run_fig5(budget, out_dir=args.out, fig4_result=result)
    if args.experiment == "fig5":
        run_fig5(budget, out_dir=args.out)
    if args.experiment in ("table1", "all"):
        run_table1(budget, out_dir=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
