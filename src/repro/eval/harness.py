"""Multi-seed, multi-horizon experiment harness.

One call of :func:`evaluate_variants` reproduces the structure shared
by Figs. 3 and 4: train each model variant (No-PINN, Physics-Only,
PINN-<Np>, PINN-All) on the campaign's training cycles at the native
horizon, then score SoC-prediction MAE on the test cycles at several
horizons, averaging over seeds.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..baselines.physics_only import PhysicsOnlyModel
from ..core.config import ModelConfig, PhysicsConfig, TrainConfig
from ..core.model import TwoBranchSoCNet
from ..core.trainer import train_two_branch
from ..datasets.base import CycleSet
from ..datasets.preprocessing import smooth_cycle
from ..datasets.windowing import make_estimation_samples, make_prediction_samples
from .metrics import mae

__all__ = ["VariantResult", "ExperimentResult", "evaluate_variants", "PHYSICS_ONLY"]

#: Sentinel marking the untrained Coulomb-counting variant.
PHYSICS_ONLY = "__physics_only__"


@dataclasses.dataclass
class VariantResult:
    """Per-variant scores: ``mae_by_horizon[h]`` is one MAE per seed."""

    name: str
    mae_by_horizon: dict[float, list[float]]

    def mean(self, horizon_s: float) -> float:
        """Seed-averaged MAE at one horizon."""
        return float(np.mean(self.mae_by_horizon[horizon_s]))

    def std(self, horizon_s: float) -> float:
        """Seed standard deviation at one horizon."""
        return float(np.std(self.mae_by_horizon[horizon_s]))


@dataclasses.dataclass
class ExperimentResult:
    """All variants of one figure-style experiment."""

    dataset: str
    train_horizon_s: float
    test_horizons_s: tuple[float, ...]
    variants: dict[str, VariantResult]
    models: dict[str, list[TwoBranchSoCNet]] = dataclasses.field(default_factory=dict)

    def mean_grid(self) -> dict[str, dict[float, float]]:
        """``{variant: {horizon: mean MAE}}`` for reporting."""
        return {
            name: {h: v.mean(h) for h in self.test_horizons_s} for name, v in self.variants.items()
        }

    def best_variant(self, horizon_s: float, exclude: tuple[str, ...] = ()) -> str:
        """Name of the lowest-MAE variant at a horizon."""
        candidates = {n: v.mean(horizon_s) for n, v in self.variants.items() if n not in exclude}
        return min(candidates, key=candidates.get)

    def best_horizon(self, variant: str) -> float:
        """The test horizon where a variant scores best (Fig. 5 uses it)."""
        v = self.variants[variant]
        return min(self.test_horizons_s, key=v.mean)


def _evaluate_group(
    train_cycles: CycleSet,
    test_cycles: CycleSet,
    train_horizon_s: float,
    test_horizons_s: tuple[float, ...],
    variants: dict,
    seeds: tuple[int, ...],
    train_config: TrainConfig | None,
    model_config: ModelConfig | None,
    train_stride: int,
    test_stride: int,
    keep_models: bool,
    models_out: dict[str, list[TwoBranchSoCNet]],
) -> dict[str, dict[float, list[float]]]:
    """Score every variant on one (train, test) cycle group."""
    estimation = make_estimation_samples(train_cycles, stride=train_stride)
    prediction = make_prediction_samples(train_cycles, horizon_s=train_horizon_s, stride=train_stride)
    test_samples = {
        h: make_prediction_samples(test_cycles, horizon_s=h, stride=test_stride)
        for h in test_horizons_s
    }
    scores: dict[str, dict[float, list[float]]] = {}
    for name, physics in variants.items():
        per_h: dict[float, list[float]] = {h: [] for h in test_horizons_s}
        if physics == PHYSICS_ONLY:
            # The paper's Physics-Only keeps the trained Branch 1 and
            # replaces only the predictive branch with Eq. 1, so it is
            # trained (Branch 1 only) and evaluated per seed like the rest.
            capacity = float(np.median(prediction.capacity_ah))
            baseline = PhysicsOnlyModel(capacity)
            b1_only = dataclasses.replace(
                train_config if train_config is not None else TrainConfig(), epochs_branch2=0
            )
            for seed in seeds:
                model, _ = train_two_branch(
                    estimation,
                    prediction,
                    model_config=model_config,
                    train_config=b1_only,
                    physics=None,
                    seed=seed,
                )
                for h, samples in test_samples.items():
                    soc_hat = model.estimate_soc(samples.v_t, samples.i_t, samples.temp_t)
                    per_h[h].append(mae(baseline.predict_samples(samples, soc_now=soc_hat), samples.soc_target))
        else:
            for seed in seeds:
                model, _ = train_two_branch(
                    estimation,
                    prediction,
                    model_config=model_config,
                    train_config=train_config,
                    physics=physics,
                    seed=seed,
                )
                for h, samples in test_samples.items():
                    per_h[h].append(mae(model.predict_samples(samples), samples.soc_target))
                if keep_models:
                    models_out.setdefault(name, []).append(model)
        scores[name] = per_h
    return scores


def evaluate_variants(
    train_cycles: CycleSet,
    test_cycles: CycleSet,
    train_horizon_s: float,
    test_horizons_s: tuple[float, ...],
    variants: dict[str, PhysicsConfig | None | str],
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    train_config: TrainConfig | None = None,
    model_config: ModelConfig | None = None,
    smooth_window_s: float | None = None,
    train_stride: int = 1,
    test_stride: int = 1,
    dataset_name: str = "dataset",
    keep_models: bool = False,
    group_by_tag: str | None = None,
) -> ExperimentResult:
    """Run the Fig. 3/4 experiment grid.

    Parameters
    ----------
    train_cycles, test_cycles:
        Campaign splits (pre-filtered by temperature if needed).
    train_horizon_s:
        Native data horizon ``N`` for Branch 2's data loss.
    test_horizons_s:
        Horizons of the sliding-window test sets.
    variants:
        ``{name: PhysicsConfig}`` for PINNs, ``{name: None}`` for
        No-PINN, ``{name: PHYSICS_ONLY}`` for Coulomb counting.
    seeds:
        Training seeds to average (paper: 5).
    smooth_window_s:
        Optional moving-average preprocessing (30 s for LG).
    train_stride, test_stride:
        Sample thinning for dense campaigns.
    keep_models:
        Retain every trained model per variant, one per seed (used by
        the Fig. 5 rollout driver to average rollouts over seeds).
    group_by_tag:
        Train one model per distinct cycle tag value (e.g.
        ``"chemistry"`` on Sandia: Eq. 1 carries a single ``Crated``,
        so each battery gets its own network) and pool the scores.

    Returns
    -------
    ExperimentResult
    """
    if not variants:
        raise ValueError("no variants given")
    if smooth_window_s is not None:
        train_cycles = CycleSet([smooth_cycle(c, smooth_window_s) for c in train_cycles])
        test_cycles = CycleSet([smooth_cycle(c, smooth_window_s) for c in test_cycles])

    if group_by_tag is None:
        groups = [(train_cycles, test_cycles)]
    else:
        values = sorted({c.tags.get(group_by_tag) for c in train_cycles})
        if None in values:
            raise ValueError(f"some training cycles lack the {group_by_tag!r} tag")
        groups = [
            (train_cycles.by_tag(group_by_tag, v), test_cycles.by_tag(group_by_tag, v)) for v in values
        ]
        if any(len(tr) == 0 or len(te) == 0 for tr, te in groups):
            raise ValueError(f"tag {group_by_tag!r} does not partition both splits")

    models: dict[str, list[TwoBranchSoCNet]] = {}
    merged: dict[str, dict[float, list[float]]] = {
        name: {h: [] for h in test_horizons_s} for name in variants
    }
    for group_train, group_test in groups:
        scores = _evaluate_group(
            group_train,
            group_test,
            train_horizon_s,
            test_horizons_s,
            variants,
            seeds,
            train_config,
            model_config,
            train_stride,
            test_stride,
            keep_models,
            models,
        )
        for name, per_h in scores.items():
            for h, values_list in per_h.items():
                merged[name][h].extend(values_list)

    results = {name: VariantResult(name=name, mae_by_horizon=per_h) for name, per_h in merged.items()}
    return ExperimentResult(
        dataset=dataset_name,
        train_horizon_s=train_horizon_s,
        test_horizons_s=tuple(test_horizons_s),
        variants=results,
        models=models,
    )
