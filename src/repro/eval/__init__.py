"""``repro.eval`` — metrics, the multi-seed harness, and the drivers
that regenerate every table and figure of the paper's evaluation."""

from .experiments import (
    Budget,
    fast_budget,
    full_budget,
    lg_variants,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    sandia_variants,
)
from .harness import PHYSICS_ONLY, ExperimentResult, VariantResult, evaluate_variants
from .metrics import improvement_percent, mae, max_abs_error, rmse
from .reporting import format_mae_grid, format_rollout_summary, format_table, save_csv

__all__ = [
    "mae",
    "rmse",
    "max_abs_error",
    "improvement_percent",
    "PHYSICS_ONLY",
    "VariantResult",
    "ExperimentResult",
    "evaluate_variants",
    "format_table",
    "format_mae_grid",
    "format_rollout_summary",
    "save_csv",
    "Budget",
    "fast_budget",
    "full_budget",
    "sandia_variants",
    "lg_variants",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_table1",
]
