"""Error metrics used throughout the evaluation.

The paper reports Mean Absolute Error (MAE) everywhere; RMSE and max
error are provided for completeness, plus the percent-improvement
helper used to annotate the bar charts (Figs. 3 and 4).
"""

from __future__ import annotations

import numpy as np

__all__ = ["mae", "rmse", "max_abs_error", "improvement_percent"]


def _check(prediction, target) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(prediction, dtype=np.float64)
    t = np.asarray(target, dtype=np.float64)
    if p.shape != t.shape:
        raise ValueError(f"prediction shape {p.shape} != target shape {t.shape}")
    if p.size == 0:
        raise ValueError("cannot score empty arrays")
    return p, t


def mae(prediction, target) -> float:
    """Mean absolute error."""
    p, t = _check(prediction, target)
    return float(np.mean(np.abs(p - t)))


def rmse(prediction, target) -> float:
    """Root mean squared error."""
    p, t = _check(prediction, target)
    return float(np.sqrt(np.mean((p - t) ** 2)))


def max_abs_error(prediction, target) -> float:
    """Worst-case absolute error."""
    p, t = _check(prediction, target)
    return float(np.max(np.abs(p - t)))


def improvement_percent(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` in percent.

    Positive when ``improved`` is smaller (better), as in the figures'
    bar annotations.
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline
