"""Parameter / memory / operation accounting (Table I's Mem and Ops columns).

The paper's deployment argument rests on the model's footprint: 2,322
parameters (~9 kB at float32) and on the order of a thousand operations
per inference, versus megabytes and hundreds of millions of operations
for the LSTM state of the art.  This module computes those numbers
analytically from the architecture so the comparison table can be
regenerated rather than quoted.
"""

from __future__ import annotations

import dataclasses

from ..nn.layers import MLP, Linear, Module
from ..nn.recurrent import LSTMRegressor

__all__ = ["ComplexityReport", "mlp_complexity", "lstm_complexity", "model_complexity"]

_BYTES_PER_PARAM = 4  # float32 deployment, as the paper assumes


@dataclasses.dataclass(frozen=True)
class ComplexityReport:
    """Static cost of one inference pass.

    Attributes
    ----------
    parameters:
        Trainable scalar count.
    memory_bytes:
        Parameter storage at float32.
    macs:
        Multiply-accumulate operations per inference.
    ops:
        Total arithmetic ops per inference (2 per MAC plus activation
        and elementwise work).
    """

    parameters: int
    memory_bytes: int
    macs: int
    ops: int

    def __add__(self, other: "ComplexityReport") -> "ComplexityReport":
        return ComplexityReport(
            parameters=self.parameters + other.parameters,
            memory_bytes=self.memory_bytes + other.memory_bytes,
            macs=self.macs + other.macs,
            ops=self.ops + other.ops,
        )

    def memory_kib(self) -> float:
        """Parameter storage in KiB."""
        return self.memory_bytes / 1024.0


def _linear_macs(layer: Linear) -> int:
    return layer.in_features * layer.out_features


def mlp_complexity(mlp: MLP) -> ComplexityReport:
    """Complexity of one forward pass through an MLP."""
    macs = sum(_linear_macs(layer) for layer in mlp.net.layers if isinstance(layer, Linear))
    act_ops = sum(mlp.hidden)  # one ReLU per hidden unit
    bias_adds = sum(
        layer.out_features for layer in mlp.net.layers if isinstance(layer, Linear) and layer.bias is not None
    )
    params = mlp.num_parameters()
    ops = 2 * macs + bias_adds + act_ops
    return ComplexityReport(
        parameters=params,
        memory_bytes=params * _BYTES_PER_PARAM,
        macs=macs,
        ops=ops,
    )


def lstm_complexity(model: LSTMRegressor, seq_len: int) -> ComplexityReport:
    """Complexity of one forward pass through the LSTM baseline.

    Parameters
    ----------
    model:
        The Wong-style LSTM regressor.
    seq_len:
        Input window length (each timestep re-runs every gate).
    """
    if seq_len <= 0:
        raise ValueError("sequence length must be positive")
    macs = 0
    elementwise = 0
    for cell in model.lstm.cells:
        gate_macs = cell.input_size * 4 * cell.hidden_size + cell.hidden_size * 4 * cell.hidden_size
        macs += gate_macs * seq_len
        # gate nonlinearities + state updates, ~10 elementwise ops per unit
        elementwise += 10 * cell.hidden_size * seq_len
    macs += _linear_macs(model.dense) + _linear_macs(model.head)
    elementwise += model.dense.out_features  # ReLU
    params = model.num_parameters()
    return ComplexityReport(
        parameters=params,
        memory_bytes=params * _BYTES_PER_PARAM,
        macs=macs,
        ops=2 * macs + elementwise,
    )


def model_complexity(model: Module, seq_len: int | None = None) -> ComplexityReport:
    """Dispatch on supported model families.

    For the two-branch network, pass the model itself; for LSTM
    baselines also give the input window length.
    """
    from .model import TwoBranchSoCNet  # local import avoids a cycle

    if isinstance(model, TwoBranchSoCNet):
        return mlp_complexity(model.branch1.mlp) + mlp_complexity(model.branch2.mlp)
    if isinstance(model, LSTMRegressor):
        if seq_len is None:
            raise ValueError("LSTM complexity needs the input sequence length")
        return lstm_complexity(model, seq_len)
    if isinstance(model, MLP):
        return mlp_complexity(model)
    raise TypeError(f"unsupported model type {type(model).__name__}")
