"""Split training of the two-branch network (paper Sec. III-B).

Key properties reproduced exactly:

1. **Split training** — Branch 1 is trained alone on
   ``(V, I, T) -> SoC(t)``; Branch 2 is trained alone on
   ``(SoC(t), I_avg, T_avg, N) -> SoC(t+N)`` with *ground-truth*
   ``SoC(t)`` as input.  No gradient ever flows between branches.
2. **MAE losses** for both branches.
3. **Physics loss** (optional): per minibatch, a freshly sampled batch
   of Coulomb-counting collocation points contributes a second MAE
   term (Eq. 2); with it, Branch 2 becomes a PINN.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..datasets.windowing import EstimationSamples, PredictionSamples
from ..utils.logging import RunLogger
from ..utils.rng import spawn_seed
from .config import PhysicsConfig, TrainConfig
from .model import TwoBranchSoCNet
from .physics import CollocationSampler

__all__ = ["SplitTrainer", "train_two_branch"]


class SplitTrainer:
    """Trains a :class:`TwoBranchSoCNet` with the paper's scheme.

    Parameters
    ----------
    model:
        The network to train (modified in place).
    config:
        Optimization settings.
    physics:
        Physics-loss settings; ``None`` trains the purely data-driven
        "No-PINN" variant.
    """

    def __init__(
        self,
        model: TwoBranchSoCNet,
        config: TrainConfig | None = None,
        physics: PhysicsConfig | None = None,
    ):
        self.model = model
        self.config = config if config is not None else TrainConfig()
        self.physics = physics

    # ------------------------------------------------------------------
    def train_branch1(self, samples: EstimationSamples) -> RunLogger:
        """Fit Branch 1 on estimation samples; returns the loss log."""
        cfg = self.config
        rng = np.random.default_rng(spawn_seed(cfg.seed, "branch1-data"))
        features = self.model.scaler1.transform(samples.features)
        targets = samples.soc.reshape(-1, 1)
        features, targets = _cap_rows(features, targets, cfg.max_train_rows, rng)
        dataset = nn.TensorDataset(features, targets)
        loader = nn.DataLoader(dataset, batch_size=cfg.batch_size, shuffle=True, rng=rng)
        optimizer = nn.Adam(self.model.branch1.parameters(), lr=cfg.lr)
        scheduler = (
            nn.CosineAnnealingLR(optimizer, t_max=cfg.epochs_branch1, eta_min=cfg.lr * 0.01)
            if cfg.epochs_branch1 > 0
            else None
        )
        log = RunLogger()
        for epoch in range(cfg.epochs_branch1):
            epoch_loss = 0.0
            for x, y in loader:
                optimizer.zero_grad()
                loss = nn.mae_loss(self.model.forward_branch1(nn.Tensor(x)), nn.Tensor(y))
                loss.backward()
                if cfg.grad_clip:
                    nn.clip_grad_norm(self.model.branch1.parameters(), cfg.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
            scheduler.step()
            log.log(branch=1, epoch=epoch, loss=epoch_loss / max(1, len(loader)), lr=optimizer.lr)
        return log

    # ------------------------------------------------------------------
    def train_branch2(self, samples: PredictionSamples) -> RunLogger:
        """Fit Branch 2 on prediction samples (+ physics collocation).

        Branch 2 receives ground-truth ``SoC(t)`` in its features, per
        the split-training scheme; at deployment it will receive
        Branch 1's estimate instead.
        """
        cfg = self.config
        rng = np.random.default_rng(spawn_seed(cfg.seed, "branch2-data"))
        features = self.model.scaler2.transform(samples.branch2_features())
        targets = samples.soc_target.reshape(-1, 1)
        features, targets = _cap_rows(features, targets, cfg.max_train_rows, rng)
        dataset = nn.TensorDataset(features, targets)
        loader = nn.DataLoader(dataset, batch_size=cfg.batch_size, shuffle=True, rng=rng)
        optimizer = nn.Adam(self.model.branch2.parameters(), lr=cfg.lr)
        scheduler = (
            nn.CosineAnnealingLR(optimizer, t_max=cfg.epochs_branch2, eta_min=cfg.lr * 0.01)
            if cfg.epochs_branch2 > 0
            else None
        )

        sampler = None
        if self.physics is not None and self.physics.weight > 0:
            sampler = CollocationSampler(
                samples, self.physics, np.random.default_rng(spawn_seed(cfg.seed, "collocation"))
            )

        log = RunLogger()
        for epoch in range(cfg.epochs_branch2):
            data_loss_sum = 0.0
            physics_loss_sum = 0.0
            for x, y in loader:
                optimizer.zero_grad()
                data_loss = nn.mae_loss(self.model.forward_branch2(nn.Tensor(x)), nn.Tensor(y))
                if sampler is not None:
                    batch = sampler.sample()
                    colloc_x = self.model.scaler2.transform(batch.features)
                    colloc_y = batch.targets.reshape(-1, 1)
                    physics_loss = nn.mae_loss(
                        self.model.forward_branch2(nn.Tensor(colloc_x)), nn.Tensor(colloc_y)
                    )
                    loss = data_loss + self.physics.weight * physics_loss
                    physics_loss_sum += physics_loss.item()
                else:
                    loss = data_loss
                loss.backward()
                if cfg.grad_clip:
                    nn.clip_grad_norm(self.model.branch2.parameters(), cfg.grad_clip)
                optimizer.step()
                data_loss_sum += data_loss.item()
            scheduler.step()
            n_batches = max(1, len(loader))
            log.log(
                branch=2,
                epoch=epoch,
                loss=data_loss_sum / n_batches,
                physics_loss=physics_loss_sum / n_batches,
                lr=optimizer.lr,
            )
        return log

    # ------------------------------------------------------------------
    def fit(self, estimation: EstimationSamples, prediction: PredictionSamples) -> dict[str, RunLogger]:
        """Train both branches (Branch 1 first) and return their logs."""
        return {
            "branch1": self.train_branch1(estimation),
            "branch2": self.train_branch2(prediction),
        }


def _cap_rows(
    features: np.ndarray, targets: np.ndarray, max_rows: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Subsample rows when the campaign is denser than the epoch budget needs."""
    n = len(features)
    if max_rows and n > max_rows:
        idx = rng.choice(n, size=max_rows, replace=False)
        return features[idx], targets[idx]
    return features, targets


def train_two_branch(
    estimation: EstimationSamples,
    prediction: PredictionSamples,
    model_config=None,
    train_config: TrainConfig | None = None,
    physics: PhysicsConfig | None = None,
    seed: int | None = None,
) -> tuple[TwoBranchSoCNet, dict[str, RunLogger]]:
    """One-call convenience: build, train, and return a model.

    Parameters
    ----------
    estimation, prediction:
        Training samples for the two branches.
    model_config:
        :class:`~repro.core.config.ModelConfig` (paper defaults if omitted).
    train_config:
        :class:`~repro.core.config.TrainConfig`; when ``seed`` is given
        it overrides the config's seed (convenient for 5-seed sweeps).
    physics:
        Physics-loss settings, or ``None`` for the No-PINN variant.
    """
    train_config = train_config if train_config is not None else TrainConfig()
    if seed is not None:
        import dataclasses

        train_config = dataclasses.replace(train_config, seed=seed)
    rng = np.random.default_rng(spawn_seed(train_config.seed, "init"))
    model = TwoBranchSoCNet(model_config, rng=rng)
    trainer = SplitTrainer(model, train_config, physics)
    logs = trainer.fit(estimation, prediction)
    return model, logs
