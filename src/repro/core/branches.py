"""The two network branches (paper Fig. 1).

Both are small fully-connected ReLU networks with a single unbounded
linear output unit:

- :class:`Branch1` — SoC *estimation*: ``(V(t), I(t), T(t)) -> SoC(t)``;
- :class:`Branch2` — SoC *prediction*:
  ``(SoC(t), I(t+N), T(t+N), N) -> SoC(t+N)``.

They consume **scaled** features; scaling (with fixed physical
constants) lives in :class:`repro.core.model.TwoBranchSoCNet`, which
owns the raw-input API.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .config import ModelConfig

__all__ = ["Branch1", "Branch2"]


class Branch1(nn.Module):
    """SoC-estimation branch: 3 scaled inputs -> scalar SoC."""

    N_INPUTS = 3

    def __init__(self, config: ModelConfig | None = None, rng: np.random.Generator | None = None):
        super().__init__()
        config = config if config is not None else ModelConfig()
        self.config = config
        self.mlp = nn.MLP(self.N_INPUTS, hidden=config.hidden, out_features=1, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        """Map scaled ``(batch, 3)`` features to ``(batch, 1)`` SoC."""
        if x.shape[-1] != self.N_INPUTS:
            raise ValueError(f"Branch1 expects {self.N_INPUTS} features, got {x.shape[-1]}")
        return self.mlp(x)


class Branch2(nn.Module):
    """SoC-prediction branch: 4 scaled inputs -> scalar future SoC."""

    N_INPUTS = 4

    def __init__(self, config: ModelConfig | None = None, rng: np.random.Generator | None = None):
        super().__init__()
        config = config if config is not None else ModelConfig()
        self.config = config
        self.mlp = nn.MLP(self.N_INPUTS, hidden=config.hidden, out_features=1, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        """Map scaled ``(batch, 4)`` features to ``(batch, 1)`` future SoC."""
        if x.shape[-1] != self.N_INPUTS:
            raise ValueError(f"Branch2 expects {self.N_INPUTS} features, got {x.shape[-1]}")
        return self.mlp(x)
