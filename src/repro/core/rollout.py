"""Autoregressive multi-step SoC prediction (paper Fig. 2 / Fig. 5).

Branch 1 runs **once**, on the first sensor sample, to get the initial
SoC; Branch 2 then chains forward, each step feeding its own output
back as the next step's initial SoC, with the (planned or recorded)
workload supplying average current/temperature per step.  Voltage is
used only at the very first timestamp — the capability the paper
highlights in Sec. V-D.

The rollout driver is predictor-agnostic so the Physics-Only baseline
(pure Coulomb counting) and the neural models share one code path.
The window-averaging itself lives in :func:`cycle_windows` so the
per-cell loop here and the batched fleet path
(:meth:`repro.serve.FleetEngine.rollout_fleet`) consume *identical*
workload numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Protocol

import numpy as np

from ..datasets.base import CycleRecord
from .model import TwoBranchSoCNet

__all__ = [
    "RolloutResult",
    "StepHook",
    "StepPredictor",
    "WindowPlan",
    "cycle_windows",
    "rollout_cycle",
    "model_rollout",
]


class StepPredictor(Protocol):
    """One autoregressive step: ``soc(t) -> soc(t + horizon)``.

    Called with the current SoC estimate and the workload over the next
    window; must return the predicted SoC after the window.
    """

    def __call__(self, soc: float, i_avg: float, temp_avg: float, horizon_s: float) -> float: ...


StepHook = Callable[[int, float], None]
"""State snapshot hook: called as ``hook(window, soc)`` after each
committed rollout window (``window`` 0 is the initial estimate).  Lets
a caller stream the recursion state out — e.g. to a
:class:`repro.serve.StateJournal` — without owning the rollout loop."""


@dataclasses.dataclass
class RolloutResult:
    """Trajectory produced by an autoregressive rollout.

    ``time_s``/``soc_pred``/``soc_true`` share one entry per step
    boundary (including the initial point at index 0).  When the cycle
    length is not a multiple of the step, the last entry scores the
    trailing partial window and ``tail_s`` records its (shorter)
    duration; ``tail_s`` is 0 when the cycle divides evenly.
    """

    time_s: np.ndarray
    soc_pred: np.ndarray
    soc_true: np.ndarray
    initial_soc: float
    step_s: float
    tail_s: float = 0.0

    def __len__(self) -> int:
        return len(self.time_s)

    def mae(self) -> float:
        """Mean absolute error along the whole trajectory."""
        return float(np.mean(np.abs(self.soc_pred - self.soc_true)))

    def rmse(self) -> float:
        """Root-mean-square error along the whole trajectory."""
        return float(np.sqrt(np.mean((self.soc_pred - self.soc_true) ** 2)))

    def max_error(self) -> float:
        """Largest absolute error anywhere on the trajectory."""
        return float(np.max(np.abs(self.soc_pred - self.soc_true)))

    def final_error(self) -> float:
        """Absolute error at the last step (the paper's end-of-discharge check)."""
        return float(abs(self.soc_pred[-1] - self.soc_true[-1]))


@dataclasses.dataclass(frozen=True)
class WindowPlan:
    """Pre-computed per-window workload of one cycle at one step size.

    One row per autoregressive window, **including** the trailing
    partial window when the recorded cycle does not divide evenly into
    full steps (its shortened duration shows up in ``horizon_s``).

    Attributes
    ----------
    steps:
        Full-window length in samples.
    i_avg, t_avg:
        Measured-channel averages over each window (the workload fed to
        the predictor).
    horizon_s:
        Duration of each window in seconds; all entries equal
        ``steps * sampling_period`` except a possible shorter last one.
    time_s:
        Window-boundary timestamps, ``n_windows + 1`` entries (index 0
        is the cycle start).
    soc_true:
        Ground-truth SoC at the same boundaries.
    tail_s:
        Duration of the trailing partial window (0.0 when none).
    """

    steps: int
    i_avg: np.ndarray
    t_avg: np.ndarray
    horizon_s: np.ndarray
    time_s: np.ndarray
    soc_true: np.ndarray
    tail_s: float

    @property
    def n_windows(self) -> int:
        """Number of autoregressive windows (incl. any partial tail)."""
        return len(self.i_avg)


def cycle_windows(cycle: CycleRecord, step_s: float, include_tail: bool = True) -> WindowPlan:
    """Split a recorded cycle into rollout windows with averaged workloads.

    This is the single source of the per-window ``(i_avg, t_avg,
    horizon)`` numbers: the scalar loop (:func:`rollout_cycle`) and the
    batched fleet path both consume its output, which is what makes
    their trajectories bit-for-bit comparable.

    Parameters
    ----------
    cycle:
        The recorded cycle supplying measured I/T and ground-truth SoC.
    step_s:
        Full autoregressive step in seconds (rounded to samples).
    include_tail:
        Score the trailing partial window (shortened final step) when
        the cycle length is not a multiple of the step.

    Raises
    ------
    ValueError
        When the step is below one sampling period or the cycle is
        shorter than a single full step.
    """
    d = cycle.data
    steps = int(round(step_s / cycle.sampling_period_s))
    if steps < 1:
        raise ValueError("step must be at least one sampling period")
    n_full = (len(d) - 1) // steps
    if n_full < 1:
        raise ValueError("cycle shorter than a single rollout step")
    rem = (len(d) - 1) % steps
    bounds = [(w * steps, (w + 1) * steps) for w in range(n_full)]
    tail_s = 0.0
    if include_tail and rem:
        bounds.append((n_full * steps, len(d) - 1))
        tail_s = rem * cycle.sampling_period_s
    i_avg = np.empty(len(bounds))
    t_avg = np.empty(len(bounds))
    horizon_s = np.empty(len(bounds))
    boundary = [0] + [hi for _, hi in bounds]
    for w, (lo, hi) in enumerate(bounds):
        i_avg[w] = np.mean(d.current[lo + 1 : hi + 1])
        t_avg[w] = np.mean(d.temp_c[lo + 1 : hi + 1])
        horizon_s[w] = (hi - lo) * cycle.sampling_period_s
    return WindowPlan(
        steps=steps,
        i_avg=i_avg,
        t_avg=t_avg,
        horizon_s=horizon_s,
        time_s=d.time_s[boundary].astype(np.float64, copy=True),
        soc_true=d.soc[boundary].astype(np.float64, copy=True),
        tail_s=tail_s,
    )


def rollout_cycle(
    predictor: StepPredictor,
    cycle: CycleRecord,
    step_s: float,
    initial_soc: float,
    include_tail: bool = True,
    step_hook: StepHook | None = None,
) -> RolloutResult:
    """Run an autoregressive rollout along one recorded cycle.

    Parameters
    ----------
    predictor:
        The per-step model (neural Branch 2, Coulomb counting, ...).
    cycle:
        Recorded cycle supplying the workload (measured I/T averages
        per window) and the ground-truth SoC for scoring.
    step_s:
        Autoregressive step, i.e. the single-step horizon ``N``.
    initial_soc:
        Starting SoC estimate (from Branch 1, or ground truth).
    include_tail:
        Also score the trailing partial window with a shortened final
        step (default; pass False for legacy full-windows-only traces).
    step_hook:
        Optional state snapshot hook, called as ``hook(window, soc)``
        after the initial estimate (window 0) and after each committed
        step; an exception it raises aborts the rollout with the state
        up to that window already streamed out.

    Returns
    -------
    RolloutResult
    """
    plan = cycle_windows(cycle, step_s, include_tail=include_tail)
    preds = np.empty(plan.n_windows + 1)
    preds[0] = float(initial_soc)
    soc = float(initial_soc)
    if step_hook is not None:
        step_hook(0, soc)
    for w in range(plan.n_windows):
        soc = float(predictor(soc, float(plan.i_avg[w]), float(plan.t_avg[w]), float(plan.horizon_s[w])))
        preds[w + 1] = soc
        if step_hook is not None:
            step_hook(w + 1, soc)
    return RolloutResult(
        time_s=plan.time_s.copy(),
        soc_pred=preds,
        soc_true=plan.soc_true.copy(),
        initial_soc=float(initial_soc),
        step_s=plan.steps * cycle.sampling_period_s,
        tail_s=plan.tail_s,
    )


def model_rollout(
    model: TwoBranchSoCNet,
    cycle: CycleRecord,
    step_s: float,
    step_hook: StepHook | None = None,
) -> RolloutResult:
    """Roll the full two-branch network along a cycle.

    Branch 1 estimates the initial SoC from the first sensor sample
    (the only voltage the whole rollout consumes); Branch 2 chains the
    rest.  ``step_hook`` streams the recursion state per window (see
    :func:`rollout_cycle`).
    """
    d = cycle.data
    if len(d) == 0:
        raise ValueError("empty cycle")
    initial = float(model.estimate_soc(d.voltage[0], d.current[0], d.temp_c[0])[0])

    def step(soc: float, i_avg: float, temp_avg: float, horizon_s: float) -> float:
        return float(model.predict_soc(soc, i_avg, temp_avg, horizon_s)[0])

    return rollout_cycle(step, cycle, step_s, initial, step_hook=step_hook)
