"""Autoregressive multi-step SoC prediction (paper Fig. 2 / Fig. 5).

Branch 1 runs **once**, on the first sensor sample, to get the initial
SoC; Branch 2 then chains forward, each step feeding its own output
back as the next step's initial SoC, with the (planned or recorded)
workload supplying average current/temperature per step.  Voltage is
used only at the very first timestamp — the capability the paper
highlights in Sec. V-D.

The rollout driver is predictor-agnostic so the Physics-Only baseline
(pure Coulomb counting) and the neural models share one code path.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Protocol

import numpy as np

from ..datasets.base import CycleRecord
from .model import TwoBranchSoCNet

__all__ = ["RolloutResult", "StepPredictor", "rollout_cycle", "model_rollout"]


class StepPredictor(Protocol):
    """One autoregressive step: ``soc(t) -> soc(t + horizon)``.

    Called with the current SoC estimate and the workload over the next
    window; must return the predicted SoC after the window.
    """

    def __call__(self, soc: float, i_avg: float, temp_avg: float, horizon_s: float) -> float: ...


@dataclasses.dataclass
class RolloutResult:
    """Trajectory produced by an autoregressive rollout.

    ``time_s``/``soc_pred``/``soc_true`` share one entry per step
    boundary (including the initial point at index 0).
    """

    time_s: np.ndarray
    soc_pred: np.ndarray
    soc_true: np.ndarray
    initial_soc: float
    step_s: float

    def __len__(self) -> int:
        return len(self.time_s)

    def mae(self) -> float:
        """Mean absolute error along the whole trajectory."""
        return float(np.mean(np.abs(self.soc_pred - self.soc_true)))

    def final_error(self) -> float:
        """Absolute error at the last step (the paper's end-of-discharge check)."""
        return float(abs(self.soc_pred[-1] - self.soc_true[-1]))


def rollout_cycle(
    predictor: StepPredictor,
    cycle: CycleRecord,
    step_s: float,
    initial_soc: float,
) -> RolloutResult:
    """Run an autoregressive rollout along one recorded cycle.

    Parameters
    ----------
    predictor:
        The per-step model (neural Branch 2, Coulomb counting, ...).
    cycle:
        Recorded cycle supplying the workload (measured I/T averages
        per window) and the ground-truth SoC for scoring.
    step_s:
        Autoregressive step, i.e. the single-step horizon ``N``.
    initial_soc:
        Starting SoC estimate (from Branch 1, or ground truth).

    Returns
    -------
    RolloutResult
    """
    d = cycle.data
    steps = int(round(step_s / cycle.sampling_period_s))
    if steps < 1:
        raise ValueError("step must be at least one sampling period")
    n_windows = (len(d) - 1) // steps
    if n_windows < 1:
        raise ValueError("cycle shorter than a single rollout step")
    times = [float(d.time_s[0])]
    preds = [float(initial_soc)]
    truths = [float(d.soc[0])]
    soc = float(initial_soc)
    for w in range(n_windows):
        lo, hi = w * steps, (w + 1) * steps
        i_avg = float(np.mean(d.current[lo + 1 : hi + 1]))
        t_avg = float(np.mean(d.temp_c[lo + 1 : hi + 1]))
        soc = float(predictor(soc, i_avg, t_avg, steps * cycle.sampling_period_s))
        times.append(float(d.time_s[hi]))
        preds.append(soc)
        truths.append(float(d.soc[hi]))
    return RolloutResult(
        time_s=np.asarray(times),
        soc_pred=np.asarray(preds),
        soc_true=np.asarray(truths),
        initial_soc=float(initial_soc),
        step_s=steps * cycle.sampling_period_s,
    )


def model_rollout(model: TwoBranchSoCNet, cycle: CycleRecord, step_s: float) -> RolloutResult:
    """Roll the full two-branch network along a cycle.

    Branch 1 estimates the initial SoC from the first sensor sample
    (the only voltage the whole rollout consumes); Branch 2 chains the
    rest.
    """
    d = cycle.data
    if len(d) == 0:
        raise ValueError("empty cycle")
    initial = float(model.estimate_soc(d.voltage[0], d.current[0], d.temp_c[0])[0])

    def step(soc: float, i_avg: float, temp_avg: float, horizon_s: float) -> float:
        return float(model.predict_soc(soc, i_avg, temp_avg, horizon_s)[0])

    return rollout_cycle(step, cycle, step_s, initial)
