"""SoH-aware ensemble of SoC predictors (the paper's named extension).

Sec. III-B of the paper: the model "is accurate only ... as long as the
actual SoH is comparable to the one of batteries included in the
training set", and points to Alamin et al. [26] — "an ensemble of SoC
prediction models, each trained with data at a different SoH level",
dispatched by a separate SoH estimate.  This module implements that
ensemble on top of :class:`~repro.core.model.TwoBranchSoCNet`.

Members are keyed by the SoH level of their training data; queries
carry the (externally estimated) present SoH and are answered by the
nearest member, optionally blending the two neighbours.
"""

from __future__ import annotations

import numpy as np

from .model import TwoBranchSoCNet

__all__ = ["SoHEnsemble"]


class SoHEnsemble:
    """Dispatches SoC queries to the member trained nearest in SoH.

    Parameters
    ----------
    members:
        ``{soh_level: trained model}``; at least one entry.
    blend:
        When true, queries between two member levels return the
        SoH-distance-weighted average of both members' predictions
        (piecewise-linear interpolation over the ensemble).
    """

    def __init__(self, members: dict[float, TwoBranchSoCNet], blend: bool = True):
        if not members:
            raise ValueError("ensemble needs at least one member")
        for level in members:
            if not 0.0 < level <= 1.0:
                raise ValueError(f"SoH level {level} outside (0, 1]")
        self._levels = np.array(sorted(members), dtype=np.float64)
        self._members = {float(k): v for k, v in members.items()}
        self.blend = blend

    @property
    def levels(self) -> tuple[float, ...]:
        """Member SoH levels, ascending."""
        return tuple(self._levels.tolist())

    def member(self, soh: float) -> TwoBranchSoCNet:
        """The single member nearest to ``soh``."""
        idx = int(np.argmin(np.abs(self._levels - soh)))
        return self._members[float(self._levels[idx])]

    def _neighbours(self, soh: float) -> tuple[float, float, float]:
        """Bracketing levels and the interpolation weight of the upper one."""
        levels = self._levels
        if soh <= levels[0]:
            return float(levels[0]), float(levels[0]), 0.0
        if soh >= levels[-1]:
            return float(levels[-1]), float(levels[-1]), 0.0
        hi = int(np.searchsorted(levels, soh))
        lo = hi - 1
        w = (soh - levels[lo]) / (levels[hi] - levels[lo])
        return float(levels[lo]), float(levels[hi]), float(w)

    def estimate_soc(self, soh: float, voltage, current, temp_c) -> np.ndarray:
        """SoH-dispatched Branch 1 estimate."""
        return self._combine(soh, lambda m: m.estimate_soc(voltage, current, temp_c))

    def predict_soc(self, soh: float, soc_now, current_avg, temp_avg_c, horizon_s) -> np.ndarray:
        """SoH-dispatched Branch 2 prediction."""
        return self._combine(
            soh, lambda m: m.predict_soc(soc_now, current_avg, temp_avg_c, horizon_s)
        )

    def predict_from_sensors(self, soh: float, voltage, current, temp_c, current_avg, temp_avg_c, horizon_s) -> np.ndarray:
        """SoH-dispatched full cascade."""
        return self._combine(
            soh,
            lambda m: m.predict_from_sensors(voltage, current, temp_c, current_avg, temp_avg_c, horizon_s),
        )

    def _combine(self, soh: float, call) -> np.ndarray:
        if not 0.0 < soh <= 1.0:
            raise ValueError("SoH must be in (0, 1]")
        if not self.blend:
            return call(self.member(soh))
        lo, hi, w = self._neighbours(soh)
        low_out = call(self._members[lo])
        if w == 0.0 or lo == hi:
            return low_out
        high_out = call(self._members[hi])
        return (1.0 - w) * low_out + w * high_out
