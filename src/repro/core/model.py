"""The full two-branch SoC network (the paper's model, Fig. 1).

:class:`TwoBranchSoCNet` cascades the estimation and prediction
branches and owns the fixed feature scalers, exposing a raw-physical-
units API:

- :meth:`estimate_soc` — Branch 1 alone (the Table I "SoC(t)" column);
- :meth:`predict_soc` — Branch 2 alone from a known/estimated SoC;
- :meth:`predict_from_sensors` — the full cascade (Table I "SoC(t+N)").

With the paper's default 16/32/16 hidden stack the model has exactly
2,322 trainable parameters (~9 kB at float32).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..datasets.preprocessing import FeatureScaler, branch1_scaler, branch2_scaler
from ..datasets.windowing import PredictionSamples
from .branches import Branch1, Branch2
from .config import ModelConfig

__all__ = ["TwoBranchSoCNet"]


class TwoBranchSoCNet(nn.Module):
    """Cascaded estimation + prediction network with fixed scalers.

    Parameters
    ----------
    config:
        Architecture settings (hidden widths, horizon scale).
    rng:
        Generator for weight initialization.

    Notes
    -----
    The branches are deliberately independent modules: training is
    *split* (no gradient flows from Branch 2 into Branch 1), matching
    Sec. III-B of the paper.
    """

    def __init__(self, config: ModelConfig | None = None, rng: np.random.Generator | None = None):
        super().__init__()
        config = config if config is not None else ModelConfig()
        rng = rng if rng is not None else np.random.default_rng()
        self.config = config
        self.branch1 = Branch1(config, rng=rng)
        self.branch2 = Branch2(config, rng=rng)
        self.scaler1: FeatureScaler = branch1_scaler()
        self.scaler2: FeatureScaler = branch2_scaler(config.horizon_scale_s)

    # ------------------------------------------------------------------
    # training-time forwards (scaled tensors in, tensors out)
    # ------------------------------------------------------------------
    def forward_branch1(self, x_scaled: nn.Tensor) -> nn.Tensor:
        """Branch 1 on already-scaled features (training path)."""
        return self.branch1(x_scaled)

    def forward_branch2(self, x_scaled: nn.Tensor) -> nn.Tensor:
        """Branch 2 on already-scaled features (training path)."""
        return self.branch2(x_scaled)

    # ------------------------------------------------------------------
    # inference API in raw physical units
    # ------------------------------------------------------------------
    def estimate_soc(self, voltage, current, temp_c) -> np.ndarray:
        """Estimate the present SoC from sensor readings (Branch 1).

        Parameters
        ----------
        voltage, current, temp_c:
            Scalars or equal-length arrays in volts / amperes / Celsius.

        Returns
        -------
        numpy.ndarray
            Estimated SoC(t), one value per input row.
        """
        x = np.column_stack([
            np.atleast_1d(np.asarray(voltage, dtype=np.float64)),
            np.atleast_1d(np.asarray(current, dtype=np.float64)),
            np.atleast_1d(np.asarray(temp_c, dtype=np.float64)),
        ])
        with nn.no_grad():
            out = self.branch1(nn.Tensor(self.scaler1.transform(x)))
        return out.data[:, 0].copy()

    def predict_soc(self, soc_now, current_avg, temp_avg_c, horizon_s) -> np.ndarray:
        """Predict SoC(t+N) from a known SoC(t) and expected workload (Branch 2).

        Parameters
        ----------
        soc_now:
            SoC at time ``t`` (estimated or ground truth).
        current_avg, temp_avg_c:
            Expected average current / temperature over the horizon —
            user-specified workload parameters at query time.
        horizon_s:
            The prediction horizon ``N`` in seconds (may vary per row).
        """
        x = np.column_stack([
            np.atleast_1d(np.asarray(soc_now, dtype=np.float64)),
            np.atleast_1d(np.asarray(current_avg, dtype=np.float64)),
            np.atleast_1d(np.asarray(temp_avg_c, dtype=np.float64)),
            np.atleast_1d(np.asarray(horizon_s, dtype=np.float64)),
        ])
        with nn.no_grad():
            out = self.branch2(nn.Tensor(self.scaler2.transform(x)))
        return out.data[:, 0].copy()

    def predict_from_sensors(self, voltage, current, temp_c, current_avg, temp_avg_c, horizon_s) -> np.ndarray:
        """Full cascade: estimate SoC(t) from sensors, then predict SoC(t+N)."""
        soc_now = self.estimate_soc(voltage, current, temp_c)
        return self.predict_soc(soc_now, current_avg, temp_avg_c, horizon_s)

    def predict_samples(self, samples: PredictionSamples, use_ground_truth_soc: bool = False) -> np.ndarray:
        """Predict SoC(t+N) for a windowed sample set.

        Parameters
        ----------
        samples:
            Windowed rows from :func:`repro.datasets.make_prediction_samples`.
        use_ground_truth_soc:
            Feed the dataset's true SoC(t) into Branch 2 instead of the
            Branch 1 estimate (the training-time configuration; default
            is the deployment cascade).
        """
        if use_ground_truth_soc:
            soc_now = samples.soc_t
        else:
            soc_now = self.estimate_soc(samples.v_t, samples.i_t, samples.temp_t)
        return self.predict_soc(soc_now, samples.i_avg, samples.temp_avg, samples.horizon_s)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        """Total trainable parameters across both branches."""
        return self.branch1.num_parameters() + self.branch2.num_parameters()

    def __repr__(self) -> str:
        return (
            f"TwoBranchSoCNet(hidden={self.config.hidden}, "
            f"params={self.num_parameters()}, horizon_scale={self.config.horizon_scale_s}s)"
        )
