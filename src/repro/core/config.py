"""Configuration dataclasses for the two-branch SoC network.

Defaults reproduce the paper exactly: hidden widths 16/32/16 with ReLU
(Sec. III-A), MAE losses, Adam training, physics collocation over a set
of horizons (Sec. III-B).
"""

from __future__ import annotations

import dataclasses

__all__ = ["ModelConfig", "PhysicsConfig", "TrainConfig"]


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """Architecture of both branches.

    Attributes
    ----------
    hidden:
        Hidden-layer widths shared by the two branches (paper: the
        inverted bottleneck 16/32/16).
    horizon_scale_s:
        Fixed normalization constant for Branch 2's horizon input
        (360 s for Sandia-style horizons, 70 s for LG-style ones).
    """

    hidden: tuple[int, ...] = (16, 32, 16)
    horizon_scale_s: float = 360.0

    def __post_init__(self):
        if not self.hidden or any(h <= 0 for h in self.hidden):
            raise ValueError("hidden widths must be positive")
        if self.horizon_scale_s <= 0:
            raise ValueError("horizon scale must be positive")


@dataclasses.dataclass(frozen=True)
class PhysicsConfig:
    """Physics-informed loss settings (Sec. III-B, Eq. 2).

    Attributes
    ----------
    horizons_s:
        The set :math:`\\mathcal{N}` of collocation horizons ``Np``.
        A single value gives PINN-<Np>; several give PINN-All.
    n_collocation:
        Collocation points drawn per minibatch.
    weight:
        Multiplier on the physics MAE term (1.0 = Eq. 2 as printed).
    """

    horizons_s: tuple[float, ...] = (120.0, 240.0, 360.0)
    n_collocation: int = 256
    weight: float = 1.0

    def __post_init__(self):
        if not self.horizons_s or any(h <= 0 for h in self.horizons_s):
            raise ValueError("collocation horizons must be positive")
        if self.n_collocation <= 0:
            raise ValueError("need at least one collocation point")
        if self.weight < 0:
            raise ValueError("physics weight cannot be negative")


@dataclasses.dataclass(frozen=True)
class TrainConfig:
    """Optimization settings for the split training scheme.

    Attributes
    ----------
    epochs_branch1 / epochs_branch2:
        Epoch budgets per branch (they are trained separately; the
        paper stops gradients between them).
    batch_size, lr:
        Minibatch size and Adam learning rate.
    grad_clip:
        Global-norm gradient clip (0 disables).
    seed:
        Controls weight init, shuffling, and collocation sampling.
    max_train_rows:
        Optional cap on training rows (dense 0.1 s campaigns are
        subsampled to keep epochs meaningful); 0 disables.
    """

    epochs_branch1: int = 60
    epochs_branch2: int = 60
    batch_size: int = 64
    lr: float = 3e-3
    grad_clip: float = 5.0
    seed: int = 0
    max_train_rows: int = 20000

    def __post_init__(self):
        if self.epochs_branch1 < 0 or self.epochs_branch2 < 0:
            raise ValueError("epoch counts cannot be negative")
        if self.batch_size <= 0:
            raise ValueError("batch size must be positive")
        if self.lr <= 0:
            raise ValueError("learning rate must be positive")
        if self.grad_clip < 0:
            raise ValueError("grad clip cannot be negative")
        if self.max_train_rows < 0:
            raise ValueError("max_train_rows cannot be negative")
