"""``repro.core`` — the paper's contribution.

- :mod:`repro.core.config` — model / physics / training settings;
- :mod:`repro.core.branches` — the two FC branches (Fig. 1);
- :mod:`repro.core.model` — :class:`TwoBranchSoCNet` cascade;
- :mod:`repro.core.physics` — Coulomb-counting collocation (Eq. 1);
- :mod:`repro.core.trainer` — split training with the Eq. 2 loss;
- :mod:`repro.core.rollout` — autoregressive prediction (Fig. 2/5);
- :mod:`repro.core.kernels` — compiled allocation-free inference;
- :mod:`repro.core.complexity` — Table I's Mem/Ops accounting.
"""

from .branches import Branch1, Branch2
from .complexity import ComplexityReport, lstm_complexity, mlp_complexity, model_complexity
from .ensemble import SoHEnsemble
from .config import ModelConfig, PhysicsConfig, TrainConfig
from .kernels import (
    CompiledBranchKernel,
    CompiledTwoBranchKernel,
    FusedBranchKernel,
    FusedTwoBranchKernel,
)
from .model import TwoBranchSoCNet
from .physics import CollocationBatch, CollocationSampler
from .rollout import RolloutResult, WindowPlan, cycle_windows, model_rollout, rollout_cycle
from .trainer import SplitTrainer, train_two_branch

__all__ = [
    "Branch1",
    "Branch2",
    "ModelConfig",
    "PhysicsConfig",
    "TrainConfig",
    "TwoBranchSoCNet",
    "CompiledBranchKernel",
    "CompiledTwoBranchKernel",
    "FusedBranchKernel",
    "FusedTwoBranchKernel",
    "SoHEnsemble",
    "CollocationBatch",
    "CollocationSampler",
    "SplitTrainer",
    "train_two_branch",
    "RolloutResult",
    "WindowPlan",
    "cycle_windows",
    "rollout_cycle",
    "model_rollout",
    "ComplexityReport",
    "mlp_complexity",
    "lstm_complexity",
    "model_complexity",
]
