"""Compiled inference kernels: the two-branch network without the graph.

The paper's model is 2,322 parameters (~9 kB) — a forward pass is four
tiny GEMMs per branch.  Running it through :mod:`repro.nn` builds one
autograd :class:`~repro.nn.tensor.Tensor` (a Python object plus a fresh
array) per layer per call, so the serving hot path is almost entirely
interpreter and allocator overhead, not arithmetic.

:class:`CompiledTwoBranchKernel` strips all of that out:

- the trained weights are exported once
  (:func:`repro.nn.layers.export_affine_chain`) into flat, contiguous
  weight blocks — no ``Module``/``Tensor`` objects survive;
- the fixed feature scalers are **fused into the first layer's affine
  transform** (``((x - o)/s) @ W + b == x @ (W/s) + (b - (o/s) @ W)``),
  so raw physical-unit inputs go straight into the first GEMM;
- biases ride inside the GEMMs as an extra **bias row** driven by a
  constant ones channel in the input buffer; ReLU-family activations
  map 1 to 1 exactly, so the channel propagates through the hidden
  stack and every ``out += bias`` ufunc call disappears (activations
  that do not preserve the channel fall back to explicit bias adds);
- each forward is a fixed chain of ``np.dot(..., out=...)`` calls with
  in-place activations over **preallocated buffers** that grow
  geometrically with the largest batch seen, with the sliced views for
  the active batch size cached between calls — steady-state inference
  allocates nothing but the returned result row.

Numerics: with the default ``dtype=float64`` the kernel matches the
Tensor path to ~1e-13 over full autoregressive rollouts (the only
differences are scaler-fusion and bias-row summation-order rounding at
the machine-epsilon level), far inside the fleet's 1e-9 equivalence
budget — the golden-equivalence suite in ``tests/test_core_kernels.py``
pins this.  ``dtype=float32`` halves the memory traffic (the
deployment-shaped BMS configuration) at single-precision accuracy,
~1e-6.

The kernel is a *snapshot*: it copies the weights at construction.
After mutating the model (training, ``load_state_dict``), call
:meth:`CompiledTwoBranchKernel.refresh` or build a new kernel.
:class:`repro.serve.FleetEngine` compiles one kernel per distinct model
object and uses it for ``estimate``/``predict``/``rollout_fleet``
unless constructed with ``use_kernel=False``.

**Fused-stack layout.**  A mixed-model batch (different registry
versions, canary cohorts) would otherwise pay one GEMM-chain dispatch
per model group.  :class:`FusedTwoBranchKernel` stacks *M* same-
architecture members' exported stage-``k`` blocks into one
``(M, q, p)`` tensor and runs the whole chain as **batched GEMMs**:
rows are scattered by their ``member`` index into a zero-padded
``(M, n_max, n_inputs+1)`` input tensor (``n_max`` = largest group),
each stage is a single ``np.matmul`` over all members at once, and the
final gather ``h[member[r], slot[r], 0]`` picks each row's own head.
Per-stage arithmetic is exactly the per-member GEMV sequence — padding
lanes compute bounded garbage on zeros that is never read — so results
match per-model dispatch to BLAS rounding (~1e-16, pinned at 1e-9 in
the test suite) while the per-model Python dispatch, slicing and
buffer wrangling collapse into one C-level call per stage.  The
stacked blocks are fresh copies, so members' kernels stay
independently usable.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..datasets.preprocessing import FeatureScaler
from ..monitor.tracing import TRACE_STATE as _TRACE_STATE
from ..nn.layers import export_affine_chain
from .model import TwoBranchSoCNet

__all__ = [
    "CompiledBranchKernel",
    "CompiledTwoBranchKernel",
    "FusedBranchKernel",
    "FusedTwoBranchKernel",
]

# activations that map the constant 1.0 to exactly 1.0, so a ones
# channel appended to a layer's output can keep driving bias rows
_ONES_PRESERVING = ("relu", "identity")


def _inplace_activation(tag: str) -> Callable[[np.ndarray], None] | None:
    """In-place elementwise activation for one exported chain stage."""
    if tag == "identity":
        return None
    if tag == "relu":
        return lambda out: np.maximum(out, 0.0, out=out)
    if tag == "tanh":
        return lambda out: np.tanh(out, out=out)
    if tag == "sigmoid":

        def sigmoid(out: np.ndarray) -> None:
            np.negative(out, out=out)
            np.exp(out, out=out)
            out += 1.0
            np.reciprocal(out, out=out)

        return sigmoid
    if tag.startswith("leaky_relu:"):
        slope = float(tag.split(":", 1)[1])

        def leaky(out: np.ndarray) -> None:
            neg = np.minimum(out, 0.0)
            np.maximum(out, 0.0, out=out)
            neg *= slope
            out += neg

        return leaky
    raise ValueError(f"unsupported activation tag {tag!r}")


def _preserves_ones(tag: str) -> bool:
    return tag in _ONES_PRESERVING or tag.startswith("leaky_relu:")


class CompiledBranchKernel:
    """One branch compiled to a fixed GEMM + in-place activation chain.

    Parameters
    ----------
    module:
        The branch's :class:`~repro.nn.layers.MLP` (or any stack
        :func:`~repro.nn.layers.export_affine_chain` accepts).
    scaler:
        The branch's fixed :class:`FeatureScaler`, fused into the first
        affine stage so the kernel consumes raw physical units.
    dtype:
        Block dtype: ``float64`` (default, 1e-9-equivalent to the
        Tensor path) or ``float32`` (deployment-sized).
    """

    def __init__(self, module, scaler: FeatureScaler, dtype=np.float64):
        self.dtype = np.dtype(dtype)
        chain = export_affine_chain(module)
        if chain[0][0].shape[0] != scaler.n_features:
            raise ValueError(
                f"scaler has {scaler.n_features} features, first layer takes {chain[0][0].shape[0]}"
            )
        scales = np.asarray(scaler.scales, dtype=np.float64)
        offsets = np.asarray(scaler.offsets, dtype=np.float64)
        # (weight block, explicit bias or None, in-place activation or None)
        self._stages: list[tuple[np.ndarray, np.ndarray | None, Callable | None]] = []
        self._tags: list[str] = []  # activation tag per stage, for fused stacking
        carry = True  # the stage's input carries a trailing ones channel
        for k, (weight, bias, tag) in enumerate(chain):
            if k == 0:
                # scaler fusion: raw x in, first hidden pre-activation out
                fused_bias = (0.0 if bias is None else bias) - (offsets / scales) @ weight
                weight, bias = weight / scales[:, None], fused_bias
            bias_vec = np.zeros(weight.shape[1]) if bias is None else np.asarray(bias, dtype=np.float64)
            last = k == len(chain) - 1
            out_ones = not last and carry and _preserves_ones(tag)
            if carry:
                # bias row: the input's ones channel turns the bias add
                # into one more GEMM row
                block = np.vstack([weight, bias_vec])
                explicit_bias = None
            else:
                block, explicit_bias = weight, bias_vec.astype(self.dtype)
            if out_ones:
                # extra column keeps the ones channel flowing: only the
                # bias row feeds it, so it computes exactly 1.0
                column = np.zeros((block.shape[0], 1))
                column[-1, 0] = 1.0
                block = np.hstack([block, column])
            self._stages.append(
                (np.ascontiguousarray(block, dtype=self.dtype), explicit_bias, _inplace_activation(tag))
            )
            self._tags.append(tag)
            carry = out_ones
        self.n_inputs = int(chain[0][0].shape[0])
        self.n_outputs = int(chain[-1][0].shape[1])
        self._capacity = 0
        self._x: np.ndarray | None = None
        self._bufs: list[np.ndarray] = []
        # sliced views for the active batch size, rebuilt only when it changes
        self._n_active = -1
        self._xv: np.ndarray | None = None
        self._sv: list[tuple[np.ndarray, np.ndarray | None, Callable | None, np.ndarray]] = []

    def num_bytes(self) -> int:
        """On-heap size of the flat weight blocks."""
        return int(sum(block.nbytes for block, _, _ in self._stages))

    @property
    def chain_signature(self) -> tuple:
        """Stage-layout fingerprint: fused stacking requires equal signatures.

        Two kernels with the same signature have identical block shapes,
        activation tags, and bias-row vs explicit-bias placement in every
        stage — exactly the conditions for their blocks to be stacked
        block-diagonally into one chain (weights may differ freely).
        """
        return tuple(
            (tag, block.shape, bias is not None)
            for (block, bias, _), tag in zip(self._stages, self._tags)
        )

    def _activate(self, n: int) -> None:
        """Point the cached views at ``n``-row slices, growing buffers as needed."""
        if n > self._capacity:
            cap = max(n, 2 * self._capacity)
            self._x = np.empty((cap, self.n_inputs + 1), dtype=self.dtype)
            self._x[:, -1] = 1.0  # the ones channel driving bias rows
            self._bufs = [np.empty((cap, block.shape[1]), dtype=self.dtype) for block, _, _ in self._stages]
            self._capacity = cap
        self._xv = self._x[:n]
        self._sv = [(block, bias, act, buf[:n]) for (block, bias, act), buf in zip(self._stages, self._bufs)]
        self._n_active = n

    def forward_columns(self, cols: Sequence) -> np.ndarray:
        """Run the chain over per-feature columns in raw physical units.

        ``cols`` holds one scalar or 1-D array per input feature;
        arrays must share one length (length-1 arrays and scalars
        broadcast).  Returns a fresh ``(n,)`` array of the first output
        unit — the branches are scalar SoC heads.
        """
        cols = list(cols)
        if len(cols) != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} feature columns, got {len(cols)}")
        n = 1
        for j, col in enumerate(cols):
            shape = getattr(col, "shape", None)
            if shape is None:
                if not isinstance(col, (int, float)):
                    cols[j] = col = np.asarray(col, dtype=np.float64)
                    shape = col.shape
                else:
                    continue
            if shape:
                if len(shape) != 1:
                    raise ValueError(f"feature columns must be scalars or 1-D, got shape {shape}")
                size = shape[0]
                if size != 1 and size != n:
                    if n != 1:
                        raise ValueError(f"feature columns disagree on batch size ({size} vs {n})")
                    n = size
        if n != self._n_active:
            self._activate(n)
        x = self._xv
        for j, col in enumerate(cols):
            x[:, j] = col
        h = x
        for block, bias, act, out in self._sv:
            np.dot(h, block, out=out)
            if bias is not None:
                out += bias
            if act is not None:
                act(out)
            h = out
        return h[:, 0].copy()


class FusedBranchKernel:
    """Several same-architecture branch kernels stacked into one batched chain.

    See the module docstring ("Fused-stack layout") for the stacked
    ``(M, q, p)`` construction and why padding lanes cannot contaminate
    real rows.  Members must share one :attr:`dtype` and one
    :attr:`CompiledBranchKernel.chain_signature`; weights may differ.

    :meth:`forward_columns` takes the usual per-feature columns plus a
    ``member`` vector assigning each batch row to a member index, and
    returns each row's own member's scalar head — bit-for-bit the shape
    of running the per-member kernels over their row slices, without the
    per-member dispatch loop.
    """

    def __init__(self, members: Sequence[CompiledBranchKernel]):
        if not members:
            raise ValueError("fused kernel needs at least one member")
        self.members = list(members)
        head = self.members[0]
        self.dtype = head.dtype
        signature = head.chain_signature
        for member in self.members[1:]:
            if member.dtype != self.dtype:
                raise ValueError(
                    f"fused members must share one dtype ({member.dtype.name} vs {self.dtype.name})"
                )
            if member.chain_signature != signature:
                raise ValueError("fused members must share one exported chain architecture")
        self.n_members = len(self.members)
        self.n_inputs = head.n_inputs
        self.n_outputs = head.n_outputs
        self._in_stride = self.n_inputs + 1  # feature columns + the ones channel
        self._stages: list[tuple[np.ndarray, np.ndarray | None, Callable | None]] = []
        for k, tag in enumerate(head._tags):
            blocks = np.stack([member._stages[k][0] for member in self.members])
            biases = [member._stages[k][1] for member in self.members]
            # (M, 1, p): broadcast over each member's rows in one add
            explicit = None if biases[0] is None else np.stack(biases)[:, None, :]
            self._stages.append((blocks, explicit, _inplace_activation(tag)))
        self._capacity = 0
        self._x: np.ndarray | None = None
        self._bufs: list[np.ndarray] = []
        self._n_active = -1
        self._xv: np.ndarray | None = None
        self._sv: list[tuple[np.ndarray, np.ndarray | None, Callable | None, np.ndarray]] = []

    def num_bytes(self) -> int:
        """On-heap size of the stacked weight blocks."""
        return int(sum(block.nbytes for block, _, _ in self._stages))

    def _activate(self, n_max: int) -> None:
        """Point the cached views at ``n_max``-row group slices, growing as needed."""
        if n_max > self._capacity:
            cap = max(n_max, 2 * self._capacity)
            self._x = np.empty((self.n_members, cap, self._in_stride), dtype=self.dtype)
            self._bufs = [
                np.empty((self.n_members, cap, block.shape[2]), dtype=self.dtype)
                for block, _, _ in self._stages
            ]
            self._capacity = cap
        self._xv = self._x[:, :n_max]
        self._sv = [
            (block, bias, act, buf[:, :n_max]) for (block, bias, act), buf in zip(self._stages, self._bufs)
        ]
        self._n_active = n_max

    def forward_columns(self, cols: Sequence, member: np.ndarray) -> np.ndarray:
        """Run the fused chain over raw feature columns with member routing.

        ``cols`` holds one scalar or length-``n`` array per input
        feature; ``member`` is the ``(n,)`` integer vector assigning each
        row to a member kernel (``0 <= member[r] < n_members``) and fixes
        the batch size.  Returns a fresh ``(n,)`` array where row ``r``
        is member ``member[r]``'s scalar head over row ``r``'s features.
        """
        cols = list(cols)
        if len(cols) != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} feature columns, got {len(cols)}")
        member = np.asarray(member, dtype=np.intp)
        if member.ndim != 1:
            raise ValueError(f"member vector must be 1-D, got shape {member.shape}")
        n = member.shape[0]
        if n == 0:
            return np.empty(0, dtype=self.dtype)
        counts = np.bincount(member, minlength=self.n_members)
        if counts.size > self.n_members:
            raise ValueError(f"member index out of range (n_members={self.n_members})")
        # slot[r] = row r's position inside its member's group: scatter
        # target (member[r], slot[r]) packs each group to the front of
        # its lane, padding lanes beyond a group's count stay zero
        order = np.argsort(member, kind="stable")
        starts = np.zeros(self.n_members, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        slot = np.empty(n, dtype=np.intp)
        slot[order] = np.arange(n) - starts[member[order]]
        n_max = int(counts.max())
        if n_max != self._n_active:
            self._activate(n_max)
        x = self._xv
        # padding lanes stay exactly 0.0 so their garbage is bounded
        x[...] = 0.0
        for j, col in enumerate(cols):
            x[member, slot, j] = col
        x[member, slot, self.n_inputs] = 1.0  # the ones channel driving bias rows
        h = x
        for block, bias, act, out in self._sv:
            np.matmul(h, block, out=out)
            if bias is not None:
                out += bias
            if act is not None:
                act(out)
            h = out
        return h[member, slot, 0]


class CompiledTwoBranchKernel:
    """Both branches and the cascade as allocation-free compiled chains.

    Mirrors the raw-physical-units inference API of
    :class:`~repro.core.model.TwoBranchSoCNet` (``estimate_soc`` /
    ``predict_soc`` / ``predict_from_sensors``), so serving code can
    swap between the Tensor path and the compiled path object-for-object.

    Parameters
    ----------
    model:
        The trained network to export; kept as :attr:`model` so cache
        owners can detect staleness by identity.
    dtype:
        ``float64`` (default; ~1e-13 of the Tensor path) or
        ``float32`` (deployment-sized, ~1e-6).
    """

    def __init__(self, model: TwoBranchSoCNet, dtype=np.float64):
        self.model = model
        self.dtype = np.dtype(dtype)
        self.branch1: CompiledBranchKernel
        self.branch2: CompiledBranchKernel
        self.refresh()

    def refresh(self) -> None:
        """Re-export the model's current weights into fresh blocks."""
        self.branch1 = CompiledBranchKernel(self.model.branch1.mlp, self.model.scaler1, self.dtype)
        self.branch2 = CompiledBranchKernel(self.model.branch2.mlp, self.model.scaler2, self.dtype)

    def num_bytes(self) -> int:
        """Total size of both branches' weight blocks."""
        return self.branch1.num_bytes() + self.branch2.num_bytes()

    # -- inference API (mirrors TwoBranchSoCNet) ------------------------
    # Tracing here is the inlined guard, not monitor.tracing.stage():
    # one thread-local getattr + is-None on the untraced path keeps the
    # compiled kernel inside the kernel_speedup benchmark gate.
    def estimate_soc(self, voltage, current, temp_c) -> np.ndarray:
        """Branch 1: estimate SoC(t) from raw sensor readings."""
        ctx = getattr(_TRACE_STATE, "ctx", None)
        if ctx is None:
            return self.branch1.forward_columns((voltage, current, temp_c))
        with ctx.tracer.span(ctx, "kernel.estimate"):
            return self.branch1.forward_columns((voltage, current, temp_c))

    def predict_soc(self, soc_now, current_avg, temp_avg_c, horizon_s) -> np.ndarray:
        """Branch 2: predict SoC(t+N) from a known SoC and workload."""
        ctx = getattr(_TRACE_STATE, "ctx", None)
        if ctx is None:
            return self.branch2.forward_columns((soc_now, current_avg, temp_avg_c, horizon_s))
        with ctx.tracer.span(ctx, "kernel.predict"):
            return self.branch2.forward_columns((soc_now, current_avg, temp_avg_c, horizon_s))

    def predict_from_sensors(
        self, voltage, current, temp_c, current_avg, temp_avg_c, horizon_s
    ) -> np.ndarray:
        """Full cascade: Branch 1 seeds Branch 2."""
        soc_now = self.estimate_soc(voltage, current, temp_c)
        return self.predict_soc(soc_now, current_avg, temp_avg_c, horizon_s)

    def __repr__(self) -> str:
        return (
            f"CompiledTwoBranchKernel(dtype={self.dtype.name}, "
            f"bytes={self.num_bytes()}, model={self.model!r})"
        )


class FusedTwoBranchKernel:
    """Several models' compiled kernels fused into one batched GEMM chain.

    Built from *already compiled* :class:`CompiledTwoBranchKernel`
    members (same architecture and dtype; weights differ), this serves a
    mixed-model batch with one GEMM chain per branch instead of one per
    model — :class:`repro.serve.FleetEngine` routes multi-model
    ``estimate``/``predict`` batches here and keeps :attr:`members` so it
    can detect staleness by member-kernel identity.

    Raises ``ValueError`` when the members' exported chains cannot be
    stacked (different layer shapes, activations, or dtypes).
    """

    def __init__(self, kernels: Sequence[CompiledTwoBranchKernel]):
        if not kernels:
            raise ValueError("fused kernel needs at least one member")
        self.members = tuple(kernels)
        self.dtype = self.members[0].dtype
        self.branch1 = FusedBranchKernel([kernel.branch1 for kernel in self.members])
        self.branch2 = FusedBranchKernel([kernel.branch2 for kernel in self.members])

    @property
    def n_members(self) -> int:
        return len(self.members)

    def num_bytes(self) -> int:
        """Total size of both fused branches' weight blocks."""
        return self.branch1.num_bytes() + self.branch2.num_bytes()

    # -- inference API (member-routed; trace guard mirrors the member class)
    def estimate_soc(self, voltage, current, temp_c, member) -> np.ndarray:
        """Branch 1 for a mixed batch: row ``r`` uses model ``member[r]``."""
        ctx = getattr(_TRACE_STATE, "ctx", None)
        if ctx is None:
            return self.branch1.forward_columns((voltage, current, temp_c), member)
        with ctx.tracer.span(ctx, "kernel.estimate_fused"):
            return self.branch1.forward_columns((voltage, current, temp_c), member)

    def predict_soc(self, soc_now, current_avg, temp_avg_c, horizon_s, member) -> np.ndarray:
        """Branch 2 for a mixed batch: row ``r`` uses model ``member[r]``."""
        ctx = getattr(_TRACE_STATE, "ctx", None)
        if ctx is None:
            return self.branch2.forward_columns((soc_now, current_avg, temp_avg_c, horizon_s), member)
        with ctx.tracer.span(ctx, "kernel.predict_fused"):
            return self.branch2.forward_columns((soc_now, current_avg, temp_avg_c, horizon_s), member)

    def __repr__(self) -> str:
        return (
            f"FusedTwoBranchKernel(members={self.n_members}, "
            f"dtype={self.dtype.name}, bytes={self.num_bytes()})"
        )
