"""Coulomb-counting collocation sampling for the physics loss (Sec. III-B).

During training, each minibatch is accompanied by a batch of *randomly
generated* conditions — initial SoC, current, temperature, horizon —
whose target future SoC comes from Eq. 1 instead of labels:

.. math::

    SoC_p(t+N_p) = SoC(t) - \\frac{I \\cdot N_p}{3600\\, C_{rated}}

Currents/temperatures are drawn from the *empirical pool* of training
conditions ("the same current conditions of the dataset"), paired with
the matching cell capacity so mixed-chemistry campaigns keep Eq. 1
exact.  Horizons are drawn from the configured set
:math:`\\mathcal{N}`, which is what lets one network learn many
prediction horizons without any extra labels.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..battery import coulomb
from ..datasets.windowing import PredictionSamples
from .config import PhysicsConfig

__all__ = ["CollocationBatch", "CollocationSampler"]


@dataclasses.dataclass
class CollocationBatch:
    """One batch of physics collocation points.

    ``features`` columns are raw ``(SoC, I_avg, T_avg, N)``; ``targets``
    is the Coulomb-counting future SoC (Eq. 1, unclipped — the network
    output is an unrestricted scalar).
    """

    features: np.ndarray
    targets: np.ndarray

    def __post_init__(self):
        if self.features.ndim != 2 or self.features.shape[1] != 4:
            raise ValueError("collocation features must be (n, 4)")
        if len(self.features) != len(self.targets):
            raise ValueError("features and targets must align")

    def __len__(self) -> int:
        return len(self.targets)


class CollocationSampler:
    """Draws collocation batches from an empirical condition pool.

    Parameters
    ----------
    pool:
        Training-set windows; their ``(i_avg, temp_avg, capacity_ah)``
        triplets form the empirical operating-condition pool.
    config:
        Horizon set and batch size.
    rng:
        Generator (one per training run, so 5-seed averages differ in
        their collocation draws too, as in the paper).
    """

    def __init__(self, pool: PredictionSamples, config: PhysicsConfig, rng: np.random.Generator):
        if len(pool) == 0:
            raise ValueError("empirical pool is empty")
        self.config = config
        self._currents = np.asarray(pool.i_avg, dtype=np.float64)
        self._temps = np.asarray(pool.temp_avg, dtype=np.float64)
        self._capacities = np.asarray(pool.capacity_ah, dtype=np.float64)
        self._rng = rng

    def sample(self, n: int | None = None) -> CollocationBatch:
        """Draw ``n`` collocation points (default: the configured size).

        Initial SoC is uniform on [0, 1]; current/temperature/capacity
        are drawn jointly from one pool row; the horizon is a uniform
        choice from the configured set.
        """
        n = n if n is not None else self.config.n_collocation
        if n <= 0:
            raise ValueError("batch size must be positive")
        rows = self._rng.integers(0, len(self._currents), size=n)
        soc0 = self._rng.uniform(0.0, 1.0, size=n)
        current = self._currents[rows]
        temp = self._temps[rows]
        capacity = self._capacities[rows]
        horizons = np.asarray(self.config.horizons_s)
        horizon = horizons[self._rng.integers(0, len(horizons), size=n)]
        targets = np.empty(n)
        for cap in np.unique(capacity):
            mask = capacity == cap
            targets[mask] = coulomb.predict_soc(soc0[mask], current[mask], horizon[mask], float(cap))
        features = np.column_stack([soc0, current, temp, horizon])
        return CollocationBatch(features=features, targets=targets)
