"""Harvest training rows for the offline learner from serving journals.

The serving plane already writes down everything a retrain needs: every
committed rollout window lands in a :class:`~repro.serve.persistence.StateJournal`
as a ``w`` record, and since the journal's extended record format those
records carry the workload that produced the window (``i``/``t``/``h``/
``c`` keys — average current, average temperature, horizon, capacity).
This module replays those journals *as data*, not as state: consecutive
``(w, w+1)`` records of one cell become one
:class:`~repro.datasets.windowing.PredictionSamples` row —

    ``(SoC(t)=w.soc, I_avg, T_avg, N) -> SoC(t+N)=w+1.soc``

— exactly Branch 2's training contract, which is what lets the
fine-tuner (:mod:`repro.learn.finetune`) feed the harvest straight into
the existing :class:`~repro.core.trainer.SplitTrainer`.

Replay order per journal mirrors the journal's own: archived segments
(fetched from the :class:`~repro.serve.archive.ArchiveStore` cold tier,
like :func:`~repro.serve.archive.restore_from_archive`), local sealed
segments, then the active file — read-only, so harvesting never races
the serving process that owns the journal.  The edge cases the serving
stack creates are handled where they arise:

- **compacted journals**: compaction keeps only SoC per window, so rows
  whose workload keys were compacted away are silently unavailable —
  the harvester pairs across a ``compact`` marker (the re-emitted
  soc-only records still anchor resumed windows) but emits nothing for
  history that no longer exists;
- **archived-segment gaps**: a hole in the cold store's numbering
  raises :class:`~repro.serve.archive.MissingSegmentError` unless the
  caller budgets for it (``max_gaps``); tolerated gaps sever window
  pairing (never pair across missing history) and are counted in the
  report;
- **rebalanced cells**: a drifted cell whose shard changed left its
  windows in *another* worker's journal — harvesting accepts many
  journals and merges their rows, deduplicating exact duplicates a
  crashed ship-then-unlink may have left behind;
- **torn tails**: a crash mid-write tears at most the active file's
  final line; that line is skipped (sealed segments must parse
  cleanly, as in journal replay).
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..datasets.windowing import PredictionSamples
from ..serve.archive import MissingSegmentError
from ..serve.persistence import JOURNAL_FORMAT_VERSION

__all__ = ["HarvestReport", "harvest_training_set"]

_WORKLOAD_KEYS = ("i", "t", "h", "c")


@dataclasses.dataclass
class HarvestReport:
    """What one harvest pass extracted.

    Attributes
    ----------
    by_chemistry:
        Training rows partitioned by the cells' journaled chemistry
        (``None`` groups cells registered without one) — per-chemistry
        fine-tunes pick their partition, fleet-wide ones use
        :attr:`samples`.
    rows:
        Total emitted rows across partitions.
    cells:
        Sorted ids of the cells that contributed rows.
    missing_segments:
        Archived segments that were absent but inside the caller's
        ``max_gaps`` budget (pairing was severed around each).
    duplicates:
        Rows dropped by exact-duplicate dedup (same cell, window, and
        workload seen again — e.g. a segment both archived and local).
    """

    by_chemistry: dict[str | None, PredictionSamples]
    rows: int
    cells: tuple[str, ...]
    missing_segments: int
    duplicates: int

    @property
    def samples(self) -> PredictionSamples | None:
        """All partitions pooled into one sample set (``None`` when empty)."""
        parts = list(self.by_chemistry.values())
        if not parts:
            return None
        return parts[0] if len(parts) == 1 else PredictionSamples.concatenate(parts)

    def partition(self, chemistry: str | None) -> PredictionSamples | None:
        """One chemistry's rows (``None`` when that partition is empty)."""
        return self.by_chemistry.get(chemistry)


def harvest_training_set(
    journals: str | Path | Sequence[str | Path],
    events: Iterable | None = None,
    cell_ids: Iterable[str] | None = None,
    store=None,
    max_gaps: int = 0,
    dedup: bool = True,
) -> HarvestReport:
    """Replay serving journals into Branch 2 training rows.

    Parameters
    ----------
    journals:
        One journal path or many (one per shard worker, typically) —
        the *active* file paths; sealed ``<name>.NNNNN.jsonl`` segments
        next to each are replayed first, oldest first.
    events:
        Drift events (:class:`~repro.monitor.drift.DriftEvent` or
        anything with a ``cell_id``) restricting the harvest to the
        cells that alarmed — the drift → retrain contract.  ``None``
        harvests every cell (unless ``cell_ids`` filters).
    cell_ids:
        Explicit cell filter, unioned with the events' cells.
    store:
        Optional :class:`~repro.serve.archive.ArchiveStore` holding
        each journal's shipped cold segments.
    max_gaps:
        Missing archived segments tolerated across the whole harvest
        before :class:`~repro.serve.archive.MissingSegmentError` — each
        tolerated gap severs window pairing at that point.
    dedup:
        Drop exact duplicate rows (default).  Dedup keys on the full
        row (cell, window, SoCs, workload), so distinct rollouts of the
        same cell/window survive.
    """
    if isinstance(journals, (str, Path)):
        journals = [journals]
    wanted: set[str] | None = None
    if events is not None or cell_ids is not None:
        wanted = set() if cell_ids is None else set(cell_ids)
        for event in events or ():
            wanted.add(event.cell_id)
    state = _HarvestState(wanted=wanted, dedup=dedup, gap_budget=int(max_gaps))
    for journal in journals:
        state.replay_journal(Path(journal), store)
    return state.report()


class _HarvestState:
    """Streaming replay state shared across one harvest's journals."""

    def __init__(self, wanted: set[str] | None, dedup: bool, gap_budget: int):
        self.wanted = wanted
        self.dedup = dedup
        self.gap_budget = gap_budget
        self.gaps = 0
        self.duplicates = 0
        self.seen: set[tuple] = set()
        self.rows: dict[str | None, list[dict]] = {}
        self.cells: set[str] = set()
        # per-journal pairing state, reset in replay_journal
        self._chem: dict[str, str | None] = {}
        self._last: dict[str, tuple[int, float]] = {}

    # -- per-journal replay --------------------------------------------
    def replay_journal(self, path: Path, store) -> None:
        self._chem = {}
        self._last = {}
        with tempfile.TemporaryDirectory(prefix="soc-harvest-") as tmp:
            for file, allow_torn in self._journal_files(path, store, Path(tmp)):
                if file is None:  # tolerated gap sentinel
                    self._last.clear()
                    continue
                self._replay_file(file, allow_torn=allow_torn)

    def _journal_files(self, path: Path, store, tmp: Path):
        """Yield ``(file, allow_torn)`` in replay order; ``(None, _)`` marks a gap."""
        local: dict[int, Path] = {}
        for candidate in path.parent.glob(f"{path.name}.*.jsonl"):
            index = _segment_index(path.name, candidate.name)
            if index is not None:
                local[index] = candidate
        archived: dict[int, str] = {}
        if store is not None:
            for name in store.list(prefix=f"{path.name}."):
                index = _segment_index(path.name, name)
                if index is not None:
                    archived[index] = name
        indices = sorted(set(local) | set(archived))
        for index in range(1, indices[-1] + 1) if indices else ():
            if index in local:
                yield local[index], False
            elif index in archived:
                fetched = tmp / archived[index]
                store.fetch(archived[index], fetched)
                yield fetched, False
            else:
                self.gaps += 1
                if self.gaps > self.gap_budget:
                    raise MissingSegmentError(
                        f"journal {path.name} history has gaps beyond the "
                        f"max_gaps={self.gap_budget} budget (missing segment {index})"
                    )
                yield None, False
        if path.exists():
            yield path, True

    def _replay_file(self, path: Path, allow_torn: bool) -> None:
        lines = path.read_bytes().splitlines()
        for k, raw_line in enumerate(lines):
            line = raw_line.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if allow_torn and k == len(lines) - 1:
                    return  # torn tail: the crash the journal itself tolerates
                raise ValueError(f"corrupt journal {path}: bad record on line {k + 1}")
            self._replay_record(record, path)

    def _replay_record(self, record: dict, path: Path) -> None:
        op = record.get("op")
        if op == "cell":
            self._chem[record["id"]] = record.get("chem")
        elif op == "drop":
            self._chem.pop(record["id"], None)
            self._last.pop(record["id"], None)
        elif op == "rollout":
            # a new rollout restarts every cell's window numbering
            self._last.clear()
        elif op == "compact":
            # state resets here; the re-emitted records that follow
            # rebuild it (their soc-only windows re-anchor pairing, so
            # post-restart resumed windows still yield rows)
            self._chem.clear()
            self._last.clear()
        elif op == "w":
            self._replay_window(record)
        elif op == "journal":
            if record.get("version", 0) > JOURNAL_FORMAT_VERSION:
                raise ValueError(
                    f"journal {path} uses format v{record['version']} "
                    f"(this build reads up to v{JOURNAL_FORMAT_VERSION})"
                )
        else:
            raise ValueError(f"corrupt journal {path}: unknown op {op!r}")

    def _replay_window(self, record: dict) -> None:
        cell_id = record["id"]
        window = int(record["w"])
        soc = float(record["soc"])
        previous = self._last.get(cell_id)
        self._last[cell_id] = (window, soc)
        if previous is None or previous[0] != window - 1:
            return
        if any(key not in record for key in _WORKLOAD_KEYS):
            return  # pre-extension or compacted record: no workload to learn from
        if self.wanted is not None and cell_id not in self.wanted:
            return
        row = {
            "cell_id": cell_id,
            "window": window,
            "soc_t": previous[1],
            "i_avg": float(record["i"]),
            "temp_avg": float(record["t"]),
            "horizon_s": float(record["h"]),
            "soc_target": soc,
            "capacity_ah": float(record["c"]),
        }
        if self.dedup:
            key = tuple(row.values())
            if key in self.seen:
                self.duplicates += 1
                return
            self.seen.add(key)
        self.cells.add(cell_id)
        self.rows.setdefault(self._chem.get(cell_id), []).append(row)

    # -- materialization -----------------------------------------------
    def report(self) -> HarvestReport:
        by_chemistry = {
            chem: _to_samples(rows) for chem, rows in sorted(
                self.rows.items(), key=lambda item: (item[0] is not None, item[0] or "")
            )
        }
        return HarvestReport(
            by_chemistry=by_chemistry,
            rows=sum(len(rows) for rows in self.rows.values()),
            cells=tuple(sorted(self.cells)),
            missing_segments=self.gaps,
            duplicates=self.duplicates,
        )


def _segment_index(journal_name: str, file_name: str) -> int | None:
    if not (file_name.startswith(f"{journal_name}.") and file_name.endswith(".jsonl")):
        return None
    stem = file_name[len(journal_name) + 1 : -len(".jsonl")]
    return int(stem) if stem.isdigit() else None


def _to_samples(rows: list[dict]) -> PredictionSamples:
    """Rows → :class:`PredictionSamples` (measured channels zero-filled).

    The journal records the recursion's inputs, not raw sensor traces,
    so ``v_t``/``i_t``/``temp_t`` are placeholders — safe because
    Branch 2 training (and its collocation sampler) reads only the
    ``soc_t``/``i_avg``/``temp_avg``/``horizon_s``/``capacity_ah``
    columns.
    """
    n = len(rows)
    column = lambda key: np.array([row[key] for row in rows], dtype=np.float64)  # noqa: E731
    return PredictionSamples(
        v_t=np.zeros(n),
        i_t=np.zeros(n),
        temp_t=np.zeros(n),
        soc_t=column("soc_t"),
        i_avg=column("i_avg"),
        temp_avg=column("temp_avg"),
        horizon_s=column("horizon_s"),
        soc_target=column("soc_target"),
        capacity_ah=column("capacity_ah"),
    )
