"""``repro.learn`` — the offline learner closing the serving loop.

Drift detection (:mod:`repro.monitor`) and canary steering already run
without a human; this package removes the last manual step — producing
the candidate — so the full lifecycle is autonomous::

    drift events -> harvest journaled windows -> fine-tune stable
    checkpoint -> publish @vN+1 to canary -> autopilot qualifies
    (divergence + latency) -> promote or rollback

- :mod:`repro.learn.harvest` — replay serving journals (live, sealed,
  and archived segments) into Branch 2 training rows for the drifted
  cells, partitioned per chemistry;
- :mod:`repro.learn.finetune` — short physics-regularized Branch 2
  fine-tune warm-started from the stable checkpoint (never distills
  the drifted model: targets are relabeled with paper Eq. 1);
- :mod:`repro.learn.publish` — push the candidate to the canary
  channel through whatever handle the pipeline has (controller,
  daemon client, or bare registry);
- :mod:`repro.learn.loop` — :class:`RetrainLoop`, the tick-driven
  policy gluing the three together inside the
  :class:`~repro.monitor.autopilot.ControlLoop` (or one-shot via
  ``repro-soc retrain``).

See ``src/repro/learn/README.md`` for the lifecycle diagram.
"""

from .finetune import FineTuneConfig, fine_tune, relabel_with_physics
from .harvest import HarvestReport, harvest_training_set
from .loop import RetrainConfig, RetrainLoop
from .publish import publish_candidate

__all__ = [
    "FineTuneConfig",
    "HarvestReport",
    "RetrainConfig",
    "RetrainLoop",
    "fine_tune",
    "harvest_training_set",
    "publish_candidate",
    "relabel_with_physics",
]
