"""Push a fine-tuned candidate into the canary channel.

One function, three targets — whatever the pipeline has a handle to:

- a :class:`~repro.serve.canary.CanaryController`: publish **and** pin
  the traffic slice in one step, so the daemon's autopilot starts
  steering the candidate immediately (the in-process and in-daemon
  path);
- a :class:`~repro.serve.client.SocClient`: ship config + weights over
  the wire; the daemon routes the publish through *its* controller —
  remote retrain pipelines never touch ``channels.json`` directly;
- a bare :class:`~repro.serve.registry.ModelRegistry`: stage the
  candidate on the canary channel for a controller to pick up later
  (one-shot ``repro-soc retrain`` runs against a registry directory).

Every path returns the candidate's version — the ``@vN+1`` the loop's
e2e contract promotes.
"""

from __future__ import annotations

__all__ = ["publish_candidate"]


def publish_candidate(
    target,
    name: str,
    model,
    chemistry: str | None = None,
    dataset: str | None = None,
    extra: dict | None = None,
) -> int:
    """Publish ``model`` as ``name``'s canary candidate; returns its version.

    Raises
    ------
    ValueError
        When a canary for ``name`` is already active (controller and
        daemon targets) — the loop must wait for a verdict before
        staging the next candidate.
    """
    start = getattr(target, "start", None)
    if start is not None and hasattr(target, "candidate_version"):
        return int(start(candidate=model, chemistry=chemistry, dataset=dataset, extra=extra))
    publish = getattr(target, "publish", None)
    if publish is None:
        raise TypeError(
            f"cannot publish through {type(target).__name__}: expected a "
            "CanaryController, SocClient, or ModelRegistry"
        )
    result = publish(
        name, model, chemistry=chemistry, dataset=dataset, extra=extra, channel="canary"
    )
    # ModelRegistry.publish returns the entry; SocClient.publish the version
    return int(getattr(result, "version", result))
