"""Fine-tune a serving checkpoint on harvested drift windows.

The retrain step of the closed loop: warm-start a candidate from the
currently-stable checkpoint and run a short, physics-regularized
Branch 2 fine-tune on the rows the harvester extracted
(:mod:`repro.learn.harvest`).  Branch 1 is untouched — drift detectors
watch the *prediction* recursion (Eq. 1 residuals), so that is the
branch the fresh evidence speaks to — which the existing
:class:`~repro.core.trainer.SplitTrainer` expresses directly as
``epochs_branch1=0``.

Targets deserve care: the journaled ``SoC(t+N)`` values were produced
by the very model that drifted, so training on them verbatim would
*distill the degradation*.  The default (``targets="physics"``)
therefore relabels every row with the Coulomb-counting target (paper
Eq. 1)::

    SoC(t+N) = SoC(t) - I_avg * N / (3600 * C)

pulling the candidate back onto the physics manifold the detectors
measure against — the same anchor the PINN's collocation loss uses,
here applied to the *observed* workload distribution.  ``targets=
"journal"`` keeps the journaled labels for pipelines that trust them
(e.g. journals written by a known-good model).
"""

from __future__ import annotations

import copy
import dataclasses

import numpy as np

from ..core.config import PhysicsConfig, TrainConfig
from ..core.model import TwoBranchSoCNet
from ..core.trainer import SplitTrainer
from ..datasets.windowing import PredictionSamples

__all__ = ["FineTuneConfig", "fine_tune"]


@dataclasses.dataclass(frozen=True)
class FineTuneConfig:
    """Settings for one offline fine-tune.

    Short and conservative by default: the candidate starts from a
    checkpoint that served well until the fleet drifted, so a few
    low-rate epochs on the drift windows beat a full retrain (and keep
    the retrain loop's tick latency bounded).

    Attributes
    ----------
    epochs, lr, batch_size, grad_clip:
        Branch 2 optimization settings (see
        :class:`~repro.core.config.TrainConfig`).
    physics_weight, n_collocation:
        Collocation loss over the harvested workload distribution
        (Eq. 2); ``physics_weight=0`` disables it.
    seed:
        Seeds init/shuffling/collocation, so a fine-tune on the same
        harvest is reproducible.
    max_rows:
        Row cap before training (subsampled when the harvest is
        denser).
    targets:
        ``"physics"`` (default) relabels rows with the Eq. 1 target —
        never distill a drifted model's own outputs; ``"journal"``
        trains on the journaled SoC labels verbatim.
    """

    epochs: int = 20
    lr: float = 1e-3
    batch_size: int = 64
    grad_clip: float = 5.0
    physics_weight: float = 1.0
    n_collocation: int = 128
    seed: int = 0
    max_rows: int = 20000
    targets: str = "physics"

    def __post_init__(self):
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.targets not in ("physics", "journal"):
            raise ValueError(f"targets must be 'physics' or 'journal', not {self.targets!r}")


def fine_tune(
    base: TwoBranchSoCNet,
    samples: PredictionSamples,
    config: FineTuneConfig | None = None,
) -> TwoBranchSoCNet:
    """Warm-started Branch 2 fine-tune; returns the candidate model.

    ``base`` is left untouched (weights are deep-copied into a fresh
    network of the same :class:`~repro.core.config.ModelConfig`), so
    the caller can publish the candidate next to the stable checkpoint
    it came from and let the canary decide between them.
    """
    config = config if config is not None else FineTuneConfig()
    if len(samples) == 0:
        raise ValueError("nothing to fine-tune on: empty sample set")
    candidate = TwoBranchSoCNet(base.config, rng=np.random.default_rng(config.seed))
    candidate.load_state_dict(copy.deepcopy(base.state_dict()))
    if config.targets == "physics":
        samples = relabel_with_physics(samples)
    trainer = SplitTrainer(
        candidate,
        TrainConfig(
            epochs_branch1=0,
            epochs_branch2=config.epochs,
            batch_size=config.batch_size,
            lr=config.lr,
            grad_clip=config.grad_clip,
            seed=config.seed,
            max_train_rows=config.max_rows,
        ),
        physics=(
            PhysicsConfig(n_collocation=config.n_collocation, weight=config.physics_weight)
            if config.physics_weight > 0
            else None
        ),
    )
    trainer.train_branch2(samples)
    candidate.eval()
    return candidate


def relabel_with_physics(samples: PredictionSamples) -> PredictionSamples:
    """Replace the targets with the Coulomb-counting SoC (paper Eq. 1)."""
    target = samples.soc_t - samples.i_avg * samples.horizon_s / (3600.0 * samples.capacity_ah)
    return dataclasses.replace(samples, soc_target=target)
