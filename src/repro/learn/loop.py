"""The retrain loop: drift events in, canary candidates out.

:class:`RetrainLoop` is the piece that closes the loop the previous
layers left open.  Drift detectors alarm
(:class:`~repro.monitor.drift.DriftMonitor`), the autopilot steers
canaries (:class:`~repro.monitor.autopilot.AutoCanaryPolicy`) — but
until now a *human* read the drift events and produced the candidate.
A ``RetrainLoop`` ticks inside the
:class:`~repro.monitor.autopilot.ControlLoop` (or standalone, via
``repro-soc retrain``) and, when enough fresh drift has accumulated:

1. **harvests** the drifted cells' journaled windows into training rows
   (:func:`~repro.learn.harvest.harvest_training_set`);
2. **fine-tunes** a candidate warm-started from the currently-stable
   checkpoint (:func:`~repro.learn.finetune.fine_tune`);
3. **publishes** it to the canary channel
   (:func:`~repro.learn.publish.publish_candidate`), where the
   autopilot qualifies it on live traffic — divergence budget, drift
   veto, canary latency — and promotes or rolls back.

The loop is deliberately *slow-path*: one tick does at most one
harvest + fine-tune, never publishes while a canary is being judged,
and backs off (``cooldown_ticks``) after every action, so the control
plane's pacing bounds retrain churn.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Sequence

from .finetune import FineTuneConfig, fine_tune
from .harvest import harvest_training_set
from .publish import publish_candidate

__all__ = ["RetrainConfig", "RetrainLoop"]


@dataclasses.dataclass(frozen=True)
class RetrainConfig:
    """Policy knobs for the retrain loop.

    Attributes
    ----------
    name:
        Registry name whose stable checkpoint is retrained (and whose
        canary channel receives candidates).
    min_events:
        Fresh drift events required before a retrain is attempted —
        single alarms are noise, sustained drift is signal.
    min_rows:
        Harvested rows required to actually fine-tune; below it the
        events are consumed (their windows are too sparse to learn
        from, e.g. compacted away) and the loop cools down.
    cooldown_ticks:
        Ticks to sit out after any action (published or no-data), so a
        candidate's canary gets traffic before the next attempt.
    max_gaps:
        Archived-segment gap budget forwarded to the harvester.
    chemistry:
        Restrict training to one chemistry's partition (``None`` pools
        every harvested row).
    finetune:
        Fine-tune settings (:class:`~repro.learn.finetune.FineTuneConfig`).
    """

    name: str
    min_events: int = 1
    min_rows: int = 4
    cooldown_ticks: int = 1
    max_gaps: int = 0
    chemistry: str | None = None
    finetune: FineTuneConfig = FineTuneConfig()

    def __post_init__(self):
        if self.min_events < 1:
            raise ValueError("min_events must be at least 1")
        if self.min_rows < 1:
            raise ValueError("min_rows must be at least 1")
        if self.cooldown_ticks < 0:
            raise ValueError("cooldown_ticks cannot be negative")


class RetrainLoop:
    """Drift-triggered retraining, one bounded step per :meth:`tick`.

    Parameters
    ----------
    source:
        Where drift events come from: anything with ``drift_events()``
        (:class:`~repro.serve.engine.FleetEngine`,
        :class:`~repro.serve.sharding.ShardedFleet`,
        :class:`~repro.serve.client.SocClient`) or a bare callable
        returning a list of events.
    journals:
        Journal path(s) the harvester replays — the shard workers'
        journals, so rebalanced cells' history is found wherever it
        lives.
    registry:
        :class:`~repro.serve.registry.ModelRegistry` holding the stable
        base checkpoint (and the canary-channel pointer the loop checks
        before publishing).
    target:
        Publish target (controller, client, or registry — see
        :func:`~repro.learn.publish.publish_candidate`).
    config:
        :class:`RetrainConfig`.
    store:
        Optional :class:`~repro.serve.archive.ArchiveStore` with the
        journals' cold segments.
    metrics:
        Optional :class:`~repro.monitor.metrics.MetricsRegistry`;
        ticks land in ``retrain_ticks_total{status=...}``.
    """

    def __init__(
        self,
        source,
        journals: str | Path | Sequence[str | Path],
        registry,
        target,
        config: RetrainConfig,
        store=None,
        metrics=None,
    ):
        self.source = source
        self.journals = journals
        self.registry = registry
        self.target = target
        self.config = config
        self.store = store
        self.metrics = metrics
        self.retrains = 0
        self.last_report: dict | None = None
        self._consumed = 0
        self._cooldown = 0

    def tick(self) -> dict:
        """One bounded retrain step; returns what happened.

        ``status`` is one of ``cooldown``, ``canary-active``, ``idle``
        (not enough fresh drift), ``no-data`` (drift but no harvestable
        windows), or ``published`` (+ ``version`` of the candidate).
        """
        report = self._tick()
        self.last_report = report
        if self.metrics is not None:
            self.metrics.counter("retrain_ticks_total", status=report["status"]).inc()
        return report

    def _tick(self) -> dict:
        if self._cooldown > 0:
            self._cooldown -= 1
            return {"status": "cooldown", "remaining": self._cooldown}
        if self._canary_active():
            return {"status": "canary-active"}
        events = self._fetch_events()
        fresh = max(0, len(events) - self._consumed)
        if fresh < self.config.min_events:
            return {"status": "idle", "fresh_events": fresh}
        harvest = harvest_training_set(
            self.journals, events=events, store=self.store, max_gaps=self.config.max_gaps
        )
        if self.config.chemistry is not None:
            samples = harvest.partition(self.config.chemistry)
        else:
            samples = harvest.samples
        rows = 0 if samples is None else len(samples)
        if rows < self.config.min_rows:
            self._settle(events)
            return {"status": "no-data", "fresh_events": fresh, "rows": rows}
        base_entry = self.registry.describe(self.config.name)
        candidate = fine_tune(
            self.registry.load(self.config.name), samples, self.config.finetune
        )
        try:
            version = publish_candidate(
                self.target,
                self.config.name,
                candidate,
                chemistry=base_entry.chemistry,
                dataset=base_entry.dataset,
                extra={
                    "retrained_from": base_entry.version,
                    "harvest_rows": rows,
                    "harvest_cells": len(harvest.cells),
                },
            )
        except ValueError:
            # a canary raced us between the check and the publish;
            # leave the events unconsumed and retry after its verdict
            return {"status": "canary-active"}
        self._settle(events)
        self.retrains += 1
        return {
            "status": "published",
            "version": int(version),
            "rows": rows,
            "cells": len(harvest.cells),
            "fresh_events": fresh,
        }

    # ------------------------------------------------------------------
    def _fetch_events(self) -> list:
        fetch = getattr(self.source, "drift_events", None)
        events = fetch() if fetch is not None else self.source()
        return list(events)

    def _settle(self, events: list) -> None:
        self._consumed = len(events)
        self._cooldown = self.config.cooldown_ticks

    def _canary_active(self) -> bool:
        active = getattr(self.target, "active", None)
        if active is not None:
            return bool(active)
        try:
            return "canary" in self.registry.channels(self.config.name)
        except KeyError:
            return False
