"""Deterministic random-number plumbing.

Every stochastic component in the reproduction (weight init, minibatch
shuffling, sensor noise, physics collocation sampling, drive-cycle
synthesis) receives an explicit :class:`numpy.random.Generator`.  The
helpers here derive independent child generators from a single
experiment seed so that multi-seed averages (the paper uses 5 seeds per
bar) are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_seed", "child_rngs"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator from a seed, pass one through, or create a fresh one."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed(seed: int, stream: str) -> int:
    """Derive a deterministic sub-seed for a named stream.

    Uses ``numpy.random.SeedSequence`` with the stream name hashed into
    the spawn key, so different streams from the same experiment seed
    are statistically independent.
    """
    digest = np.frombuffer(stream.encode("utf-8"), dtype=np.uint8)
    ss = np.random.SeedSequence([seed, *digest.tolist()])
    return int(ss.generate_state(1)[0])


def child_rngs(seed: int, *streams: str) -> dict[str, np.random.Generator]:
    """Create one independent Generator per named stream.

    Example
    -------
    >>> rngs = child_rngs(0, "init", "data", "noise")
    >>> sorted(rngs)
    ['data', 'init', 'noise']
    """
    if not streams:
        raise ValueError("at least one stream name is required")
    return {name: np.random.default_rng(spawn_seed(seed, name)) for name in streams}
