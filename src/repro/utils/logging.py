"""Lightweight run logging for training loops and experiment drivers.

Deliberately tiny: a stdlib-logging wrapper plus an in-memory metric
recorder that experiment drivers can dump to CSV next to their outputs.
"""

from __future__ import annotations

import csv
import logging
import sys
from pathlib import Path

__all__ = ["get_logger", "RunLogger"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str = "repro", level: int = logging.INFO) -> logging.Logger:
    """Return a configured stdlib logger (stderr handler, idempotent)."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    logger.setLevel(level)
    return logger


class RunLogger:
    """Accumulate per-step metric rows and optionally write them to CSV.

    Example
    -------
    >>> run = RunLogger()
    >>> run.log(epoch=0, loss=1.0)
    >>> run.log(epoch=1, loss=0.5)
    >>> run.last()["loss"]
    0.5
    """

    def __init__(self):
        self.rows: list[dict] = []

    def log(self, **metrics) -> None:
        """Append one metrics row."""
        self.rows.append(dict(metrics))

    def last(self) -> dict:
        """Return the most recent row (empty dict when nothing logged)."""
        return self.rows[-1] if self.rows else {}

    def series(self, key: str) -> list:
        """Extract the values of one metric across all rows that have it."""
        return [row[key] for row in self.rows if key in row]

    def to_csv(self, path: str | Path) -> None:
        """Write all rows to ``path`` with a union-of-keys header."""
        if not self.rows:
            raise ValueError("nothing to write")
        keys: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
        with open(path, "w", newline="") as f:
            writer = csv.DictWriter(f, fieldnames=keys)
            writer.writeheader()
            writer.writerows(self.rows)
