"""Shared utilities: deterministic RNG plumbing and run logging."""

from .logging import RunLogger, get_logger
from .rng import child_rngs, make_rng, spawn_seed

__all__ = ["make_rng", "spawn_seed", "child_rngs", "RunLogger", "get_logger"]
