"""Command-line interface: train, evaluate, and roll out SoC models.

Gives the library a deployable surface without writing Python:

- ``repro-soc train``     — train a (PINN or No-PINN) model on a
  synthetic campaign and checkpoint it to ``.npz``;
- ``repro-soc evaluate``  — score a checkpoint on the campaign's test
  split at one or more horizons;
- ``repro-soc predict``   — one-shot SoC estimation + prediction from
  sensor readings and a hypothesized workload;
- ``repro-soc rollout``   — autoregressive full-discharge trace of a
  named test cycle;
- ``repro-soc inspect``   — parameters / memory / ops of a checkpoint;
- ``repro-soc serve-sim`` — fleet-serving simulation: roll a synthetic
  multi-chemistry fleet through the batched
  :class:`repro.serve.FleetEngine` (optionally sharded across
  in-process workers or ``--workers N`` subprocesses, journaled to
  durable per-cell state, and/or routed through a model registry) and
  report throughput and fleet-wide accuracy; ``--async`` additionally
  drives concurrent client traffic through the
  :class:`repro.serve.SocGateway` and reports latency percentiles,
  shed counts and sustained req/s (the CI soak lane);
- ``repro-soc serve``     — the long-running serving daemon: gateway +
  control loop + scrape endpoint listening on a control URL
  (``tcp://host:port`` or ``unix:///path``) that
  :class:`repro.serve.SocClient` clients and ``repro-soc worker
  --connect`` workers dial into; workers spawned locally reach it
  over pipes, TCP or Unix sockets (``--worker-transport``), sealed
  journal segments tier into ``--archive-dir``;
- ``repro-soc worker``    — one standalone shard worker: ``--listen``
  binds a socket URL for a fleet to dial, ``--connect`` joins a
  running daemon by name (restart-by-reconnect re-attaches it to its
  old shard);
- ``repro-soc registry`` — inspect and manage a model registry:
  ``list`` published versions/channels, ``promote`` a canary to
  stable, ``rollback`` (abandon) a canary;
- ``repro-soc retrain`` — one-shot offline retrain: harvest journaled
  rollout windows into training rows (``repro.learn``), fine-tune the
  registry's stable checkpoint on them, and publish the candidate to
  the canary channel; ``--url`` runs against a live daemon instead
  (drift events fetched from, and the publish routed through, its
  control URL);
- ``repro-soc monitor`` — read metrics snapshots written by
  ``serve-sim --metrics-json``: ``snapshot`` pretty-prints one,
  ``watch`` polls a snapshot file as a run refreshes it, ``export``
  converts to Prometheus text exposition, ``serve`` exposes a
  snapshot file over HTTP (``/metrics``, ``/healthz``) for scrapers.

Installed as the ``repro-soc`` console script (see ``setup.py``); also
reachable as ``python -m repro.cli``.

Usage examples::

    repro-soc train --dataset sandia --pinn --out model.npz
    repro-soc evaluate model.npz --dataset sandia --horizons 120 240 360
    repro-soc predict model.npz --voltage 3.7 --current 3 \\
        --temp 25 --workload-current 6 --horizon 300
    repro-soc rollout model.npz --dataset lg --cycle us06-25C --step 30
    repro-soc serve-sim model.npz --cells 512 --step 60 --compare-loop
    repro-soc serve-sim model.npz --cells 100000 --shards 8 --journal fleet.journal
    repro-soc serve-sim --untrained --async --workers 2 --cells 96 --fast \\
        --clients 64 --requests 8000 --soak-json soak.json --fail-on-error
    repro-soc serve model.npz --listen tcp://0.0.0.0:7355 --workers 2 \\
        --worker-transport tcp --journal fleet.journal --archive-dir ./cold \\
        --metrics-port 9923
    repro-soc worker --connect tcp://daemon-host:7355 --name rack3
    repro-soc registry list ./registry
    repro-soc registry promote ./registry sandia-serve
    repro-soc retrain ./registry sandia-serve --journal fleet.journal.shard0 \\
        --journal fleet.journal.shard1 --archive-dir ./cold --epochs 10
    repro-soc retrain ./registry sandia-serve --journal fleet.journal \\
        --url tcp://daemon-host:7355
    repro-soc serve-sim model.npz --cells 256 --metrics-json metrics.json --fail-on-drift
    repro-soc serve-sim --untrained --fast --cells 64 --async --workers 2 \\
        --metrics-port 9923 --trace-json traces.json --trace-sample 0.1
    repro-soc monitor snapshot metrics.json
    repro-soc monitor export metrics.json --out metrics.prom
    repro-soc monitor serve metrics.json --port 9923
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.complexity import model_complexity
from .core.config import ModelConfig, PhysicsConfig, TrainConfig
from .core.model import TwoBranchSoCNet
from .core.rollout import model_rollout
from .core.trainer import train_two_branch
from .datasets.lg import LGConfig, generate_lg
from .datasets.preprocessing import smooth_cycle
from .datasets.sandia import SandiaConfig, generate_sandia
from .datasets.windowing import make_estimation_samples, make_prediction_samples
from .eval.metrics import mae
from .eval.reporting import format_rollout_summary, format_table
from .nn.serialization import load_state, save_state

__all__ = ["main", "build_parser"]

_DATASET_DEFAULTS = {
    "sandia": {
        "train_horizon": 120.0,
        "horizon_scale": 360.0,
        "physics_horizons": (120.0, 240.0, 360.0),
        "smooth_s": None,
        "stride": 1,
    },
    "lg": {
        "train_horizon": 30.0,
        "horizon_scale": 70.0,
        "physics_horizons": (30.0, 50.0, 70.0),
        "smooth_s": 30.0,
        "stride": 20,
    },
}


def _generate(dataset: str, seed: int, fast: bool):
    if dataset == "sandia":
        cfg = SandiaConfig(seed=seed, sim_dt_s=2.0 if fast else 1.0)
        return generate_sandia(cfg)
    cfg = LGConfig(seed=seed) if not fast else LGConfig(
        seed=seed,
        sampling_period_s=0.5,
        n_train_mixed=3,
        train_temps_c=(0.0, 10.0, 25.0),
        mixed_segment_s=(180.0, 420.0),
    )
    return generate_lg(cfg)


def _prepare_cycles(cycles, smooth_s):
    if smooth_s is None:
        return list(cycles)
    return [smooth_cycle(c, smooth_s) for c in cycles]


def _save_model(model: TwoBranchSoCNet, path: str, meta: dict) -> None:
    save_state(model.state_dict(), path, meta=meta)


def _load_model(path: str) -> tuple[TwoBranchSoCNet, dict]:
    state, meta = load_state(path)
    if meta is None or "horizon_scale" not in meta:
        raise SystemExit(f"{path} is not a repro-soc checkpoint")
    model = TwoBranchSoCNet(
        ModelConfig(hidden=tuple(meta["hidden"]), horizon_scale_s=meta["horizon_scale"]),
        rng=np.random.default_rng(0),
    )
    model.load_state_dict(state)
    return model, meta


# ----------------------------------------------------------------------
def _cmd_train(args) -> int:
    defaults = _DATASET_DEFAULTS[args.dataset]
    print(f"generating {args.dataset} campaign (seed {args.seed})...", file=sys.stderr)
    campaign = _generate(args.dataset, args.seed, args.fast)
    train_cycles = _prepare_cycles(campaign.train(), defaults["smooth_s"])
    estimation = make_estimation_samples(train_cycles, stride=defaults["stride"])
    prediction = make_prediction_samples(
        train_cycles, horizon_s=defaults["train_horizon"], stride=defaults["stride"]
    )
    physics = PhysicsConfig(horizons_s=defaults["physics_horizons"]) if args.pinn else None
    model, logs = train_two_branch(
        estimation,
        prediction,
        model_config=ModelConfig(horizon_scale_s=defaults["horizon_scale"]),
        train_config=TrainConfig(
            epochs_branch1=args.epochs, epochs_branch2=args.epochs, seed=args.seed
        ),
        physics=physics,
    )
    meta = {
        "dataset": args.dataset,
        "pinn": bool(args.pinn),
        "seed": args.seed,
        "hidden": list(model.config.hidden),
        "horizon_scale": model.config.horizon_scale_s,
        "final_loss_b1": logs["branch1"].last().get("loss"),
        "final_loss_b2": logs["branch2"].last().get("loss"),
    }
    _save_model(model, args.out, meta)
    print(f"saved {model.num_parameters()}-parameter model to {args.out}")
    print(f"final losses: b1={meta['final_loss_b1']:.4f} b2={meta['final_loss_b2']:.4f}")
    return 0


def _cmd_evaluate(args) -> int:
    model, meta = _load_model(args.model)
    dataset = args.dataset or meta["dataset"]
    defaults = _DATASET_DEFAULTS[dataset]
    campaign = _generate(dataset, args.seed, args.fast)
    test_cycles = _prepare_cycles(campaign.test(), defaults["smooth_s"])
    print(f"model: {args.model} (dataset={dataset}, pinn={meta['pinn']})")
    for horizon in args.horizons:
        samples = make_prediction_samples(test_cycles, horizon_s=horizon, stride=defaults["stride"])
        err = mae(model.predict_samples(samples), samples.soc_target)
        print(f"  SoC(t+{horizon:g}s) MAE = {err:.4f}   (n={len(samples)})")
    estimation = make_estimation_samples(test_cycles, stride=defaults["stride"])
    soc_hat = model.estimate_soc(
        estimation.features[:, 0], estimation.features[:, 1], estimation.features[:, 2]
    )
    print(f"  SoC(t)      MAE = {mae(soc_hat, estimation.soc):.4f}   (n={len(estimation)})")
    return 0


def _cmd_predict(args) -> int:
    model, _ = _load_model(args.model)
    soc_now = model.estimate_soc(args.voltage, args.current, args.temp)[0]
    soc_future = model.predict_soc(
        soc_now, args.workload_current, args.workload_temp if args.workload_temp is not None else args.temp,
        args.horizon,
    )[0]
    print(f"SoC(t)   = {soc_now:.4f}")
    print(f"SoC(t+{args.horizon:g}s) = {soc_future:.4f} under {args.workload_current:g} A")
    return 0


def _cmd_rollout(args) -> int:
    model, meta = _load_model(args.model)
    dataset = args.dataset or meta["dataset"]
    defaults = _DATASET_DEFAULTS[dataset]
    campaign = _generate(dataset, args.seed, args.fast)
    try:
        cycle = campaign.by_name(args.cycle)
    except KeyError:
        names = ", ".join(c.name for c in campaign.test())
        raise SystemExit(f"unknown cycle {args.cycle!r}; test cycles: {names}")
    if defaults["smooth_s"]:
        cycle = smooth_cycle(cycle, defaults["smooth_s"])
    result = model_rollout(model, cycle, step_s=args.step)
    tail = f" (+{result.tail_s:g}s tail)" if result.tail_s else ""
    print(f"rollout of {cycle.name}: {len(result) - 1} steps x {result.step_s:g}s{tail}")
    print(f"  initial SoC estimate: {result.initial_soc:.4f} (true {result.soc_true[0]:.4f})")
    print(format_rollout_summary({cycle.name: result}))
    if args.csv:
        from .eval.reporting import save_csv

        save_csv(args.csv, ["time_s", "soc_pred", "soc_true"],
                 list(zip(result.time_s, result.soc_pred, result.soc_true)))
        print(f"  series written to {args.csv}")
    return 0


def _gateway_traffic(engine, fleet, args, metrics=None, tracer=None):
    """Drive the async gateway: one fleet rollout, then client traffic.

    Returns ``(gateway, rollout_results, rollout_s, completions,
    traffic_s)``; every client is closed-loop (submits its next request
    when the previous completion resolves), so concurrency equals
    ``--clients`` and throughput is the sustained rate.
    """
    import asyncio
    import time

    from .serve import SocGateway

    members = list(fleet.members)
    per_client = max(1, args.requests // args.clients)

    async def client(gateway, k):
        completions = []
        for j in range(per_client):
            member = members[(k * 37 + j * 7) % len(members)]
            data = member.cycle.data
            idx = (k * 11 + j * 13) % len(member.cycle)
            if args.predict_every and j % args.predict_every == args.predict_every - 1:
                completion = await gateway.predict(
                    member.cell_id, float(data.current[idx]), member.ambient_c, args.step
                )
            else:
                completion = await gateway.estimate(
                    member.cell_id,
                    float(data.voltage[idx]),
                    float(data.current[idx]),
                    float(data.temp_c[idx]),
                )
            completions.append(completion)
        return completions

    async def drive():
        gateway = SocGateway(
            engine,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms / 1000.0,
            max_in_flight=args.max_in_flight,
            metrics=metrics,
            tracer=tracer,
        )
        async with gateway:
            t0 = time.perf_counter()
            rollout_results = await gateway.rollout(fleet.assignments(), args.step)
            rollout_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            batches = await asyncio.gather(*(client(gateway, k) for k in range(args.clients)))
            traffic_s = time.perf_counter() - t0
        completions = [c for batch in batches for c in batch]
        return gateway, rollout_results, rollout_s, completions, traffic_s

    return asyncio.run(drive())


def _resolve_serve_model(args):
    """Checkpoint or ``--untrained`` model, shared by serve-sim and serve."""
    if args.untrained:
        if args.model:
            raise SystemExit("give a checkpoint or --untrained, not both")
        model = TwoBranchSoCNet(rng=np.random.default_rng(args.seed))
        return model, {"dataset": None}
    if not args.model:
        raise SystemExit("provide a checkpoint path (or --untrained)")
    return _load_model(args.model)


def _worker_url_template(args) -> str | None:
    """Worker address template from the transport flags.

    ``--worker-url`` wins (addresses of already-running workers, so
    ``spawn`` stays off); otherwise ``--worker-transport`` picks the
    medium and the workers are spawned locally.
    """
    if getattr(args, "worker_url", None):
        return args.worker_url
    transport = getattr(args, "worker_transport", "pipe")
    if transport in ("pipe", "shm"):
        return f"{transport}://"
    if transport == "tcp":
        return "tcp://127.0.0.1:0"
    import os
    import tempfile

    return f"unix://{tempfile.gettempdir()}/repro-soc-{os.getpid()}.shard{{shard}}.sock"


def _subprocess_worker_spec(args, model, monitoring: bool, tracing: bool):
    """The :class:`~repro.serve.WorkerSpec` for ``--workers`` topologies."""
    from .serve import WorkerSpec

    url = _worker_url_template(args)
    return WorkerSpec(
        url=url,
        model=model,
        registry=args.registry or None,
        journal=args.journal,
        monitor=monitoring,
        trace=tracing,
        archive_root=getattr(args, "archive_dir", None),
        journal_segment_bytes=_segment_bytes(args),
        dtype=getattr(args, "dtype", None),
        spawn=not getattr(args, "worker_url", None),
    )


def _segment_bytes(args) -> int:
    return int(getattr(args, "journal_segment_kb", 0) or 0) * 1024


def _archive_store(args):
    if not getattr(args, "archive_dir", None):
        return None
    from .serve import DirectoryArchiveStore

    return DirectoryArchiveStore(args.archive_dir)


def _cmd_serve_sim(args) -> int:
    import time

    from .core.rollout import model_rollout as _loop_rollout
    from .serve import (
        FleetEngine,
        ModelRegistry,
        ShardedFleet,
        StateJournal,
        WorkerSpec,
        generate_fleet,
    )

    if args.cells < 1:
        raise SystemExit("--cells must be at least 1")
    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    if args.workers < 0:
        raise SystemExit("--workers cannot be negative")
    if args.workers and args.shards > 1:
        raise SystemExit("--workers (subprocess shards) and --shards (in-process) are exclusive")
    model, meta = _resolve_serve_model(args)
    sim_kwargs = dict(seed=args.seed)
    if args.fast:
        sim_kwargs.update(
            ambient_temps_c=(25.0,),
            c_rates=(1.0,),
            protocols=("discharge",),
            max_time_s=1800.0,
        )
    print(f"generating fleet of {args.cells} cells (seed {args.seed})...", file=sys.stderr)
    fleet = generate_fleet(args.cells, **sim_kwargs)
    registry = None
    if args.registry:
        registry = ModelRegistry(args.registry)
        dataset = meta.get("dataset")
        name = f"{dataset or 'default'}-serve"
        registry.publish(name, model, dataset=dataset)
        print(f"serving via registry {args.registry} (model {name!r})")
    tracing = args.metrics_port is not None or bool(args.trace_json)
    monitoring = bool(args.metrics_json or args.fail_on_drift) or tracing
    metrics = drift = tracer = None
    if monitoring:
        from .monitor import DriftMonitor, MetricsRegistry, install_process_metrics

        metrics = MetricsRegistry()
        install_process_metrics(metrics)
        drift = DriftMonitor(metrics=metrics)
    if tracing:
        from .monitor import SpanTracer

        tracer = SpanTracer(sample_rate=args.trace_sample, metrics=metrics, service="gateway")
    journal = None
    if args.journal and not args.workers:
        journal = StateJournal(
            args.journal, archive=_archive_store(args), max_segment_bytes=_segment_bytes(args)
        )
    if args.workers:
        engine = ShardedFleet(
            args.workers, spec=_subprocess_worker_spec(args, model, monitoring, tracing)
        )
    elif args.shards > 1:
        engine = ShardedFleet(
            args.shards,
            spec=WorkerSpec(
                model=model, registry=registry, journal=journal, metrics=metrics,
                drift=drift, dtype=args.dtype,
            ),
        )
    else:
        engine = FleetEngine(
            default_model=model, registry=registry, journal=journal,
            metrics=metrics, drift=drift, dtype=args.dtype or "float64",
        )
    assignments = fleet.assignments()

    server = None
    if args.metrics_port is not None:
        from .monitor import ExpositionServer

        def _health():
            health = engine.worker_health() if hasattr(engine, "worker_health") else []
            return {"ok": not health or all(health), "workers": list(health)}

        # Serve the parent registry only: a scrape must never RPC the
        # subprocess workers mid-request (their pipes carry binary
        # frames, not HTTP).  worker_health() is pipe-free.
        server = ExpositionServer(
            metrics=metrics, tracer=tracer, health=_health,
            host="127.0.0.1", port=args.metrics_port,
        )
        server.start()
        print(f"exposition server listening on {server.url}", file=sys.stderr)

    gateway = None
    completions = []
    traffic_s = 0.0
    if args.async_:
        gateway, results, elapsed, completions, traffic_s = _gateway_traffic(
            engine, fleet, args, metrics=metrics, tracer=tracer
        )
    else:
        t0 = time.perf_counter()
        if tracer is not None:
            with tracer.trace("serve.rollout", cells=len(fleet)):
                results = engine.rollout_fleet(assignments, step_s=args.step)
        else:
            results = engine.rollout_fleet(assignments, step_s=args.step)
        elapsed = time.perf_counter() - t0
    steps_total = sum(len(r) - 1 for r in results.values())
    trajectories = list(results.values())
    chem = ", ".join(f"{c}={n}" for c, n in sorted(fleet.chemistries().items()))
    print(f"fleet: {len(fleet)} cells ({chem}), {fleet.n_conditions()} duty cycles")
    if args.workers:
        print(f"workers: {args.workers} subprocesses (cells per shard: {engine.shard_sizes()})")
    elif args.shards > 1:
        print(f"shards: {args.shards} (cells per shard: {engine.shard_sizes()})")
    print(
        f"batched rollout: {steps_total} steps in {elapsed:.3f}s "
        f"-> {len(fleet) / elapsed:,.0f} cells/s, {steps_total / elapsed:,.0f} cell-steps/s"
    )
    if journal is not None:
        print(
            f"journal: {args.journal} ({len(journal)} cells, "
            f"{journal.size_bytes():,} bytes after rollout)"
        )
    metric_rows = []
    for label, metric in (
        ("trajectory MAE", "mae"),
        ("trajectory RMSE", "rmse"),
        ("max |error|", "max_error"),
        ("final |error|", "final_error"),
    ):
        values = [getattr(r, metric)() for r in trajectories]
        metric_rows.append([label, float(np.mean(values)), float(np.max(values))])
    print(format_table(["metric", "mean", "worst"], metric_rows))
    if args.show:
        print(format_rollout_summary(
            {cid: results[cid] for cid, _ in assignments}, max_rows=args.show
        ))
    if args.compare_loop:
        t0 = time.perf_counter()
        loop_results = {cid: _loop_rollout(model, cycle, args.step) for cid, cycle in assignments}
        loop_elapsed = time.perf_counter() - t0
        worst = max(
            float(np.max(np.abs(loop_results[cid].soc_pred - results[cid].soc_pred)))
            for cid, _ in assignments
        )
        print(
            f"per-cell loop: {loop_elapsed:.3f}s -> {len(fleet) / loop_elapsed:,.0f} cells/s; "
            f"batched speedup {loop_elapsed / elapsed:.1f}x (max traj diff {worst:.2e})"
        )

    rc = 0
    if args.async_:
        rc = _report_gateway(gateway, engine, completions, traffic_s, args)
    if monitoring:
        drift_rc = _report_monitoring(engine, metrics, drift, args)
        rc = rc or drift_rc
    if tracer is not None:
        counts = tracer.counts()
        print(
            f"tracing: {counts['committed']} traces committed "
            f"({counts['sampled']} head-sampled of {counts['started']} started, "
            f"{counts['spans_dropped']} spans dropped)"
        )
        if args.trace_json:
            import json

            record = {
                "summary": counts,
                "traces": tracer.trace_trees(),
                "traceEvents": tracer.to_chrome()["traceEvents"],
            }
            with open(args.trace_json, "w", encoding="utf-8") as fh:
                json.dump(record, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.trace_json}")
    if server is not None:
        server.stop()
    if journal is not None:
        journal.close()
    if hasattr(engine, "close"):
        engine.close()
    return rc


def _report_gateway(gateway, engine, completions, traffic_s, args) -> int:
    """Print the gateway traffic report, write soak JSON, pick exit code."""
    import json

    from .eval.reporting import format_table

    stats = gateway.stats_dict()
    n_ok = sum(stats[e]["ok"] for e in ("estimate", "predict"))
    n_err = sum(stats[e]["errors"] for e in ("estimate", "predict", "rollout"))
    n_shed = sum(stats[e]["shed"] for e in ("estimate", "predict", "rollout"))
    health = engine.worker_health() if hasattr(engine, "worker_health") else []
    dead = [k for k, up in enumerate(health) if not up]
    rows = []
    for endpoint in ("estimate", "predict", "rollout"):
        ep = stats[endpoint]
        rows.append([
            endpoint, ep["requests"], ep["ok"], ep["errors"], ep["shed"],
            ep["p50_ms"], ep["p95_ms"], ep["p99_ms"],
        ])
    print(
        f"gateway traffic: {len(completions)} requests over {args.clients} clients "
        f"in {traffic_s:.3f}s -> {len(completions) / max(traffic_s, 1e-9):,.0f} req/s "
        f"(ok={n_ok} errors={n_err} shed={n_shed})"
    )
    print(format_table(
        ["endpoint", "reqs", "ok", "err", "shed", "p50 ms", "p95 ms", "p99 ms"], rows
    ))
    bstats = gateway.batcher.stats
    print(
        f"micro-batching: {bstats.flushes} flushes "
        f"(size={bstats.size_flushes} deadline={bstats.deadline_flushes} "
        f"forced={bstats.forced_flushes}), mean batch {bstats.mean_batch_size():.1f}"
    )
    if health:
        state = "all alive" if not dead else f"DEAD: {dead}"
        print(f"workers: {len(health)} subprocess shards ({state})")
    if args.soak_json:
        record = {
            "cells": args.cells,
            "clients": args.clients,
            "requests": len(completions),
            "ok": n_ok,
            "errors": n_err,
            "shed": n_shed,
            "traffic_s": traffic_s,
            "req_per_s": len(completions) / max(traffic_s, 1e-9),
            "workers": args.workers,
            "workers_alive": health,
            "max_batch": args.max_batch,
            "max_delay_ms": args.max_delay_ms,
            "max_in_flight": args.max_in_flight,
            "endpoints": stats,
        }
        with open(args.soak_json, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.soak_json}")
    if args.fail_on_error and (n_err or n_shed or dead):
        print(
            f"FAIL: gateway soak saw errors={n_err} shed={n_shed} dead_workers={dead} "
            f"(--fail-on-error)"
        )
        return 1
    return 0


def _report_monitoring(engine, metrics, drift, args) -> int:
    """Merge the run's metrics, write the snapshot, apply the drift gate.

    The merged view covers the parent registry (engine or gateway
    series plus parent-side drift counters) and — for ``--workers``
    topologies — every subprocess shard's registry via
    ``ShardedFleet.metrics()``.  With ``--fail-on-drift`` any
    drift/physics-bounds event anywhere in the topology exits 1: the
    CI false-positive gate for the detectors on clean traffic.
    """
    import json

    from .monitor import merge_snapshots

    snapshots = [metrics.snapshot()]
    fleet_metrics = getattr(engine, "metrics", None)
    if callable(fleet_metrics) and getattr(engine, "metrics_registry", None) is not metrics:
        # subprocess workers carry their own registries; in-process
        # shards share the parent registry already snapshotted above
        snapshots.append(fleet_metrics())
    merged = merge_snapshots(snapshots)
    drift_total = sum(
        value for key, value in merged["counters"].items() if key.startswith("drift_events_total")
    )
    events = [
        {
            "kind": e.kind,
            "cell_id": e.cell_id,
            "value": e.value,
            "threshold": e.threshold,
            "window": e.window,
            "detail": e.detail,
            "trace_ids": list(e.trace_ids),
        }
        for e in drift.events()
    ]
    if args.metrics_json:
        record = {
            "metrics": merged,
            "drift_event_total": drift_total,
            "drift_events": events,
        }
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.metrics_json}")
    print(f"monitoring: {int(drift_total)} drift/physics events across the topology")
    if args.fail_on_drift and drift_total:
        by_kind = {
            key.split('kind="', 1)[1].rstrip('"}'): int(value)
            for key, value in merged["counters"].items()
            if key.startswith("drift_events_total")
        }
        print(f"FAIL: drift detectors fired on clean traffic: {by_kind} (--fail-on-drift)")
        return 1
    return 0


def _cmd_serve(args) -> int:
    """Long-running multi-host serving daemon (``repro-soc serve``)."""
    from .serve import FleetEngine, ModelRegistry, ShardedFleet, StateJournal, WorkerSpec
    from .serve.daemon import SocDaemon, run_daemon

    if args.workers < 0:
        raise SystemExit("--workers cannot be negative")
    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    if args.workers and args.shards > 1:
        raise SystemExit("--workers (subprocess shards) and --shards (in-process) are exclusive")
    model, meta = _resolve_serve_model(args)
    registry = None
    if args.registry:
        registry = ModelRegistry(args.registry)
        dataset = meta.get("dataset")
        name = f"{dataset or 'default'}-serve"
        registry.publish(name, model, dataset=dataset)
        print(f"serving via registry {args.registry} (model {name!r})", file=sys.stderr)
    tracing = args.metrics_port is not None or bool(args.trace_json)
    metrics = tracer = None
    from .monitor import DriftMonitor, MetricsRegistry, install_process_metrics

    metrics = MetricsRegistry()
    install_process_metrics(metrics)
    drift = DriftMonitor(metrics=metrics)
    if tracing:
        from .monitor import SpanTracer

        tracer = SpanTracer(sample_rate=args.trace_sample, metrics=metrics, service="gateway")

    worker_spec = _subprocess_worker_spec(args, model, monitoring=True, tracing=tracing)
    if args.workers:
        engine = ShardedFleet(args.workers, spec=worker_spec)
    elif args.shards > 1:
        journal = (
            StateJournal(args.journal, archive=_archive_store(args), max_segment_bytes=_segment_bytes(args))
            if args.journal
            else None
        )
        engine = ShardedFleet(
            args.shards,
            spec=WorkerSpec(
                model=model, registry=registry, journal=journal, metrics=metrics,
                drift=drift, dtype=args.dtype,
            ),
        )
    else:
        journal = (
            StateJournal(args.journal, archive=_archive_store(args), max_segment_bytes=_segment_bytes(args))
            if args.journal
            else None
        )
        engine = FleetEngine(
            default_model=model, registry=registry, journal=journal,
            metrics=metrics, drift=drift, dtype=args.dtype or "float64",
        )
    daemon = SocDaemon(
        engine,
        args.listen,
        worker_spec=worker_spec,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1000.0,
        max_in_flight=args.max_in_flight,
        metrics=metrics,
        tracer=tracer,
        control_interval_s=args.control_interval,
        heartbeat_timeout_s=args.heartbeat_timeout,
        exposition_port=args.metrics_port,
    )
    return run_daemon(daemon)


def _cmd_worker(args) -> int:
    """Standalone shard worker (``repro-soc worker``)."""
    from .serve.workers import run_worker, run_worker_connect

    if bool(args.listen) == bool(args.connect):
        raise SystemExit("give exactly one of --listen URL or --connect URL")
    if args.listen:
        return run_worker(args.listen, once=args.once)
    return run_worker_connect(
        args.connect,
        args.name,
        reconnect=not args.no_reconnect,
        connect_timeout_s=args.connect_timeout,
    )


def _cmd_monitor(args) -> int:
    """Read, pretty-print, watch or export a metrics snapshot file."""
    import json
    import time as _time

    from .eval.reporting import format_table
    from .monitor import prometheus_text

    def load_snapshot():
        with open(args.snapshot_file, "r", encoding="utf-8") as fh:
            record = json.load(fh)
        # accept both a bare registry snapshot and a serve-sim report
        return record.get("metrics", record), record

    def render(snapshot, record) -> None:
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        if counters or gauges:
            rows = [[key, f"{value:g}"] for key, value in sorted(counters.items())]
            rows += [[key, f"{value:g}"] for key, value in sorted(gauges.items())]
            print(format_table(["series", "value"], rows))
        histograms = snapshot.get("histograms", {})
        if histograms:
            rows = []
            for key, summary in sorted(histograms.items()):
                quantiles = summary.get("quantiles") or {}
                count = summary.get("count", 0)
                rows.append([
                    key,
                    count,
                    (summary.get("sum", 0.0) / count) if count else float("nan"),
                    quantiles.get("0.5", float("nan")),
                    quantiles.get("0.95", float("nan")),
                    quantiles.get("0.99", float("nan")),
                ])
            print(format_table(["histogram", "count", "mean", "p50", "p95", "p99"], rows))
        if "drift_event_total" in record:
            print(f"drift events: {int(record['drift_event_total'])}")
            for event in record.get("drift_events", [])[:10]:
                print(
                    f"  [{event['kind']}] cell {event['cell_id']}: value {event['value']:.4g} "
                    f"vs threshold {event['threshold']:.4g} (window {event['window']})"
                )

    if args.monitor_command == "snapshot":
        snapshot, record = load_snapshot()
        if args.prometheus:
            print(prometheus_text(snapshot), end="")
        else:
            render(snapshot, record)
        return 0
    if args.monitor_command == "export":
        snapshot, _ = load_snapshot()
        text = prometheus_text(snapshot)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({len(text.splitlines())} lines)")
        return 0
    if args.monitor_command == "serve":
        from .monitor import ExpositionServer

        def _snapshot_source():
            # re-read on every scrape so a refreshing serve-sim run
            # shows up live; unreadable file -> empty exposition
            try:
                return load_snapshot()[0]
            except (OSError, json.JSONDecodeError):
                return {}

        server = ExpositionServer(
            metrics=_snapshot_source, host=args.host, port=args.port
        )
        with server:
            print(f"serving {args.snapshot_file} on {server.url} (GET /metrics, /healthz)")
            try:
                if args.duration is not None:
                    _time.sleep(args.duration)
                else:
                    while True:
                        _time.sleep(3600.0)
            except KeyboardInterrupt:
                pass
        return 0
    # watch: poll the snapshot file as a serving run refreshes it
    for tick in range(args.count):
        try:
            snapshot, record = load_snapshot()
        except (OSError, json.JSONDecodeError) as exc:
            print(f"[watch {tick + 1}/{args.count}] snapshot unreadable: {exc}")
        else:
            print(f"[watch {tick + 1}/{args.count}] {args.snapshot_file}")
            render(snapshot, record)
        if tick + 1 < args.count:
            _time.sleep(args.interval)
    return 0


def _cmd_registry(args) -> int:
    from .eval.reporting import format_table
    from .serve import ModelRegistry

    registry = ModelRegistry(args.registry)
    if args.registry_command == "list":
        if not registry.names():
            print(f"registry {args.registry} is empty")
            return 0
        rows = []
        for entry in registry.entries():
            pointers = registry.channels(entry.name)
            tags = ",".join(sorted(ch for ch, v in pointers.items() if v == entry.version))
            rows.append([
                entry.ref,
                entry.chemistry or "-",
                entry.dataset or "-",
                tags or "-",
            ])
        print(format_table(["model", "chemistry", "dataset", "channels"], rows))
        return 0
    try:
        if args.registry_command == "promote":
            version = registry.promote(args.name)
            print(f"promoted {args.name}@v{version} to stable")
        else:  # rollback
            version = registry.rollback(args.name)
            print(f"abandoned canary of {args.name}; stable stays at v{version}")
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    return 0


def _cmd_perf_lab(args) -> int:
    import json

    from .perflab import analyze, load_table, run_table

    if args.perf_lab_command == "run":
        manifest = run_table(load_table(args.table), args.out)
        failed = [r["run_id"] for r in manifest["runs"] if not r["ok"]]
        if failed:
            print(f"FAILED runs: {', '.join(failed)}")
            return 1
        return 0
    summary = analyze(args.out, slo_p99_ms=args.slo_p99_ms, per_cell_req_s=args.per_cell_req_s)
    capacity = summary["capacity"]
    print(json.dumps(capacity["assumptions"], indent=2))
    for key, head in sorted(capacity["headline"].items()):
        print(
            f"{key}: knee {head['knee_rate']:.0f} req/s ({head['status']}, worst shape "
            f"{head['shape']}) -> {head['req_s_per_worker']:.0f} req/s/worker, "
            f"{head['cells_per_host']:.0f} cells/host"
        )
    print(f"summary.json + BENCH_capacity.json written under {args.out}")
    return 0


def _cmd_retrain(args) -> int:
    from .learn import FineTuneConfig, fine_tune, harvest_training_set, publish_candidate
    from .serve import ModelRegistry

    registry = ModelRegistry(args.registry)
    client = None
    events = None
    if args.url:
        from .serve.client import SocClient

        client = SocClient(args.url)
        events = client.drift_events()
        print(f"daemon at {args.url} reports {len(events)} drift event(s)")
    try:
        report = harvest_training_set(
            args.journal,
            events=events,
            cell_ids=args.cells or None,
            store=_archive_store(args),
            max_gaps=args.max_gaps,
        )
        gaps = f", {report.missing_segments} segment gap(s) tolerated" if report.missing_segments else ""
        print(f"harvested {report.rows} row(s) from {len(report.cells)} cell(s){gaps}")
        samples = report.partition(args.chemistry) if args.chemistry else report.samples
        rows = 0 if samples is None else len(samples)
        if rows < args.min_rows:
            print(f"not enough rows to fine-tune (have {rows}, need {args.min_rows}); "
                  "nothing published")
            return 1
        try:
            entry = registry.describe(args.name)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}")
        config = FineTuneConfig(epochs=args.epochs, lr=args.lr, seed=args.seed,
                                targets=args.targets)
        candidate = fine_tune(registry.load(args.name), samples, config)
        print(f"fine-tuned a candidate from {entry.ref} "
              f"({config.epochs} epoch(s) on {rows} row(s))")
        if args.dry_run:
            print("dry run: candidate not published")
            return 0
        try:
            version = publish_candidate(
                client if client is not None else registry,
                args.name,
                candidate,
                chemistry=entry.chemistry,
                dataset=entry.dataset,
                extra={"retrained_from": entry.version, "harvest_rows": rows,
                       "harvest_cells": len(report.cells)},
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        print(f"published {args.name}@v{version} to the canary channel")
        return 0
    finally:
        if client is not None:
            client.close()


def _cmd_inspect(args) -> int:
    model, meta = _load_model(args.model)
    report = model_complexity(model)
    print(f"checkpoint: {args.model}")
    for key, value in meta.items():
        print(f"  {key}: {value}")
    print(f"  parameters: {report.parameters}")
    print(f"  memory: {report.memory_kib():.1f} KiB (float32)")
    print(f"  MACs/inference: {report.macs}")
    print(f"  ops/inference: {report.ops}")
    return 0


# ----------------------------------------------------------------------
_SERVE_EPILOG = """\
flag groups (shared by serve-sim, serve and worker):
  fleet topology     how cells are partitioned: in-process shards,
                     subprocess/socket workers, journals, registries
  gateway            micro-batching and admission control
  observability      metrics/drift/tracing and the HTTP scrape endpoint
  worker transport   the medium shard workers are reached over
                     (pipe://, unix:///path, tcp://host:port) and
                     where sealed journal segments are archived
"""

_WORKER_EPILOG = """\
topologies:
  --listen tcp://0.0.0.0:7356    bind and wait for a fleet to dial in
                                 (prints 'worker listening on <url>')
  --connect tcp://daemon:7355    dial a 'repro-soc serve' daemon and
                                 serve as the shard named by --name;
                                 reconnects after daemon restarts
The worker is stateless at startup: the connecting fleet sends the
engine description (model, registry, journal, archive) in its first
frame, and the journal restores per-cell state.
"""


def _flag_parents() -> dict[str, argparse.ArgumentParser]:
    """Shared flag groups for the serving subcommands (parent parsers)."""
    fleet = argparse.ArgumentParser(add_help=False)
    g = fleet.add_argument_group("fleet topology")
    g.add_argument("--shards", type=int, default=1,
                   help="partition the fleet across this many in-process shard workers")
    g.add_argument("--workers", type=int, default=0,
                   help="partition the fleet across this many worker subprocesses "
                        "(medium set by --worker-transport; 0 = in-process)")
    g.add_argument("--journal", default=None,
                   help="stream per-cell state to this journal file (restorable; with "
                        "--workers each worker journals to <path>.shardK)")
    g.add_argument("--journal-segment-kb", type=int, default=0,
                   help="rotate the journal into sealed segments once the active file "
                        "crosses this size (0 = no rotation); with --archive-dir, "
                        "sealed segments ship to the cold store")
    g.add_argument("--registry", default=None,
                   help="serve through a model registry rooted at this directory")

    gateway = argparse.ArgumentParser(add_help=False)
    g = gateway.add_argument_group("gateway")
    g.add_argument("--max-batch", type=int, default=64,
                   help="gateway micro-batch size trigger")
    g.add_argument("--max-delay-ms", type=float, default=5.0,
                   help="gateway micro-batch deadline trigger (milliseconds)")
    g.add_argument("--max-in-flight", type=int, default=1024,
                   help="admission limit; requests beyond it are shed with ok=False")

    observability = argparse.ArgumentParser(add_help=False)
    g = observability.add_argument_group("observability")
    g.add_argument("--metrics-json", default=None,
                   help="enable monitoring (metrics registry + drift detectors across "
                        "every layer, incl. subprocess workers) and write the merged "
                        "snapshot here (read it with 'repro-soc monitor')")
    g.add_argument("--fail-on-drift", action="store_true",
                   help="enable monitoring and exit 1 if any drift/physics-bounds "
                        "event fires (the detector false-positive gate)")
    g.add_argument("--metrics-port", type=int, default=None,
                   help="enable tracing and serve /metrics, /traces and /healthz over "
                        "HTTP on 127.0.0.1:PORT (0 = ephemeral)")
    g.add_argument("--trace-json", default=None,
                   help="enable tracing and write sampled span trees (plus Chrome "
                        "trace events for chrome://tracing) to this file")
    g.add_argument("--trace-sample", type=float, default=0.05,
                   help="head-sampling rate for request traces (1.0 = every request; "
                        "slow traces are captured regardless)")

    transport = argparse.ArgumentParser(add_help=False)
    g = transport.add_argument_group("worker transport")
    g.add_argument("--worker-transport", choices=("pipe", "shm", "tcp", "unix"), default="pipe",
                   help="medium for --workers shards: stdio pipes (local fast path), "
                        "shared-memory rings (pipes carry framing only; bulk arrays "
                        "ride /dev/shm slabs), TCP sockets on 127.0.0.1, or "
                        "Unix-domain sockets (default: pipe)")
    g.add_argument("--worker-url", default=None,
                   help="address template of already-running workers (e.g. "
                        "'tcp://host:73{shard}'); overrides --worker-transport and "
                        "disables spawning")
    g.add_argument("--archive-dir", default=None,
                   help="cold store for sealed journal segments: rotation ships "
                        "segments here and unlinks them locally; restore replays "
                        "them back (see repro.serve.archive)")
    g.add_argument("--dtype", choices=("float64", "float32"), default=None,
                   help="serving precision tier for the compiled kernels: float32 "
                        "halves memory traffic at ~1e-6 SoC deviation "
                        "(default: float64)")
    return {
        "fleet": fleet,
        "gateway": gateway,
        "observability": observability,
        "transport": transport,
    }


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro-soc", description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)
    parents = _flag_parents()

    train = sub.add_parser("train", help="train a model on a synthetic campaign")
    train.add_argument("--dataset", choices=sorted(_DATASET_DEFAULTS), default="sandia")
    train.add_argument("--pinn", action="store_true", help="enable the physics-informed loss")
    train.add_argument("--epochs", type=int, default=120)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--fast", action="store_true", help="scaled-down campaign")
    train.add_argument("--out", required=True, help="checkpoint path (.npz)")
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("evaluate", help="score a checkpoint on the test split")
    evaluate.add_argument("model")
    evaluate.add_argument("--dataset", choices=sorted(_DATASET_DEFAULTS), default=None)
    evaluate.add_argument("--horizons", type=float, nargs="+", default=[120.0])
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--fast", action="store_true")
    evaluate.set_defaults(func=_cmd_evaluate)

    predict = sub.add_parser("predict", help="one-shot estimate + prediction")
    predict.add_argument("model")
    predict.add_argument("--voltage", type=float, required=True)
    predict.add_argument("--current", type=float, required=True)
    predict.add_argument("--temp", type=float, required=True)
    predict.add_argument("--workload-current", type=float, required=True)
    predict.add_argument("--workload-temp", type=float, default=None)
    predict.add_argument("--horizon", type=float, required=True)
    predict.set_defaults(func=_cmd_predict)

    rollout = sub.add_parser("rollout", help="autoregressive discharge trace")
    rollout.add_argument("model")
    rollout.add_argument("--dataset", choices=sorted(_DATASET_DEFAULTS), default=None)
    rollout.add_argument("--cycle", required=True, help="test-cycle name (see dataset summary)")
    rollout.add_argument("--step", type=float, default=30.0)
    rollout.add_argument("--seed", type=int, default=0)
    rollout.add_argument("--fast", action="store_true")
    rollout.add_argument("--csv", default=None, help="write the trajectory to this CSV")
    rollout.set_defaults(func=_cmd_rollout)

    inspect = sub.add_parser("inspect", help="show checkpoint metadata and cost")
    inspect.add_argument("model")
    inspect.set_defaults(func=_cmd_inspect)

    serve_sim = sub.add_parser(
        "serve-sim",
        help="batched fleet-serving simulation",
        parents=list(parents.values()),
        epilog=_SERVE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve_sim.add_argument("model", nargs="?", default=None,
                           help="checkpoint path (omit with --untrained)")
    serve_sim.add_argument("--untrained", action="store_true",
                           help="serve a deterministic untrained model (throughput/soak runs "
                                "need no checkpoint: forward cost is identical)")
    serve_sim.add_argument("--cells", type=int, default=256, help="fleet size")
    serve_sim.add_argument("--step", type=float, default=60.0, help="rollout step (s)")
    serve_sim.add_argument("--seed", type=int, default=0)
    serve_sim.add_argument("--fast", action="store_true", help="scaled-down fleet simulation")
    serve_sim.add_argument("--show", type=int, default=0,
                           help="print per-cell trajectories for the first N cells")
    serve_sim.add_argument("--compare-loop", action="store_true",
                           help="also time the per-cell loop path and report the speedup")
    serve_sim.add_argument("--async", dest="async_", action="store_true",
                           help="serve through the asyncio SocGateway: fleet rollout plus "
                                "concurrent client traffic with latency stats")
    serve_sim.add_argument("--clients", type=int, default=64,
                           help="concurrent closed-loop clients driving the gateway")
    serve_sim.add_argument("--requests", type=int, default=2000,
                           help="total gateway requests across all clients")
    serve_sim.add_argument("--predict-every", type=int, default=4,
                           help="every Nth client request is a Branch 2 what-if (0 disables)")
    serve_sim.add_argument("--soak-json", default=None,
                           help="write gateway soak results (counts, latency percentiles) here")
    serve_sim.add_argument("--fail-on-error", action="store_true",
                           help="exit 1 on any errored/shed completion or dead worker")
    serve_sim.set_defaults(func=_cmd_serve_sim)

    serve = sub.add_parser(
        "serve",
        help="long-running serving daemon (clients and workers dial in by URL)",
        parents=list(parents.values()),
        epilog=_SERVE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve.add_argument("model", nargs="?", default=None,
                       help="checkpoint path (omit with --untrained)")
    serve.add_argument("--untrained", action="store_true",
                       help="serve a deterministic untrained model")
    serve.add_argument("--listen", default="tcp://127.0.0.1:7355",
                       help="control URL clients and inbound workers dial "
                            "(tcp://host:port, port 0 = ephemeral, or unix:///path)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--control-interval", type=float, default=1.0,
                       help="seconds between control-plane ticks (heartbeat probes + "
                            "heal/canary pass; 0 disables)")
    serve.add_argument("--heartbeat-timeout", type=float, default=2.0,
                       help="per-worker ping deadline during a control tick (seconds)")
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="standalone shard worker (--listen for inbound, --connect to join a daemon)",
        epilog=_WORKER_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    g = worker.add_argument_group("worker transport")
    g.add_argument("--listen", default=None,
                   help="bind this URL and serve fleets that dial in "
                        "(tcp://host:port, port 0 = ephemeral, or unix:///path)")
    g.add_argument("--connect", default=None,
                   help="dial this daemon control URL and serve as one of its shards")
    g.add_argument("--name", default="worker",
                   help="shard name sent with worker_hello; reconnecting under the "
                        "same name re-attaches to the old shard (default: worker)")
    g.add_argument("--once", action="store_true",
                   help="with --listen: exit after the first connection closes")
    g.add_argument("--no-reconnect", action="store_true",
                   help="with --connect: exit when the daemon goes away instead of redialing")
    g.add_argument("--connect-timeout", type=float, default=10.0,
                   help="how long to retry a refused dial (seconds)")
    worker.set_defaults(func=_cmd_worker)

    monitor = sub.add_parser("monitor", help="read metrics snapshots (serve-sim --metrics-json)")
    monitor_sub = monitor.add_subparsers(dest="monitor_command", required=True)
    mon_snapshot = monitor_sub.add_parser("snapshot", help="pretty-print one snapshot file")
    mon_snapshot.add_argument("snapshot_file", help="metrics JSON written by serve-sim")
    mon_snapshot.add_argument("--prometheus", action="store_true",
                              help="print Prometheus text exposition instead of tables")
    mon_snapshot.set_defaults(func=_cmd_monitor)
    mon_watch = monitor_sub.add_parser("watch", help="poll a snapshot file as a run refreshes it")
    mon_watch.add_argument("snapshot_file")
    mon_watch.add_argument("--interval", type=float, default=2.0, help="seconds between polls")
    mon_watch.add_argument("--count", type=int, default=5, help="number of polls")
    mon_watch.set_defaults(func=_cmd_monitor)
    mon_export = monitor_sub.add_parser("export", help="convert a snapshot to Prometheus text")
    mon_export.add_argument("snapshot_file")
    mon_export.add_argument("--out", required=True, help="write the exposition text here")
    mon_export.set_defaults(func=_cmd_monitor)
    mon_serve = monitor_sub.add_parser(
        "serve", help="expose a snapshot file over HTTP for Prometheus scrapers"
    )
    mon_serve.add_argument("snapshot_file", help="metrics JSON written by serve-sim")
    mon_serve.add_argument("--host", default="127.0.0.1")
    mon_serve.add_argument("--port", type=int, default=0, help="listen port (0 = ephemeral)")
    mon_serve.add_argument("--duration", type=float, default=None,
                           help="serve for this many seconds then exit (default: forever)")
    mon_serve.set_defaults(func=_cmd_monitor)

    registry = sub.add_parser("registry", help="inspect and manage a model registry")
    registry_sub = registry.add_subparsers(dest="registry_command", required=True)
    reg_list = registry_sub.add_parser("list", help="list published models and channels")
    reg_list.add_argument("registry", help="registry directory")
    reg_list.set_defaults(func=_cmd_registry)
    reg_promote = registry_sub.add_parser(
        "promote", help="make a model's canary version the new stable"
    )
    reg_promote.add_argument("registry", help="registry directory")
    reg_promote.add_argument("name", help="model name")
    reg_promote.set_defaults(func=_cmd_registry)
    reg_rollback = registry_sub.add_parser(
        "rollback", help="abandon a model's canary, keeping stable"
    )
    reg_rollback.add_argument("registry", help="registry directory")
    reg_rollback.add_argument("name", help="model name")
    reg_rollback.set_defaults(func=_cmd_registry)

    retrain = sub.add_parser(
        "retrain",
        help="harvest journaled drift windows, fine-tune stable, publish a canary candidate",
    )
    retrain.add_argument("registry", help="registry directory (stable base + canary channel)")
    retrain.add_argument("name", help="model name to retrain")
    retrain.add_argument("--journal", action="append", required=True,
                         help="journal file to harvest (repeat for per-worker journals; "
                              "sealed segments next to each are replayed too)")
    retrain.add_argument("--url", default=None,
                         help="control URL of a running daemon: fetch its drift events "
                              "(restricting the harvest to drifted cells) and publish "
                              "through it instead of writing the registry directly")
    retrain.add_argument("--cells", nargs="*", default=None,
                         help="explicit cell ids to harvest (default: drifted cells with "
                              "--url, every cell without)")
    retrain.add_argument("--chemistry", default=None,
                         help="fine-tune on one chemistry's partition only")
    retrain.add_argument("--archive-dir", default=None,
                         help="cold store holding the journals' archived segments")
    retrain.add_argument("--max-gaps", type=int, default=0,
                         help="missing archived segments tolerated before failing")
    retrain.add_argument("--min-rows", type=int, default=4,
                         help="harvested rows required to fine-tune (exit 1 below)")
    retrain.add_argument("--epochs", type=int, default=20, help="fine-tune epochs (Branch 2)")
    retrain.add_argument("--lr", type=float, default=1e-3, help="fine-tune learning rate")
    retrain.add_argument("--seed", type=int, default=0)
    retrain.add_argument("--targets", choices=("physics", "journal"), default="physics",
                         help="relabel targets with Eq. 1 (default) or train on journaled SoC")
    retrain.add_argument("--dry-run", action="store_true",
                         help="harvest and fine-tune but publish nothing")
    retrain.set_defaults(func=_cmd_retrain)

    perf_lab = sub.add_parser(
        "perf-lab",
        help="run-table perf sweeps with open-loop load and a capacity model",
    )
    perf_lab_sub = perf_lab.add_subparsers(dest="perf_lab_command", required=True)
    lab_run = perf_lab_sub.add_parser("run", help="execute every cell of a run table")
    lab_run.add_argument("--table", required=True, help="run table (JSON or YAML)")
    lab_run.add_argument("--out", required=True, help="artifact directory (created)")
    lab_run.set_defaults(func=_cmd_perf_lab)
    lab_analyze = perf_lab_sub.add_parser(
        "analyze", help="aggregate run artifacts into summary + BENCH_capacity.json"
    )
    lab_analyze.add_argument("--out", required=True, help="artifact directory from a run")
    lab_analyze.add_argument("--slo-p99-ms", type=float, default=None,
                             help="p99 latency objective (default: table-pinned)")
    lab_analyze.add_argument("--per-cell-req-s", type=float, default=None,
                             help="assumed steady per-cell req/s (default: table-pinned)")
    lab_analyze.set_defaults(func=_cmd_perf_lab)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
