"""Command-line interface: train, evaluate, and roll out SoC models.

Gives the library a deployable surface without writing Python:

- ``repro-soc train``     — train a (PINN or No-PINN) model on a
  synthetic campaign and checkpoint it to ``.npz``;
- ``repro-soc evaluate``  — score a checkpoint on the campaign's test
  split at one or more horizons;
- ``repro-soc predict``   — one-shot SoC estimation + prediction from
  sensor readings and a hypothesized workload;
- ``repro-soc rollout``   — autoregressive full-discharge trace of a
  named test cycle;
- ``repro-soc inspect``   — parameters / memory / ops of a checkpoint.

Usage examples::

    python -m repro.cli train --dataset sandia --pinn --out model.npz
    python -m repro.cli evaluate model.npz --dataset sandia --horizons 120 240 360
    python -m repro.cli predict model.npz --voltage 3.7 --current 3 \\
        --temp 25 --workload-current 6 --horizon 300
    python -m repro.cli rollout model.npz --dataset lg --cycle us06-25C --step 30
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.complexity import model_complexity
from .core.config import ModelConfig, PhysicsConfig, TrainConfig
from .core.model import TwoBranchSoCNet
from .core.rollout import model_rollout
from .core.trainer import train_two_branch
from .datasets.lg import LGConfig, generate_lg
from .datasets.preprocessing import smooth_cycle
from .datasets.sandia import SandiaConfig, generate_sandia
from .datasets.windowing import make_estimation_samples, make_prediction_samples
from .eval.metrics import mae
from .nn.serialization import load_state, save_state

__all__ = ["main", "build_parser"]

_DATASET_DEFAULTS = {
    "sandia": {
        "train_horizon": 120.0,
        "horizon_scale": 360.0,
        "physics_horizons": (120.0, 240.0, 360.0),
        "smooth_s": None,
        "stride": 1,
    },
    "lg": {
        "train_horizon": 30.0,
        "horizon_scale": 70.0,
        "physics_horizons": (30.0, 50.0, 70.0),
        "smooth_s": 30.0,
        "stride": 20,
    },
}


def _generate(dataset: str, seed: int, fast: bool):
    if dataset == "sandia":
        cfg = SandiaConfig(seed=seed, sim_dt_s=2.0 if fast else 1.0)
        return generate_sandia(cfg)
    cfg = LGConfig(seed=seed) if not fast else LGConfig(
        seed=seed,
        sampling_period_s=0.5,
        n_train_mixed=3,
        train_temps_c=(0.0, 10.0, 25.0),
        mixed_segment_s=(180.0, 420.0),
    )
    return generate_lg(cfg)


def _prepare_cycles(cycles, smooth_s):
    if smooth_s is None:
        return list(cycles)
    return [smooth_cycle(c, smooth_s) for c in cycles]


def _save_model(model: TwoBranchSoCNet, path: str, meta: dict) -> None:
    save_state(model.state_dict(), path, meta=meta)


def _load_model(path: str) -> tuple[TwoBranchSoCNet, dict]:
    state, meta = load_state(path)
    if meta is None or "horizon_scale" not in meta:
        raise SystemExit(f"{path} is not a repro-soc checkpoint")
    model = TwoBranchSoCNet(
        ModelConfig(hidden=tuple(meta["hidden"]), horizon_scale_s=meta["horizon_scale"]),
        rng=np.random.default_rng(0),
    )
    model.load_state_dict(state)
    return model, meta


# ----------------------------------------------------------------------
def _cmd_train(args) -> int:
    defaults = _DATASET_DEFAULTS[args.dataset]
    print(f"generating {args.dataset} campaign (seed {args.seed})...", file=sys.stderr)
    campaign = _generate(args.dataset, args.seed, args.fast)
    train_cycles = _prepare_cycles(campaign.train(), defaults["smooth_s"])
    estimation = make_estimation_samples(train_cycles, stride=defaults["stride"])
    prediction = make_prediction_samples(
        train_cycles, horizon_s=defaults["train_horizon"], stride=defaults["stride"]
    )
    physics = PhysicsConfig(horizons_s=defaults["physics_horizons"]) if args.pinn else None
    model, logs = train_two_branch(
        estimation,
        prediction,
        model_config=ModelConfig(horizon_scale_s=defaults["horizon_scale"]),
        train_config=TrainConfig(
            epochs_branch1=args.epochs, epochs_branch2=args.epochs, seed=args.seed
        ),
        physics=physics,
    )
    meta = {
        "dataset": args.dataset,
        "pinn": bool(args.pinn),
        "seed": args.seed,
        "hidden": list(model.config.hidden),
        "horizon_scale": model.config.horizon_scale_s,
        "final_loss_b1": logs["branch1"].last().get("loss"),
        "final_loss_b2": logs["branch2"].last().get("loss"),
    }
    _save_model(model, args.out, meta)
    print(f"saved {model.num_parameters()}-parameter model to {args.out}")
    print(f"final losses: b1={meta['final_loss_b1']:.4f} b2={meta['final_loss_b2']:.4f}")
    return 0


def _cmd_evaluate(args) -> int:
    model, meta = _load_model(args.model)
    dataset = args.dataset or meta["dataset"]
    defaults = _DATASET_DEFAULTS[dataset]
    campaign = _generate(dataset, args.seed, args.fast)
    test_cycles = _prepare_cycles(campaign.test(), defaults["smooth_s"])
    print(f"model: {args.model} (dataset={dataset}, pinn={meta['pinn']})")
    for horizon in args.horizons:
        samples = make_prediction_samples(test_cycles, horizon_s=horizon, stride=defaults["stride"])
        err = mae(model.predict_samples(samples), samples.soc_target)
        print(f"  SoC(t+{horizon:g}s) MAE = {err:.4f}   (n={len(samples)})")
    estimation = make_estimation_samples(test_cycles, stride=defaults["stride"])
    soc_hat = model.estimate_soc(
        estimation.features[:, 0], estimation.features[:, 1], estimation.features[:, 2]
    )
    print(f"  SoC(t)      MAE = {mae(soc_hat, estimation.soc):.4f}   (n={len(estimation)})")
    return 0


def _cmd_predict(args) -> int:
    model, _ = _load_model(args.model)
    soc_now = model.estimate_soc(args.voltage, args.current, args.temp)[0]
    soc_future = model.predict_soc(
        soc_now, args.workload_current, args.workload_temp if args.workload_temp is not None else args.temp,
        args.horizon,
    )[0]
    print(f"SoC(t)   = {soc_now:.4f}")
    print(f"SoC(t+{args.horizon:g}s) = {soc_future:.4f} under {args.workload_current:g} A")
    return 0


def _cmd_rollout(args) -> int:
    model, meta = _load_model(args.model)
    dataset = args.dataset or meta["dataset"]
    defaults = _DATASET_DEFAULTS[dataset]
    campaign = _generate(dataset, args.seed, args.fast)
    try:
        cycle = campaign.by_name(args.cycle)
    except KeyError:
        names = ", ".join(c.name for c in campaign.test())
        raise SystemExit(f"unknown cycle {args.cycle!r}; test cycles: {names}")
    if defaults["smooth_s"]:
        cycle = smooth_cycle(cycle, defaults["smooth_s"])
    result = model_rollout(model, cycle, step_s=args.step)
    print(f"rollout of {cycle.name}: {len(result) - 1} steps x {result.step_s:g}s")
    print(f"  initial SoC estimate: {result.initial_soc:.4f} (true {result.soc_true[0]:.4f})")
    print(f"  trajectory MAE: {result.mae():.4f}")
    print(f"  final |error|:  {result.final_error():.4f}")
    if args.csv:
        from .eval.reporting import save_csv

        save_csv(args.csv, ["time_s", "soc_pred", "soc_true"],
                 list(zip(result.time_s, result.soc_pred, result.soc_true)))
        print(f"  series written to {args.csv}")
    return 0


def _cmd_inspect(args) -> int:
    model, meta = _load_model(args.model)
    report = model_complexity(model)
    print(f"checkpoint: {args.model}")
    for key, value in meta.items():
        print(f"  {key}: {value}")
    print(f"  parameters: {report.parameters}")
    print(f"  memory: {report.memory_kib():.1f} KiB (float32)")
    print(f"  MACs/inference: {report.macs}")
    print(f"  ops/inference: {report.ops}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro-soc", description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a model on a synthetic campaign")
    train.add_argument("--dataset", choices=sorted(_DATASET_DEFAULTS), default="sandia")
    train.add_argument("--pinn", action="store_true", help="enable the physics-informed loss")
    train.add_argument("--epochs", type=int, default=120)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--fast", action="store_true", help="scaled-down campaign")
    train.add_argument("--out", required=True, help="checkpoint path (.npz)")
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("evaluate", help="score a checkpoint on the test split")
    evaluate.add_argument("model")
    evaluate.add_argument("--dataset", choices=sorted(_DATASET_DEFAULTS), default=None)
    evaluate.add_argument("--horizons", type=float, nargs="+", default=[120.0])
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--fast", action="store_true")
    evaluate.set_defaults(func=_cmd_evaluate)

    predict = sub.add_parser("predict", help="one-shot estimate + prediction")
    predict.add_argument("model")
    predict.add_argument("--voltage", type=float, required=True)
    predict.add_argument("--current", type=float, required=True)
    predict.add_argument("--temp", type=float, required=True)
    predict.add_argument("--workload-current", type=float, required=True)
    predict.add_argument("--workload-temp", type=float, default=None)
    predict.add_argument("--horizon", type=float, required=True)
    predict.set_defaults(func=_cmd_predict)

    rollout = sub.add_parser("rollout", help="autoregressive discharge trace")
    rollout.add_argument("model")
    rollout.add_argument("--dataset", choices=sorted(_DATASET_DEFAULTS), default=None)
    rollout.add_argument("--cycle", required=True, help="test-cycle name (see dataset summary)")
    rollout.add_argument("--step", type=float, default=30.0)
    rollout.add_argument("--seed", type=int, default=0)
    rollout.add_argument("--fast", action="store_true")
    rollout.add_argument("--csv", default=None, help="write the trajectory to this CSV")
    rollout.set_defaults(func=_cmd_rollout)

    inspect = sub.add_parser("inspect", help="show checkpoint metadata and cost")
    inspect.add_argument("model")
    inspect.set_defaults(func=_cmd_inspect)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
