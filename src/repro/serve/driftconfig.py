"""Per-chemistry drift-detector configs resolved from the model registry.

The registry already carries arbitrary metadata per published model
(``ModelEntry.extra``), and serving already resolves the right model per
chemistry.  This module closes the same loop for *monitoring*: a
published model can carry a ``"drift"`` key in its extra metadata — a
plain dict understood by :meth:`repro.monitor.drift.DriftMonitor.from_spec`
— and :func:`drift_resolver_from_registry` turns the registry into a
resolver callable that :class:`repro.monitor.drift.ChemistryDriftRouter`
(and therefore ``FleetEngine(drift=...)``) consumes directly::

    registry.publish(
        "lfp_net", model, chemistry="lfp",
        extra={"drift": {"bounds": {"max_discharge_c": 1.0},
                         "page_hinkley": {"threshold": 0.05}}},
    )
    engine = FleetEngine(
        registry=registry,
        drift=drift_resolver_from_registry(registry),
        metrics=metrics,
    )

Chemistries whose stable model carries no ``"drift"`` spec fall back to
default :class:`~repro.monitor.drift.DriftMonitor` settings, so the
uniform-config path keeps working unchanged.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["drift_resolver_from_registry"]


def drift_resolver_from_registry(registry) -> Callable[[str | None], dict | None]:
    """Resolver mapping a chemistry to its registry-declared drift spec.

    For each chemistry the resolver finds the stable-channel model the
    registry would serve (``registry.resolve(chemistry=...)``) and
    returns the ``"drift"`` dict from that entry's extra metadata, or
    ``None`` (→ default detectors) when the entry carries none or no
    model matches.

    The returned callable is what ``FleetEngine(drift=...)`` accepts:
    the engine wraps it in a
    :class:`repro.monitor.drift.ChemistryDriftRouter`, which calls it
    lazily — once per distinct chemistry as cells register — so late
    publishes with new chemistries are picked up without restarts.
    """

    def resolve(chemistry: str | None) -> dict | None:
        try:
            ref = registry.resolve(chemistry=chemistry)
            entry = registry.describe(ref)
        except KeyError:
            return None
        spec = entry.extra.get("drift")
        if spec is None:
            return None
        if not isinstance(spec, dict):
            raise TypeError(
                f"registry entry {entry.ref!r} carries a non-dict 'drift' spec: {spec!r}"
            )
        return dict(spec)

    return resolve
