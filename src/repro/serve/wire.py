"""Worker wire codec: length-prefixed frames, pickle (v1) and zero-copy (v2).

The :class:`~repro.serve.workers.ProcessShardWorker` pipe protocol
frames every message as a 4-byte big-endian length plus a body.  PR 3
shipped one body format — a pickle of ``(op, args, kwargs)`` — which is
fine for control traffic but wasteful for the bulk inference messages:
pickling a numpy array walks the object graph, copies the payload into
the pickle stream, and on receive copies it *again* out of the stream
into a fresh array.

The **v2 frame format** added here keeps the outer framing and replaces
the body for bulk messages (``estimate`` / ``predict`` /
``rollout_fleet`` / ``resume_rollout_fleet`` and their replies) with a
struct header plus raw array bytes::

    body    := magic=0xB2 (1B) | version (1B) | meta_len (>I) | n_arrays (>H)
               | meta (UTF-8 JSON, meta_len bytes)
               | array payloads (raw C-order bytes, back to back)

    meta    := {"kind": <message kind>,
                "meta":   <kind-specific JSON object>,
                "arrays": [{"dtype": "<f8", "shape": [n, ...]}, ...]}

The sender writes the header, the JSON block and then each array's
buffer straight from the array memory (no intermediate pickle stream);
the receiver decodes each payload with :func:`numpy.frombuffer` over
the received body — a *view*, not a copy, so a 1,000-cell estimate
batch or a fleet's rollout trajectories cross the pipe with zero
per-element Python work and zero decode-side copies.  Decoded arrays
are read-only (they alias the frame buffer); engine code treats inputs
as immutable, results are copied out at the worker API boundary (so
callers get writable arrays, as from an in-process engine), and
float64 payloads round-trip **bit-for-bit** — the property the worker
equivalence suite pins.

Both formats coexist on one pipe: a pickle body starts with the
protocol-2+ opcode ``0x80``, a v2 body with the magic ``0xB2``, so
:func:`read_frame` dispatches on the first byte.  Control ops (init,
shutdown, registration, state migration) stay on pickle — they are
rare and structural — and anything v2 cannot express (e.g. cycle tags
that are not JSON) falls back to pickle per message, never per
session.

**Shared-memory refs (shm transport).**  Over the ``shm://`` local
transport (:class:`repro.serve.transport.ShmRing`) bulk payloads stop
riding the pipe entirely: :func:`encode_v2_shm` copies each array's
bytes into a preallocated shared-memory slab ring and the frame body
carries only the header + JSON meta, with each array spec extended by
``"shm": [offset, nbytes]``.  The receiver (:func:`decode_body` with a
``shm`` ring attached) maps each ref back with ``np.frombuffer`` over
the ring — the same read-only-view contract as in-band payloads.  A
message whose payloads do not fit the ring returns ``None`` from
:func:`encode_v2_shm` and falls back to an in-band :func:`encode_v2`
frame, so ring capacity bounds memory, never message size.  Ref frames
are only valid between the two endpoints sharing the ring; everything
else about the format (dispatch byte, meta, fallback rules) is
unchanged.

**Trace context.**  The kind-specific ``meta`` block is free-form
JSON, so distributed-tracing context rides as one optional meta key
(:data:`TRACE_META_KEY`): the compact ``[trace_id, span_id, flags]``
triple from :func:`pack_trace_context`.  Replies from a
trace-enabled worker may carry the sibling key ``"spans"`` — span
dicts recorded in the child, re-joined to the parent's trace via
:meth:`repro.monitor.tracing.SpanTracer.absorb`.  Decoders ignore
both keys; pickle-fallback messages carry no trace context (those
paths stay untraced).
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import struct
from typing import Iterable, Sequence

import numpy as np

from ..battery.simulator import SimulationResult
from ..core.rollout import RolloutResult
from ..datasets.base import CycleRecord

__all__ = [
    "LENGTH_PREFIX_SIZE",
    "TRACE_META_KEY",
    "V2Frame",
    "pack_trace_context",
    "read_frame",
    "read_exact",
    "frame_header",
    "frame_length",
    "pickle_body",
    "decode_body",
    "write_pickle",
    "write_v2",
    "encode_v2",
    "encode_v2_shm",
    "encode_str_list",
    "decode_str_list",
    "encode_rollout_request",
    "decode_rollout_request",
    "encode_rollout_results",
    "decode_rollout_results",
]

V2_MAGIC = 0xB2
V2_VERSION = 2
_LENGTH = struct.Struct(">I")
_V2_HEAD = struct.Struct(">BBIH")

# Optional meta key carrying trace context across the process boundary.
TRACE_META_KEY = "tc"


def pack_trace_context(ctx) -> list[int]:
    """``[trace_id, span_id, flags]`` for the :data:`TRACE_META_KEY` meta slot.

    Duck-typed on :class:`~repro.monitor.tracing.TraceContext` so this
    module keeps zero monitor imports; bit 0 of ``flags`` is the
    head-sampled bit.
    """
    return [int(ctx.trace_id), int(ctx.span_id), 1 if ctx.sampled else 0]


@dataclasses.dataclass
class V2Frame:
    """One decoded v2 message: a kind tag, JSON-safe meta, raw arrays."""

    kind: str
    meta: dict
    arrays: list[np.ndarray]


# -- transport ---------------------------------------------------------
LENGTH_PREFIX_SIZE = _LENGTH.size


def read_exact(stream, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF (possibly mid-read)."""
    chunks = []
    while n:
        chunk = stream.read(n)
        if not chunk:
            return None  # EOF (possibly mid-frame: the peer died)
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


_read_exact = read_exact  # internal alias, kept for call-site brevity


def frame_header(body_length: int) -> bytes:
    """The 4-byte length prefix for a ``body_length``-byte frame body."""
    return _LENGTH.pack(body_length)


def frame_length(header: bytes) -> int:
    """Decode a length prefix read with :func:`read_exact`."""
    (length,) = _LENGTH.unpack(header)
    return length


def pickle_body(payload) -> bytes:
    """A v1 frame body: the payload pickled at the highest protocol."""
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def decode_body(body: bytes, shm=None):
    """Decode one frame body: a :class:`V2Frame` or an unpickled payload.

    The first byte dispatches — ``0xB2`` is the v2 magic, ``0x80`` the
    pickle protocol-2+ opcode — exactly as the stream-level
    :func:`read_frame` always did; transports that read bodies
    themselves (for torn-stream detection) decode through this.

    ``shm`` is the receive-side shared-memory ring (any object exposing
    the mapped bytes as ``.buf``); array specs carrying ``"shm"`` refs
    are resolved against it.  Without a ring attached such frames raise
    ``ValueError`` — they are meaningless off their transport.
    """
    if body[:1] == bytes([V2_MAGIC]):
        return _decode_v2(body, shm=shm)
    return pickle.loads(body)


def read_frame(stream):
    """Read one frame; a pickle payload, a :class:`V2Frame`, or ``None`` on EOF."""
    header = _read_exact(stream, _LENGTH.size)
    if header is None:
        return None
    body = _read_exact(stream, frame_length(header))
    if body is None:
        return None
    return decode_body(body)


def write_pickle(stream, payload) -> None:
    """Write one v1 frame (a pickled payload)."""
    body = pickle_body(payload)
    stream.write(_LENGTH.pack(len(body)) + body)
    stream.flush()


def encode_v2(kind: str, meta: dict, arrays: Sequence[np.ndarray]) -> list:
    """Serialize a v2 message into write-ready buffers.

    Fully serializes (including the JSON meta block) **before**
    returning, so a ``TypeError`` from non-JSON meta surfaces while the
    stream is still clean and the caller can fall back to pickle.
    Returns ``[header+meta bytes, array buffer, ...]``; array buffers
    are memoryviews of the (C-contiguous) array memory — no copy.
    """
    if len(arrays) > 0xFFFF:
        # n_arrays is a 2-byte field; a rollout request carrying more
        # unique cycles than that degrades to a pickle frame instead
        raise TypeError(f"{len(arrays)} arrays exceed the v2 frame limit of 65535")
    blocks: list = []
    specs = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise TypeError("v2 frames carry raw numeric arrays, not object dtypes")
        specs.append({"dtype": array.dtype.str, "shape": list(array.shape)})
        if array.size:  # empty views cannot be byte-cast; they carry no payload
            blocks.append(memoryview(array).cast("B"))
    meta_b = json.dumps({"kind": kind, "meta": meta, "arrays": specs}, separators=(",", ":")).encode("utf-8")
    head = _V2_HEAD.pack(V2_MAGIC, V2_VERSION, len(meta_b), len(arrays))
    length = _V2_HEAD.size + len(meta_b) + sum(len(b) for b in blocks)
    return [_LENGTH.pack(length) + head + meta_b, *blocks]


def write_v2(stream, kind: str, meta: dict, arrays: Sequence[np.ndarray]) -> None:
    """Write one v2 frame, streaming array payloads from their buffers."""
    for chunk in encode_v2(kind, meta, arrays):
        stream.write(chunk)
    stream.flush()


def encode_v2_shm(kind: str, meta: dict, arrays: Sequence[np.ndarray], ring) -> list | None:
    """Serialize a v2 message with payloads placed in a shared-memory ring.

    Array bytes are copied into ``ring`` (via its ``place`` method) and
    each spec gains an ``"shm": [offset, nbytes]`` ref; the returned
    buffers carry only the header + meta, so the bulk payload never
    touches the stream.  Returns ``None`` when the payloads do not fit
    the ring — the caller sends a plain in-band :func:`encode_v2` frame
    instead.  Like :func:`encode_v2`, the JSON meta is fully serialized
    before anything is written to the *stream*, so pickle fallback on
    ``TypeError`` still sees a clean stream (slab bytes already placed
    are simply overwritten by a later message).
    """
    if len(arrays) > 0xFFFF:
        raise TypeError(f"{len(arrays)} arrays exceed the v2 frame limit of 65535")
    blocks: list = []
    normalized: list[tuple[np.ndarray, bool]] = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise TypeError("v2 frames carry raw numeric arrays, not object dtypes")
        payload = bool(array.size)  # empty arrays carry no payload, shm or not
        normalized.append((array, payload))
        if payload:
            blocks.append(memoryview(array).cast("B"))
    offsets = ring.place(blocks)
    if offsets is None:
        return None
    refs = iter(offsets)
    specs = []
    for array, payload in normalized:
        spec = {"dtype": array.dtype.str, "shape": list(array.shape)}
        if payload:
            spec["shm"] = [next(refs), array.nbytes]
        specs.append(spec)
    meta_b = json.dumps({"kind": kind, "meta": meta, "arrays": specs}, separators=(",", ":")).encode("utf-8")
    head = _V2_HEAD.pack(V2_MAGIC, V2_VERSION, len(meta_b), len(arrays))
    return [_LENGTH.pack(_V2_HEAD.size + len(meta_b)) + head + meta_b]


def _decode_v2(body: bytes, shm=None) -> V2Frame:
    magic, version, meta_len, n_arrays = _V2_HEAD.unpack_from(body, 0)
    if version > V2_VERSION:
        raise ValueError(f"frame format v{version} is newer than this build (v{V2_VERSION})")
    offset = _V2_HEAD.size
    info = json.loads(body[offset : offset + meta_len].decode("utf-8"))
    offset += meta_len
    if len(info["arrays"]) != n_arrays:
        raise ValueError(f"frame header promises {n_arrays} arrays, meta lists {len(info['arrays'])}")
    arrays = []
    for spec in info["arrays"]:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        count = int(np.prod(shape)) if shape else 1
        ref = spec.get("shm")
        if ref is not None:
            if shm is None:
                raise ValueError("frame carries shm refs but no ring is attached to this transport")
            array = np.frombuffer(shm.buf, dtype=dtype, count=count, offset=int(ref[0])).reshape(shape)
            array.flags.writeable = False  # same read-only-view contract as in-band payloads
        else:
            array = np.frombuffer(body, dtype=dtype, count=count, offset=offset).reshape(shape)
            offset += count * dtype.itemsize
        arrays.append(array)
    return V2Frame(kind=info["kind"], meta=info["meta"], arrays=arrays)


# -- bulk-message payload codecs ---------------------------------------
def encode_str_list(items: Sequence[str]) -> np.ndarray:
    """Pack a list of strings into one raw uint8 payload (NUL-joined).

    Cell-id lists are the one non-numeric bulk payload; shipping them
    inside the JSON meta would put an O(n) string-encode/parse back on
    the hot path, so they ride as a raw byte block instead.  Pair with
    :func:`decode_str_list` (which needs the count, carried in the
    frame meta).

    Raises
    ------
    TypeError
        When an item contains the NUL separator — the caller falls
        back to a pickle frame for that message.
    """
    joined = "\x00".join(items)
    if joined.count("\x00") != max(len(items) - 1, 0):
        raise TypeError("strings containing NUL are not v2-expressible")
    return np.frombuffer(joined.encode("utf-8"), dtype=np.uint8)


def decode_str_list(array: np.ndarray, count: int) -> list[str]:
    """Unpack :func:`encode_str_list` output back into ``count`` strings."""
    if count == 0:
        return []
    items = array.tobytes().decode("utf-8").split("\x00")
    if len(items) != count:
        raise ValueError(f"string block holds {len(items)} items, frame meta promises {count}")
    return items


_CHANNELS = (
    "time_s",
    "voltage",
    "current",
    "temp_c",
    "soc",
    "voltage_true",
    "current_true",
    "temp_true",
)


def encode_rollout_request(
    pairs: Iterable[tuple[str, CycleRecord]], step_s: float
) -> tuple[dict, list[np.ndarray]]:
    """Flatten rollout assignments into v2 meta + raw array blocks.

    Cycles are deduplicated by object identity — a fleet where many
    cells follow one recorded trace ships that trace **once**, and the
    decoder rebuilds the sharing (so the engine's per-trace plan cache
    works in the child exactly as in-process).  Only the per-*cycle*
    scalars and tags ride in the JSON meta; the O(cells) pair list is
    two raw blocks (an id blob and a cycle-index array), and the
    recorded channels are raw float payloads.
    """
    cycle_index: dict[int, int] = {}
    cycles: list[CycleRecord] = []
    cell_ids: list[str] = []
    cycle_of: list[int] = []
    for cell_id, cycle in pairs:
        u = cycle_index.setdefault(id(cycle), len(cycles))
        if u == len(cycles):
            cycles.append(cycle)
        cell_ids.append(cell_id)
        cycle_of.append(u)
    specs = []
    arrays: list[np.ndarray] = [
        encode_str_list(cell_ids),
        np.asarray(cycle_of, dtype=np.int64),
    ]
    for cycle in cycles:
        specs.append(
            {
                "name": cycle.name,
                "split": cycle.split,
                "ambient_c": cycle.ambient_c,
                "sampling_period_s": cycle.sampling_period_s,
                "capacity_ah": cycle.capacity_ah,
                "tags": cycle.tags,
                "stopped_early": bool(cycle.data.stopped_early),
                "stop_reason": cycle.data.stop_reason,
            }
        )
        arrays.extend(np.asarray(getattr(cycle.data, channel)) for channel in _CHANNELS)
    return {"step_s": float(step_s), "n_pairs": len(cell_ids), "cycles": specs}, arrays


def decode_rollout_request(meta: dict, arrays: Sequence[np.ndarray]) -> tuple[list, float]:
    """Rebuild ``(cell_id, cycle)`` assignments from a v2 rollout frame."""
    cell_ids = decode_str_list(arrays[0], int(meta["n_pairs"]))
    cycle_of = arrays[1]
    cycles = []
    stride = len(_CHANNELS)
    for k, spec in enumerate(meta["cycles"]):
        channels = dict(zip(_CHANNELS, arrays[2 + stride * k : 2 + stride * (k + 1)]))
        data = SimulationResult(
            stopped_early=spec["stopped_early"], stop_reason=spec["stop_reason"], **channels
        )
        cycles.append(
            CycleRecord(
                name=spec["name"],
                split=spec["split"],
                ambient_c=spec["ambient_c"],
                sampling_period_s=spec["sampling_period_s"],
                capacity_ah=spec["capacity_ah"],
                data=data,
                tags=spec["tags"],
            )
        )
    pairs = [(cell_id, cycles[u]) for cell_id, u in zip(cell_ids, cycle_of)]
    return pairs, float(meta["step_s"])


def encode_rollout_results(results: dict[str, RolloutResult]) -> tuple[dict, list[np.ndarray]]:
    """Flatten per-cell trajectories into v2 meta + stacked raw arrays.

    Everything O(cells) is a raw block: the id blob, the per-cell
    lengths/scalars, and the three concatenated trajectory channels.
    """
    cell_ids = list(results)
    lengths = np.array([len(r.time_s) for r in results.values()], dtype=np.int64)
    scalars = np.array(
        [[r.initial_soc, r.step_s, r.tail_s] for r in results.values()], dtype=np.float64
    ).reshape(len(results), 3)
    empty = np.empty(0)
    stacked = [
        np.concatenate(parts) if parts else empty
        for parts in (
            [r.time_s for r in results.values()],
            [r.soc_pred for r in results.values()],
            [r.soc_true for r in results.values()],
        )
    ]
    arrays = [encode_str_list(cell_ids), lengths, scalars, *stacked]
    return {"n_cells": len(cell_ids)}, arrays


def decode_rollout_results(meta: dict, arrays: Sequence[np.ndarray]) -> dict[str, RolloutResult]:
    """Rebuild the ``{cell_id: RolloutResult}`` mapping from a v2 reply.

    Trajectories are copied out of the frame body so callers receive
    writable arrays — the same contract as an in-process engine — and
    the frame buffer can be released.
    """
    cell_ids = decode_str_list(arrays[0], int(meta["n_cells"]))
    lengths, scalars, time_all, pred_all, true_all = arrays[1:]
    results: dict[str, RolloutResult] = {}
    offset = 0
    for k, cell_id in enumerate(cell_ids):
        n = int(lengths[k])
        results[cell_id] = RolloutResult(
            time_s=time_all[offset : offset + n].copy(),
            soc_pred=pred_all[offset : offset + n].copy(),
            soc_true=true_all[offset : offset + n].copy(),
            initial_soc=float(scalars[k, 0]),
            step_s=float(scalars[k, 1]),
            tail_s=float(scalars[k, 2]),
        )
        offset += n
    return results
