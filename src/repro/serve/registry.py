"""Named-checkpoint registry with per-cell model resolution.

A fleet mixes chemistries, datasets and horizon regimes; the serving
engine must pick the right 2,322-parameter checkpoint for every cell
without the caller hard-coding paths.  :class:`ModelRegistry` stores
checkpoints under one directory (one ``.npz`` per model, written via
:mod:`repro.nn.serialization`), keeps a metadata index built from
:func:`repro.nn.peek_meta` (no weights are read until a model is
actually served), and resolves the most specific entry for a
``(chemistry, dataset)`` query.

Resolution rules, most to least specific:

1. entries matching both the requested chemistry and dataset;
2. entries matching the chemistry (and not pinned to a different
   dataset);
3. entries matching the dataset and not specialized for a different
   chemistry;
4. *generalist* entries published without a chemistry.

An entry whose chemistry/dataset is set but differs from the query is
never considered a match on that axis.  Ties inside a tier break
deterministically on the lexicographically smallest name.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np

from ..core.config import ModelConfig
from ..core.model import TwoBranchSoCNet
from ..nn.serialization import load_state, peek_meta, save_state

__all__ = ["ModelEntry", "ModelRegistry", "REGISTRY_SCHEMA_VERSION"]

REGISTRY_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ModelEntry:
    """Index record for one published checkpoint.

    Attributes
    ----------
    name:
        Registry key (also the checkpoint's file stem).
    path:
        Location of the ``.npz`` snapshot.
    chemistry:
        Chemistry the model was trained for (``None`` = generalist).
    dataset:
        Source campaign (``"sandia"``, ``"lg"``, ...; optional).
    hidden:
        Hidden-layer widths of both branches.
    horizon_scale_s:
        Branch 2 horizon normalization constant.
    extra:
        Remaining metadata stored with the checkpoint (seeds, losses).
    """

    name: str
    path: Path
    chemistry: str | None
    dataset: str | None
    hidden: tuple[int, ...]
    horizon_scale_s: float
    extra: dict = dataclasses.field(default_factory=dict)


_RESERVED = {"registry_version", "name", "chemistry", "dataset", "hidden", "horizon_scale"}


class ModelRegistry:
    """Directory-backed store of named :class:`TwoBranchSoCNet` checkpoints.

    Parameters
    ----------
    root:
        Directory holding the checkpoints (created on first publish).
        Existing ``.npz`` files carrying registry metadata are indexed
        on construction, so a registry can be reopened across runs.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._entries: dict[str, ModelEntry] = {}
        self._models: dict[str, TwoBranchSoCNet] = {}
        self.refresh()

    # -- publishing ----------------------------------------------------
    def publish(
        self,
        name: str,
        model: TwoBranchSoCNet,
        chemistry: str | None = None,
        dataset: str | None = None,
        extra: dict | None = None,
    ) -> ModelEntry:
        """Store a model under ``name`` and index it.

        Architecture metadata (hidden widths, horizon scale) is taken
        from the model itself so a later :meth:`load` can rebuild it
        without guessing; ``chemistry``/``dataset`` drive
        :meth:`resolve`.
        """
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid model name {name!r}")
        extra = dict(extra or {})
        if overlap := _RESERVED & set(extra):
            raise ValueError(f"extra metadata may not use reserved keys {sorted(overlap)}")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{name}.npz"
        meta = {
            "registry_version": REGISTRY_SCHEMA_VERSION,
            "name": name,
            "chemistry": chemistry,
            "dataset": dataset,
            "hidden": list(model.config.hidden),
            "horizon_scale": model.config.horizon_scale_s,
            **extra,
        }
        save_state(model.state_dict(), path, meta=meta)
        entry = self._index(path, meta)
        self._models.pop(name, None)  # drop any stale cached weights
        return entry

    # -- lookup --------------------------------------------------------
    def names(self) -> list[str]:
        """All published model names, sorted."""
        return sorted(self._entries)

    def entries(self) -> list[ModelEntry]:
        """All index records, sorted by name."""
        return [self._entries[n] for n in self.names()]

    def describe(self, name: str) -> ModelEntry:
        """Index record for one model.

        Raises
        ------
        KeyError
            When no model has that name.
        """
        if name not in self._entries:
            raise KeyError(f"no model named {name!r}; have {self.names()}")
        return self._entries[name]

    def load(self, name: str) -> TwoBranchSoCNet:
        """Materialize (and cache) the named model with its weights."""
        if name not in self._models:
            entry = self.describe(name)
            model = TwoBranchSoCNet(
                ModelConfig(hidden=entry.hidden, horizon_scale_s=entry.horizon_scale_s),
                rng=np.random.default_rng(0),
            )
            state, _ = load_state(entry.path)
            model.load_state_dict(state)
            model.eval()
            self._models[name] = model
        return self._models[name]

    def resolve(self, chemistry: str | None = None, dataset: str | None = None) -> str:
        """Name of the most specific entry for a chemistry/dataset query.

        Raises
        ------
        KeyError
            When nothing matches (not even a generalist entry).
        """
        chemistry = chemistry.lower() if chemistry else None

        def conflicts(entry_value, query_value) -> bool:
            return entry_value is not None and query_value is not None and entry_value != query_value

        tiers: list[list[str]] = [[], [], [], []]
        for name in self.names():
            e = self._entries[name]
            chem_hit = chemistry is not None and e.chemistry == chemistry
            data_hit = dataset is not None and e.dataset == dataset
            if chem_hit and data_hit:
                tiers[0].append(name)
            elif chem_hit and not conflicts(e.dataset, dataset):
                tiers[1].append(name)
            elif data_hit and not conflicts(e.chemistry, chemistry):
                tiers[2].append(name)
            elif e.chemistry is None and not conflicts(e.dataset, dataset):
                tiers[3].append(name)
        for tier in tiers:
            if tier:
                return tier[0]
        raise KeyError(
            f"no model for chemistry={chemistry!r} dataset={dataset!r}; published: {self.names()}"
        )

    def refresh(self) -> None:
        """Rebuild the index from the checkpoints on disk."""
        self._entries.clear()
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.npz")):
            meta = peek_meta(path)
            if meta is None or "registry_version" not in meta:
                continue  # plain checkpoint, not ours
            self._index(path, meta)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # ------------------------------------------------------------------
    def _index(self, path: Path, meta: dict) -> ModelEntry:
        chemistry = meta.get("chemistry")
        entry = ModelEntry(
            name=meta["name"],
            path=path,
            chemistry=chemistry.lower() if chemistry else None,
            dataset=meta.get("dataset"),
            hidden=tuple(meta["hidden"]),
            horizon_scale_s=float(meta["horizon_scale"]),
            extra={k: v for k, v in meta.items() if k not in _RESERVED},
        )
        self._entries[entry.name] = entry
        return entry
