"""Versioned-checkpoint registry with channels and per-cell resolution.

A fleet mixes chemistries, datasets and horizon regimes; the serving
engine must pick the right 2,322-parameter checkpoint for every cell
without the caller hard-coding paths.  :class:`ModelRegistry` stores
checkpoints under one directory (one ``.npz`` per model *version*,
written via :mod:`repro.nn.serialization`), keeps a metadata index
built from :func:`repro.nn.peek_meta` (no weights are read until a
model is actually served), and resolves the most specific entry for a
``(chemistry, dataset)`` query.

**Versioning.**  Publishing a name never overwrites: each publish of
``name`` writes ``name@v{N}.npz`` with a monotonically increasing
version.  A sidecar ``channels.json`` maps each name's *channels*
(``stable``, ``canary``, ...) to versions; serving a bare ``name``
follows its ``stable`` pointer.  Model references accept three forms:

- ``"lg-a"`` — the name's stable channel;
- ``"lg-a@v3"`` — a pinned version (how canaries route cells);
- ``"lg-a@canary"`` — a live channel pointer.

:meth:`promote` repoints stable at the canary version (and clears the
canary); :meth:`rollback` abandons the canary.  Checkpoints written by
the unversioned v1 schema (``name.npz``) are still indexed, as version
1 of their name.

Resolution rules (:meth:`resolve`), most to least specific:

1. entries matching both the requested chemistry and dataset;
2. entries matching the chemistry (and not pinned to a different
   dataset);
3. entries matching the dataset and not specialized for a different
   chemistry;
4. *generalist* entries published without a chemistry.

An entry whose chemistry/dataset is set but differs from the query is
never considered a match on that axis.  Ties inside a tier break
deterministically on the lexicographically smallest name.  Resolution
considers each candidate name's entry *on the requested channel*.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import numpy as np

from ..core.config import ModelConfig
from ..core.model import TwoBranchSoCNet
from ..nn.serialization import load_state, peek_meta, save_state

__all__ = ["ModelEntry", "ModelRegistry", "REGISTRY_SCHEMA_VERSION"]

REGISTRY_SCHEMA_VERSION = 2

_CHANNELS_FILE = "channels.json"


@dataclasses.dataclass(frozen=True)
class ModelEntry:
    """Index record for one published checkpoint version.

    Attributes
    ----------
    name:
        Registry name (shared by all versions).
    version:
        Monotonic publish counter for the name (1-based).
    path:
        Location of the ``.npz`` snapshot.
    chemistry:
        Chemistry the model was trained for (``None`` = generalist).
    dataset:
        Source campaign (``"sandia"``, ``"lg"``, ...; optional).
    hidden:
        Hidden-layer widths of both branches.
    horizon_scale_s:
        Branch 2 horizon normalization constant.
    extra:
        Remaining metadata stored with the checkpoint (seeds, losses).
    """

    name: str
    version: int
    path: Path
    chemistry: str | None
    dataset: str | None
    hidden: tuple[int, ...]
    horizon_scale_s: float
    extra: dict = dataclasses.field(default_factory=dict)

    @property
    def ref(self) -> str:
        """The pinned-version reference, e.g. ``"lg-a@v3"``."""
        return f"{self.name}@v{self.version}"


_RESERVED = {
    "registry_version",
    "name",
    "version",
    "chemistry",
    "dataset",
    "hidden",
    "horizon_scale",
}


class ModelRegistry:
    """Directory-backed store of versioned :class:`TwoBranchSoCNet` checkpoints.

    Parameters
    ----------
    root:
        Directory holding the checkpoints (created on first publish).
        Existing ``.npz`` files carrying registry metadata are indexed
        on construction, so a registry can be reopened across runs.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._entries: dict[str, ModelEntry] = {}  # keyed by "name@vN"
        self._channels: dict[str, dict[str, int]] = {}
        self._models: dict[str, TwoBranchSoCNet] = {}
        # (mtime_ns, size) of the channels file as last read; lets every
        # lookup cheaply notice out-of-process publishes/promotes (a
        # shard worker's registry follows the parent's channels.json)
        self._channels_sig: tuple[int, int] | None = None
        self.refresh()

    # -- publishing ----------------------------------------------------
    def publish(
        self,
        name: str,
        model: TwoBranchSoCNet,
        chemistry: str | None = None,
        dataset: str | None = None,
        extra: dict | None = None,
        channel: str = "stable",
    ) -> ModelEntry:
        """Store a new version of ``name`` and point ``channel`` at it.

        Architecture metadata (hidden widths, horizon scale) is taken
        from the model itself so a later :meth:`load` can rebuild it
        without guessing; ``chemistry``/``dataset`` drive
        :meth:`resolve`.  Publishing to ``channel="canary"`` stages a
        candidate without touching what stable traffic serves.
        """
        if not name or "/" in name or "@" in name or name.startswith("."):
            raise ValueError(f"invalid model name {name!r}")
        if not channel or not channel.isidentifier():
            raise ValueError(f"invalid channel name {channel!r}")
        extra = dict(extra or {})
        if overlap := _RESERVED & set(extra):
            raise ValueError(f"extra metadata may not use reserved keys {sorted(overlap)}")
        self.root.mkdir(parents=True, exist_ok=True)
        version = max(self.versions(name), default=0) + 1
        path = self.root / f"{name}@v{version}.npz"
        meta = {
            "registry_version": REGISTRY_SCHEMA_VERSION,
            "name": name,
            "version": version,
            "chemistry": chemistry,
            "dataset": dataset,
            "hidden": list(model.config.hidden),
            "horizon_scale": model.config.horizon_scale_s,
            **extra,
        }
        save_state(model.state_dict(), path, meta=meta)
        entry = self._index(path, meta)
        self._channels.setdefault(name, {})[channel] = version
        self._save_channels()
        return entry

    # -- channel management --------------------------------------------
    def channels(self, name: str) -> dict[str, int]:
        """Channel -> version pointers for one name."""
        self._sync_channels()
        if name not in self._channels:
            raise KeyError(f"no model named {name!r}; have {self.names()}")
        return dict(self._channels[name])

    def set_channel(self, name: str, channel: str, version: int | None) -> None:
        """Point ``channel`` at ``version`` (or clear it with ``None``)."""
        if version is None:
            self._channels.get(name, {}).pop(channel, None)
        else:
            if version not in self.versions(name):
                raise KeyError(
                    f"model {name!r} has no version {version}; have {self.versions(name)}"
                )
            self._channels.setdefault(name, {})[channel] = version
        self._save_channels()

    def promote(self, name: str) -> int:
        """Make the canary version the new stable; returns that version.

        The canary pointer is cleared: a promoted candidate *is* the
        stable release, and cells pinned to its version can be rerouted
        back to bare-name (stable-channel) serving.
        """
        pointers = self.channels(name)
        if "canary" not in pointers:
            raise KeyError(f"model {name!r} has no canary to promote")
        version = pointers["canary"]
        self._channels[name]["stable"] = version
        del self._channels[name]["canary"]
        self._save_channels()
        return version

    def rollback(self, name: str) -> int:
        """Abandon the canary, keeping stable as it is; returns stable.

        Raises
        ------
        KeyError
            When the name has no active canary, or no stable to fall
            back to (a canary-only name must be promoted instead) —
            checked before anything is mutated, so a failed rollback
            never loses the canary pointer.
        """
        pointers = self.channels(name)
        if "canary" not in pointers:
            raise KeyError(f"model {name!r} has no canary to roll back")
        if "stable" not in pointers:
            raise KeyError(
                f"model {name!r} has no stable channel to fall back to; promote instead"
            )
        del self._channels[name]["canary"]
        self._save_channels()
        return self._channels[name]["stable"]

    # -- lookup --------------------------------------------------------
    def names(self) -> list[str]:
        """All published model names, sorted."""
        return sorted({e.name for e in self._entries.values()})

    def versions(self, name: str) -> list[int]:
        """Published versions of one name, sorted (empty when unknown)."""
        return sorted(e.version for e in self._entries.values() if e.name == name)

    def entries(self) -> list[ModelEntry]:
        """All index records, sorted by name then version."""
        return sorted(self._entries.values(), key=lambda e: (e.name, e.version))

    def describe(self, ref: str) -> ModelEntry:
        """Index record for a model reference.

        Accepts a bare name (stable channel), ``name@vN``, or
        ``name@channel``.

        Raises
        ------
        KeyError
            When the reference does not resolve to a published version.
        """
        name, version = self._parse_ref(ref)
        return self._entries[f"{name}@v{version}"]

    def load(self, ref: str) -> TwoBranchSoCNet:
        """Materialize (and cache) the referenced model with its weights."""
        entry = self.describe(ref)
        if entry.ref not in self._models:
            model = TwoBranchSoCNet(
                ModelConfig(hidden=entry.hidden, horizon_scale_s=entry.horizon_scale_s),
                rng=np.random.default_rng(0),
            )
            state, _ = load_state(entry.path)
            model.load_state_dict(state)
            model.eval()
            self._models[entry.ref] = model
        return self._models[entry.ref]

    def resolve(
        self,
        chemistry: str | None = None,
        dataset: str | None = None,
        channel: str = "stable",
    ) -> str:
        """Reference of the most specific entry for a chemistry/dataset query.

        Only names carrying the requested ``channel`` participate, and
        each candidate is judged by the metadata of the version that
        channel points at.  The stable channel returns the bare name
        (so serving follows later promotes automatically); any other
        channel returns ``name@channel``.

        Raises
        ------
        KeyError
            When nothing matches (not even a generalist entry).
        """
        self._sync_channels()
        chemistry = chemistry.lower() if chemistry else None

        def conflicts(entry_value, query_value) -> bool:
            return entry_value is not None and query_value is not None and entry_value != query_value

        tiers: list[list[str]] = [[], [], [], []]
        for name in self.names():
            version = self._channels.get(name, {}).get(channel)
            if version is None:
                continue
            e = self._entries[f"{name}@v{version}"]
            chem_hit = chemistry is not None and e.chemistry == chemistry
            data_hit = dataset is not None and e.dataset == dataset
            if chem_hit and data_hit:
                tiers[0].append(name)
            elif chem_hit and not conflicts(e.dataset, dataset):
                tiers[1].append(name)
            elif data_hit and not conflicts(e.chemistry, chemistry):
                tiers[2].append(name)
            elif e.chemistry is None and not conflicts(e.dataset, dataset):
                tiers[3].append(name)
        for tier in tiers:
            if tier:
                return tier[0] if channel == "stable" else f"{tier[0]}@{channel}"
        raise KeyError(
            f"no model for chemistry={chemistry!r} dataset={dataset!r} "
            f"channel={channel!r}; published: {self.names()}"
        )

    def refresh(self) -> None:
        """Rebuild the index from the checkpoints on disk."""
        self._entries.clear()
        self._channels.clear()
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.npz")):
            meta = peek_meta(path)
            if meta is None or "registry_version" not in meta:
                continue  # plain checkpoint, not ours
            self._index(path, meta)
        channels_path = self.root / _CHANNELS_FILE
        if channels_path.exists():
            # record the signature of what we are about to read (stat
            # BEFORE read: a concurrent rewrite then re-triggers
            # _sync_channels rather than being masked) so a full
            # re-index also counts as having seen the current file —
            # without this, the next _sync_channels would re-read a file
            # refresh() just consumed
            try:
                stat = channels_path.stat()
                self._channels_sig = (stat.st_mtime_ns, stat.st_size)
            except OSError:
                pass
            raw = json.loads(channels_path.read_text(encoding="utf-8"))
            for name, pointers in raw.items():
                self._channels[name] = {
                    ch: int(v) for ch, v in pointers.items() if int(v) in self.versions(name)
                }
        # names the channel file does not cover at all (legacy dirs, or a
        # lost sidecar) serve their newest version; names it does cover
        # keep exactly their recorded pointers — a canary-only entry must
        # not become stable just because the process restarted
        for name in self.names():
            if name not in self._channels:
                self._channels[name] = {"stable": max(self.versions(name))}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ref: str) -> bool:
        try:
            self._parse_ref(ref)
        except KeyError:
            return False
        return True

    # ------------------------------------------------------------------
    def _parse_ref(self, ref: str, _retry: bool = True) -> tuple[str, int]:
        self._sync_channels()
        try:
            return self._parse_ref_once(ref)
        except KeyError:
            if not _retry:
                raise
            # the reference may name a version/channel another process
            # just published (a canary staged by the parent, resolved by
            # a shard worker): re-index from disk once and retry
            self.refresh()
            return self._parse_ref(ref, _retry=False)

    def _parse_ref_once(self, ref: str) -> tuple[str, int]:
        name, sep, tag = ref.partition("@")
        if name not in {e.name for e in self._entries.values()}:
            raise KeyError(f"no model named {name!r}; have {self.names()}")
        if not sep:
            tag = "stable"
        if tag.startswith("v") and tag[1:].isdigit():
            version = int(tag[1:])
            if version not in self.versions(name):
                raise KeyError(
                    f"model {name!r} has no version {version}; have {self.versions(name)}"
                )
            return name, version
        version = self._channels.get(name, {}).get(tag)
        if version is None:
            raise KeyError(
                f"model {name!r} has no {tag!r} channel; have {self.channels(name)}"
            )
        return name, version

    def _sync_channels(self) -> None:
        """Re-read ``channels.json`` when another process changed it.

        One ``stat`` per lookup keeps a live engine's bare-name and
        channel references following out-of-process promotes/rollbacks
        (the control plane runs in the parent, serving in shard worker
        children; the channels file is their shared source of truth).
        Version files are immutable, so entries only need re-indexing
        when a *reference* misses (see :meth:`_parse_ref`).
        """
        path = self.root / _CHANNELS_FILE
        try:
            stat = path.stat()
        except OSError:
            return
        signature = (stat.st_mtime_ns, stat.st_size)
        if signature == self._channels_sig:
            return
        self._channels_sig = signature
        raw = json.loads(path.read_text(encoding="utf-8"))
        if any(
            int(version) not in self.versions(name)
            for name, pointers in raw.items()
            for version in pointers.values()
        ):
            # a pointer names a version this process has not indexed yet
            # (another process just published it): re-index from disk so
            # the pointer lands on a real entry instead of being dropped
            # — dropping it would leave resolve()/channels() without a
            # stable pointer until some _parse_ref retry re-indexed
            self.refresh()
            return
        self._channels = {
            name: {ch: int(v) for ch, v in pointers.items()}
            for name, pointers in raw.items()
        }
        for name in self.names():
            if name not in self._channels:
                self._channels[name] = {"stable": max(self.versions(name))}

    def _index(self, path: Path, meta: dict) -> ModelEntry:
        chemistry = meta.get("chemistry")
        entry = ModelEntry(
            name=meta["name"],
            version=int(meta.get("version", 1)),
            path=path,
            chemistry=chemistry.lower() if chemistry else None,
            dataset=meta.get("dataset"),
            hidden=tuple(meta["hidden"]),
            horizon_scale_s=float(meta["horizon_scale"]),
            extra={k: v for k, v in meta.items() if k not in _RESERVED},
        )
        self._entries[entry.ref] = entry
        return entry

    def _save_channels(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / (_CHANNELS_FILE + ".tmp")
        tmp.write_text(json.dumps(self._channels, indent=2, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.root / _CHANNELS_FILE)
