"""Public client for a running ``repro-soc serve`` daemon.

Before this module, anything that wanted to talk to the serving stack
imported gateway internals and built the whole stack in-process —
fine for simulation, wrong for a daemon that is already running.
:class:`SocClient` is the supported surface: connect by URL, call
methods mirroring the gateway endpoints, get plain Python values
back.  Examples and soak scripts depend on this module and nothing
deeper.

The wire is the same pickle-framed protocol the workers use
(:mod:`repro.serve.transport`), one request/reply pair at a time per
connection — a client is **not** thread-safe; open one per thread
(connections are cheap, the daemon serves each on its own handler
thread).  Remote errors come back as raised exceptions mapped from
the daemon's error frames (``KeyError`` for unknown cells,
``RuntimeError`` otherwise — including gateway shedding).

Usage::

    from repro.serve.client import SocClient

    with SocClient("unix:///run/repro-soc.sock") as client:
        client.register_cell("pack7.cell3", chemistry="nca")
        soc = client.estimate("pack7.cell3", voltage=3.71, current=1.2, temp_c=24.0)
        fleet_soc = client.predict("pack7.cell3", current_avg=1.0,
                                   temp_avg_c=25.0, horizon_s=600.0)
"""

from __future__ import annotations

from typing import Iterable

from .transport import PeerGone, Transport, TransportError, connect

__all__ = ["SocClient", "DaemonUnavailable"]


class DaemonUnavailable(ConnectionError):
    """The daemon could not be reached (or the link died mid-call)."""


class SocClient:
    """One connection to a :class:`~repro.serve.daemon.SocDaemon`.

    Parameters
    ----------
    url:
        The daemon's control URL (``unix:///path`` or
        ``tcp://host:port``) — what ``repro-soc serve`` printed at
        startup.
    connect_timeout_s:
        How long to keep retrying a refused connection (a daemon still
        binding, or restarting) before raising
        :class:`DaemonUnavailable`.
    call_timeout_s:
        Per-call receive deadline (``None`` waits forever — rollouts
        can be long).  A deadline hit poisons the connection; the
        client transparently reconnects before the next call.
    """

    def __init__(
        self,
        url: str,
        connect_timeout_s: float = 10.0,
        call_timeout_s: float | None = None,
    ):
        self.url = url
        self.connect_timeout_s = float(connect_timeout_s)
        self.call_timeout_s = call_timeout_s
        self._transport: Transport | None = None
        self._connect()

    # -- gateway endpoints ----------------------------------------------
    def estimate(self, cell_id: str, voltage: float, current: float, temp_c: float) -> float:
        """Branch 1 SoC from an instantaneous measurement (micro-batched)."""
        return float(self._call("estimate", cell_id, float(voltage), float(current), float(temp_c)))

    def predict(
        self,
        cell_id: str,
        current_avg: float,
        temp_avg_c: float,
        horizon_s: float,
    ) -> float:
        """Branch 2 SoC at ``horizon_s`` ahead (micro-batched).

        The prediction anchors on the cell's *stored* SoC (an earlier
        :meth:`estimate` must have completed); per-request anchors are
        an engine-level feature the batched path does not carry.
        """
        return float(
            self._call(
                "predict",
                cell_id,
                float(current_avg),
                float(temp_avg_c),
                float(horizon_s),
            )
        )

    def rollout(self, assignments: Iterable[tuple[str, object]], step_s: float) -> dict:
        """Fleet rollout over registered cells; ``{cell_id: RolloutResult}``."""
        return self._call("rollout", list(assignments), float(step_s))

    # -- fleet membership ----------------------------------------------
    def register_cell(self, cell_id: str, chemistry: str | None = None, model_name: str | None = None):
        """Register a cell with the daemon's fleet."""
        return self._call("register_cell", cell_id, chemistry=chemistry, model_name=model_name)

    def deregister_cell(self, cell_id: str):
        """Remove a cell; returns its final state."""
        return self._call("deregister_cell", cell_id)

    def reroute_cell(self, cell_id: str, model_name: str | None = None):
        """Re-resolve a cell's serving model in place."""
        return self._call("reroute_cell", cell_id, model_name=model_name)

    def cell(self, cell_id: str):
        """State record for one registered cell."""
        return self._call("cell", cell_id)

    def cells(self) -> list:
        """Detached state records of every registered cell."""
        return list(self._call("cells"))

    def __len__(self) -> int:
        return int(self._call("len"))

    def __contains__(self, cell_id: str) -> bool:
        return bool(self._call("contains", cell_id))

    # -- operations -----------------------------------------------------
    def ping(self) -> bool:
        """Round-trip liveness check against the daemon."""
        try:
            return self._call("ping") == "pong"
        except (DaemonUnavailable, RuntimeError):
            return False

    def hello(self) -> dict:
        """Daemon identity: service name, URL, supported ops."""
        return self._call("hello")

    def stats(self) -> dict:
        """Gateway per-endpoint counters/latency percentiles (live)."""
        return self._call("stats")

    def metrics(self) -> dict:
        """Merged metrics snapshot (gateway + workers)."""
        return self._call("metrics")

    def worker_health(self) -> list[bool]:
        """Cached per-shard liveness, as the daemon sees it."""
        return list(self._call("worker_health"))

    def heartbeat(self) -> list[bool]:
        """Actively probe every shard worker through the daemon."""
        return list(self._call("heartbeat"))

    def add_worker(self, url_or_spec) -> int:
        """Register a new shard worker by URL; returns its shard index."""
        return int(self._call("add_worker", url_or_spec))

    # -- registry ops ---------------------------------------------------
    def drift_events(self) -> list:
        """Drift events gathered across the daemon's whole fleet."""
        return list(self._call("drift_events"))

    def publish(
        self,
        name: str,
        model,
        chemistry: str | None = None,
        dataset: str | None = None,
        extra: dict | None = None,
        channel: str = "stable",
    ) -> int:
        """Publish a model through the daemon; returns the new version.

        The model's config + weights travel the wire as a plain spec
        (the same encoding spawned workers use), so the daemon rebuilds
        it without the client touching the registry directory.  A
        ``channel="canary"`` publish for the autopilot's model starts a
        *steered* canary — pinned traffic slice, autopilot verdicts —
        rather than just flipping a channel pointer; this is how a
        remote retrain pipeline hands off a candidate without racing
        the daemon on ``channels.json``.
        """
        from .workers import _model_spec

        return int(
            self._call(
                "publish",
                name,
                _model_spec(model),
                chemistry=chemistry,
                dataset=dataset,
                extra=extra,
                channel=channel,
            )
        )

    def promote(self, name: str) -> int:
        """Promote ``name``'s canary to stable; returns the version."""
        return int(self._call("promote", name))

    def rollback(self, name: str) -> int:
        """Abandon ``name``'s canary; returns the stable version."""
        return int(self._call("rollback", name))

    def shutdown_daemon(self) -> None:
        """Ask the daemon to stop (drains workers, closes journals)."""
        self._call("shutdown")

    def close(self) -> None:
        """Close the connection (the daemon keeps serving others)."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def __enter__(self) -> SocClient:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        try:
            self._transport = connect(self.url, timeout_s=self.connect_timeout_s)
        except (TransportError, ValueError) as exc:
            if isinstance(exc, ValueError):
                raise
            raise DaemonUnavailable(f"no daemon at {self.url}: {exc}") from exc

    def _call(self, op: str, *args, **kwargs):
        if self._transport is None or self._transport.closed:
            self._connect()
        try:
            reply = self._transport.request((op, args, kwargs), timeout_s=self.call_timeout_s)
        except PeerGone as exc:
            self.close()
            raise DaemonUnavailable(f"daemon at {self.url} went away during {op!r}: {exc}") from exc
        except TransportError as exc:
            self.close()  # timeout poisons the stream; reconnect next call
            raise DaemonUnavailable(f"daemon at {self.url} did not answer {op!r}: {exc}") from exc
        if reply[0] == "ok":
            return reply[1]
        _, exc_name, message = reply
        exc_type = {"KeyError": KeyError, "ValueError": ValueError}.get(exc_name, RuntimeError)
        raise exc_type(message)
