"""``repro.serve`` — fleet-scale SoC serving.

The deployment layer on top of the paper's model: batched multi-cell
inference instead of one Python call per cell.

- :mod:`repro.serve.engine` — :class:`FleetEngine`: per-cell state,
  batched Branch 1/2 forwards, lock-step fleet rollout;
- :mod:`repro.serve.registry` — :class:`ModelRegistry`: named
  checkpoints with chemistry/dataset resolution;
- :mod:`repro.serve.scheduler` — :class:`MicroBatcher`: size- and
  deadline-triggered request coalescing with latency accounting;
- :mod:`repro.serve.fleet_sim` — synthetic heterogeneous fleets for
  benchmarks and the ``repro-soc serve-sim`` subcommand.
"""

from .engine import CellState, FleetEngine
from .fleet_sim import FleetMember, FleetScenario, generate_fleet
from .registry import ModelEntry, ModelRegistry
from .scheduler import BatchStats, Completion, MicroBatcher, Request

__all__ = [
    "CellState",
    "FleetEngine",
    "ModelEntry",
    "ModelRegistry",
    "BatchStats",
    "Completion",
    "MicroBatcher",
    "Request",
    "FleetMember",
    "FleetScenario",
    "generate_fleet",
]
