"""``repro.serve`` — fleet-scale SoC serving.

The deployment layer on top of the paper's model: batched multi-cell
inference instead of one Python call per cell, durable per-cell state,
and versioned checkpoint rollout.

- :mod:`repro.serve.engine` — :class:`FleetEngine`: per-cell state,
  batched Branch 1/2 forwards, lock-step fleet rollout,
  restore/resume from a journal;
- :mod:`repro.serve.sharding` — :class:`ShardedFleet`: rendezvous-
  hashed cell partitioning across shard workers behind the engine API,
  with stable rebalancing;
- :mod:`repro.serve.persistence` — :class:`StateJournal`: append-only
  per-cell state/rollout-progress journal with atomic compaction;
- :mod:`repro.serve.registry` — :class:`ModelRegistry`: versioned
  named checkpoints with channels (stable/canary), promote/rollback,
  and chemistry/dataset resolution;
- :mod:`repro.serve.canary` — :class:`CanaryController`: route a hash-
  selected fleet slice to a candidate checkpoint, compare divergence,
  then promote or roll back;
- :mod:`repro.serve.scheduler` — :class:`MicroBatcher`: size- and
  deadline-triggered request coalescing with latency accounting;
- :mod:`repro.serve.gateway` — :class:`SocGateway`: asyncio front-end
  accepting estimate/predict/rollout requests concurrently, with
  admission control, load shedding, worker-crash retry, and
  registry-backed per-endpoint latency stats;
- :mod:`repro.serve.workers` — shard workers behind one declarative
  factory (:class:`WorkerSpec`): :class:`ProcessShardWorker` over
  stdio pipes (the local fast path), :class:`RemoteShardWorker` over
  sockets, and the standalone serving loops (``repro-soc worker``);
- :mod:`repro.serve.transport` — :class:`Transport`: the framed
  connection seam under every worker (``pipe://``, ``unix:///path``,
  ``tcp://host:port``), with torn-stream and deadline peer-death
  detection;
- :mod:`repro.serve.daemon` — :class:`SocDaemon`: the ``repro-soc
  serve`` process — gateway + control loop + scrape endpoint on one
  control URL that clients and workers dial into;
- :mod:`repro.serve.client` — :class:`SocClient`: the public
  by-URL client for a running daemon;
- :mod:`repro.serve.driftconfig` — :func:`drift_resolver_from_registry`:
  per-chemistry drift-detector specs read from published models'
  registry metadata, consumed by ``FleetEngine(drift=...)``;
- :mod:`repro.serve.archive` — :class:`DirectoryArchiveStore` and
  :func:`restore_from_archive`: cold storage for sealed journal
  segments (rotation ships, restore replays);
- :mod:`repro.serve.wire` — the worker frame codec: pickled control
  frames plus v2 zero-copy frames (struct header + raw array payloads
  decoded via ``np.frombuffer``) for the bulk inference messages;
- :mod:`repro.serve.fleet_sim` — synthetic heterogeneous fleets for
  benchmarks and the ``repro-soc serve-sim`` subcommand.

Inference defaults to the compiled kernel path
(:mod:`repro.core.kernels`) — flat weight blocks, fused scalers,
preallocated GEMM chains — with ``use_kernel=False`` as the Tensor-path
escape hatch on :class:`FleetEngine`, :class:`ShardedFleet` and
:class:`ProcessShardWorker`.

See ``src/repro/serve/README.md`` for the compiled-kernel
architecture, gateway architecture, sharding topology, worker wire
protocol (v1/v2 frame layout), journal format, and canary lifecycle.
"""

from .archive import ArchiveError, DirectoryArchiveStore, MissingSegmentError, restore_from_archive
from .canary import CanaryController, CanaryReport, in_canary_slice
from .client import DaemonUnavailable, SocClient
from .daemon import SocDaemon
from .driftconfig import drift_resolver_from_registry
from .engine import CellState, FleetEngine
from .fleet_sim import FleetMember, FleetScenario, generate_fleet
from .gateway import GatewayOverloaded, SocGateway
from .loadgen import LoadReport, arrival_times, run_closed_loop, run_open_loop
from .persistence import JournalSnapshot, StateJournal
from .registry import ModelEntry, ModelRegistry
from .scheduler import BatchStats, Completion, MicroBatcher, Request
from .sharding import ShardedFleet, shard_for
from .transport import PeerGone, Transport, TransportError, TransportTimeout
from .workers import ProcessShardWorker, RemoteShardWorker, WorkerCrashError, WorkerSpec

__all__ = [
    "CellState",
    "FleetEngine",
    "ShardedFleet",
    "shard_for",
    "SocGateway",
    "GatewayOverloaded",
    "ProcessShardWorker",
    "RemoteShardWorker",
    "WorkerSpec",
    "WorkerCrashError",
    "Transport",
    "TransportError",
    "TransportTimeout",
    "PeerGone",
    "SocClient",
    "SocDaemon",
    "DaemonUnavailable",
    "drift_resolver_from_registry",
    "ArchiveError",
    "MissingSegmentError",
    "DirectoryArchiveStore",
    "restore_from_archive",
    "StateJournal",
    "JournalSnapshot",
    "ModelEntry",
    "ModelRegistry",
    "CanaryController",
    "CanaryReport",
    "in_canary_slice",
    "BatchStats",
    "Completion",
    "MicroBatcher",
    "Request",
    "FleetMember",
    "FleetScenario",
    "generate_fleet",
    "LoadReport",
    "arrival_times",
    "run_closed_loop",
    "run_open_loop",
]
