"""Canary rollout of candidate checkpoints onto a fleet slice.

Swapping the serving checkpoint for a whole fleet at once is how a bad
retrain becomes a fleet-wide SoC regression.  The canary lifecycle
staged here keeps the blast radius configurable:

1. :meth:`CanaryController.start` publishes (or points at) a candidate
   version on the registry's ``canary`` channel and pins a
   deterministic, hash-selected slice of the fleet's cells to that
   exact version (``name@vN``) — the rest keep serving stable;
2. :meth:`CanaryController.evaluate` replays duty cycles through both
   checkpoints *off the serving path* and reports divergence stats
   between the stable and candidate trajectories;
3. :meth:`CanaryController.promote` makes the candidate the new stable
   (all bare-name routed cells follow automatically) or
   :meth:`CanaryController.rollback` abandons it; either way the
   pinned cells return to channel routing with their state intact.

Slice membership hashes the cell id (salted), so the same cells are
canaried across restarts and across the shard boundary — a sharded
fleet canaries the same slice a single engine would.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from ..core.model import TwoBranchSoCNet
from ..datasets.base import CycleRecord
from .engine import FleetEngine
from .registry import ModelRegistry

__all__ = ["CanaryController", "CanaryReport", "in_canary_slice"]


def in_canary_slice(cell_id: str, fraction: float, salt: str = "") -> bool:
    """Deterministic slice membership: hash the cell id into [0, 1).

    ``fraction`` of the id space (blake2b, optionally salted to draw
    independent slices) lands in the canary.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction!r}")
    digest = hashlib.blake2b(f"{salt}:{cell_id}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64 < fraction


@dataclasses.dataclass(frozen=True)
class CanaryReport:
    """Divergence between stable and candidate over the canary slice.

    ``soc_pred`` trajectories of both checkpoints are compared
    pointwise over every canaried cell's duty cycle; divergences are
    absolute SoC differences (the unit of the paper's error metrics).
    """

    name: str
    stable_version: int
    candidate_version: int
    n_cells: int
    n_points: int
    mean_abs_divergence: float
    max_abs_divergence: float
    final_abs_divergence: float
    max_divergence_allowed: float

    @property
    def passed(self) -> bool:
        """Whether the candidate stayed within the divergence budget."""
        return self.max_abs_divergence <= self.max_divergence_allowed

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"canary {self.name}@v{self.candidate_version} vs stable v{self.stable_version}: "
            f"{verdict} — {self.n_cells} cells, {self.n_points} points, "
            f"|divergence| mean {self.mean_abs_divergence:.2e} "
            f"max {self.max_abs_divergence:.2e} "
            f"(budget {self.max_divergence_allowed:.2e})"
        )


class CanaryController:
    """Route a fleet slice to a candidate checkpoint and judge it.

    Parameters
    ----------
    engine:
        The live fleet — a :class:`~repro.serve.engine.FleetEngine` or
        :class:`~repro.serve.sharding.ShardedFleet` (anything with
        ``cells()`` / ``reroute_cell()`` and an attached registry).
    registry:
        The :class:`~repro.serve.registry.ModelRegistry` both channels
        live in (must be the engine's registry).
    name:
        Registry name whose stable traffic is being canaried.
    fraction:
        Share of the name's cells to pin to the candidate.
    max_divergence:
        Largest tolerated pointwise ``|SoC_stable - SoC_candidate|``
        in :meth:`evaluate`.
    salt:
        Varies slice membership between concurrent canaries.
    """

    def __init__(
        self,
        engine: FleetEngine,
        registry: ModelRegistry,
        name: str,
        fraction: float = 0.1,
        max_divergence: float = 0.02,
        salt: str = "",
    ):
        if engine.registry is not registry:
            raise ValueError("engine must serve from the same registry as the controller")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be within (0, 1], got {fraction!r}")
        if max_divergence < 0:
            raise ValueError("max_divergence cannot be negative")
        self.engine = engine
        self.registry = registry
        self.name = name
        self.fraction = fraction
        self.max_divergence = max_divergence
        self.salt = salt
        self._candidate_version: int | None = None
        self._pinned: list[str] = []

    @property
    def active(self) -> bool:
        """Whether a canary is currently routed."""
        return self._candidate_version is not None

    @property
    def candidate_version(self) -> int | None:
        """Version under canary (``None`` when inactive)."""
        return self._candidate_version

    def canary_cells(self) -> list[str]:
        """Cell ids currently pinned to the candidate, sorted."""
        return sorted(self._pinned)

    # -- lifecycle -----------------------------------------------------
    def start(
        self,
        candidate: TwoBranchSoCNet | None = None,
        version: int | None = None,
        chemistry: str | None = None,
        dataset: str | None = None,
        extra: dict | None = None,
    ) -> int:
        """Stage a candidate and pin the slice; returns its version.

        Pass either a ``candidate`` model (published to the canary
        channel, inheriting ``chemistry``/``dataset`` metadata) or the
        ``version`` of an already-published checkpoint.
        """
        if self.active:
            raise ValueError(f"canary of {self.name!r} already active; promote or roll back first")
        if (candidate is None) == (version is None):
            raise ValueError("pass exactly one of candidate / version")
        if candidate is not None:
            entry = self.registry.publish(
                self.name,
                candidate,
                chemistry=chemistry,
                dataset=dataset,
                extra=extra,
                channel="canary",
            )
            version = entry.version
        else:
            self.registry.set_channel(self.name, "canary", version)
        ref = f"{self.name}@v{version}"
        self._pinned = []
        for state in list(self.engine.cells()):
            if state.model_key != self.name:
                continue  # not stable-routed to this name (or already pinned)
            if in_canary_slice(state.cell_id, self.fraction, self.salt):
                self.engine.reroute_cell(state.cell_id, model_name=ref)
                self._pinned.append(state.cell_id)
        self._candidate_version = version
        return version

    def evaluate(
        self,
        assignments: list[tuple[str, CycleRecord]],
        step_s: float,
    ) -> CanaryReport:
        """Shadow-compare stable vs candidate over the canary slice.

        Both checkpoints roll the canaried cells' duty cycles in
        throwaway engines (the live fleet's state is untouched) and the
        trajectories are compared pointwise.
        """
        if not self.active:
            raise ValueError("no active canary to evaluate")
        stable_version = self.registry.channels(self.name)["stable"]
        pinned = set(self._pinned)
        canary_assignments = [(cid, cycle) for cid, cycle in assignments if cid in pinned]
        if not canary_assignments:
            raise ValueError("no canaried cells among the given assignments")
        stable = FleetEngine(default_model=self.registry.load(f"{self.name}@v{stable_version}"))
        cand_ref = f"{self.name}@v{self._candidate_version}"
        candidate = FleetEngine(default_model=self.registry.load(cand_ref))
        a = stable.rollout_fleet(canary_assignments, step_s=step_s)
        b = candidate.rollout_fleet(canary_assignments, step_s=step_s)
        diffs = [np.abs(a[cid].soc_pred - b[cid].soc_pred) for cid, _ in canary_assignments]
        flat = np.concatenate(diffs)
        return CanaryReport(
            name=self.name,
            stable_version=stable_version,
            candidate_version=self._candidate_version,
            n_cells=len(canary_assignments),
            n_points=int(flat.size),
            mean_abs_divergence=float(flat.mean()),
            max_abs_divergence=float(flat.max()),
            final_abs_divergence=float(max(d[-1] for d in diffs)),
            max_divergence_allowed=self.max_divergence,
        )

    def promote(self) -> int:
        """Make the candidate stable; unpin the slice.  Returns the version."""
        if not self.active:
            raise ValueError("no active canary to promote")
        version = self.registry.promote(self.name)
        self._unpin()
        return version

    def rollback(self) -> int:
        """Abandon the candidate; unpin the slice.  Returns the stable version."""
        if not self.active:
            raise ValueError("no active canary to roll back")
        version = self.registry.rollback(self.name)
        self._unpin()
        return version

    # ------------------------------------------------------------------
    def _unpin(self) -> None:
        for cell_id in self._pinned:
            if cell_id in self.engine:
                self.engine.reroute_cell(cell_id, model_name=self.name)
        self._pinned = []
        self._candidate_version = None
